package bicriteria_test

import (
	"fmt"

	"bicriteria"
)

// ExampleDEMT schedules a tiny hand-built instance with the paper's
// bi-criteria algorithm. Two sequential tasks and one perfectly moldable
// task share two processors; the optimal makespan of 4 is reached.
func ExampleDEMT() {
	inst := bicriteria.NewInstance(2, []bicriteria.Task{
		bicriteria.NewSequentialTask(0, 1, 2),
		bicriteria.NewSequentialTask(1, 1, 2),
		bicriteria.NewPerfectlyMoldableTask(2, 3, 4, 2),
	})
	res, err := bicriteria.DEMT(inst, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("makespan %.0f\n", res.Schedule.Makespan())
	fmt.Printf("weighted completion %.0f\n", res.Schedule.WeightedCompletion(inst))
	fmt.Println("valid:", res.Schedule.Validate(inst, nil) == nil)
	// Output:
	// makespan 4
	// weighted completion 14
	// valid: true
}

// ExampleMakespanLowerBound shows the certified makespan lower bound for a
// single perfectly moldable task: the work divided by the machine size.
func ExampleMakespanLowerBound() {
	inst := bicriteria.NewInstance(4, []bicriteria.Task{
		bicriteria.NewPerfectlyMoldableTask(0, 1, 12, 4),
	})
	fmt.Printf("%.0f\n", bicriteria.MakespanLowerBound(inst))
	// Output:
	// 3
}

// ExampleGang shows the gang baseline: every task runs on the whole
// machine, one after the other, in Smith order.
func ExampleGang() {
	inst := bicriteria.NewInstance(2, []bicriteria.Task{
		bicriteria.NewPerfectlyMoldableTask(0, 1, 6, 2), // p(2)=3, ratio 1/3
		bicriteria.NewPerfectlyMoldableTask(1, 4, 4, 2), // p(2)=2, ratio 2
	})
	s, err := bicriteria.Gang(inst)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Task 1 has the better weight/time ratio so it goes first.
	fmt.Printf("task 1 completes at %.0f\n", s.Assignment(1).End())
	fmt.Printf("task 0 completes at %.0f\n", s.Assignment(0).End())
	fmt.Printf("makespan %.0f\n", s.Makespan())
	// Output:
	// task 1 completes at 2
	// task 0 completes at 5
	// makespan 5
}

// ExampleGenerateWorkload builds one of the paper's synthetic workloads
// and reports its shape.
func ExampleGenerateWorkload() {
	inst, err := bicriteria.GenerateWorkload(bicriteria.WorkloadConfig{
		Kind: bicriteria.WorkloadHighlyParallel,
		M:    16,
		N:    10,
		Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("tasks:", inst.N())
	fmt.Println("processors:", inst.M)
	fmt.Println("monotonic:", inst.IsMonotonic())
	// Output:
	// tasks: 10
	// processors: 16
	// monotonic: true
}

// ExampleScheduleOnline runs the on-line batch framework on two jobs whose
// second submission arrives while the first batch is running.
func ExampleScheduleOnline() {
	jobs := []bicriteria.OnlineJob{
		{Task: bicriteria.NewSequentialTask(0, 1, 4), Release: 0},
		{Task: bicriteria.NewSequentialTask(1, 1, 2), Release: 1},
	}
	res, err := bicriteria.ScheduleOnline(2, jobs, bicriteria.DEMTOffline(nil))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("batches:", len(res.Batches))
	fmt.Printf("second batch starts at %.0f\n", res.Batches[1].Start)
	fmt.Printf("makespan %.0f\n", res.Makespan)
	// Output:
	// batches: 2
	// second batch starts at 4
	// makespan 6
}
