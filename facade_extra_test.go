package bicriteria

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestFacadeReservations exercises the reservation-aware scheduling through
// the public API.
func TestFacadeReservations(t *testing.T) {
	inst, err := GenerateWorkload(WorkloadConfig{Kind: WorkloadMixed, M: 16, N: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	reservations := []Reservation{
		{Name: "maintenance", Procs: 4, Start: 0, End: 5},
		{Name: "other", Procs: 6, Start: 8, End: 12},
	}
	res, err := ScheduleWithReservations(inst, reservations, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if err := ValidateReservations(res.Schedule, reservations, res.Blocked); err != nil {
		t.Fatalf("reservation violated: %v", err)
	}
	if res.Schedule.Makespan() < res.DEMT.Schedule.Makespan()-1e-6 {
		t.Fatalf("reserved schedule cannot finish earlier than the unreserved plan")
	}
	// Reserving the whole machine must fail.
	if _, err := ScheduleWithReservations(inst, []Reservation{{Procs: 16, Start: 0, End: 100}}, nil); err == nil {
		t.Fatalf("full-machine reservation must fail")
	}
}

// TestFacadeTraceRoundTrip exercises the SWF interchange through the public
// API: schedule a workload, export it, re-import it and schedule the
// reconstructed jobs on-line.
func TestFacadeTraceRoundTrip(t *testing.T) {
	inst, err := GenerateWorkload(WorkloadConfig{Kind: WorkloadCirne, M: 12, N: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DEMT(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	records := ScheduleToTrace(inst, res.Schedule, nil)
	if len(records) != inst.N() {
		t.Fatalf("export lost jobs: %d records for %d tasks", len(records), inst.N())
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ";") {
		t.Fatalf("missing SWF header")
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records")
	}

	// Reconstruct moldable jobs from the rigid records and replay them
	// on-line.
	tasks := TraceToTasks(back, 12, nil)
	if len(tasks) != len(back) {
		t.Fatalf("reconstruction lost jobs")
	}
	releases := TraceReleases(back)
	jobs := make([]OnlineJob, len(tasks))
	for i, task := range tasks {
		jobs[i] = OnlineJob{Task: task, Release: releases[task.ID]}
	}
	onlineRes, err := ScheduleOnline(12, jobs, DEMTOffline(nil))
	if err != nil {
		t.Fatal(err)
	}
	replay := NewInstance(12, tasks)
	if err := onlineRes.Schedule.Validate(replay, &ValidateOptions{ReleaseDates: releases}); err != nil {
		t.Fatalf("replayed schedule invalid: %v", err)
	}
}

// facadeStream builds a deterministic bursty stream through the public API.
func facadeStream(t *testing.T, m, n int, seed int64) []OnlineJob {
	t.Helper()
	arrivals, err := GenerateArrivals(ArrivalConfig{
		Workload:  WorkloadConfig{Kind: WorkloadMixed, M: m, N: n, Seed: seed},
		Rate:      3,
		BurstSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ArrivalJobs(arrivals)
}

// TestFacadeClusterConfigValidation exercises every rejection path of the
// Cluster* wrappers through the public API.
func TestFacadeClusterConfigValidation(t *testing.T) {
	demt := ClusterDEMTAlgorithm(nil)
	cases := []struct {
		name string
		cfg  ClusterConfig
	}{
		{"zero processors", ClusterConfig{M: 0}},
		{"nameless algorithm", ClusterConfig{M: 8, Portfolio: []ClusterAlgorithm{{Run: demt.Run}}}},
		{"algorithm without Run", ClusterConfig{M: 8, Portfolio: []ClusterAlgorithm{{Name: "x"}}}},
		{"duplicate algorithm names", ClusterConfig{M: 8, Portfolio: []ClusterAlgorithm{demt, demt}}},
		{"alpha above 1", ClusterConfig{M: 8, Objective: ClusterObjective{Kind: ClusterObjectiveCombined, Alpha: 2}}},
		{"alpha below 0", ClusterConfig{M: 8, Objective: ClusterObjective{Kind: ClusterObjectiveCombined, Alpha: -0.1}}},
		{"unknown objective", ClusterConfig{M: 8, Objective: ClusterObjective{Kind: ClusterObjectiveKind(99)}}},
		{"reservation too wide", ClusterConfig{M: 8, Reservations: []Reservation{{Procs: 9, Start: 0, End: 5}}}},
		{"reservation blocks machine", ClusterConfig{M: 8, Reservations: []Reservation{{Procs: 8, Start: 0, End: 5}}}},
		{"reversed reservation window", ClusterConfig{M: 8, Reservations: []Reservation{{Procs: 2, Start: 5, End: 1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewClusterEngine(tc.cfg); err == nil {
				t.Fatalf("NewClusterEngine accepted %s", tc.name)
			}
			if _, err := RunCluster(tc.cfg, nil); err == nil {
				t.Fatalf("RunCluster accepted %s", tc.name)
			}
		})
	}

	// Bad policy and noise constructors.
	if _, err := FixedIntervalPolicy(0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := AdaptiveBacklogPolicy(0, 10); err == nil {
		t.Fatal("zero work target accepted")
	}
	if _, err := AdaptiveBacklogPolicy(10, -1); err == nil {
		t.Fatal("negative max delay accepted")
	}
	if _, err := UniformRuntimeNoise(1.5, 1); err == nil {
		t.Fatal("noise fraction above 1 accepted")
	}
	if f, err := UniformRuntimeNoise(0, 1); err != nil || f != nil {
		t.Fatalf("zero noise should yield a nil perturbation, got %v, %v", f != nil, err)
	}
}

// TestFacadeClusterDeterministicReplay drives the engine end-to-end through
// the facade under every objective and batching policy, asserting that a
// parallel replay is bit-identical to a sequential one and that repeated
// runs agree.
func TestFacadeClusterDeterministicReplay(t *testing.T) {
	jobs := facadeStream(t, 24, 60, 21)
	interval, err := FixedIntervalPolicy(15)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AdaptiveBacklogPolicy(96, 40)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		objective ClusterObjective
		policy    ClusterBatchPolicy
	}{
		{"makespan/idle", ClusterObjective{Kind: ClusterObjectiveMakespan}, BatchOnIdle()},
		{"minsum/interval", ClusterObjective{Kind: ClusterObjectiveWeightedCompletion}, interval},
		{"combined/adaptive", ClusterObjective{Kind: ClusterObjectiveCombined, Alpha: 0.5}, adaptive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			noise, err := UniformRuntimeNoise(0.2, 21)
			if err != nil {
				t.Fatal(err)
			}
			base := ClusterConfig{
				M:            24,
				Portfolio:    ClusterPortfolio(&DEMTOptions{Seed: 21}),
				Objective:    tc.objective,
				Policy:       tc.policy,
				Reservations: []Reservation{{Name: "maint", Procs: 6, Start: 4, End: 14}},
				Perturb:      noise,
			}
			seqCfg := base
			seqCfg.Sequential = true
			seq, err := RunCluster(seqCfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunCluster(base, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatal("parallel facade replay differs from sequential replay")
			}
			again, err := RunCluster(base, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par, again) {
				t.Fatal("two facade replays differ")
			}
			if par.Metrics.Jobs != len(jobs) {
				t.Fatalf("replay completed %d of %d jobs", par.Metrics.Jobs, len(jobs))
			}
			if err := ValidateReservations(par.Schedule, base.Reservations, par.Blocked); err != nil {
				t.Fatalf("realized trace violates a reservation: %v", err)
			}
			m := par.Metrics
			if !(m.StretchP50 <= m.StretchP95+1e-9 && m.StretchP95 <= m.StretchP99+1e-9) {
				t.Fatalf("stretch percentiles out of order: %g %g %g", m.StretchP50, m.StretchP95, m.StretchP99)
			}
		})
	}
}

// TestFacadeGrid exercises the Grid* exports: heterogeneous shards, every
// routing policy by name, determinism through the facade.
func TestFacadeGrid(t *testing.T) {
	jobs := facadeStream(t, 32, 50, 33)
	for _, name := range []string{"round-robin", "least-backlog", "lower-bound", "moldability"} {
		policy, err := ParseGridRoutingPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		noise, err := UniformRuntimeNoise(0.15, 33)
		if err != nil {
			t.Fatal(err)
		}
		cfg := GridConfig{
			Clusters: []GridClusterSpec{
				{M: 8, Perturb: noise},
				{M: 16},
				{M: 32, Reservations: []Reservation{{Name: "maint", Procs: 8, Start: 2, End: 10}}},
			},
			Routing:      policy,
			AdmitBacklog: 30,
		}
		par, err := RunGrid(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		seqCfg := cfg
		seqCfg.Routing, _ = ParseGridRoutingPolicy(name)
		seqCfg.Sequential = true
		seq, err := RunGrid(seqCfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("%s: concurrent facade grid replay differs from sequential", name)
		}
		if par.Metrics.Jobs != len(jobs) || par.Metrics.Clusters != 3 {
			t.Fatalf("%s: unexpected grid metrics %+v", name, par.Metrics)
		}
	}
	if _, err := ParseGridRoutingPolicy("nonsense"); err == nil {
		t.Fatal("unknown routing policy accepted")
	}
	if _, err := NewGrid(GridConfig{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}
