package bicriteria

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeReservations exercises the reservation-aware scheduling through
// the public API.
func TestFacadeReservations(t *testing.T) {
	inst, err := GenerateWorkload(WorkloadConfig{Kind: WorkloadMixed, M: 16, N: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	reservations := []Reservation{
		{Name: "maintenance", Procs: 4, Start: 0, End: 5},
		{Name: "other", Procs: 6, Start: 8, End: 12},
	}
	res, err := ScheduleWithReservations(inst, reservations, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if err := ValidateReservations(res.Schedule, reservations, res.Blocked); err != nil {
		t.Fatalf("reservation violated: %v", err)
	}
	if res.Schedule.Makespan() < res.DEMT.Schedule.Makespan()-1e-6 {
		t.Fatalf("reserved schedule cannot finish earlier than the unreserved plan")
	}
	// Reserving the whole machine must fail.
	if _, err := ScheduleWithReservations(inst, []Reservation{{Procs: 16, Start: 0, End: 100}}, nil); err == nil {
		t.Fatalf("full-machine reservation must fail")
	}
}

// TestFacadeTraceRoundTrip exercises the SWF interchange through the public
// API: schedule a workload, export it, re-import it and schedule the
// reconstructed jobs on-line.
func TestFacadeTraceRoundTrip(t *testing.T) {
	inst, err := GenerateWorkload(WorkloadConfig{Kind: WorkloadCirne, M: 12, N: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DEMT(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	records := ScheduleToTrace(inst, res.Schedule, nil)
	if len(records) != inst.N() {
		t.Fatalf("export lost jobs: %d records for %d tasks", len(records), inst.N())
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, records); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ";") {
		t.Fatalf("missing SWF header")
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records")
	}

	// Reconstruct moldable jobs from the rigid records and replay them
	// on-line.
	tasks := TraceToTasks(back, 12, nil)
	if len(tasks) != len(back) {
		t.Fatalf("reconstruction lost jobs")
	}
	releases := TraceReleases(back)
	jobs := make([]OnlineJob, len(tasks))
	for i, task := range tasks {
		jobs[i] = OnlineJob{Task: task, Release: releases[task.ID]}
	}
	onlineRes, err := ScheduleOnline(12, jobs, DEMTOffline(nil))
	if err != nil {
		t.Fatal(err)
	}
	replay := NewInstance(12, tasks)
	if err := onlineRes.Schedule.Validate(replay, &ValidateOptions{ReleaseDates: releases}); err != nil {
		t.Fatalf("replayed schedule invalid: %v", err)
	}
}
