// On-line scenario: jobs are submitted to the front-end queue over time (as
// in Figure 1 of the paper) and scheduled with the batch framework of
// section 2.2 — jobs arriving during the current batch wait for the next
// one, and every batch is scheduled off-line with DEMT. The example prints
// the batch structure, the flow-time statistics, and contrasts the result
// with a clairvoyant off-line run of the same job set.
//
// Run with:
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bicriteria"
)

func main() {
	const (
		processors = 32
		jobCount   = 40
	)

	// Build an arrival stream: a Cirne-like workload whose jobs are
	// released by a bursty process (two bursts plus background arrivals).
	inst, err := bicriteria.GenerateWorkload(bicriteria.WorkloadConfig{
		Kind: bicriteria.WorkloadCirne,
		M:    processors,
		N:    jobCount,
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	jobs := make([]bicriteria.OnlineJob, inst.N())
	for i := range inst.Tasks {
		release := rng.Float64() * 20
		if i%3 == 0 {
			release = 0 // first burst at time 0
		} else if i%3 == 1 {
			release = 15 + rng.Float64()*5 // second burst around t=15
		}
		jobs[i] = bicriteria.OnlineJob{Task: inst.Tasks[i], Release: release}
	}

	res, err := bicriteria.ScheduleOnline(processors, jobs, bicriteria.DEMTOffline(nil))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("On-line batch scheduling of %d jobs on %d CPUs with DEMT per batch\n\n", jobCount, processors)
	for _, b := range res.Batches {
		fmt.Printf("  batch %d: starts at %6.2f, %2d jobs, makespan %6.2f\n",
			b.Index, b.Start, len(b.TaskIDs), b.Makespan)
	}
	fmt.Printf("\n  on-line makespan      : %.2f\n", res.Makespan)
	fmt.Printf("  maximum flow time     : %.2f\n", res.MaxFlow)
	fmt.Printf("  weighted completion   : %.0f\n", res.WeightedCompletion)

	// Clairvoyant comparison: if all jobs had been known (and available) at
	// time 0, a single off-line DEMT run would achieve:
	offline, err := bicriteria.DEMT(inst, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nClairvoyant off-line DEMT on the same job set (all released at 0):\n")
	fmt.Printf("  makespan %.2f, weighted completion %.0f\n",
		offline.Schedule.Makespan(), offline.Schedule.WeightedCompletion(inst))
	fmt.Printf("  (the on-line batch framework pays at most a factor ~2 on the makespan)\n")
}
