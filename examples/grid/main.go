// Grid scenario: a federation of four heterogeneous clusters (64, 32, 16
// and 16 processors) receives one bursty, heavy-tailed stream of mixed
// moldable jobs. The example replays the same stream under every routing
// policy of the meta-scheduler — round-robin, least-backlog,
// lower-bound-aware and moldability-aware — with per-cluster runtime noise
// and admission control, and compares the grid-wide metrics side by side:
// how much a load-aware front door buys over blind cycling, and how the
// moldability-aware policy keeps wide jobs on the wide cluster.
//
// Run with:
//
//	go run ./examples/grid
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bicriteria"
)

func main() {
	const (
		jobs = 160
		seed = 7
	)
	sizes := []int{64, 32, 16, 16}

	// One stream for every policy: bursts of 8 with lognormal gaps — the
	// bursty, heavy-tailed arrival pattern of real grid front doors.
	arrivals, err := bicriteria.GenerateArrivals(bicriteria.ArrivalConfig{
		Workload:     bicriteria.WorkloadConfig{Kind: bicriteria.WorkloadMixed, M: 64, N: jobs, Seed: seed},
		Rate:         6,
		BurstSize:    8,
		Interarrival: bicriteria.DistLognormal,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := bicriteria.ArrivalJobs(arrivals)
	horizon := arrivals[len(arrivals)-1].Submit
	fmt.Printf("grid scenario: %d jobs over [0, %.1f] on 4 clusters (64+32+16+16 processors)\n\n",
		jobs, horizon)

	specs := func() []bicriteria.GridClusterSpec {
		out := make([]bicriteria.GridClusterSpec, len(sizes))
		for i, m := range sizes {
			// Independent noise seed per cluster: shards disagree on how
			// wrong the user estimates are, like real machines do.
			perturb, err := bicriteria.UniformRuntimeNoise(0.15, int64(seed*100+i))
			if err != nil {
				log.Fatal(err)
			}
			out[i] = bicriteria.GridClusterSpec{M: m, Perturb: perturb}
		}
		// The big cluster has a maintenance window in the middle.
		out[0].Reservations = []bicriteria.Reservation{
			{Name: "maintenance", Procs: 16, Start: horizon / 3, End: 2 * horizon / 3},
		}
		return out
	}

	policies := []bicriteria.GridRoutingPolicy{
		bicriteria.GridRoundRobin(),
		bicriteria.GridLeastBacklog(),
		bicriteria.GridLowerBoundAware(),
		bicriteria.GridMoldabilityAware(),
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "routing policy\tmakespan\tmean stretch\tp95 stretch\tutil\tjobs per cluster")
	for _, policy := range policies {
		report, err := bicriteria.RunGrid(bicriteria.GridConfig{
			Clusters:     specs(),
			Routing:      policy,
			AdmitBacklog: 8,
		}, stream)
		if err != nil {
			log.Fatal(err)
		}
		met := report.Metrics
		spread := ""
		for i, pc := range met.PerCluster {
			if i > 0 {
				spread += "/"
			}
			spread += fmt.Sprintf("%d", pc.Jobs)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.2f\t%.2f\t%.0f%%\t%s\n",
			report.Policy, met.Makespan, met.MeanStretch, met.StretchP95, 100*met.Utilization, spread)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nEvery replay above is deterministic: rerunning this program (or running")
	fmt.Println("the federation sequentially with GridConfig.Sequential) reproduces the")
	fmt.Println("same decisions, schedules and metrics bit for bit.")
}
