// Workload comparison: a scaled-down version of the paper's Figures 3-6.
// For each of the four workload families, the example compares DEMT with
// the baselines on both criteria (normalized by the lower bounds) and
// prints one small table per family — the same qualitative picture as the
// paper: DEMT's minsum ratio is stable across families and close to the
// best, while Gang or Sequential degrade badly on some of them.
//
// Run with:
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bicriteria"
)

func main() {
	const (
		processors = 64
		tasks      = 60
		runs       = 3
	)
	kinds := []bicriteria.WorkloadKind{
		bicriteria.WorkloadWeaklyParallel,
		bicriteria.WorkloadHighlyParallel,
		bicriteria.WorkloadMixed,
		bicriteria.WorkloadCirne,
	}

	for _, kind := range kinds {
		res, err := bicriteria.RunExperiment(bicriteria.ExperimentConfig{
			Workload:   kind,
			M:          processors,
			TaskCounts: []int{tasks},
			Runs:       runs,
			Seed:       2024,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s workload (%d tasks on %d CPUs, %d runs) ===\n", kind, tasks, processors, runs)
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "algorithm\tminsum ratio\t(min..max)\tCmax ratio\t(min..max)")
		for _, series := range res.Series {
			p := series.Points[0]
			fmt.Fprintf(w, "%s\t%.2f\t(%.2f..%.2f)\t%.2f\t(%.2f..%.2f)\n",
				series.Algorithm,
				p.MinsumRatio.Mean, p.MinsumRatio.Min, p.MinsumRatio.Max,
				p.CmaxRatio.Mean, p.CmaxRatio.Min, p.CmaxRatio.Max)
		}
		w.Flush()
		fmt.Println()
	}
	fmt.Println("Compare with Figures 3-6 of the paper: DEMT stays around 2 on both")
	fmt.Println("criteria for every family, Gang collapses on weakly parallel tasks and")
	fmt.Println("Sequential on highly parallel ones.")
}
