// Reservations: the first "on-going work" listed in the paper's concluding
// remarks is the reservation of nodes, which temporarily reduces the size
// of the cluster. This example schedules a workload around two reserved
// windows (a maintenance slot and an advance reservation for another user),
// checks that no job touches a reserved node, and finally exports the
// resulting run as an SWF trace fragment.
//
// Run with:
//
//	go run ./examples/reservations
package main

import (
	"fmt"
	"log"
	"os"

	"bicriteria"
)

func main() {
	const processors = 32
	inst, err := bicriteria.GenerateWorkload(bicriteria.WorkloadConfig{
		Kind: bicriteria.WorkloadMixed,
		M:    processors,
		N:    30,
		Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	reservations := []bicriteria.Reservation{
		{Name: "maintenance", Procs: 8, Start: 0, End: 6},
		{Name: "advance-reservation", Procs: 16, Start: 10, End: 14},
	}

	res, err := bicriteria.ScheduleWithReservations(inst, reservations, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		log.Fatalf("invalid schedule: %v", err)
	}
	if err := bicriteria.ValidateReservations(res.Schedule, reservations, res.Blocked); err != nil {
		log.Fatalf("a job entered a reserved window: %v", err)
	}

	fmt.Printf("Scheduling %d jobs on %d CPUs around %d reservations\n\n", inst.N(), processors, len(reservations))
	for i, r := range reservations {
		fmt.Printf("  %-22s blocks %2d CPUs during [%5.1f, %5.1f) -> nodes %v...\n",
			r.Name, r.Procs, r.Start, r.End, res.Blocked[i][:min(3, len(res.Blocked[i]))])
	}

	unreserved := res.DEMT.Schedule
	fmt.Printf("\n  makespan without reservations : %.2f\n", unreserved.Makespan())
	fmt.Printf("  makespan with reservations    : %.2f\n", res.Schedule.Makespan())
	fmt.Printf("  weighted completion without   : %.0f\n", unreserved.WeightedCompletion(inst))
	fmt.Printf("  weighted completion with      : %.0f\n", res.Schedule.WeightedCompletion(inst))
	fmt.Printf("  (reservations can only delay the jobs; the plan stays feasible)\n\n")

	// Export the run as an SWF fragment (all jobs submitted at time 0).
	records := bicriteria.ScheduleToTrace(inst, res.Schedule, nil)
	fmt.Printf("SWF export of the first jobs:\n")
	if err := bicriteria.WriteTrace(os.Stdout, records[:min(5, len(records))]); err != nil {
		log.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
