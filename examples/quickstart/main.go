// Quickstart: generate a small moldable workload, schedule it with the DEMT
// bi-criteria algorithm, compare both criteria with their lower bounds and
// print a Gantt chart.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bicriteria"
)

func main() {
	// A small cluster and a Cirne-Berman style workload (the most realistic
	// model of the paper's evaluation).
	inst, err := bicriteria.GenerateWorkload(bicriteria.WorkloadConfig{
		Kind: bicriteria.WorkloadCirne,
		M:    16,
		N:    20,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run the paper's algorithm with its default options.
	res, err := bicriteria.DEMT(inst, nil)
	if err != nil {
		log.Fatal(err)
	}

	metrics := res.Schedule.ComputeMetrics(inst)
	cmaxLB := bicriteria.MakespanLowerBound(inst)
	minsumLB, err := bicriteria.MinsumLowerBoundLP(inst, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DEMT on %d tasks / %d processors\n", inst.N(), inst.M)
	fmt.Printf("  approximate C*max used for the batches: %.2f (K=%d, %d batches)\n",
		res.CmaxEstimate, res.K, len(res.Batches))
	fmt.Printf("  makespan   : %.2f   (lower bound %.2f, ratio %.2f)\n",
		metrics.Makespan, cmaxLB, metrics.Makespan/cmaxLB)
	fmt.Printf("  sum w_i C_i: %.2f   (LP lower bound %.2f, ratio %.2f)\n",
		metrics.WeightedCompletion, minsumLB.Value, metrics.WeightedCompletion/minsumLB.Value)
	fmt.Printf("  utilization: %.0f%%\n\n", 100*metrics.Utilization)

	fmt.Println("Batch structure (before compaction):")
	for _, b := range res.Batches {
		fmt.Printf("  batch %d: window [%.2f, %.2f), %d tasks, %d processors, weight %.1f\n",
			b.Index, b.Start, b.End, len(b.TaskIDs), b.UsedProcessors, b.SelectedWeight)
	}
	fmt.Println()
	fmt.Print(res.Schedule.Gantt(96))
}
