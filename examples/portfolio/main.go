// Portfolio scenario: a 64-processor cluster receives a bursty Poisson
// stream of mixed moldable jobs. The example replays the stream through the
// event-driven cluster engine three times — committing every batch to DEMT
// alone, to the best list baseline alone, and to the winner of the full
// concurrent portfolio — and shows how the portfolio tracks or beats the
// best single algorithm on every metric. A maintenance reservation and
// noisy runtimes make the replay realistic; reservations are validated
// against the realized trace.
//
// Run with:
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"bicriteria"
)

func main() {
	const (
		processors = 64
		jobs       = 120
		seed       = 11
	)
	arrivals, err := bicriteria.GenerateArrivals(bicriteria.ArrivalConfig{
		Workload:  bicriteria.WorkloadConfig{Kind: bicriteria.WorkloadMixed, M: processors, N: jobs, Seed: seed},
		Rate:      4,
		BurstSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := bicriteria.ArrivalJobs(arrivals)
	horizon := arrivals[len(arrivals)-1].Submit
	fmt.Printf("portfolio scenario: %d jobs over [0, %.1f] on %d processors, bursts of 8\n\n",
		jobs, horizon, processors)

	// A 16-processor maintenance window in the middle of the stream.
	reservations := []bicriteria.Reservation{
		{Name: "maintenance", Procs: 16, Start: horizon / 3, End: 2 * horizon / 3},
	}

	perturb, err := bicriteria.UniformRuntimeNoise(0.15, seed)
	if err != nil {
		log.Fatal(err)
	}
	base := bicriteria.ClusterConfig{
		M:            processors,
		Objective:    bicriteria.ClusterObjective{Kind: bicriteria.ClusterObjectiveCombined, Alpha: 0.5},
		Reservations: reservations,
		Perturb:      perturb,
	}

	runs := []struct {
		name      string
		portfolio []bicriteria.ClusterAlgorithm
	}{
		{"DEMT alone", []bicriteria.ClusterAlgorithm{bicriteria.ClusterDEMTAlgorithm(nil)}},
		{"best list baseline", bicriteria.ClusterPortfolio(nil)[3:4]}, // list-saf
		{"full portfolio", bicriteria.ClusterPortfolio(nil)},
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "commit rule\tbatches\tmakespan\tsum wC\tmax flow\tmean stretch\tutilization")
	var full *bicriteria.ClusterReport
	for _, r := range runs {
		cfg := base
		cfg.Portfolio = r.portfolio
		report, err := bicriteria.RunCluster(cfg, stream)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		met := report.Metrics
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.2f\t%.2f\t%.0f%%\n",
			r.name, met.Batches, met.Makespan, met.WeightedCompletion, met.MaxFlow, met.MeanStretch, 100*met.Utilization)
		if r.name == "full portfolio" {
			full = report
		}
	}
	w.Flush()

	// The realized trace must never touch the reserved processors.
	if err := bicriteria.ValidateReservations(full.Schedule, reservations, full.Blocked); err != nil {
		log.Fatalf("reservation violated: %v", err)
	}
	fmt.Printf("\nmaintenance window respected by the realized trace (%d processors blocked)\n",
		reservations[0].Procs)

	names := make([]string, 0, len(full.Metrics.Wins))
	for name := range full.Metrics.Wins {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("full-portfolio winner counts:")
	for _, name := range names {
		fmt.Printf("  %-10s %d\n", name, full.Metrics.Wins[name])
	}
}
