// Cluster scenario: an Icluster2-like machine (104 bi-processor nodes, i.e.
// 208 CPUs — the platform on which the paper's algorithm was deployed)
// receives a mixed batch of jobs. The example compares the DEMT bi-criteria
// algorithm against every baseline of the paper on both criteria, then
// replays the DEMT schedule through the discrete-event simulator with noisy
// execution times to see how robust the plan is to inexact user estimates.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"bicriteria"
)

func main() {
	const processors = 208 // 104 bi-processor nodes
	inst, err := bicriteria.GenerateWorkload(bicriteria.WorkloadConfig{
		Kind: bicriteria.WorkloadMixed,
		M:    processors,
		N:    150,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	cmaxLB := bicriteria.MakespanLowerBound(inst)
	minsumLB := bicriteria.MinsumLowerBoundFast(inst)

	type entry struct {
		name string
		run  func() (*bicriteria.Schedule, error)
	}
	var demtResult *bicriteria.DEMTResult
	algorithms := []entry{
		{"DEMT (bi-criteria)", func() (*bicriteria.Schedule, error) {
			res, err := bicriteria.DEMT(inst, nil)
			if err != nil {
				return nil, err
			}
			demtResult = res
			return res.Schedule, nil
		}},
		{"Gang", func() (*bicriteria.Schedule, error) { return bicriteria.Gang(inst) }},
		{"Sequential LPT", func() (*bicriteria.Schedule, error) { return bicriteria.SequentialLPT(inst) }},
		{"List (shelf order)", func() (*bicriteria.Schedule, error) {
			return bicriteria.ListScheduling(inst, bicriteria.ListShelfOrder)
		}},
		{"List (weighted LPT)", func() (*bicriteria.Schedule, error) {
			return bicriteria.ListScheduling(inst, bicriteria.ListWeightedLPT)
		}},
		{"List (smallest area)", func() (*bicriteria.Schedule, error) {
			return bicriteria.ListScheduling(inst, bicriteria.ListSmallestAreaFirst)
		}},
	}

	fmt.Printf("Icluster2-like scenario: %d CPUs, %d moldable jobs (mixed workload)\n", processors, inst.N())
	fmt.Printf("lower bounds: makespan %.2f, weighted minsum %.2f\n\n", cmaxLB, minsumLB)

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tmakespan\tCmax ratio\tsum wC\tminsum ratio\tutilization")
	for _, a := range algorithms {
		s, err := a.run()
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		if err := s.Validate(inst, nil); err != nil {
			log.Fatalf("%s produced an invalid schedule: %v", a.name, err)
		}
		m := s.ComputeMetrics(inst)
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.0f\t%.2f\t%.0f%%\n",
			a.name, m.Makespan, m.Makespan/cmaxLB, m.WeightedCompletion, m.WeightedCompletion/minsumLB, 100*m.Utilization)
	}
	w.Flush()

	// Robustness: replay the DEMT plan with actual runtimes up to +-30% off
	// the user estimates.
	rng := rand.New(rand.NewSource(3))
	simRes, err := bicriteria.Simulate(inst, demtResult.Schedule, &bicriteria.SimulationOptions{
		Perturb: func(taskID int, planned float64) float64 {
			return planned * (0.7 + 0.6*rng.Float64())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	planned := demtResult.Schedule.ComputeMetrics(inst)
	fmt.Printf("\nReplaying the DEMT plan with noisy runtimes (+-30%%):\n")
	fmt.Printf("  planned makespan %.2f -> realized %.2f (%d tasks delayed)\n",
		planned.Makespan, simRes.Makespan, simRes.Delayed)
	fmt.Printf("  planned sum wC   %.0f -> realized %.0f\n",
		planned.WeightedCompletion, simRes.WeightedCompletion)
	fmt.Printf("  realized utilization %.0f%%\n", 100*simRes.Utilization(processors))
}
