// Command scenario demonstrates the Scenario API v2: one declarative,
// versioned spec that compiles to any layer of the stack.
//
// The program builds a grid scenario with functional options, compiles
// it, streams routing decisions and batch commits through an Observer
// while the replay runs (with a cancellable context), prints the unified
// report, and round-trips the spec through its JSON form — the same file
// format `bicrit run` consumes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bicriteria"
)

func main() {
	// One spec for the whole experiment: a three-shard grid, a bursty
	// mixed workload, adaptive batching, noise, and a pinch of faults.
	scn, err := bicriteria.NewScenario(
		bicriteria.ScenarioWithName("quickstart-grid"),
		bicriteria.ScenarioWithSeed(7),
		bicriteria.ScenarioWithClusters(32, 16, 16),
		bicriteria.ScenarioWithWorkload("mixed", 80),
		bicriteria.ScenarioWithArrivals(5, 4),
		bicriteria.ScenarioWithBatchPolicy("adaptive", 0, 0, 0),
		bicriteria.ScenarioWithRouting("least-backlog", 40),
		bicriteria.ScenarioWithNoise(0.15),
		bicriteria.ScenarioWithFaults(bicriteria.ScenarioFaults{MTBF: 40, Repair: 8}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Compile selects the engine from the topology (grid here) and
	// validates everything eagerly: a bad spec dies now, with the exact
	// field path, not mid-replay.
	runner, err := bicriteria.Compile(scn)
	if err != nil {
		log.Fatal(err)
	}

	// The Observer streams events while the replay runs.
	migrations := 0
	runner.Observe(bicriteria.ScenarioObserver{
		Batch: func(shard int, br bicriteria.ClusterBatchReport) {
			if br.Index == 0 {
				fmt.Printf("shard %d committed its first batch (%d jobs, winner %s)\n",
					shard, len(br.Jobs), br.Winner)
			}
		},
		Migration: func(d bicriteria.GridDecision) { migrations++ },
	})

	// Run takes a context: cancel it and the replay aborts between
	// batches, no deadlock, errors.Is(err, context.Canceled).
	rep, err := runner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmakespan %.2f  weighted completion %.2f  utilization %.1f%%  migrations %d\n\n",
		rep.Makespan(), rep.WeightedCompletion(), 100*rep.Utilization(), migrations)

	// The same spec round-trips through JSON — the file `bicrit run`
	// consumes.
	dir, err := os.MkdirTemp("", "scenario")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "scenario.json")
	if err := bicriteria.SaveScenario(path, scn); err != nil {
		log.Fatal(err)
	}
	loaded, err := bicriteria.LoadScenario(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved and reloaded scenario %q (version %d, topology %s)\n",
		loaded.Name, loaded.Version, loaded.Topology)
	fmt.Println("replay it anytime with: bicrit run", path)

	// Validation errors carry field paths.
	bad := scn
	bad.Clusters = append([]bicriteria.ScenarioCluster(nil), scn.Clusters...)
	bad.Clusters[2] = bicriteria.ScenarioCluster{Machines: -1}
	if _, err := bicriteria.Compile(bad); err != nil {
		fmt.Println("compile-time validation:", err)
	}
}
