// Serve scenario: the grid as a live service instead of an offline
// replay. The example boots a scheduler service around a three-cluster
// federation with a large wall-clock speedup, plays a bursty workload
// against its HTTP API from several concurrent clients (watching the
// token bucket push back with Retry-After), polls a job through its
// lifecycle, and finally drains the service — printing the final grid
// report, which is by construction identical to an offline replay of the
// exact stream the clients produced.
//
// Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"bicriteria"
)

func main() {
	// A federation of three clusters behind a live front door: 1000x
	// speedup means one wall-clock millisecond is one virtual second.
	server, err := bicriteria.NewServeServer(bicriteria.ServeConfig{
		Grid: bicriteria.GridConfig{
			Clusters: []bicriteria.GridClusterSpec{{M: 32}, {M: 16}, {M: 16}},
			Routing:  bicriteria.GridLeastBacklog(),
		},
		Speedup:         1000,
		SubmitRate:      500, // jobs per wall-clock second
		SubmitBurst:     64,
		RefreshInterval: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("scheduler service live at %s (3 clusters, 64 processors)\n\n", ts.URL)

	// A bursty, heavy-tailed workload, split over four concurrent clients
	// submitting bulk chunks — millions of users in miniature.
	arrivals, err := bicriteria.GenerateArrivals(bicriteria.ArrivalConfig{
		Workload:     bicriteria.WorkloadConfig{Kind: bicriteria.WorkloadMixed, M: 32, N: 120, Seed: 42},
		Rate:         8,
		BurstSize:    6,
		Interarrival: bicriteria.DistLognormal,
	})
	if err != nil {
		log.Fatal(err)
	}
	const clients = 4
	var wg sync.WaitGroup
	var retried int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(arrivals); i += clients {
				task := arrivals[i].Task
				spec := bicriteria.ServeJobSpec{ID: task.ID, Weight: task.Weight, Times: task.Times}
				for {
					body, _ := json.Marshal(spec)
					resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						log.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusTooManyRequests {
						break
					}
					// The front door said back off: honor Retry-After.
					mu.Lock()
					retried++
					mu.Unlock()
					time.Sleep(25 * time.Millisecond)
				}
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("submitted %d jobs from %d concurrent clients (%d rate-limited retries)\n",
		len(arrivals), clients, retried)

	// Live observability: one job's lifecycle and the service metrics.
	var status bicriteria.ServeJobStatus
	getJSON(ts.URL+fmt.Sprintf("/jobs/%d", arrivals[0].Task.ID), &status)
	fmt.Printf("job %d: state=%s cluster=%d release=%.1f\n",
		status.ID, status.State, status.Cluster, status.Release)
	var metrics struct {
		VirtualNow float64                  `json:"virtual_now"`
		JobStates  map[string]int           `json:"job_states"`
		Counters   bicriteria.ServeCounters `json:"counters"`
	}
	getJSON(ts.URL+"/metrics", &metrics)
	fmt.Printf("virtual time %.1f, job states %v\n", metrics.VirtualNow, metrics.JobStates)
	fmt.Printf("counters: %d submitted, %d rate-limited\n\n",
		metrics.Counters.Submitted, metrics.Counters.RejectedRate)

	// Graceful drain: the full deterministic replay of everything the
	// clients submitted.
	resp, err := http.Post(ts.URL+"/drain", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	var final bicriteria.ServeFinalReport
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	met := final.Metrics
	fmt.Printf("drained %d jobs at virtual time %.1f (policy %s)\n", final.Jobs, final.VirtualNow, final.Policy)
	fmt.Printf("  makespan %.1f   weighted completion %.1f\n", met.Makespan, met.WeightedCompletion)
	fmt.Printf("  stretch mean/p95/p99  %.2f / %.2f / %.2f\n", met.MeanStretch, met.StretchP95, met.StretchP99)
	fmt.Printf("  utilization %.1f%%\n", 100*met.Utilization)
	for _, pc := range met.PerCluster {
		fmt.Printf("  cluster %d: m=%d jobs=%d batches=%d\n", pc.Index, pc.M, pc.Jobs, pc.Batches)
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
