// Fault-injection scenario: the same bursty job stream replays through a
// three-cluster grid federation under increasingly hostile seeded fault
// plans — no faults, independent node crashes, node crashes plus
// correlated group failures, and finally whole-shard outages on top. Jobs
// killed mid-run are resubmitted (restart vs checkpoint-credit replans),
// queued jobs of a dark shard migrate through the router, and the table
// shows what the faults cost: makespan growth, stretch inflation, kills,
// migrations and recoveries.
//
// Every scenario is deterministic: the fault plan is a pure function of
// its seed, a zero-fault plan reproduces the fault-free replay bit for
// bit, and concurrent replays equal sequential ones even mid-disaster.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bicriteria"
)

func main() {
	const (
		jobs = 150
		seed = 11
		rate = 10.0
	)
	sizes := []int{16, 8, 8}

	arrivals, err := bicriteria.GenerateArrivals(bicriteria.ArrivalConfig{
		Workload:  bicriteria.WorkloadConfig{Kind: bicriteria.WorkloadMixed, M: 16, N: jobs, Seed: seed},
		Rate:      rate,
		BurstSize: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	stream := bicriteria.ArrivalJobs(arrivals)

	// Size the fault horizon from the stream: last submission plus the
	// serial work spread over the machine.
	maxRelease, work := 0.0, 0.0
	for _, a := range arrivals {
		if a.Submit > maxRelease {
			maxRelease = a.Submit
		}
		w, _ := a.Task.MinWork()
		work += w
	}
	horizon := bicriteria.SuggestFaultHorizon(maxRelease, work, 32)
	fmt.Printf("fault scenario: %d jobs on 3 clusters (16+8+8 processors), fault horizon %.0f\n\n", jobs, horizon)

	base := bicriteria.FaultsConfig{
		Seed:     seed,
		Horizon:  horizon,
		Clusters: sizes,
	}
	scenarios := []struct {
		name   string
		cfg    bicriteria.FaultsConfig
		replan bicriteria.ClusterReplanPolicy
	}{
		{"no faults", base, bicriteria.ClusterReplanPolicy{}},
		{"node crashes (restart)", with(base, func(c *bicriteria.FaultsConfig) {
			c.MTBF, c.RepairMean = 15, 5
		}), bicriteria.ClusterReplanPolicy{Kind: bicriteria.ClusterReplanRestart}},
		{"node crashes (checkpoint)", with(base, func(c *bicriteria.FaultsConfig) {
			c.MTBF, c.RepairMean = 15, 5
		}), bicriteria.ClusterReplanPolicy{Kind: bicriteria.ClusterReplanCheckpoint}},
		{"+ correlated groups", with(base, func(c *bicriteria.FaultsConfig) {
			c.MTBF, c.RepairMean = 15, 5
			c.CorrelatedMTBF, c.CorrelatedSize = 40, 4
		}), bicriteria.ClusterReplanPolicy{Kind: bicriteria.ClusterReplanCheckpoint}},
		{"+ shard outages", with(base, func(c *bicriteria.FaultsConfig) {
			c.MTBF, c.RepairMean = 15, 5
			c.CorrelatedMTBF, c.CorrelatedSize = 40, 4
			c.ShardMTBF, c.ShardRepairMean = 60, 15
		}), bicriteria.ClusterReplanPolicy{Kind: bicriteria.ClusterReplanCheckpoint}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\twindows\tmakespan\tp95 stretch\tkilled\tmigrated\trecovered\tlost")
	for _, sc := range scenarios {
		plan, err := bicriteria.GenerateFaults(sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg := bicriteria.GridConfig{
			Clusters: clusterSpecs(sizes, seed),
			Routing:  bicriteria.GridLeastBacklog(),
			Replan:   sc.replan,
		}
		windows := 0
		if !plan.Empty() {
			cfg.Faults = plan
			windows = len(plan.Nodes) + len(plan.Shards)
		}
		report, err := bicriteria.RunGrid(cfg, stream)
		if err != nil {
			log.Fatal(err)
		}
		met := report.Metrics
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%d\t%d\t%d\t%d\n",
			sc.name, windows, met.Makespan, met.StretchP95, met.Killed, met.Migrated, met.Recovered, met.Lost)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nEvery killed job above was rescheduled (lost=0 unless a job outlived its")
	fmt.Println("retry budget): the engines replan around the repair windows they know")
	fmt.Println("about, the router drains dark shards, and the whole cascade is")
	fmt.Println("deterministic — same seed, same disaster, same recovery, bit for bit.")
}

// with copies the base config and applies one mutation.
func with(base bicriteria.FaultsConfig, f func(*bicriteria.FaultsConfig)) bicriteria.FaultsConfig {
	cfg := base
	f(&cfg)
	return cfg
}

// clusterSpecs builds the shard specs with per-shard runtime noise.
func clusterSpecs(sizes []int, seed int64) []bicriteria.GridClusterSpec {
	out := make([]bicriteria.GridClusterSpec, len(sizes))
	for i, m := range sizes {
		perturb, err := bicriteria.UniformRuntimeNoise(0.15, seed*100+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		out[i] = bicriteria.GridClusterSpec{M: m, Perturb: perturb}
	}
	return out
}
