package bicriteria

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: generate a workload, schedule it with DEMT and every baseline,
// compare against the lower bounds, simulate the execution and round-trip
// the instance through JSON.
func TestFacadeEndToEnd(t *testing.T) {
	inst, err := GenerateWorkload(WorkloadConfig{Kind: WorkloadCirne, M: 24, N: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	res, err := DEMT(inst, &DEMTOptions{Shuffles: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("DEMT schedule invalid: %v", err)
	}

	cmaxLB := MakespanLowerBound(inst)
	if res.Schedule.Makespan() < cmaxLB-1e-6 {
		t.Fatalf("makespan below its lower bound")
	}
	fastLB := MinsumLowerBoundFast(inst)
	if res.Schedule.WeightedCompletion(inst) < fastLB-1e-6 {
		t.Fatalf("minsum below its fast lower bound")
	}
	lpLB, err := MinsumLowerBoundLP(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.WeightedCompletion(inst) < lpLB.Value-1e-6 {
		t.Fatalf("minsum below the LP lower bound")
	}
	if lpLB.Value < fastLB-1e-6 {
		t.Fatalf("LP bound should dominate the fast bound (it takes the max)")
	}

	for name, run := range map[string]func(*Instance) (*Schedule, error){
		"gang":       Gang,
		"sequential": SequentialLPT,
		"list-shelf": func(i *Instance) (*Schedule, error) { return ListScheduling(i, ListShelfOrder) },
		"list-saf":   func(i *Instance) (*Schedule, error) { return ListScheduling(i, ListSmallestAreaFirst) },
		"list-wlpt":  func(i *Instance) (*Schedule, error) { return ListScheduling(i, ListWeightedLPT) },
	} {
		s, err := run(inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(inst, nil); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		if s.Makespan() < cmaxLB-1e-6 {
			t.Fatalf("%s: makespan below the lower bound", name)
		}
	}

	simRes, err := Simulate(inst, res.Schedule, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.Makespan-res.Schedule.Makespan()) > 1e-6 {
		t.Fatalf("simulated makespan differs from the plan")
	}

	var buf bytes.Buffer
	if err := WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != inst.N() || back.M != inst.M {
		t.Fatalf("JSON round trip changed the instance shape")
	}
}

func TestFacadeTaskHelpers(t *testing.T) {
	seqTask := NewSequentialTask(0, 1, 2)
	rigid := NewRigidTask(1, 2, 3, 4)
	perfect := NewPerfectlyMoldableTask(2, 1, 12, 4)
	inst := NewInstance(4, []Task{seqTask, rigid, perfect})
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.Tasks[2].Time(4) != 3 {
		t.Fatalf("perfectly moldable task should have p(4)=3")
	}
	res, err := DualApproximation(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("dual approximation schedule invalid: %v", err)
	}
}

func TestFacadeOnline(t *testing.T) {
	jobs := []OnlineJob{
		{Task: NewSequentialTask(0, 1, 2), Release: 0},
		{Task: NewPerfectlyMoldableTask(1, 2, 8, 4), Release: 1},
		{Task: NewSequentialTask(2, 3, 1), Release: 5},
	}
	res, err := ScheduleOnline(4, jobs, DEMTOffline(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) < 2 {
		t.Fatalf("expected at least 2 batches")
	}
	if res.Makespan <= 0 {
		t.Fatalf("missing makespan")
	}
}

func TestFacadeExperiment(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Workload:   WorkloadMixed,
		M:          12,
		TaskCounts: []int{6, 12},
		Runs:       2,
		Seed:       5,
		Algorithms: []ExperimentAlgorithm{"demt", "saf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatExperiment(res)
	if !strings.Contains(out, "demt") || !strings.Contains(out, "saf") {
		t.Fatalf("experiment output missing algorithms:\n%s", out)
	}
}

func TestFacadeParseWorkloadKind(t *testing.T) {
	k, err := ParseWorkloadKind("cirne")
	if err != nil || k != WorkloadCirne {
		t.Fatalf("ParseWorkloadKind failed: %v %v", k, err)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	inst, err := GenerateWorkload(WorkloadConfig{Kind: WorkloadHighlyParallel, M: 8, N: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/w.json"
	if err := SaveInstance(path, inst); err != nil {
		t.Fatal(err)
	}
	back, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 6 {
		t.Fatalf("loaded instance wrong")
	}
}
