module bicriteria

go 1.24
