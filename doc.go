// Package bicriteria is a Go implementation of the bi-criteria moldable-job
// scheduling algorithm of Dutot, Eyraud, Mounié and Trystram ("Bi-criteria
// Algorithm for Scheduling Jobs on Cluster Platforms", SPAA 2004), together
// with every substrate the paper relies on: the moldable-task model, the
// dual-approximation makespan machinery, list-scheduling engines, the
// baseline algorithms of the paper's evaluation, the LP-relaxation lower
// bound on the weighted sum of completion times, the synthetic workload
// generators, an experiment harness reproducing the paper's figures, an
// on-line batch framework, a discrete-event cluster simulator and an
// event-driven cluster engine that batches an arrival stream under
// pluggable policies and schedules every batch with a concurrent algorithm
// portfolio.
//
// The portfolio can also race (the ClusterRacing config and the "racing"
// scenario block): members launch under one cancellable context that
// threads through the DEMT phase loops and the baselines' list loops, and
// as soon as a candidate is provably within a configurable factor of the
// batch's certified lower bound, every member launched after it is
// cancelled mid-flight. A seeded bandit-style selector biases the launch
// order toward recent winners. The cut is decided by launch position, not
// finish time, so racing replays stay byte-identical between concurrent
// and sequential runs; a cutoff factor of 1 (or 0) disables racing and
// reproduces the non-racing engine exactly. Cut-off members surface as
// bicrit_portfolio_cancelled_total / cutoff_hits counters, per-batch
// flight-recorder provenance (bicrit explain), and the PortfolioRace
// benchmark of the perf suite.
//
// On top of the single-cluster engine sits a sharded grid federation
// (internal/grid, exported as the Grid* identifiers): N independent
// cluster engines with heterogeneous sizes, reservations and noise seeds
// run as concurrent shards behind a meta-scheduler that routes one arrival
// stream under pluggable policies (round-robin, least-backlog,
// lower-bound-aware, moldability-aware) with bounded dispatch queues and
// per-cluster admission control. Grid replays are deterministic: a
// concurrent run is bit-identical to a sequential one. See examples/grid
// for a complete program.
//
// The serve layer (internal/serve, exported as the Serve* identifiers)
// runs that grid as a live service: a long-running daemon with a
// concurrent HTTP submission API (POST /jobs, GET /jobs/{id},
// GET /metrics, GET /healthz, POST /drain), token-bucket rate limiting
// and virtual-backlog admission control (429 + Retry-After), a wall-clock
// pacer mapping real time onto simulated event time, a job registry
// tracking queued through done states, periodic snapshots with
// restore-on-restart, and a graceful drain whose final report is
// identical to an offline replay of the same submission stream. See
// cmd/bicrit-serve and examples/serve.
//
// The faults layer (internal/faults, exported as the Faults* identifiers)
// injects deterministic failures through the whole stack: a seeded
// generator draws node crash/repair windows from a Weibull MTBF model
// (plus correlated group failures and whole-shard outages), the simulator
// kills jobs caught by a crash, cluster engines re-enqueue and replan them
// (restart or checkpoint-credit), the grid router drains dark shards as
// policy-aware migrations, and the serve layer surfaces a resubmitted job
// state with fault counters in /metrics. An empty plan reproduces the
// fault-free behaviour byte for byte, and faulty concurrent replays stay
// bit-identical to sequential ones — invariants the property, golden and
// determinism stress tests pin permanently. See examples/faults.
//
// The scenario layer (internal/scenario, exported as the Scenario*
// identifiers) is the composable front door over all of the above: one
// versioned, declarative Scenario spec — workload and arrivals, topology
// (single cluster or grid), batch and routing policies, objectives,
// faults, replanning and service pacing — that Compile turns into a
// Runner for whichever engine the topology needs. Runners accept a
// context (cancellation threads into every batch loop), stream batch,
// routing, kill and migration events through an Observer, and return one
// unified Report. Scenarios round-trip through versioned JSON
// (Save/LoadScenario, unknown fields rejected), the cmd/bicrit CLI
// consumes scenario files directly (run | serve | gen), and the legacy
// CLIs are thin flag-to-Scenario shims whose outputs the golden tests pin
// byte for byte. Configuration errors everywhere are *ValidationError
// values naming the offending field path ("clusters[2].machines"), raised
// eagerly — before any goroutine spawns. See examples/scenario.
//
// The observability layer (internal/obs, exported as the Metrics*,
// Prom* and Trace* identifiers) instruments all of the above without
// adding a dependency: a Prometheus text-format registry (counters,
// gauges, histograms sharing internal/stats' log-spaced bucket
// geometry) that the cluster engine, the grid federation and the serve
// layer publish wall-clock timings into (per-algorithm portfolio
// latency, DEMT phase times, batch planning, stream routing), served on
// GET /metrics.prom next to the JSON /metrics and pinned valid by a
// format-parsing golden test; a trace sink fed by the scenario Observer
// that records every batch, routing decision, kill, migration and drain
// as structured events stamped with simulated time and renders them as
// JSONL or Chrome trace-event JSON (one track per cluster, viewable in
// perfetto) — byte-identical across concurrent and sequential seeded
// replays; and net/http/pprof behind the CLIs' -debug-addr flag, off
// the public API port. Wall-clock measurements flow only into metrics,
// never into scheduling decisions or traces, so the bit-identical
// replay discipline is untouched. bicrit run -trace out.json (or a
// trace block in the scenario spec) activates tracing; bicrit
// -version, GET /version and the bicrit_build_info gauge report
// buildinfo.Version.
//
// The flight recorder (internal/flight, exported as the Flight*
// identifiers) turns the same event stream into per-job explanations:
// one timeline per job — submitted, routed, batched, planned, started,
// killed/resubmitted, done — carrying the "why" of every stage (the
// per-shard routing verdicts, the winning portfolio algorithm, the
// chosen allotment, the batch's makespan lower bound). Timelines sort
// under a total order, so concurrent and sequential replays render byte
// for byte the same; bicrit run -flight trace.jsonl records a trace,
// bicrit explain renders a job's timeline from a trace or by replaying
// a scenario file, and the live service serves GET /jobs/{id}/timeline
// rebuilt after every refresh (final after a drain).
//
// The SLO engine (internal/slo, exported as the SLO* identifiers)
// evaluates a versioned "slo" scenario block over replay outcomes: a
// per-job deadline anchored to the paper's reference value (release +
// deadline_factor times the job's own lower bound pmin), an overall
// miss budget with an optional trailing burn-rate window, and
// percentile targets on stretch and wait. EvaluateSLO is a
// deterministic pure function, so concurrent replays report
// bit-identical summaries; reports gain an slo section, the service
// answers GET /alerts, the bicrit_slo_* gauges ride the Prometheus
// exposition and bicrit top renders an ALERTS section from them.
// Structured logging (NewLogger, log/slog behind -log-level/-log-json
// on bicrit run and bicrit serve) emits request-stamped access logs,
// admission rejections, snapshot/drain lifecycle and batch summaries to
// stderr — silent by default, so golden outputs never change.
//
// The perf observatory (internal/perf) closes the loop from
// instrumentation to regression control: a named benchmark suite drives
// every instrumented hot path — DEMT's knapsack and compaction phases,
// each portfolio algorithm, batch planning with and without portfolio
// racing (PortfolioRace vs BatchPlan), the cluster replay, the
// grid federation at 1/4/8 shards, the serve layer's bulk HTTP ingest
// and scenario compilation — under the standard testing harness, and
// records the measurements as versioned BENCH trajectories (commit, Go
// version, GOMAXPROCS, ns/op + allocs/op + B/op). bicrit bench runs
// the suite (-list, -run for subsets), bicrit bench -compare old.json
// -gate 1.25 diffs against a previous trajectory and fails on any
// benchmark whose ns/op regressed past the threshold or disappeared —
// the gate CI runs on every push against the previous run's artifact.
// bicrit top is the live counterpart: it polls a running service's
// GET /metrics.prom, re-parses each scrape through the validating
// parser, and renders counter rates and histogram quantiles
// (estimated from the cumulative buckets) as a dependency-free
// terminal dashboard.
//
// The replay invariants are enforced statically, not just tested:
// tools/lint (a separate module, so the root module's dependency graph
// stays empty) ships bicrit-lint, a multichecker with five repo-specific
// analyzers — nowallclock (deterministic packages never read the wall
// clock), seededrand (no draws from math/rand's process-wide source),
// maprange (no map-iteration order leaking into observable state),
// ctxflow (exported Run*/Replay* entry points accept a context.Context
// and no root context is minted mid-stack) and wirefields (every
// exported field of a wire struct carries an explicit json tag). A
// finding fails CI; the only sanctioned suppression is a reasoned
// //lint:allow <analyzer> <reason> directive on the offending line. See
// the README's "Static guarantees" section.
//
// The root package is a thin facade over the internal packages: it exposes
// the task and schedule model, the DEMT scheduler, the baselines, the lower
// bounds, the workload generators, the simulator and the scenario system
// under one import path.
//
// # Quick start
//
//	inst, _ := bicriteria.GenerateWorkload(bicriteria.WorkloadConfig{
//		Kind: bicriteria.WorkloadCirne, M: 200, N: 100, Seed: 1,
//	})
//	res, _ := bicriteria.DEMT(inst, nil)
//	fmt.Println(res.Schedule.Makespan(), res.Schedule.WeightedCompletion(inst))
//
// See the examples/ directory and README.md for complete programs.
package bicriteria
