package bicriteria

// Benchmark harness regenerating every figure of the paper's evaluation
// (section 4) plus the ablation studies listed in DESIGN.md.
//
// By default the benchmarks run a scaled-down version of the paper's
// setting (smaller machine, fewer task counts, fewer runs, and the fast
// squashed-area minsum bound for the largest sweeps) so that
// `go test -bench=. -benchmem` finishes in minutes. Set the environment
// variable BICRIT_FULL=1 to run the paper's full scale (200 processors,
// 25..400 tasks, 40 runs per point, LP lower bound); expect it to take a
// long time.
//
// Every figure benchmark reports, as benchmark metrics, the aggregated
// ratios of the DEMT algorithm and of the best baseline, and logs the whole
// table (visible with `go test -bench Figure -benchtime 1x -v`).

import (
	"fmt"
	"os"
	"testing"

	"bicriteria/internal/cluster"
	"bicriteria/internal/core"
	"bicriteria/internal/dualapprox"
	"bicriteria/internal/experiment"
	"bicriteria/internal/grid"
	"bicriteria/internal/knapsack"
	"bicriteria/internal/listsched"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/workload"
)

// fullScale reports whether the paper-scale benchmarks were requested.
func fullScale() bool { return os.Getenv("BICRIT_FULL") == "1" }

// figureConfig builds the benchmark configuration for one of the paper's
// figures, scaled down unless BICRIT_FULL=1.
func figureConfig(figure int) experiment.Config {
	if fullScale() {
		cfg, err := experiment.FigureConfig(figure, 40, 1, true)
		if err != nil {
			panic(err)
		}
		cfg.M = 200
		return cfg
	}
	cfg, err := experiment.FigureConfig(figure, 3, 1, false)
	if err != nil {
		panic(err)
	}
	cfg.M = 64
	cfg.TaskCounts = []int{25, 50, 100}
	return cfg
}

// runFigure executes the experiment once per benchmark iteration and
// reports the headline numbers of the figure.
func runFigure(b *testing.B, figure int) {
	b.Helper()
	cfg := figureConfig(figure)
	var res *experiment.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportFigure(b, res)
}

// reportFigure attaches the figure's headline series to the benchmark
// output and logs the full table.
func reportFigure(b *testing.B, res *experiment.Result) {
	b.Helper()
	if demt := res.SeriesFor(experiment.AlgDEMT); demt != nil {
		last := demt.Points[len(demt.Points)-1]
		b.ReportMetric(last.MinsumRatio.Mean, "demt_minsum_ratio")
		b.ReportMetric(last.CmaxRatio.Mean, "demt_cmax_ratio")
	}
	if saf := res.SeriesFor(experiment.AlgListSAF); saf != nil {
		last := saf.Points[len(saf.Points)-1]
		b.ReportMetric(last.MinsumRatio.Mean, "saf_minsum_ratio")
	}
	b.Logf("\n%s", experiment.FormatTable(res))
}

// BenchmarkFigure3 reproduces Figure 3: performance ratios on the weakly
// parallel workload (DEMT is expected to be the weakest here but bounded by
// about 2 on the makespan).
func BenchmarkFigure3WeaklyParallel(b *testing.B) { runFigure(b, 3) }

// BenchmarkFigure4 reproduces Figure 4: highly parallel workload (DEMT is
// expected to lead on the minsum criterion).
func BenchmarkFigure4HighlyParallel(b *testing.B) { runFigure(b, 4) }

// BenchmarkFigure5 reproduces Figure 5: mixed workload (SAF is expected to
// edge out DEMT, both stay around 2).
func BenchmarkFigure5Mixed(b *testing.B) { runFigure(b, 5) }

// BenchmarkFigure6 reproduces Figure 6: Cirne-Berman workload (DEMT is
// expected to clearly lead on the minsum criterion and stay stable).
func BenchmarkFigure6Cirne(b *testing.B) { runFigure(b, 6) }

// BenchmarkFigure7SchedulerTime reproduces Figure 7: the execution time of
// the DEMT scheduler itself as a function of the number of tasks (the paper
// reports < 2 seconds at n=400 on 200 processors).
func BenchmarkFigure7SchedulerTime(b *testing.B) {
	taskCounts := []int{25, 50, 100, 200, 400}
	m := 200
	runs := 2
	if fullScale() {
		runs = 40
	}
	kinds := []workload.Kind{workload.WeaklyParallel, workload.Cirne, workload.HighlyParallel}
	for _, kind := range kinds {
		for _, n := range taskCounts {
			name := fmt.Sprintf("%s/n=%d", kind, n)
			b.Run(name, func(b *testing.B) {
				insts := make([]*Instance, runs)
				for r := 0; r < runs; r++ {
					inst, err := workload.Generate(workload.Config{Kind: kind, M: m, N: n, Seed: int64(1000*n + r)})
					if err != nil {
						b.Fatal(err)
					}
					insts[r] = inst
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inst := insts[i%runs]
					if _, err := core.Schedule(inst, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationSelection compares the paper's knapsack batch selection
// with a greedy weight-density selection (ablation A1 of DESIGN.md).
func BenchmarkAblationSelection(b *testing.B) {
	for _, mode := range []core.SelectionMode{core.SelectionKnapsack, core.SelectionGreedy} {
		b.Run(mode.String(), func(b *testing.B) {
			ratioSum, count := 0.0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := workload.Generate(workload.Config{Kind: workload.Cirne, M: 64, N: 80, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Schedule(inst, &core.Options{Selection: mode})
				if err != nil {
					b.Fatal(err)
				}
				lb := lowerbound.MinsumSquashedArea(inst)
				ratioSum += res.Schedule.WeightedCompletion(inst) / lb
				count++
			}
			b.StopTimer()
			if count > 0 {
				b.ReportMetric(ratioSum/float64(count), "minsum_ratio")
			}
		})
	}
}

// BenchmarkAblationCompaction compares the compaction modes (ablation A2):
// none, earliest-start, list, and list with shuffling (the paper's choice).
func BenchmarkAblationCompaction(b *testing.B) {
	modes := []core.CompactionMode{
		core.CompactionNone, core.CompactionEarliestStart, core.CompactionList, core.CompactionListShuffle,
	}
	for _, mode := range modes {
		b.Run(mode.String(), func(b *testing.B) {
			minsumSum, cmaxSum, count := 0.0, 0.0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: 64, N: 80, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.Schedule(inst, &core.Options{Compaction: mode})
				if err != nil {
					b.Fatal(err)
				}
				minsumSum += res.Schedule.WeightedCompletion(inst) / lowerbound.MinsumSquashedArea(inst)
				cmaxSum += res.Schedule.Makespan() / res.MakespanLowerBound
				count++
			}
			b.StopTimer()
			if count > 0 {
				b.ReportMetric(minsumSum/float64(count), "minsum_ratio")
				b.ReportMetric(cmaxSum/float64(count), "cmax_ratio")
			}
		})
	}
}

// BenchmarkAblationLowerBound compares the LP-relaxation minsum bound with
// the squashed-area bound (ablation A3): tightness gain vs computing cost.
func BenchmarkAblationLowerBound(b *testing.B) {
	inst, err := workload.Generate(workload.Config{Kind: workload.Cirne, M: 64, N: 80, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("squashed-area", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			v = lowerbound.MinsumSquashedArea(inst)
		}
		b.ReportMetric(v, "bound_value")
	})
	b.Run("lp-relaxation", func(b *testing.B) {
		var v, raw float64
		for i := 0; i < b.N; i++ {
			bound, err := lowerbound.MinsumLP(inst, nil)
			if err != nil {
				b.Fatal(err)
			}
			v = bound.Value
			raw = bound.LPValue
		}
		b.ReportMetric(v, "bound_value")
		b.ReportMetric(raw, "lp_raw_value")
	})
}

// BenchmarkClusterReplay measures the event-driven cluster engine replaying
// a bursty Poisson stream with the full concurrent portfolio, noisy
// runtimes and a reservation: the end-to-end hot path of the system.
func BenchmarkClusterReplay(b *testing.B) {
	m, n := 64, 150
	if fullScale() {
		m, n = 200, 400
	}
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: m, N: n, Seed: 42},
		Rate:      4,
		BurstSize: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs := cluster.JobsFromArrivals(arrivals)
	perturb, err := cluster.UniformNoise(0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		M:         m,
		Objective: cluster.Objective{Kind: cluster.ObjectiveCombined, Alpha: 0.5},
		Perturb:   perturb,
		Reservations: []Reservation{
			{Name: "maint", Procs: m / 8, Start: 10, End: 30},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var report *cluster.Report
	for i := 0; i < b.N; i++ {
		report, err = eng.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(report.Metrics.Utilization, "utilization")
	b.ReportMetric(float64(report.Metrics.Batches), "batches")
	b.ReportMetric(report.Metrics.MeanStretch, "mean_stretch")
}

// BenchmarkDEMTSchedule measures the raw DEMT scheduling time at the
// paper's machine size for a mid-size instance.
func BenchmarkDEMTSchedule(b *testing.B) {
	inst, err := workload.Generate(workload.Config{Kind: workload.Cirne, M: 200, N: 100, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Schedule(inst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDualApproximation measures the two-shelf dual-approximation
// construction used to anchor the batches.
func BenchmarkDualApproximation(b *testing.B) {
	inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: 200, N: 100, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dualapprox.TwoShelf(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinsumLPBound measures the LP-relaxation lower bound (the
// dominant cost of reproducing the figures with the paper's bound).
func BenchmarkMinsumLPBound(b *testing.B) {
	inst, err := workload.Generate(workload.Config{Kind: workload.HighlyParallel, M: 200, N: 100, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.MinsumLP(inst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKnapsackSelection measures the O(mn) knapsack used by each batch
// at the paper's scale (m=200, n=400).
func BenchmarkKnapsackSelection(b *testing.B) {
	items := make([]knapsack.Item, 400)
	for i := range items {
		items[i] = knapsack.Item{Cost: 1 + i%32, Value: float64(1 + i%10)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knapsack.MaxValue(items, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrahamList measures the event-driven list scheduler on a large
// rigid instance (the compaction workhorse).
func BenchmarkGrahamList(b *testing.B) {
	items := make([]listsched.Item, 400)
	for i := range items {
		items[i] = listsched.Item{TaskID: i, NProcs: 1 + i%32, Duration: 1 + float64(i%17)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := listsched.Graham(200, items); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridReplay measures the grid federation replaying one fixed
// 500-job burst-heavy stream across 1, 2, 4 and 8 cluster shards: the
// scale-up of the concurrent meta-scheduler pipeline. Shards replay in
// goroutine-parallel, so on a machine with at least as many cores as
// shards the wall clock shrinks as clusters are added while the routed
// work stays fixed; on fewer cores the benchmark instead measures the
// pipeline's overhead (the reported batches metric shows how the same
// stream fissions across shard counts).
func BenchmarkGridReplay(b *testing.B) {
	const perCluster = 32
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: perCluster, N: 500, Seed: 42},
		Rate:      100,
		BurstSize: 125,
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs := cluster.JobsFromArrivals(arrivals)
	for _, clusters := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clusters=%d", clusters), func(b *testing.B) {
			specs := make([]grid.ClusterSpec, clusters)
			for i := range specs {
				perturb, err := cluster.UniformNoise(0.2, int64(42+i))
				if err != nil {
					b.Fatal(err)
				}
				specs[i] = grid.ClusterSpec{M: perCluster, Perturb: perturb}
			}
			fed, err := grid.New(grid.Config{Clusters: specs, Routing: grid.LeastBacklog()})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var report *grid.Report
			for i := 0; i < b.N; i++ {
				report, err = fed.Run(jobs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			batches := 0
			for _, pc := range report.Metrics.PerCluster {
				batches += pc.Batches
			}
			b.ReportMetric(float64(batches), "batches")
			b.ReportMetric(report.Metrics.Utilization, "utilization")
			b.ReportMetric(report.Metrics.MeanStretch, "mean_stretch")
			b.ReportMetric(report.Metrics.StretchP95, "p95_stretch")
		})
	}
}
