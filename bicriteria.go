package bicriteria

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"bicriteria/internal/baselines"
	"bicriteria/internal/buildinfo"
	"bicriteria/internal/cluster"
	"bicriteria/internal/core"
	"bicriteria/internal/dualapprox"
	"bicriteria/internal/experiment"
	"bicriteria/internal/faults"
	"bicriteria/internal/flight"
	"bicriteria/internal/grid"
	"bicriteria/internal/logx"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/moldable"
	"bicriteria/internal/obs"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/scenario"
	"bicriteria/internal/schedule"
	"bicriteria/internal/serve"
	"bicriteria/internal/sim"
	"bicriteria/internal/slo"
	"bicriteria/internal/trace"
	"bicriteria/internal/workload"
)

// Version is the library's semantic version, also reported by
// `bicrit -version` and the service's GET /version endpoint.
const Version = buildinfo.Version

// ---------------------------------------------------------------------------
// Scenario API v2: one composable spec that drives every layer
// ---------------------------------------------------------------------------

// Scenario is the versioned declarative spec of one experiment: workload
// and arrival process, topology (single cluster or sharded grid), batch
// and routing policies, objectives, fault injection, replanning and
// service pacing — one value that compiles to whichever engine the
// topology needs. Build it as a literal, through NewScenario's functional
// options, or load it from JSON (LoadScenario). See internal/scenario.
type Scenario = scenario.Scenario

// ScenarioOption mutates a scenario under construction; see NewScenario
// and the With* constructors in internal/scenario (re-exported below as
// Scenario method-style helpers is unnecessary: the spec's fields are
// public and stable).
type ScenarioOption = scenario.Option

// ScenarioTopology selects the engine a scenario compiles to.
type ScenarioTopology = scenario.Topology

// Scenario topologies.
const (
	TopologySingle = scenario.TopologySingle
	TopologyGrid   = scenario.TopologyGrid
)

// Spec sections of a Scenario.
type (
	ScenarioCluster     = scenario.Cluster
	ScenarioReservation = scenario.Reservation
	ScenarioWorkload    = scenario.Workload
	ScenarioArrivals    = scenario.Arrivals
	ScenarioBatch       = scenario.Batch
	ScenarioObjective   = scenario.Objective
	ScenarioRouting     = scenario.Routing
	ScenarioFaults      = scenario.Faults
	ScenarioService     = scenario.Service
	ScenarioSLO         = scenario.SLOSpec
	ScenarioRacing      = scenario.RacingSpec
)

// ValidationError is the unified configuration error of the library: it
// names the exact field path that is wrong ("clusters[2].machines",
// "arrivals.rate"). The eager checks of NewClusterEngine, NewGrid and
// NewServeServer raise it too, so bad configs fail before any goroutine
// spawns, with the same error shape at every layer.
type ValidationError = scenario.ValidationError

// NewScenario builds a scenario from functional options and validates it
// eagerly. The option constructors live in internal/scenario (WithSeed,
// WithClusters, WithWorkload, ...) and are re-exported here:
var (
	ScenarioWithName        = scenario.WithName
	ScenarioWithSeed        = scenario.WithSeed
	ScenarioWithTopology    = scenario.WithTopology
	ScenarioWithClusters    = scenario.WithClusters
	ScenarioWithReservation = scenario.WithReservation
	ScenarioWithWorkload    = scenario.WithWorkload
	ScenarioWithArrivals    = scenario.WithArrivals
	ScenarioWithArrivalLaws = scenario.WithArrivalLaws
	ScenarioWithArrivalFile = scenario.WithArrivalFile
	ScenarioWithTraceFile   = scenario.WithTraceFile
	ScenarioWithBatchPolicy = scenario.WithBatchPolicy
	ScenarioWithObjective   = scenario.WithObjective
	ScenarioWithRouting     = scenario.WithRouting
	ScenarioWithNoise       = scenario.WithNoise
	ScenarioWithSequential  = scenario.WithSequential
	ScenarioWithFaults      = scenario.WithFaults
	ScenarioWithService     = scenario.WithService
	ScenarioWithTrace       = scenario.WithTrace
	ScenarioWithSLO         = scenario.WithSLO
	ScenarioWithRacing      = scenario.WithRacing
)

// ScenarioTrace is the optional trace section of a scenario: where and
// in which format the runner's event stream is written.
type ScenarioTrace = scenario.TraceSpec

// NewScenario builds and validates a scenario from functional options.
func NewScenario(opts ...ScenarioOption) (Scenario, error) { return scenario.New(opts...) }

// ScenarioRunner is a compiled scenario, ready to replay: Run(ctx)
// drives the right engine with cancellation, Observe streams events.
type ScenarioRunner = scenario.Runner

// ScenarioObserver streams a run's events (batches, routing decisions,
// kills, migrations) as they happen.
type ScenarioObserver = scenario.Observer

// ScenarioReport is the unified outcome of a scenario run: a superset of
// the cluster and grid reports.
type ScenarioReport = scenario.Report

// ScenarioInfo describes what a scenario compiled to (resolved policy
// names, stream size, fault plan): what the report renderers consume.
type ScenarioInfo = scenario.Info

// Compile validates the scenario eagerly and returns the runner of its
// topology. Every configuration error is a *ValidationError naming the
// offending field path.
func Compile(s Scenario) (ScenarioRunner, error) { return scenario.Compile(s) }

// ScenarioServeConfig compiles a scenario into a live-service
// configuration (grid section plus the optional service pacing section).
func ScenarioServeConfig(s Scenario) (ServeConfig, error) { return scenario.ServeConfig(s) }

// WriteScenario serializes a scenario as versioned JSON.
func WriteScenario(w io.Writer, s Scenario) error { return scenario.WriteScenario(w, s) }

// ReadScenario parses and validates a scenario; unknown versions and
// unknown fields are rejected.
func ReadScenario(r io.Reader) (Scenario, error) { return scenario.ReadScenario(r) }

// SaveScenario writes a scenario to a file path.
func SaveScenario(path string, s Scenario) error { return scenario.SaveScenario(path, s) }

// LoadScenario reads a scenario from a file path.
func LoadScenario(path string) (Scenario, error) { return scenario.LoadScenario(path) }

// ScenarioFaultSeed derives the fault-plan sub-seed of a master seed:
// seed ^ ScenarioFaultSeedSalt, the documented derivation the scenario
// compiler (and cmd/bicrit-gen) uses when no explicit fault seed is set.
func ScenarioFaultSeed(seed int64) int64 { return seed ^ scenario.FaultSeedSalt }

// ScenarioFaultSeedSalt is the fault sub-seed salt; ArrivalSeedSalt and
// RuntimeSeedSalt (internal/workload) are its siblings for the arrival
// and runtime-tail streams.
const (
	ScenarioFaultSeedSalt = scenario.FaultSeedSalt
	ScenarioRaceSeedSalt  = scenario.RaceSeedSalt
	ArrivalSeedSalt       = workload.ArrivalSeedSalt
	RuntimeSeedSalt       = workload.RuntimeSeedSalt
)

// FormatScenarioBatchLine renders one committed batch as the standard
// verbose line of the CLIs.
func FormatScenarioBatchLine(br ClusterBatchReport) string { return scenario.FormatBatchLine(br) }

// FormatScenarioDecisionLine renders one routing decision as the
// standard verbose line of the CLIs.
func FormatScenarioDecisionLine(d GridDecision) string { return scenario.FormatDecisionLine(d) }

// WriteScenarioReport renders the unified report as the standard text
// report of the matching topology (the byte format the golden files pin).
func WriteScenarioReport(w io.Writer, info ScenarioInfo, rep *ScenarioReport) error {
	return scenario.WriteReport(w, info, rep)
}

// WriteScenarioReportJSON exports a grid report as the stable JSON shape.
func WriteScenarioReportJSON(w io.Writer, rep *ScenarioReport) error {
	return scenario.WriteReportJSON(w, rep)
}

// WriteScenarioReportCSV exports the per-cluster summary as CSV (fault
// columns appear exactly when the scenario carries a fault plan).
func WriteScenarioReportCSV(w io.Writer, info ScenarioInfo, rep *ScenarioReport) error {
	return scenario.WriteReportCSV(w, info, rep)
}

// WriteServeFinalReport renders a drained service's final report as the
// standard text.
func WriteServeFinalReport(w io.Writer, rep *ServeFinalReport) { scenario.WriteFinalReport(w, rep) }

// ---------------------------------------------------------------------------
// Observability: metrics registry, trace sink, pprof
// ---------------------------------------------------------------------------

// MetricsRegistry is the dependency-free metrics registry of the
// library: counters, gauges and histograms with stable label ordering,
// rendered in the Prometheus text exposition format by WritePrometheus.
// Compiled scenario runners expose theirs through Metrics(); the live
// service serves its own on GET /metrics.prom.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// PromContentType is the Content-Type of the Prometheus text exposition
// format, as served by GET /metrics.prom.
const PromContentType = obs.ContentType

// ParsePrometheusText parses and validates Prometheus text-format
// exposition, returning the metric families. Tests use it to pin the
// scrape output's validity.
func ParsePrometheusText(r io.Reader) ([]PromFamily, error) { return obs.ParseText(r) }

// PromFamily is one parsed metric family of a Prometheus exposition.
type PromFamily = obs.Family

// TraceSink collects structured trace events from a (possibly
// concurrent) replay and renders them deterministically as JSONL or
// Chrome trace-event JSON (perfetto-viewable). Events carry simulated
// time only, so seeded replays render byte-identically.
type TraceSink = obs.Sink

// NewTraceSink builds an empty trace sink.
func NewTraceSink() *TraceSink { return obs.NewSink() }

// TraceEvent is one structured replay event (batch, routing decision,
// kill, migration or drain) stamped with simulated time.
type TraceEvent = obs.Event

// Trace output formats of TraceSink.Write.
const (
	TraceFormatChrome = obs.FormatChrome
	TraceFormatJSONL  = obs.FormatJSONL
)

// ScenarioTraceObserver returns an observer recording every event of a
// run into the sink; combine with RecordScenarioDrain after the run to
// close the trace.
func ScenarioTraceObserver(sink *TraceSink) ScenarioObserver { return scenario.TraceObserver(sink) }

// RecordScenarioDrain appends the run-level summary event (the full
// horizon of the replay) to a trace.
func RecordScenarioDrain(sink *TraceSink, rep *ScenarioReport) { scenario.RecordDrain(sink, rep) }

// MergeScenarioObservers chains two observers: each event invokes a's
// callback then b's. Use it to stack a trace sink under your own
// observer.
func MergeScenarioObservers(a, b ScenarioObserver) ScenarioObserver {
	return scenario.MergeObservers(a, b)
}

// ServeDebugHandler returns the net/http/pprof endpoints on their
// standard /debug/pprof/ paths as an explicit mux; the CLIs bind it to
// a separate listener behind -debug-addr.
func ServeDebugHandler() http.Handler { return serve.DebugHandler() }

// ---------------------------------------------------------------------------
// Flight recorder: per-job "why" for every scheduling decision
// ---------------------------------------------------------------------------

// FlightRecorder materializes per-job timelines
// (submitted → routed → batched → planned → started → killed/resubmitted
// → done) from a run's event stream, with per-shard routing verdicts, the
// winning portfolio algorithm, the chosen allotment and the batch lower
// bound on every event. Events sort under a total order, so concurrent
// and sequential replays render byte-identical timelines. Attach one to a
// compiled scenario with ScenarioRunner.Flight, or rebuild one from a
// finished grid report with FlightFromGridReport.
type FlightRecorder = flight.Recorder

// FlightEvent is one recorded stage of a job's flight.
type FlightEvent = flight.Event

// FlightKind names a flight stage.
type FlightKind = flight.Kind

// FlightVerdict is the routing policy's verdict on one shard for one
// decision (chosen, open, over-backlog or outage, with its backlog).
type FlightVerdict = flight.Verdict

// Flight stages in lifecycle order.
const (
	FlightSubmitted   = flight.KindSubmitted
	FlightRouted      = flight.KindRouted
	FlightMigrated    = flight.KindMigrated
	FlightBatched     = flight.KindBatched
	FlightPlanned     = flight.KindPlanned
	FlightStarted     = flight.KindStarted
	FlightKilled      = flight.KindKilled
	FlightResubmitted = flight.KindResubmitted
	FlightLost        = flight.KindLost
	FlightDone        = flight.KindDone
)

// NewFlightRecorder builds an empty flight recorder.
func NewFlightRecorder() *FlightRecorder { return flight.NewRecorder() }

// FlightFromGridReport rebuilds a flight recorder from a finished grid
// report — the path the live service uses, since a service cannot stream
// observers (it replays its stream repeatedly).
func FlightFromGridReport(rep *GridReport) *FlightRecorder { return flight.FromGridReport(rep) }

// WriteFlightTimeline renders one job's timeline as the human-readable
// text `bicrit explain` prints.
func WriteFlightTimeline(w io.Writer, job int, events []FlightEvent) error {
	return flight.FormatTimeline(w, job, events)
}

// ReadFlightTrace parses a flight trace written by
// FlightRecorder.WriteJSONL.
func ReadFlightTrace(r io.Reader) (*FlightRecorder, error) { return flight.ReadJSONL(r) }

// IsFlightTrace sniffs whether data starts with a flight-trace header
// (how `bicrit explain` distinguishes a recorded trace from a scenario
// file).
func IsFlightTrace(data []byte) bool { return flight.IsTrace(data) }

// ---------------------------------------------------------------------------
// SLO engine: deadlines, burn rates, alerts
// ---------------------------------------------------------------------------

// SLOSpec is the resolved SLO rule set: per-job deadlines as
// release + factor·pmin, an overall miss budget, a burn-rate window and
// tail stretch/wait percentile targets.
type SLOSpec = slo.Spec

// SLOSummary is the outcome of one deterministic SLO evaluation:
// deadline-miss counts overall and per cluster, tail percentiles, and
// every alert rule's firing/resolved state.
type SLOSummary = slo.Summary

// SLOAlert is one evaluated SLO rule with its state, realized value and
// threshold.
type SLOAlert = slo.Alert

// SLOJobOutcome is one job's realized outcome, the input of EvaluateSLO.
type SLOJobOutcome = slo.JobOutcome

// SLOClusterSummary is the per-cluster deadline axis of a summary.
type SLOClusterSummary = slo.ClusterSummary

// SLO alert states.
const (
	SLOStateFiring   = slo.StateFiring
	SLOStateResolved = slo.StateResolved
)

// EvaluateSLO runs the rule set over the outcomes, deterministically:
// outcomes are sorted internally, so concurrent and sequential replays
// report bit-identical summaries.
func EvaluateSLO(spec SLOSpec, outcomes []SLOJobOutcome) *SLOSummary {
	return slo.Evaluate(spec, outcomes)
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

// NewLogger resolves the shared -log-level/-log-json CLI contract into a
// *slog.Logger: empty level returns a discard logger (silence is the
// default), otherwise "debug", "info", "warn" or "error" as logfmt-style
// text or JSON on w.
func NewLogger(w io.Writer, level string, json bool) (*slog.Logger, error) {
	return logx.New(w, level, json)
}

// DiscardLogger returns a logger that drops every record.
func DiscardLogger() *slog.Logger { return logx.Discard() }

// ScenarioLogObserver returns an observer logging every committed batch,
// kill and migration of a run as structured records; stack it behind your
// own observer with MergeScenarioObservers.
func ScenarioLogObserver(l *slog.Logger) ScenarioObserver { return scenario.LogObserver(l) }

// ---------------------------------------------------------------------------
// Task and instance model
// ---------------------------------------------------------------------------

// Task is a moldable job: a weight (priority) and one processing time per
// possible processor allocation. See internal/moldable for the full method
// set (Time, Work, MinAllocFitting, ...).
type Task = moldable.Task

// Instance is a scheduling problem: m identical processors and a set of
// moldable tasks available at time 0.
type Instance = moldable.Instance

// NewInstance builds an instance on m processors from a task list,
// truncating allocation vectors to m entries.
func NewInstance(m int, tasks []Task) *Instance { return moldable.NewInstance(m, tasks) }

// NewSequentialTask builds a task that can only run on one processor.
func NewSequentialTask(id int, weight, duration float64) Task {
	return moldable.Sequential(id, weight, duration)
}

// NewRigidTask builds a task that must run on exactly procs processors.
func NewRigidTask(id int, weight float64, procs int, duration float64) Task {
	return moldable.Rigid(id, weight, procs, duration)
}

// NewPerfectlyMoldableTask builds a task with linear speedup up to
// maxProcs.
func NewPerfectlyMoldableTask(id int, weight, seqTime float64, maxProcs int) Task {
	return moldable.PerfectlyMoldable(id, weight, seqTime, maxProcs)
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

// Schedule is a complete placement of an instance's tasks (start times,
// allocations, explicit processors), with validation, metrics and a Gantt
// renderer.
type Schedule = schedule.Schedule

// Assignment is the placement of a single task.
type Assignment = schedule.Assignment

// ScheduleMetrics bundles makespan, weighted completion, utilization...
type ScheduleMetrics = schedule.Metrics

// ValidateOptions tunes schedule validation (release dates, partial
// schedules).
type ValidateOptions = schedule.ValidateOptions

// ---------------------------------------------------------------------------
// The DEMT bi-criteria algorithm (the paper's contribution)
// ---------------------------------------------------------------------------

// DEMTOptions tunes the DEMT algorithm; the zero value reproduces the
// paper's algorithm (knapsack selection, list compaction with shuffling).
type DEMTOptions = core.Options

// DEMTResult is the output of the DEMT algorithm: final schedule, raw batch
// schedule, batch structure and the makespan estimate/lower bound.
type DEMTResult = core.Result

// DEMT runs the bi-criteria batch algorithm of the paper on the instance.
// A nil options pointer uses the paper's defaults.
func DEMT(inst *Instance, opts *DEMTOptions) (*DEMTResult, error) {
	return core.Schedule(inst, opts)
}

// Compaction modes for DEMTOptions.Compaction.
const (
	CompactionListShuffle   = core.CompactionListShuffle
	CompactionList          = core.CompactionList
	CompactionEarliestStart = core.CompactionEarliestStart
	CompactionNone          = core.CompactionNone
)

// Selection modes for DEMTOptions.Selection.
const (
	SelectionKnapsack = core.SelectionKnapsack
	SelectionGreedy   = core.SelectionGreedy
)

// ---------------------------------------------------------------------------
// Baseline algorithms of the paper's evaluation
// ---------------------------------------------------------------------------

// Gang schedules every task on all the processors it can use, sorted by
// decreasing weight over execution time.
func Gang(inst *Instance) (*Schedule, error) { return baselines.Gang(inst) }

// SequentialLPT schedules every task on a single processor with the
// largest-processing-time-first list algorithm.
func SequentialLPT(inst *Instance) (*Schedule, error) { return baselines.Sequential(inst) }

// ListOrder selects the priority order of the list-scheduling baseline.
type ListOrder = baselines.ListOrder

// List-scheduling orders.
const (
	ListShelfOrder        = baselines.ShelfOrder
	ListWeightedLPT       = baselines.WeightedLPT
	ListSmallestAreaFirst = baselines.SmallestAreaFirst
)

// ListScheduling computes the dual-approximation allotment and runs the
// Graham list algorithm with the requested order.
func ListScheduling(inst *Instance, order ListOrder) (*Schedule, error) {
	return baselines.ListGraham(inst, order)
}

// ---------------------------------------------------------------------------
// Dual approximation and lower bounds
// ---------------------------------------------------------------------------

// DualApproxResult is the outcome of the two-shelf dual-approximation
// construction (schedule, makespan estimate, certified lower bound,
// allotment).
type DualApproxResult = dualapprox.Result

// DualApproximation runs the two-shelf dual-approximation makespan
// algorithm used to anchor DEMT's batches.
func DualApproximation(inst *Instance) (*DualApproxResult, error) { return dualapprox.TwoShelf(inst) }

// MakespanLowerBound returns a certified lower bound on the optimal
// makespan.
func MakespanLowerBound(inst *Instance) float64 { return lowerbound.Makespan(inst) }

// MinsumLowerBoundOptions tunes the LP lower bound.
type MinsumLowerBoundOptions = lowerbound.MinsumOptions

// MinsumLowerBound is the result of the LP (or ILP) lower bound.
type MinsumLowerBound = lowerbound.MinsumBound

// MinsumLowerBoundLP computes the paper's LP-relaxation lower bound on the
// weighted sum of completion times.
func MinsumLowerBoundLP(inst *Instance, opts *MinsumLowerBoundOptions) (*MinsumLowerBound, error) {
	return lowerbound.MinsumLP(inst, opts)
}

// MinsumLowerBoundFast computes the cheap squashed-area lower bound on the
// weighted sum of completion times.
func MinsumLowerBoundFast(inst *Instance) float64 { return lowerbound.MinsumSquashedArea(inst) }

// ---------------------------------------------------------------------------
// Workload generation and persistence
// ---------------------------------------------------------------------------

// WorkloadKind selects one of the paper's workload families.
type WorkloadKind = workload.Kind

// Workload families of the paper's evaluation.
const (
	WorkloadWeaklyParallel = workload.WeaklyParallel
	WorkloadHighlyParallel = workload.HighlyParallel
	WorkloadMixed          = workload.Mixed
	WorkloadCirne          = workload.Cirne
)

// WorkloadConfig drives instance generation.
type WorkloadConfig = workload.Config

// GenerateWorkload builds a random instance following the paper's models.
func GenerateWorkload(cfg WorkloadConfig) (*Instance, error) { return workload.Generate(cfg) }

// ParseWorkloadKind converts a string such as "cirne" into a WorkloadKind.
func ParseWorkloadKind(s string) (WorkloadKind, error) { return workload.ParseKind(s) }

// SaveInstance writes an instance to a JSON file.
func SaveInstance(path string, inst *Instance) error { return workload.SaveInstance(path, inst) }

// LoadInstance reads an instance from a JSON file.
func LoadInstance(path string) (*Instance, error) { return workload.LoadInstance(path) }

// WriteInstance serializes an instance as JSON.
func WriteInstance(w io.Writer, inst *Instance) error { return workload.WriteInstance(w, inst) }

// ReadInstance parses an instance from JSON.
func ReadInstance(r io.Reader) (*Instance, error) { return workload.ReadInstance(r) }

// ---------------------------------------------------------------------------
// Experiment harness (the paper's figures)
// ---------------------------------------------------------------------------

// ExperimentConfig drives one experiment (one figure of the paper).
type ExperimentConfig = experiment.Config

// ExperimentResult is a complete figure: one series per algorithm.
type ExperimentResult = experiment.Result

// ExperimentAlgorithm identifies one algorithm of the comparison.
type ExperimentAlgorithm = experiment.Algorithm

// RunExperiment executes an experiment (see internal/experiment for the
// aggregation rules, which follow section 4.2 of the paper).
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { //lint:allow ctxflow offline experiment harness; not a replay entry point, runs to completion by design
	return experiment.Run(cfg)
}

// FormatExperiment renders an experiment result as text tables.
func FormatExperiment(res *ExperimentResult) string { return experiment.FormatTable(res) }

// ---------------------------------------------------------------------------
// On-line batch scheduling and cluster simulation
// ---------------------------------------------------------------------------

// OnlineJob is a moldable task with a release date.
type OnlineJob = online.Job

// OnlineResult is the outcome of an on-line batch run.
type OnlineResult = online.Result

// OfflineScheduler adapts any off-line algorithm for the on-line batch
// framework.
type OfflineScheduler = online.OfflineScheduler

// ScheduleOnline runs the on-line batch framework of section 2.2 of the
// paper with the given off-line scheduler.
func ScheduleOnline(m int, jobs []OnlineJob, offline OfflineScheduler) (*OnlineResult, error) {
	return online.Schedule(m, jobs, offline)
}

// DEMTOffline wraps the DEMT scheduler into an OfflineScheduler.
func DEMTOffline(opts *DEMTOptions) OfflineScheduler {
	return func(inst *Instance) (*Schedule, error) {
		res, err := core.Schedule(inst, opts)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}
}

// ClusterConfig drives the event-driven cluster engine (machine size,
// algorithm portfolio, objective, batching policy, reservations,
// perturbation).
type ClusterConfig = cluster.Config

// ClusterEngine is a reusable event-driven cluster engine: it batches an
// on-line job stream under a pluggable policy, schedules every batch with a
// concurrent algorithm portfolio, places the winning plan around node
// reservations and executes it on the discrete-event simulator.
type ClusterEngine = cluster.Engine

// ClusterReport is the outcome of a cluster run (realized schedule, batch
// reports, aggregate metrics).
type ClusterReport = cluster.Report

// ClusterBatchReport describes one committed batch, including the
// cumulative metrics snapshot streamed to Config.OnBatch.
type ClusterBatchReport = cluster.BatchReport

// ClusterMetrics aggregates a run: utilization, max flow, mean stretch,
// portfolio winner counts...
type ClusterMetrics = cluster.Metrics

// ClusterAlgorithm is one member of the scheduling portfolio.
type ClusterAlgorithm = cluster.Algorithm

// ClusterCandidate reports one portfolio member's score on a batch.
type ClusterCandidate = cluster.Candidate

// ClusterRacing configures portfolio racing: a cutoff factor above 1
// cancels portfolio stragglers as soon as one candidate's score is
// provably within the factor of the batch lower bound, with an optional
// seeded bandit biasing the launch order toward recent winners. Racing
// never changes the committed schedules — concurrent and sequential
// replays stay byte-identical.
type ClusterRacing = cluster.Racing

// ClusterObjective selects the criterion the engine minimizes per batch.
type ClusterObjective = cluster.Objective

// ClusterObjectiveKind enumerates the commit criteria.
type ClusterObjectiveKind = cluster.ObjectiveKind

// ClusterBatchPolicy decides when the engine fires the next batch.
type ClusterBatchPolicy = cluster.BatchPolicy

// Cluster objectives.
const (
	ClusterObjectiveMakespan           = cluster.ObjectiveMakespan
	ClusterObjectiveWeightedCompletion = cluster.ObjectiveWeightedCompletion
	ClusterObjectiveCombined           = cluster.ObjectiveCombined
)

// NewClusterEngine validates the configuration and builds an engine.
func NewClusterEngine(cfg ClusterConfig) (*ClusterEngine, error) { return cluster.New(cfg) }

// RunCluster builds an engine and replays the job stream through it.
func RunCluster(cfg ClusterConfig, jobs []OnlineJob) (*ClusterReport, error) { //lint:allow ctxflow legacy context-free wrapper; the *Context variant is the cancellable entry point
	return RunClusterContext(context.Background(), cfg, jobs) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// RunClusterContext is RunCluster with cancellation: the context is
// checked between batches, so cancelling it aborts the replay promptly
// (errors.Is(err, ctx.Err()) holds on the returned error).
func RunClusterContext(ctx context.Context, cfg ClusterConfig, jobs []OnlineJob) (*ClusterReport, error) {
	eng, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return eng.RunContext(ctx, jobs)
}

// ClusterPortfolio returns the paper's full comparison as a portfolio:
// DEMT (with the given options, nil for the paper's defaults) plus every
// baseline.
func ClusterPortfolio(opts *DEMTOptions) []ClusterAlgorithm { return cluster.DefaultPortfolio(opts) }

// ClusterDEMTAlgorithm wraps the DEMT scheduler as a portfolio member.
func ClusterDEMTAlgorithm(opts *DEMTOptions) ClusterAlgorithm { return cluster.DEMTAlgorithm(opts) }

// BatchOnIdle fires a batch as soon as the machine is idle and jobs are
// pending (the framework of section 2.2 of the paper).
func BatchOnIdle() ClusterBatchPolicy { return cluster.BatchOnIdle() }

// FixedIntervalPolicy fires batches on multiples of period, like a cron-run
// batch scheduler.
func FixedIntervalPolicy(period float64) (ClusterBatchPolicy, error) {
	return cluster.FixedInterval(period)
}

// AdaptiveBacklogPolicy fires a batch once the pending jobs carry
// workTarget processor-time units of minimum work, or once the oldest
// pending job has waited maxDelay.
func AdaptiveBacklogPolicy(workTarget, maxDelay float64) (ClusterBatchPolicy, error) {
	return cluster.AdaptiveBacklog(workTarget, maxDelay)
}

// UniformRuntimeNoise builds a deterministic runtime perturbation scaling
// every planned duration by a uniform factor in [1-frac, 1+frac], keyed by
// (seed, taskID). A frac of 0 yields nil (exact execution); a frac outside
// [0, 1) is an error.
func UniformRuntimeNoise(frac float64, seed int64) (func(taskID int, planned float64) float64, error) {
	return cluster.UniformNoise(frac, seed)
}

// Arrival is a generated job with its submission time.
type Arrival = workload.Arrival

// ArrivalConfig drives the arrival generator: Poisson or heavy-tailed
// inter-arrival gaps, optional bursts, optional heavy-tailed runtime
// scaling.
type ArrivalConfig = workload.ArrivalConfig

// ArrivalDistribution selects a sampling law for inter-arrival gaps and
// runtime multipliers.
type ArrivalDistribution = workload.Distribution

// Arrival and runtime distributions.
const (
	DistDefault     = workload.DistDefault
	DistExponential = workload.DistExponential
	DistLognormal   = workload.DistLognormal
	DistWeibull     = workload.DistWeibull
)

// ParseArrivalDistribution converts a string such as "lognormal" into an
// ArrivalDistribution.
func ParseArrivalDistribution(s string) (ArrivalDistribution, error) {
	return workload.ParseDistribution(s)
}

// GenerateArrivals builds a deterministic on-line job stream: tasks from a
// workload family, submitted at Poisson (or bursty, heavy-tailed) instants.
func GenerateArrivals(cfg ArrivalConfig) ([]Arrival, error) { return workload.GenerateArrivals(cfg) }

// WriteArrivals serializes an arrival stream as JSON (an SWF-style trace
// that keeps the moldable time vectors). M records the machine size the
// stream was generated for.
func WriteArrivals(w io.Writer, m int, arrivals []Arrival) error {
	return workload.WriteArrivals(w, m, arrivals)
}

// ReadArrivals parses and validates a stream written by WriteArrivals,
// returning the arrivals and the recorded machine size.
func ReadArrivals(r io.Reader) ([]Arrival, int, error) { return workload.ReadArrivals(r) }

// SaveArrivals writes an arrival stream to a file path.
func SaveArrivals(path string, m int, arrivals []Arrival) error {
	return workload.SaveArrivals(path, m, arrivals)
}

// LoadArrivals reads an arrival stream from a file path.
func LoadArrivals(path string) ([]Arrival, int, error) { return workload.LoadArrivals(path) }

// ArrivalJobs adapts an arrival stream to the on-line and cluster inputs.
func ArrivalJobs(arrivals []Arrival) []OnlineJob { return cluster.JobsFromArrivals(arrivals) }

// SimulationOptions tunes the discrete-event execution of a schedule.
type SimulationOptions = sim.Options

// SimulationResult reports the realized execution of a schedule.
type SimulationResult = sim.Result

// SimulationBlockedWindow makes a set of processors unavailable during a
// time window of a simulation (node reservations, maintenance).
type SimulationBlockedWindow = sim.BlockedWindow

// Simulate executes a schedule on the discrete-event cluster simulator.
func Simulate(inst *Instance, sched *Schedule, opts *SimulationOptions) (*SimulationResult, error) {
	return sim.Execute(inst, sched, opts)
}

// ---------------------------------------------------------------------------
// Grid federation: many clusters behind one meta-scheduler
// ---------------------------------------------------------------------------

// GridClusterSpec configures one shard of a grid federation: processor
// count, portfolio, objective, batching policy, reservations and runtime
// perturbation.
type GridClusterSpec = grid.ClusterSpec

// GridConfig drives a grid federation (shards, routing policy, bounded
// dispatch queues, admission control).
type GridConfig = grid.Config

// GridFederation runs N independent cluster engines as concurrent shards
// behind a meta-scheduler routing one arrival stream.
type GridFederation = grid.Federation

// GridReport is the outcome of a grid run: routing decisions, per-shard
// cluster reports and the grid-wide aggregate.
type GridReport = grid.Report

// GridMetrics aggregates a grid run: makespan, weighted completion,
// utilization, stretch and bounded-slowdown percentiles, per-cluster
// summaries.
type GridMetrics = grid.Metrics

// GridClusterSummary is the grid-level digest of one shard's run.
type GridClusterSummary = grid.ClusterSummary

// GridDecision records one routing decision of the meta-scheduler.
type GridDecision = grid.Decision

// GridRoutingPolicy decides which cluster receives each job of the stream.
type GridRoutingPolicy = grid.RoutingPolicy

// NewGrid validates the configuration and builds a federation, including
// every shard engine.
func NewGrid(cfg GridConfig) (*GridFederation, error) { return grid.New(cfg) }

// RunGrid builds a federation and replays the job stream through it.
func RunGrid(cfg GridConfig, jobs []OnlineJob) (*GridReport, error) { //lint:allow ctxflow legacy context-free wrapper; the *Context variant is the cancellable entry point
	return RunGridContext(context.Background(), cfg, jobs) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// RunGridContext is RunGrid with cancellation: the context threads into
// every shard engine's batch loop, so cancelling it aborts the whole
// federation run without deadlock, even on the concurrent path.
func RunGridContext(ctx context.Context, cfg GridConfig, jobs []OnlineJob) (*GridReport, error) {
	f, err := grid.New(cfg)
	if err != nil {
		return nil, err
	}
	return f.RunContext(ctx, jobs)
}

// GridRoundRobin cycles jobs over the clusters open for admission.
func GridRoundRobin() GridRoutingPolicy { return grid.RoundRobin() }

// GridLeastBacklog routes each job to the cluster with the smallest
// estimated per-processor backlog.
func GridLeastBacklog() GridRoutingPolicy { return grid.LeastBacklog() }

// GridLowerBoundAware routes each job to the cluster whose DEMT makespan
// lower bound grows least by admitting it.
func GridLowerBoundAware() GridRoutingPolicy { return grid.LowerBoundAware() }

// GridMoldabilityAware routes each job to the smallest cluster fitting its
// useful parallelism.
func GridMoldabilityAware() GridRoutingPolicy { return grid.MoldabilityAware() }

// ParseGridRoutingPolicy converts a string such as "least-backlog" into a
// routing policy.
func ParseGridRoutingPolicy(s string) (GridRoutingPolicy, error) { return grid.ParsePolicy(s) }

// ---------------------------------------------------------------------------
// Live scheduler service: the grid behind a concurrent submission API
// ---------------------------------------------------------------------------

// ServeConfig drives a live scheduler service: the grid behind it, the
// wall-clock speedup, rate limiting, admission control, the sharded
// submission queue, live-state refreshing and snapshots.
type ServeConfig = serve.Config

// ServeServer is a long-running scheduler service: jobs are submitted
// while the portfolio scheduler runs, with live job states, metrics,
// snapshots and graceful drain. See internal/serve for the architecture.
type ServeServer = serve.Server

// ServeCounters are the monotone admission statistics of a service.
type ServeCounters = serve.Counters

// ServeJobState is the lifecycle position of a submitted job
// (queued → batched → scheduled → running → done).
type ServeJobState = serve.JobState

// Serve job lifecycle states.
const (
	ServeStateQueued      = serve.StateQueued
	ServeStateBatched     = serve.StateBatched
	ServeStateScheduled   = serve.StateScheduled
	ServeStateRunning     = serve.StateRunning
	ServeStateResubmitted = serve.StateResubmitted
	ServeStateDone        = serve.StateDone
)

// ServeJobStatus is the live view of one submitted job.
type ServeJobStatus = serve.JobStatus

// ServeJobSpec is the wire form of one job submission.
type ServeJobSpec = serve.JobSpec

// ServeAccepted acknowledges one admitted job with its virtual release.
type ServeAccepted = serve.Accepted

// ServeRejection is the typed refusal of a submission (rate limit,
// backlog, full queue or draining) with a back-off hint.
type ServeRejection = serve.Rejection

// ServeFinalReport is the outcome of a drained service: the grid report
// of the full deterministic replay of everything the service admitted.
type ServeFinalReport = serve.FinalReport

// NewServeServer validates the configuration, restores a snapshot when
// one exists, and starts the service (queue collectors, refresher,
// snapshot writer). Stop it with Drain.
func NewServeServer(cfg ServeConfig) (*ServeServer, error) { return serve.NewServer(cfg) }

// ---------------------------------------------------------------------------
// Fault injection and self-healing rescheduling
// ---------------------------------------------------------------------------

// FaultsPlan is a deterministic fault scenario: node crash/repair windows
// and whole-shard outages, known in full before a replay starts. The zero
// (or nil) plan injects nothing and leaves every layer's output
// byte-identical to a run without the subsystem.
type FaultsPlan = faults.Plan

// FaultsConfig drives the seeded fault-event generator: Weibull MTBF per
// node, lognormal repairs, correlated multi-node failures and whole-shard
// outages.
type FaultsConfig = faults.Config

// FaultsNodeOutage is one node of one cluster down during [Start, End).
type FaultsNodeOutage = faults.NodeOutage

// FaultsShardOutage is a whole grid shard down during [Start, End).
type FaultsShardOutage = faults.ShardOutage

// FaultWindow is a set of processors of one machine down during
// [Start, End): what a cluster engine consumes as Outages.
type FaultWindow = faults.Window

// GenerateFaults builds the deterministic fault plan of the configuration:
// a pure function of the config, whatever the call order or the machine.
func GenerateFaults(cfg FaultsConfig) (*FaultsPlan, error) { return faults.Generate(cfg) }

// SuggestFaultHorizon estimates a fault-generation horizon for a job
// stream from its last submission and total minimum work on the machine.
func SuggestFaultHorizon(maxRelease, totalMinWork float64, procs int) float64 {
	return faults.SuggestHorizon(maxRelease, totalMinWork, procs)
}

// GenerateFaultsForJobs generates the fault plan of a job stream: when
// cfg.Horizon is zero it is estimated with SuggestFaultHorizon from the
// stream's last release and total minimum work over the total processors
// of cfg.Clusters. This is the one helper both CLIs use, so a given
// (seed, stream, cluster sizes) names the same disaster everywhere.
func GenerateFaultsForJobs(cfg FaultsConfig, jobs []OnlineJob) (*FaultsPlan, error) {
	if cfg.Horizon == 0 {
		maxRelease, work := 0.0, 0.0
		for i := range jobs {
			if jobs[i].Release > maxRelease {
				maxRelease = jobs[i].Release
			}
			w, _ := jobs[i].Task.MinWork()
			work += w
		}
		procs := 0
		for _, m := range cfg.Clusters {
			procs += m
		}
		cfg.Horizon = faults.SuggestHorizon(maxRelease, work, procs)
	}
	return faults.Generate(cfg)
}

// ParseClusterReplan builds a replan policy from its CLI name ("restart"
// or "checkpoint") and checkpoint credit (0 = full credit).
func ParseClusterReplan(kind string, credit float64) (ClusterReplanPolicy, error) {
	k, err := cluster.ParseReplanKind(kind)
	if err != nil {
		return ClusterReplanPolicy{}, err
	}
	return ClusterReplanPolicy{Kind: k, Credit: credit}, nil
}

// ClusterReplanPolicy decides what a killed job looks like when it rejoins
// the queue: restart from scratch, or checkpoint-credit the finished work.
type ClusterReplanPolicy = cluster.ReplanPolicy

// ClusterReplanKind selects the replan model.
type ClusterReplanKind = cluster.ReplanKind

// Replan models for killed jobs.
const (
	ClusterReplanRestart    = cluster.ReplanRestart
	ClusterReplanCheckpoint = cluster.ReplanCheckpoint
)

// ParseClusterReplanKind converts "restart" or "checkpoint" into a replan
// kind.
func ParseClusterReplanKind(s string) (ClusterReplanKind, error) { return cluster.ParseReplanKind(s) }

// ClusterKillEvent records one job killed by an outage during a run.
type ClusterKillEvent = cluster.KillEvent

// ---------------------------------------------------------------------------
// Node reservations (section 5 of the paper, "on-going works")
// ---------------------------------------------------------------------------

// Reservation blocks a number of processors during a time window
// (maintenance, advance reservation for another user, ...).
type Reservation = reservation.Reservation

// ReservationOptions tunes the reservation-aware scheduler.
type ReservationOptions = reservation.Options

// ReservationResult is the outcome of reservation-aware scheduling.
type ReservationResult = reservation.Result

// ScheduleWithReservations runs DEMT and places the resulting plan around
// the reserved windows (no job uses a reserved processor while it is
// blocked).
func ScheduleWithReservations(inst *Instance, reservations []Reservation, opts *ReservationOptions) (*ReservationResult, error) {
	return reservation.Schedule(inst, reservations, opts)
}

// ValidateReservations checks that a schedule never uses a reserved
// processor during its blocked window.
func ValidateReservations(sched *Schedule, reservations []Reservation, blocked [][]int) error {
	return reservation.ValidateAgainstReservations(sched, reservations, blocked)
}

// ---------------------------------------------------------------------------
// SWF trace interchange
// ---------------------------------------------------------------------------

// TraceRecord is one job of a (simplified) Standard Workload Format trace.
type TraceRecord = trace.Record

// TraceMoldableOptions drives the reconstruction of moldable tasks from
// rigid trace jobs.
type TraceMoldableOptions = trace.MoldableOptions

// ParseTrace reads an SWF fragment.
func ParseTrace(r io.Reader) ([]TraceRecord, error) { return trace.Parse(r) }

// WriteTrace emits SWF records.
func WriteTrace(w io.Writer, records []TraceRecord) error { return trace.Write(w, records) }

// TraceToTasks reconstructs moldable tasks from rigid trace records using a
// Downey speedup curve calibrated on the recorded allocation and run time.
func TraceToTasks(records []TraceRecord, m int, opts *TraceMoldableOptions) []Task {
	return trace.ToTasks(records, m, opts)
}

// TraceReleases extracts the submission times of the records, keyed by job
// ID (for use as on-line release dates).
func TraceReleases(records []TraceRecord) map[int]float64 { return trace.Releases(records) }

// ScheduleToTrace exports a schedule as SWF records (submission times taken
// from the releases map, 0 when absent).
func ScheduleToTrace(inst *Instance, sched *Schedule, releases map[int]float64) []TraceRecord {
	return trace.FromSchedule(inst, sched, releases)
}
