// Package badmod is a tiny module with exactly one determinism
// violation, used to test the bicrit-lint exit codes end to end.
package badmod

import "math/rand"

// Jitter draws from the process-wide source: a seededrand finding.
func Jitter() int {
	return rand.Intn(10)
}
