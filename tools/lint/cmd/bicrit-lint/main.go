// Command bicrit-lint is the repo's determinism linter: a multichecker
// running five custom static analyzers that prove the replay invariants —
// concurrent replays byte-identical to sequential ones — at compile time
// instead of waiting for a determinism stress test to flake.
//
// Usage:
//
//	bicrit-lint [-list] [-run regexp] [packages...]
//
// Packages default to ./... of the enclosing module. Findings print as
// file:line:col: analyzer: message and make the process exit 1, so the
// binary slots into CI next to gofmt and go vet. A finding is silenced
// only by fixing it or by an explicit, reasoned
//
//	//lint:allow <analyzer> <reason>
//
// directive on (or directly above) the offending line.
//
// Which analyzers see which packages is policy, encoded here: the
// deterministic core of the module (scheduling, simulation, replay,
// traces, flight timelines) answers to every analyzer, while the
// boundary packages that legitimately touch the wall clock or own the
// process edge (serve's pacer, obs' wall-clock histograms, logx,
// the experiment/perf measurement harnesses and the main packages) are
// exempt from the clock and context rules — but never from seededrand,
// maprange or wirefields, which hold everywhere.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"bicriteria/tools/lint/internal/analyzers/ctxflow"
	"bicriteria/tools/lint/internal/analyzers/maprange"
	"bicriteria/tools/lint/internal/analyzers/nowallclock"
	"bicriteria/tools/lint/internal/analyzers/seededrand"
	"bicriteria/tools/lint/internal/analyzers/wirefields"
	"bicriteria/tools/lint/internal/framework"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*framework.Analyzer{
	ctxflow.Analyzer,
	maprange.Analyzer,
	nowallclock.Analyzer,
	seededrand.Analyzer,
	wirefields.Analyzer,
}

// nondeterministic lists the packages of the main module that sit on the
// process boundary and may read the wall clock or mint root contexts:
// serve (pacer + HTTP edge), obs (wall-clock histograms), logx
// (timestamped logs), experiment and perf (measurement harnesses),
// buildinfo, and every main package under cmd/ and examples/. The
// deterministic invariant analyzers skip them; the order and wire-format
// analyzers do not.
var nondeterministic = []string{
	"bicriteria/internal/serve",
	"bicriteria/internal/obs",
	"bicriteria/internal/logx",
	"bicriteria/internal/experiment",
	"bicriteria/internal/perf",
	"bicriteria/internal/buildinfo",
	"bicriteria/cmd",
	"bicriteria/examples",
}

// scoped names the analyzers restricted to deterministic packages.
var scoped = map[string]bool{
	"nowallclock": true,
	"ctxflow":     true,
}

// filter implements the policy above for one (analyzer, package) pair.
func filter(a *framework.Analyzer, pkgPath string) bool {
	if !scoped[a.Name] {
		return true
	}
	for _, p := range nondeterministic {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return false
		}
	}
	return true
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bicrit-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runPat := fs.String("run", "", "only run analyzers matching this regexp")
	verbose := fs.Bool("v", false, "report the number of packages analyzed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected := analyzers
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(stderr, "bicrit-lint: bad -run pattern: %v\n", err)
			return 2
		}
		selected = nil
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				selected = append(selected, a)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(stderr, "bicrit-lint: -run %q matches no analyzer\n", *runPat)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "bicrit-lint: %v\n", err)
		return 2
	}
	loader, err := framework.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "bicrit-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bicrit-lint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "bicrit-lint: %s: typecheck: %v\n", p.Path, terr)
		}
	}
	diags, err := framework.Run(selected, pkgs, filter)
	if err != nil {
		fmt.Fprintf(stderr, "bicrit-lint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if *verbose {
		fmt.Fprintf(stderr, "bicrit-lint: %d packages, %d findings\n", len(pkgs), len(diags))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
