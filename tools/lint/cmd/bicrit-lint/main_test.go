package main

import (
	"bytes"
	"strings"
	"testing"
)

// inBadmod points the process at the one-violation fixture module for
// the duration of the test.
func inBadmod(t *testing.T) {
	t.Helper()
	t.Chdir("testdata/badmod")
}

func TestRunFindsViolation(t *testing.T) {
	inBadmod(t)
	var out, errb bytes.Buffer
	code := run([]string{"./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "seededrand") || !strings.Contains(out.String(), "rand.Intn") {
		t.Errorf("stdout does not name the seededrand finding:\n%s", out.String())
	}
}

func TestRunFilterClean(t *testing.T) {
	inBadmod(t)
	var out, errb bytes.Buffer
	code := run([]string{"-run", "wirefields", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings from wirefields alone, got:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-list"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"ctxflow", "maprange", "nowallclock", "seededrand", "wirefields"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "["}, &out, &errb); code != 2 {
		t.Errorf("bad -run regexp: exit code = %d, want 2", code)
	}
	if code := run([]string{"-run", "nosuchanalyzer", "./..."}, &out, &errb); code != 2 {
		t.Errorf("-run matching nothing: exit code = %d, want 2", code)
	}
}
