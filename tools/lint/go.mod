module bicriteria/tools/lint

go 1.24
