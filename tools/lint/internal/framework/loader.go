package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and typechecked package of the module
// under analysis.
type Package struct {
	// Path is the import path ("bicriteria/internal/core").
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the typechecked package object (never nil, possibly
	// incomplete when TypeErrors is non-empty).
	Types *types.Package
	// Info carries the resolved identifier and expression types.
	Info *types.Info
	// TypeErrors collects typechecking problems; analyzers run anyway and
	// degrade gracefully on nil types.
	TypeErrors []error
}

// Loader loads packages of a single module plus their standard-library
// dependencies, with no toolchain downloads: module-internal imports are
// typechecked recursively from source, standard-library imports go through
// go/importer's source importer (which reads GOROOT/src), so the loader
// works offline and needs no compiled export data.
type Loader struct {
	// ModuleRoot is the directory holding the module's go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset     *token.FileSet
	std      types.ImporterFrom
	pkgs     map[string]*Package // by import path
	stdCache map[string]*types.Package
	loading  map[string]bool // cycle guard
}

// NewLoader locates the enclosing module of dir by walking up to the
// nearest go.mod and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		pkgs:       map[string]*Package{},
		stdCache:   map[string]*types.Package{},
		loading:    map[string]bool{},
	}
	if src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom); ok {
		l.std = src
	} else {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return l, nil
}

// NewTestLoader returns a loader rooted at dir itself under a synthetic
// module path, for analysistest fixtures that carry no go.mod.
func NewTestLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModuleRoot: abs,
		ModulePath: "test",
		fset:       fset,
		pkgs:       map[string]*Package{},
		stdCache:   map[string]*types.Package{},
		loading:    map[string]bool{},
	}
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.std = src
	return l, nil
}

// LoadDir loads the single package rooted at dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	return l.loadDir(dir)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load expands the patterns (a directory, an import path below the
// module, or either followed by /...) and returns the matched packages in
// import-path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := pat
		if strings.HasPrefix(pat, l.ModulePath) {
			dir = filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/"))
		} else if !filepath.IsAbs(pat) {
			dir = filepath.Join(l.ModuleRoot, pat)
		}
		if !recursive {
			dirs[dir] = true
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if p != l.ModuleRoot {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil && p != dir {
					return filepath.SkipDir // nested module (e.g. tools/lint itself)
				}
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for dir := range dirs {
		hasGo, err := dirHasGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !hasGo {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// importPathOf maps a directory below the module root to its import path.
func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and typechecks the package in dir (memoized by path).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathOf(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p, dir) }),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info) // errors land in pkg.TypeErrors
	pkg.Files = files
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves one import: module-internal paths load recursively,
// "unsafe" maps to types.Unsafe, everything else is treated as standard
// library and typechecked from GOROOT/src.
func (l *Loader) importPkg(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if p, ok := l.stdCache[path]; ok {
		return p, nil
	}
	p, err := l.std.ImportFrom(path, fromDir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	l.stdCache[path] = p
	return p, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
