package framework

import "testing"

// TestLoadMainModule proves the stdlib-only loader can parse and fully
// typecheck the dependency-free main module offline: every package loads
// and none records a type error. This is the foundation the analyzers
// stand on; a typechecking gap would silently blind them.
func TestLoadMainModule(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repo; skipped in -short")
	}
	l, err := NewLoader("../../../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "bicriteria" {
		t.Fatalf("module path = %q, want bicriteria", l.ModulePath)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages, expected the full module (>30)", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: %d type errors, first: %v", p.Path, len(p.TypeErrors), p.TypeErrors[0])
		}
	}
}
