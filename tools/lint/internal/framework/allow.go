package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //lint:allow escape hatch.
//
// A directive of the form
//
//	//lint:allow <analyzer> <reason>
//
// suppresses that analyzer's diagnostics on the directive's own line
// (trailing comment) and on the first line after its comment group (doc
// comment or stand-alone comment line). The reason is mandatory: a
// directive without one is itself reported, so every suppression in the
// tree documents why the invariant may be broken there.

const allowPrefix = "//lint:allow"

// allowKey locates one suppression: a (file, line) pair plus the analyzer
// it silences.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// suppresses reports whether d is covered by a directive.
func (s allowSet) suppresses(d Diagnostic) bool {
	return s[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

// collectAllows scans every comment of the package for directives,
// returning the suppression set and one diagnostic per malformed
// directive (missing analyzer name or missing reason).
func collectAllows(pkg *Package) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		code := codeLines(pkg.Fset, f)
		for _, group := range f.Comments {
			groupEnd := pkg.Fset.Position(group.End())
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint", Message: "lint:allow directive names no analyzer"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: "lint:allow " + fields[0] + " gives no reason; a justification is mandatory"})
					continue
				}
				analyzer := fields[0]
				// A trailing directive covers its own line only; a
				// stand-alone comment group additionally covers the first
				// line after it (doc-comment position), so a directive
				// cannot silently leak past the statement it annotates.
				set[allowKey{pos.Filename, pos.Line, analyzer}] = true
				if !code[pos.Line] {
					set[allowKey{groupEnd.Filename, groupEnd.Line + 1, analyzer}] = true
				}
			}
		}
	}
	return set, bad
}

// codeLines marks every line on which a non-comment AST node starts,
// which is how a trailing comment (code before it on the line) is told
// apart from a stand-alone comment group.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}
