// Package framework is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough Analyzer/Pass machinery to
// express the repo's determinism invariants as static checks, load and
// typecheck the (equally dependency-free) main module with the standard
// library alone, and honour the //lint:allow escape hatch.
//
// The API deliberately mirrors go/analysis so the analyzers can migrate to
// the real framework unchanged the day an x/tools dependency becomes
// acceptable in this tree.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is the one-paragraph description printed by bicrit-lint -list.
	Doc string
	// Run applies the check to one package, reporting findings on pass.
	Run func(pass *Pass) error
}

// Pass carries one package through one analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path of the package under analysis.
	PkgPath string

	diags []Diagnostic
}

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil when unknown (for
// example inside a package that failed to fully typecheck).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ImportedPackage resolves an identifier to the package it names: the
// returned path is non-empty only when id is the local name of an import
// (e.g. the "rand" of `import "math/rand"`).
func (p *Pass) ImportedPackage(id *ast.Ident) string {
	if obj, ok := p.TypesInfo.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
	}
	return ""
}

// PkgFunc reports whether call is a call of the package-level function
// path.name (not a method, not a shadowed local). It resolves through the
// file's imports, so renamed imports are handled.
func (p *Pass) PkgFunc(call *ast.CallExpr, path, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return p.ImportedPackage(id) == path
}

// Run applies every analyzer to every package, drops diagnostics
// suppressed by a //lint:allow directive, appends one diagnostic per
// malformed directive, and returns the findings in (file, line, column,
// analyzer) order.
func Run(analyzers []*Analyzer, pkgs []*Package, filter func(a *Analyzer, pkgPath string) bool) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			if filter != nil && !filter(a, pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.Path,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
			seen := map[Diagnostic]bool{}
			for _, d := range pass.diags {
				if allows.suppresses(d) || seen[d] {
					continue
				}
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
