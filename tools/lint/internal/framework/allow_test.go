package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

func a() {
	_ = 1 //lint:allow nowallclock metrics-only reading of the wall clock
}

// The directive below covers the first line after its comment group.
//lint:allow maprange the updates commute
var x = map[string]int{}

func b() {
	_ = 2 //lint:allow
	_ = 3 //lint:allow seededrand
}
`

func parseAllowSrc(t *testing.T) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow_src.go", allowSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestCollectAllowsSuppression(t *testing.T) {
	pkg := parseAllowSrc(t)
	set, _ := collectAllows(pkg)

	diag := func(line int, analyzer string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: "allow_src.go", Line: line},
			Analyzer: analyzer,
		}
	}
	if !set.suppresses(diag(4, "nowallclock")) {
		t.Errorf("trailing directive does not suppress nowallclock on its own line")
	}
	if !set.suppresses(diag(9, "maprange")) {
		t.Errorf("stand-alone directive does not suppress maprange on the line after its group")
	}
	if set.suppresses(diag(4, "seededrand")) {
		t.Errorf("directive for nowallclock must not suppress seededrand")
	}
	if set.suppresses(diag(5, "nowallclock")) {
		t.Errorf("trailing directive must not leak to the next line")
	}
}

func TestCollectAllowsMalformed(t *testing.T) {
	pkg := parseAllowSrc(t)
	_, bad := collectAllows(pkg)
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive diagnostics, want 2: %v", len(bad), bad)
	}
	if got := bad[0].Message; !strings.Contains(got, "names no analyzer") {
		t.Errorf("bare directive: got %q, want a names-no-analyzer diagnostic", got)
	}
	if got := bad[1].Message; !strings.Contains(got, "lint:allow seededrand gives no reason") {
		t.Errorf("reasonless directive: got %q, want a gives-no-reason diagnostic", got)
	}
	for _, d := range bad {
		if d.Analyzer != "lint" {
			t.Errorf("malformed directive reported by %q, want analyzer \"lint\"", d.Analyzer)
		}
	}
}
