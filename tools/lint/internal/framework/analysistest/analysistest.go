// Package analysistest runs an analyzer over testdata packages and checks
// its diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the in-tree framework.
//
// A test package lives under testdata/src/<name>. Each expected
// diagnostic is declared on the offending line as
//
//	code() // want "regexp"
//
// Every diagnostic must match a want on its line and every want must be
// matched, so a test fails both when the analyzer stays silent on a
// positive case and when it fires on a negative one. //lint:allow
// directives are honoured exactly as in production, which is how the
// suppressed-case fixtures prove the escape hatch works.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bicriteria/tools/lint/internal/framework"
)

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and reports mismatches between diagnostics and want comments
// on t.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		t.Run(name, func(t *testing.T) {
			t.Helper()
			runOne(t, dir, a)
		})
	}
}

// TestData returns the absolute testdata directory of the caller's
// package, fatally failing t when the working directory is unreadable.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	return filepath.Join(wd, "testdata")
}

func runOne(t *testing.T, dir string, a *framework.Analyzer) {
	t.Helper()
	loader, err := framework.NewTestLoader(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags, err := framework.Run([]*framework.Analyzer{a}, []*framework.Package{pkg}, nil)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatalf("want comments: %v", err)
	}
	matched := map[*want]bool{}
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && !matched[w] && w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts the // want comments of every non-test Go file in
// dir, including those in _test-free fixtures with build-breaking names.
func collectWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, group := range f.Comments {
			for _, c := range group.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", path, m[1], err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &want{file: path, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
