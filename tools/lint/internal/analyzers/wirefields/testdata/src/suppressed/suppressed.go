// Package suppressed proves the escape hatch for wirefields.
package suppressed

// Legacy keeps one pre-discipline field marshaling under its Go name on
// purpose; the annotation documents the frozen wire name.
type Legacy struct {
	Name  string `json:"name"`
	Count int    //lint:allow wirefields wire name Count predates the tag discipline and is frozen by the v1 golden files
}
