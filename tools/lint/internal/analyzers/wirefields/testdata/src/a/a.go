// Package a exercises the wirefields analyzer: one json tag makes a
// struct a wire struct, and then every exported field needs a tag.
package a

// Report is a wire struct: Name's tag commits the whole struct.
type Report struct {
	Name     string  `json:"name"`
	Makespan float64 // want "field Makespan of wire struct Report has no json tag"
	JobID    int     // want "field JobID of wire struct Report has no json tag"
	hidden   bool    // unexported: invisible to encoding/json
	Skipped  string  `json:"-"`
}

// Plain carries no json tags at all, so it is not a wire struct.
type Plain struct {
	A int
	B string
}

// Meta is embedded below; it has no tags itself so it is not a wire
// struct on its own.
type Meta struct {
	K string
}

type header struct{}

// Embedded shows the embedded-field handling: an exported untagged
// embedded type is flagged, an unexported one is skipped.
type Embedded struct {
	Version int `json:"version"`
	header
	Meta // want "field Meta of wire struct Embedded has no json tag"
}

var _ = Report{hidden: false}
var _ = Embedded{header: header{}}
