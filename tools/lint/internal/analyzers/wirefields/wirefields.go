// Package wirefields pins the wire formats at the struct level.
//
// The repo's golden files freeze report, trace and scenario bytes; the
// structs behind them are recognizable because at least one field
// carries a json tag. On such a wire struct every exported field must
// carry an explicit json tag too — `json:"-"` included — because an
// untagged field silently enters the encoding under its Go name, so a
// rename or an innocent new field drifts the golden format without any
// reviewer seeing a format change. This is the testdata/api.golden
// discipline applied one level down.
package wirefields

import (
	"go/ast"
	"reflect"
	"strings"

	"bicriteria/tools/lint/internal/framework"
)

// Analyzer is the wirefields pass.
var Analyzer = &framework.Analyzer{
	Name: "wirefields",
	Doc: "every exported field of a wire struct (any struct with at least one json tag) " +
		"must carry an explicit json tag, json:\"-\" included",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			checkStruct(pass, ts.Name.Name, st)
			return true
		})
	}
	return nil
}

func checkStruct(pass *framework.Pass, name string, st *ast.StructType) {
	if !hasJSONTag(st) {
		return // not a wire struct
	}
	for _, field := range st.Fields.List {
		if jsonTagged(field) {
			continue
		}
		for _, fname := range fieldNames(field) {
			if !ast.IsExported(fname.name) {
				continue // invisible to encoding/json
			}
			pass.Reportf(fname.at.Pos(),
				"field %s of wire struct %s has no json tag; tag it explicitly (json:%q or json:\"-\") so the wire format cannot drift silently",
				fname.name, name, jsonName(fname.name))
		}
	}
}

// hasJSONTag reports whether any field of the struct carries a json tag.
func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if jsonTagged(field) {
			return true
		}
	}
	return false
}

// jsonTagged reports whether the field's struct tag has a json key.
func jsonTagged(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
	_, ok := tag.Lookup("json")
	return ok
}

// namedField pairs a field name with a position for reporting; embedded
// fields report at the embedded type.
type namedField struct {
	name string
	at   ast.Node
}

// fieldNames lists the declared names of a field, resolving an embedded
// field to its type name.
func fieldNames(field *ast.Field) []namedField {
	if len(field.Names) > 0 {
		out := make([]namedField, 0, len(field.Names))
		for _, id := range field.Names {
			out = append(out, namedField{id.Name, id})
		}
		return out
	}
	// Embedded field: unwrap *pkg.T / pkg.T / T to the bare type name.
	t := field.Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.SelectorExpr:
			return []namedField{{e.Sel.Name, e.Sel}}
		case *ast.Ident:
			return []namedField{{e.Name, e}}
		default:
			return nil
		}
	}
}

// jsonName suggests the conventional snake_case tag for a Go field name,
// keeping acronym runs together (JobID -> job_id).
func jsonName(field string) string {
	runes := []rune(field)
	var b strings.Builder
	for i, r := range runes {
		upper := r >= 'A' && r <= 'Z'
		if upper && i > 0 {
			prevLower := runes[i-1] >= 'a' && runes[i-1] <= 'z'
			nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
			if prevLower || nextLower {
				b.WriteByte('_')
			}
		}
		if upper {
			r = r - 'A' + 'a'
		}
		b.WriteRune(r)
	}
	return b.String()
}
