package wirefields_test

import (
	"testing"

	"bicriteria/tools/lint/internal/analyzers/wirefields"
	"bicriteria/tools/lint/internal/framework/analysistest"
)

func TestWirefields(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wirefields.Analyzer, "a", "suppressed")
}
