// Package a exercises the maprange analyzer: order-leaking map-iteration
// bodies are diagnostics, order-independent ones and the
// collect-then-sort idiom are not.
package a

import (
	"fmt"
	"sort"
)

func badAppend(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want "appends to names in map-iteration order"
	}
	return names
}

func badEmit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "calls fmt.Println once per map entry"
	}
}

func badWrite(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want "writes last in map-iteration order"
	}
	return last
}

func badReturn(m map[string]int) int {
	for _, v := range m {
		return v // want "returns from inside a map range"
	}
	return 0
}

func badFloatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "accumulates into sum in map-iteration order"
	}
	return sum
}

func badSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "sends on a channel in map-iteration order"
	}
}

func badGoroutine(m map[string]int) {
	for _, v := range m {
		go fmt.Println(v) // want "launches a goroutine per map entry"
	}
}

func goodCollectThenSort(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func goodNestedCollectSortAfterOuterLoop(ms []map[string]int) []string {
	var all []string
	for _, m := range ms {
		for k := range m {
			all = append(all, k)
		}
	}
	sort.Strings(all)
	return all
}

func goodIntCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
		n++
	}
	return n
}

func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func goodIndexedByLoopValue(m map[string]int, slots []int) {
	for _, idx := range m {
		slots[idx] = 1
	}
}

func goodInPlaceSortPerEntry(m map[string][]int) {
	for k := range m {
		sort.Ints(m[k])
	}
}

func goodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func goodLoopLocals(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		total := 0
		for _, v := range vs {
			total += v
		}
		n += total
	}
	return n
}

func badMaxByAssign(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v // want "writes best in map-iteration order"
		}
	}
	return best
}
