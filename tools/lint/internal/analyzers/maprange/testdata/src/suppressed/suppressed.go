// Package suppressed proves the escape hatch for maprange.
package suppressed

import "fmt"

func debugDump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) //lint:allow maprange debugging dump behind a flag; its output is never replayed or diffed
	}
}

func commutingGauges(m map[string]float64, set func(string, float64)) {
	for k, v := range m {
		set(k, v) //lint:allow maprange one gauge per key; Set is idempotent and commutes
	}
}
