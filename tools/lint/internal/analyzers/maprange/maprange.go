// Package maprange flags map iterations whose body leaks the map's
// nondeterministic order into observable state.
//
// Go randomizes map iteration order per run, so a `for k, v := range m`
// that appends to an outer slice, emits an event, writes output or sends
// on a channel produces a different ordering every execution — exactly
// the bug class the flight recorder's frozen total order exists to
// prevent. Order-independent bodies stay legal: writes into another map,
// delete, integer accumulation, and the collect-then-sort idiom (append
// the keys, then sort.Strings/slices.Sort before use). Everything else is
// a diagnostic, answerable either by sorting or by a reasoned
// //lint:allow maprange annotation.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"bicriteria/tools/lint/internal/framework"
)

// Analyzer is the maprange pass.
var Analyzer = &framework.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map bodies that append, emit, send or write outer state " +
		"in iteration order without a deterministic sort afterwards",
	Run: run,
}

// commutativeAssign lists the compound tokens whose repeated application
// is order-independent on integers.
var commutativeAssign = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.XOR_ASSIGN: true,
}

// sortFuncs enumerates the calls accepted as "a deterministic sort": the
// classic sort package entry points and their slices counterparts.
var sortFuncs = map[string][]string{
	"sort":   {"Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable"},
	"slices": {"Sort", "SortFunc", "SortStableFunc"},
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass}
			c.stmts(fd.Body.List, nil)
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
}

// stmts walks one statement list; trailing is the stack of statement
// suffixes that execute after the current block at every ancestor level,
// innermost first — the places a collect-then-sort loop may put its sort.
func (c *checker) stmts(list []ast.Stmt, trailing [][]ast.Stmt) {
	for i, s := range list {
		after := append([][]ast.Stmt{list[i+1:]}, trailing...)
		switch s := s.(type) {
		case *ast.RangeStmt:
			if c.isMap(s.X) {
				c.checkMapRange(s, after)
			}
			// Nested loops inside the body get their own walk.
			c.stmts(s.Body.List, after)
		case *ast.BlockStmt:
			c.stmts(s.List, after)
		case *ast.IfStmt:
			c.stmts(s.Body.List, after)
			if s.Else != nil {
				c.stmts([]ast.Stmt{s.Else}, after)
			}
		case *ast.ForStmt:
			c.stmts(s.Body.List, after)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					c.stmts(cl.Body, after)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					c.stmts(cl.Body, after)
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CommClause); ok {
					c.stmts(cl.Body, after)
				}
			}
		case *ast.LabeledStmt:
			c.stmts([]ast.Stmt{s.Stmt}, after)
		}
	}
}

func (c *checker) isMap(x ast.Expr) bool {
	t := c.pass.TypeOf(x)
	if t == nil {
		return false
	}
	// Ranging over a map pointer is illegal Go; only the direct map type
	// matters.
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange classifies every statement of the loop body.
func (c *checker) checkMapRange(loop *ast.RangeStmt, after [][]ast.Stmt) {
	// local tracks objects declared inside the loop (including the range
	// variables): writes to them cannot leak iteration order out.
	local := map[types.Object]bool{}
	for _, v := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
							local[obj] = true
						}
					}
				}
			}
		case *ast.FuncLit:
			return false // deferred bodies run outside iteration order
		}
		return true
	})

	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(s, local, after)
		case *ast.IncDecStmt:
			c.checkTarget(s.X, local, s.Pos(), "increments")
		case *ast.ExprStmt:
			c.checkBareCall(s, local)
		case *ast.DeferStmt:
			c.pass.Reportf(s.Pos(), "defers a call per map entry; the deferred stack runs in reverse iteration order")
		case *ast.SendStmt:
			c.pass.Reportf(s.Pos(), "sends on a channel in map-iteration order; collect into a slice and sort first")
		case *ast.ReturnStmt:
			if len(s.Results) > 0 {
				c.pass.Reportf(s.Pos(), "returns from inside a map range; the chosen element depends on nondeterministic iteration order")
			}
		case *ast.GoStmt:
			c.pass.Reportf(s.Pos(), "launches a goroutine per map entry in iteration order")
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// checkAssign vets one assignment inside a map-range body.
func (c *checker) checkAssign(s *ast.AssignStmt, local map[types.Object]bool, after [][]ast.Stmt) {
	if s.Tok == token.DEFINE {
		return // fresh loop-local variables
	}
	if s.Tok != token.ASSIGN {
		// Compound assignment: commutative integer accumulation is
		// order-independent; anything else (floats, strings, shifts) is not.
		for _, lhs := range s.Lhs {
			if c.safeWrite(lhs, local) {
				continue
			}
			if commutativeAssign[s.Tok] && c.isInteger(lhs) {
				continue
			}
			c.pass.Reportf(s.Pos(), "accumulates into %s in map-iteration order; only integer +=/-=/*=/&=/|=/^= is order-independent", exprString(lhs))
		}
		return
	}
	for i, lhs := range s.Lhs {
		if c.safeWrite(lhs, local) {
			continue
		}
		// x = append(x, ...) participates in the collect-then-sort idiom:
		// legal when a recognized sort of x follows the loop.
		if id, ok := lhs.(*ast.Ident); ok && i < len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isAppendTo(call, id) {
				if c.sortedAfter(id, after) {
					continue
				}
				c.pass.Reportf(s.Pos(), "appends to %s in map-iteration order without a deterministic sort after the loop", id.Name)
				continue
			}
		}
		c.pass.Reportf(s.Pos(), "writes %s in map-iteration order; the final value depends on nondeterministic ordering", exprString(lhs))
	}
}

// checkBareCall vets an expression statement: any bare call other than
// delete/clear on a map is treated as an ordered side effect (an Observer
// notification, an event emission, output).
func (c *checker) checkBareCall(s *ast.ExprStmt, local map[types.Object]bool) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") {
		if c.pass.TypesInfo.Uses[id] == nil || isBuiltin(c.pass.TypesInfo.Uses[id]) {
			return
		}
	}
	// An in-place sort of one entry's own state (sort.Slice(m[k], ...),
	// slices.Sort(v)) permutes per-entry data and leaks no order.
	if c.isSortCall(call) && len(call.Args) > 0 && c.usesLocal(call.Args[0], local) {
		return
	}
	c.pass.Reportf(s.Pos(), "calls %s once per map entry in iteration order; emit from a sorted slice instead", exprString(call.Fun))
}

func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// checkTarget vets the operand of an IncDecStmt.
func (c *checker) checkTarget(x ast.Expr, local map[types.Object]bool, pos token.Pos, verb string) {
	if c.safeWrite(x, local) || c.isInteger(x) {
		return
	}
	c.pass.Reportf(pos, "%s %s in map-iteration order", verb, exprString(x))
}

// safeWrite reports whether assigning to lhs cannot leak iteration order:
// a loop-local variable, an indexed slot whose index derives from the
// loop variables (each entry writes its own cell — m2[k], out[idx]), or a
// field/pointee of a loop-local value.
func (c *checker) safeWrite(lhs ast.Expr, local map[types.Object]bool) bool {
	switch e := lhs.(type) {
	case *ast.Ident:
		return c.isLocal(e, local)
	case *ast.IndexExpr:
		return c.usesLocal(e.Index, local) || c.baseLocal(e.X, local)
	case *ast.SelectorExpr:
		return c.baseLocal(e.X, local)
	case *ast.StarExpr:
		return c.baseLocal(e.X, local)
	}
	return false
}

// usesLocal reports whether the expression mentions any loop-local
// identifier.
func (c *checker) usesLocal(x ast.Expr, local map[types.Object]bool) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.isLocal(id, local) {
			found = true
		}
		return !found
	})
	return found
}

// baseLocal unwraps selectors, indexes, stars and parens down to the
// base identifier and reports whether it is loop-local.
func (c *checker) baseLocal(x ast.Expr, local map[types.Object]bool) bool {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return c.isLocal(e, local)
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		default:
			return false
		}
	}
}

func (c *checker) isLocal(x ast.Expr, local map[types.Object]bool) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	return obj != nil && local[obj]
}

func (c *checker) isInteger(x ast.Expr) bool {
	t := c.pass.TypeOf(x)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isAppendTo reports whether call is append(target, ...).
func isAppendTo(call *ast.CallExpr, target *ast.Ident) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && arg.Name == target.Name
}

// isSortCall reports whether call is one of the recognized sort entry
// points.
func (c *checker) isSortCall(call *ast.CallExpr) bool {
	for path, names := range sortFuncs {
		for _, name := range names {
			if c.pass.PkgFunc(call, path, name) {
				return true
			}
		}
	}
	return false
}

// sortedAfter scans the statement suffixes that run after the loop for a
// recognized sort call taking target as an argument.
func (c *checker) sortedAfter(target *ast.Ident, after [][]ast.Stmt) bool {
	obj := c.pass.TypesInfo.Uses[target]
	for _, suffix := range after {
		for _, s := range suffix {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				if c.isSortCall(call) {
					for _, arg := range call.Args {
						if id, ok := arg.(*ast.Ident); ok && (c.pass.TypesInfo.Uses[id] == obj && obj != nil || id.Name == target.Name) {
							found = true
							return false
						}
					}
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// exprString renders a short identifier-ish description of an expression
// for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun)
	default:
		return "expression"
	}
}
