package maprange_test

import (
	"testing"

	"bicriteria/tools/lint/internal/analyzers/maprange"
	"bicriteria/tools/lint/internal/framework/analysistest"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maprange.Analyzer, "a", "suppressed")
}
