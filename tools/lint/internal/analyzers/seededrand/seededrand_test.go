package seededrand_test

import (
	"testing"

	"bicriteria/tools/lint/internal/analyzers/seededrand"
	"bicriteria/tools/lint/internal/framework/analysistest"
)

func TestSeededrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), seededrand.Analyzer, "a", "suppressed")
}
