// Package suppressed proves the escape hatch for seededrand.
package suppressed

import "math/rand"

func jitter() int {
	return rand.Intn(10) //lint:allow seededrand non-replayed startup jitter; determinism is irrelevant here
}
