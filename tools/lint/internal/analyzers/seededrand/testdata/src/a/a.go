// Package a exercises the seededrand analyzer: global-source draws are
// diagnostics, seeded *rand.Rand streams are the approved idiom.
package a

import (
	"math/rand"
	v2 "math/rand/v2"
)

func bad() int {
	rand.Seed(42)                      // want "global math/rand.Seed"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle"
	_ = rand.Float64()                 // want "global math/rand.Float64"
	_ = rand.Perm(10)                  // want "global math/rand.Perm"
	return rand.Intn(10)               // want "global math/rand.Intn"
}

func badV2() int {
	_ = v2.Float64()   // want "global math/rand/v2.Float64"
	return v2.IntN(10) // want "global math/rand/v2.IntN"
}

func good() int {
	r := rand.New(rand.NewSource(1))
	z := rand.NewZipf(r, 2, 1, 100)
	_ = z.Uint64()
	_ = r.Perm(4)
	r2 := v2.New(v2.NewPCG(1, 2))
	_ = r2.IntN(3)
	return r.Intn(10)
}
