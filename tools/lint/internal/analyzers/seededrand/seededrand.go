// Package seededrand forbids the process-global math/rand source.
//
// Every random draw in a replayable system must come from a seeded
// *rand.Rand derived from the scenario seed (the workload and faults
// samplers thread them through), so two runs of the same scenario see the
// same randomness. The package-level convenience functions of math/rand
// and math/rand/v2 draw from a shared, runtime-seeded source — any call
// makes output depend on process history. rand.Seed is forbidden for the
// complementary reason: it mutates the global source under every other
// caller's feet. Constructors (rand.New, rand.NewSource, rand.NewZipf,
// rand.NewPCG, rand.NewChaCha8) stay legal — they are how seeded streams
// are built.
package seededrand

import (
	"go/ast"

	"bicriteria/tools/lint/internal/framework"
)

// forbidden maps each rand package to its global-source functions.
var forbidden = map[string][]string{
	"math/rand": {
		"Seed", "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "ExpFloat64",
		"NormFloat64", "Perm", "Shuffle", "Read",
	},
	"math/rand/v2": {
		"Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "ExpFloat64", "NormFloat64",
		"Perm", "Shuffle", "N",
	},
}

// Analyzer is the seededrand pass.
var Analyzer = &framework.Analyzer{
	Name: "seededrand",
	Doc: "forbid top-level math/rand functions and rand.Seed; randomness must flow " +
		"from seeded *rand.Rand values derived from the scenario seed",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for path, names := range forbidden {
				for _, name := range names {
					if pass.PkgFunc(call, path, name) {
						pass.Reportf(call.Pos(),
							"global %s.%s draws from the process-wide source; thread a seeded *rand.Rand instead (rand.New(rand.NewSource(seed)))",
							path, name)
						return true
					}
				}
			}
			return true
		})
	}
	return nil
}
