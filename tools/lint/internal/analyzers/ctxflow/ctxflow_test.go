package ctxflow_test

import (
	"testing"

	"bicriteria/tools/lint/internal/analyzers/ctxflow"
	"bicriteria/tools/lint/internal/framework/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "a", "mainpkg", "suppressed")
}
