// Package main is exempt from both ctxflow rules: the binary entry point
// is exactly where the root context is legitimately minted.
package main

import "context"

func Run() {
	ctx := context.Background()
	_ = ctx
}

func main() {
	Run()
}
