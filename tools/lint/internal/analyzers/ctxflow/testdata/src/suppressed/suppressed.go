// Package suppressed proves the escape hatch for ctxflow.
package suppressed

import "context"

func Run() { //lint:allow ctxflow legacy context-free wrapper; RunContext is the cancellable entry point
	RunContext(context.Background()) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

func RunContext(ctx context.Context) {
	_ = ctx
}
