// Package a exercises the ctxflow analyzer: exported Run*/Replay* entry
// points must accept a context.Context, and fresh root contexts are
// forbidden outside package main.
package a

import "context"

type Engine struct{}

func (e *Engine) Run() error { // want "exported entry point Run does not accept a context.Context"
	return nil
}

func (e *Engine) RunContext(ctx context.Context) error {
	_ = ctx
	return nil
}

func ReplayAll() { // want "exported entry point ReplayAll does not accept a context.Context"
}

func ReplayFrom(ctx context.Context, seq uint64) error {
	_ = ctx
	_ = seq
	return nil
}

func detachTODO() context.Context {
	return context.TODO() // want "mints a root context mid-stack"
}

func detachBackground() context.Context {
	ctx := context.Background() // want "mints a root context mid-stack"
	return ctx
}

func run() {} // unexported: not an entry point

func Execute() {} // exported but neither Run* nor Replay*: out of scope
