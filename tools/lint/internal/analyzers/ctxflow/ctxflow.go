// Package ctxflow locks in the cancellation plumbing threaded through the
// deterministic stack.
//
// Two rules. First, an exported Run*/Replay* entry point of a
// deterministic package must accept a context.Context — replays are
// long-running and must stay abortable end to end. Second,
// context.Background() and context.TODO() are forbidden outside package
// main: minting a fresh root context mid-stack silently detaches the
// work below it from the caller's cancellation, which is exactly how a
// drain deadline stops reaching a replay. Legacy context-free wrappers
// that intentionally supply the root context carry a reasoned
// //lint:allow ctxflow annotation, so every detachment point in the tree
// is documented.
package ctxflow

import (
	"go/ast"
	"strings"

	"bicriteria/tools/lint/internal/framework"
)

// Analyzer is the ctxflow pass.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "exported Run*/Replay* entry points in deterministic packages must accept " +
		"context.Context, and context.Background()/TODO() is forbidden outside package main",
	Run: run,
}

func run(pass *framework.Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !isMain && isEntryPoint(fd) && !hasContextParam(pass, fd) {
				pass.Reportf(fd.Name.Pos(),
					"exported entry point %s does not accept a context.Context; replays must stay cancellable end to end",
					fd.Name.Name)
			}
		}
		if isMain {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if pass.PkgFunc(call, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() mints a root context mid-stack, detaching the work below from the caller's cancellation; accept and propagate a ctx parameter instead",
						name)
				}
			}
			return true
		})
	}
	return nil
}

// isEntryPoint reports whether fd is an exported Run*/Replay* function or
// method.
func isEntryPoint(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if !ast.IsExported(name) {
		return false
	}
	return strings.HasPrefix(name, "Run") || strings.HasPrefix(name, "Replay")
}

// hasContextParam reports whether any parameter of fd has type
// context.Context.
func hasContextParam(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if t.String() == "context.Context" {
			return true
		}
	}
	return false
}
