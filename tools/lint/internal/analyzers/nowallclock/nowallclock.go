// Package nowallclock forbids reading the wall clock inside deterministic
// packages.
//
// The repo's replay invariant — concurrent replays byte-identical to
// sequential ones — holds only while scheduling decisions, traces and
// reports are pure functions of the scenario and its seeds. A single
// time.Now() or timer on a hot path couples the outcome to the machine's
// clock and breaks replays silently. Simulated time must flow from the
// event clock; wall-clock readings are legitimate only when they feed
// observability (the obs histograms) or the serve pacer, which is exactly
// what the //lint:allow nowallclock escape hatch documents.
package nowallclock

import (
	"go/ast"

	"bicriteria/tools/lint/internal/framework"
)

// forbidden lists the package time functions that read or schedule against
// the wall clock. Pure constructors and conversions (time.Duration,
// time.Unix, ParseDuration, ...) stay legal.
var forbidden = []string{
	"Now", "Since", "Until",
	"After", "AfterFunc", "Tick", "NewTimer", "NewTicker", "Sleep",
}

// Analyzer is the nowallclock pass.
var Analyzer = &framework.Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/time.Since/timers in deterministic packages; " +
		"simulated time must come from the event clock, wall clock only from annotated metrics sites",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range forbidden {
				if pass.PkgFunc(call, "time", name) {
					pass.Reportf(call.Pos(),
						"wall-clock call time.%s in deterministic package %s; use the simulated event clock, or annotate a metrics-only reading with //lint:allow nowallclock <reason>",
						name, pass.PkgPath)
					break
				}
			}
			return true
		})
	}
	return nil
}
