// Package suppressed proves the escape hatch: a reasoned //lint:allow
// directive silences the analyzer on that line, trailing or above.
package suppressed

import "time"

func metricsOnly() {
	start := time.Now() //lint:allow nowallclock latency histogram feed; never reaches a scheduling decision
	//lint:allow nowallclock observability reading on the line below
	elapsed := time.Since(start)
	_ = elapsed
}
