// Package a exercises the nowallclock analyzer: wall-clock reads and
// timers are diagnostics, pure time constructions are not.
package a

import (
	"time"
	clock "time"
)

func bad() {
	t := time.Now()         // want "wall-clock call time.Now"
	_ = time.Since(t)       // want "wall-clock call time.Since"
	_ = time.Until(t)       // want "wall-clock call time.Until"
	time.Sleep(time.Second) // want "wall-clock call time.Sleep"
	<-time.After(0)         // want "wall-clock call time.After"
	_ = time.NewTimer(0)    // want "wall-clock call time.NewTimer"
	_ = time.NewTicker(1)   // want "wall-clock call time.NewTicker"
}

func badRenamedImport() {
	_ = clock.Now() // want "wall-clock call time.Now"
}

func good() {
	// Constructing and converting times is pure: no clock is read.
	d := 3 * time.Second
	_ = time.Unix(0, 0)
	_, _ = time.ParseDuration("1s")
	_ = d.Seconds()
}

// time is shadowed here: a local helper named like the package is not the
// wall clock.
func goodShadow() {
	time := struct{ Now func() int }{Now: func() int { return 0 }}
	_ = time.Now()
}
