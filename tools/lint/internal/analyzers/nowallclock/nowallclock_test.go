package nowallclock_test

import (
	"testing"

	"bicriteria/tools/lint/internal/analyzers/nowallclock"
	"bicriteria/tools/lint/internal/framework/analysistest"
)

func TestNowallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nowallclock.Analyzer, "a", "suppressed")
}
