package bicriteria_test

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// updateAPI regenerates the public-API golden:
//
//	go test -run TestPublicAPIGolden -update-api .
var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.golden with the current go doc output")

// TestPublicAPIGolden pins the facade's public surface: the `go doc
// bicriteria` listing (package comment plus every exported declaration)
// is diffed against testdata/api.golden, so an accidental rename,
// removal or signature change of a facade identifier fails CI instead of
// slipping into a release. Intentional API changes regenerate the golden
// with -update-api.
func TestPublicAPIGolden(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cmd := exec.Command(goBin, "doc", ".")
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go doc failed: %v\n%s", err, out)
	}
	path := filepath.Join("testdata", "api.golden")
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing API golden (regenerate with: go test -run TestPublicAPIGolden -update-api .): %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("the public API drifted from testdata/api.golden\n"+
			"if the change is intentional, regenerate with: go test -run TestPublicAPIGolden -update-api .\n"+
			"--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}
