// Package logx builds the structured loggers of the CLIs: a thin wrapper
// over log/slog that resolves the shared -log-level/-log-json flags. The
// zero configuration (empty level) returns a discard logger, so every
// layer can log unconditionally while staying byte-silent by default —
// the property the CLI goldens rely on.
package logx

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// New builds a logger writing to w at the named level ("debug", "info",
// "warn", "error"; case-insensitive), as logfmt-style text or JSON. An
// empty level returns the discard logger: silence is the default.
func New(w io.Writer, level string, json bool) (*slog.Logger, error) {
	if level == "" {
		return Discard(), nil
	}
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}
