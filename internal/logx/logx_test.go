package logx

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("below threshold")
	l.Warn("at threshold", "k", "v")
	out := buf.String()
	if strings.Contains(out, "below threshold") {
		t.Errorf("info record emitted at warn level:\n%s", out)
	}
	if !strings.Contains(out, "at threshold") || !strings.Contains(out, "k=v") {
		t.Errorf("warn record missing or unstructured:\n%s", out)
	}

	// "warning" is accepted as an alias.
	if _, err := New(&buf, "warning", false); err != nil {
		t.Errorf("warning alias rejected: %v", err)
	}
	if _, err := New(&buf, "loud", false); err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Errorf("bad level: err = %v", err)
	}
}

func TestNewJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "answer", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON handler emitted non-JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["answer"] != float64(42) {
		t.Fatalf("record = %v", rec)
	}
}

func TestEmptyLevelIsSilent(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "", false)
	if err != nil {
		t.Fatal(err)
	}
	l.Error("even errors are silenced")
	if buf.Len() != 0 {
		t.Fatalf("empty level wrote output: %q", buf.String())
	}
	Discard().Error("discard logger must swallow everything")
}
