package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomRegistry fills a registry with a random mix of counter, gauge and
// histogram families, random label sets and random values, and returns
// the expected sample rows keyed by "name{sortedlabels}".
func randomRegistry(r *rand.Rand) (*Registry, map[string]float64) {
	reg := NewRegistry()
	want := make(map[string]float64)
	key := func(name string, labels []Label) string {
		return name + "{" + seriesKey(sortLabels(labelMap(labels))) + "}"
	}
	labelValues := []string{"a", "b c", `with"quote`, `back\slash`, "new\nline", "z"}
	families := 1 + r.Intn(6)
	for f := 0; f < families; f++ {
		name := fmt.Sprintf("bicrit_rt_fam_%d", f)
		help := []string{"", "plain help", `escaped \ help`, "multi\nline"}[r.Intn(4)]
		nLabels := r.Intn(3)
		series := 1 + r.Intn(3)
		for s := 0; s < series; s++ {
			labels := make([]Label, nLabels)
			for i := range labels {
				labels[i] = L(fmt.Sprintf("l%d", i), labelValues[(s+i*2+r.Intn(2))%len(labelValues)])
			}
			switch f % 3 {
			case 0:
				c := reg.Counter(name, help, labels...)
				c.Add(math.Trunc(r.Float64()*1e6) / 16)
				want[key(name, labels)] = c.Value()
			case 1:
				g := reg.Gauge(name, help, labels...)
				v := r.NormFloat64() * 1e4
				if r.Intn(8) == 0 {
					v = math.Inf(1)
				}
				g.Set(v)
				want[key(name, labels)] = v
			case 2:
				h := reg.Histogram(name, help, LogBuckets(1e-3, 1e3, 2+r.Intn(20)), labels...)
				for i := 0; i < r.Intn(40); i++ {
					h.Observe(math.Exp(r.NormFloat64() * 4))
				}
				want[key(name+"_count", labels)] = float64(h.Count())
				want[key(name+"_sum", labels)] = h.Sum()
			}
		}
	}
	return reg, want
}

// labelMap converts a label slice to the map shape sortLabels expects.
func labelMap(labels []Label) map[string]string {
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Name] = l.Value
	}
	return m
}

// TestParseTextRoundTripsRandomRegistries is the round-trip property:
// whatever a random registry renders, ParseText must accept and hand back
// with the same families, types, helps, label sets and values —
// histograms included, whose +Inf bucket and _count must agree by
// construction.
func TestParseTextRoundTripsRandomRegistries(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		reg, want := randomRegistry(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		fams, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ParseText rejected our own output: %v\n%s", seed, err, buf.String())
		}

		got := make(map[string]float64)
		for _, fam := range fams {
			for _, row := range fam.Rows {
				got[row.Name+"{"+seriesKey(row.Labels)+"}"] = row.Value
			}
		}
		for k, v := range want {
			gv, ok := got[k]
			if !ok {
				t.Fatalf("seed %d: sample %s missing from parse\n%s", seed, k, buf.String())
			}
			if gv != v && !(math.IsInf(v, 1) && math.IsInf(gv, 1)) {
				t.Errorf("seed %d: sample %s = %g, want %g", seed, k, gv, v)
			}
		}

		// Families round-trip their identity: name, type and help.
		reg.mu.Lock()
		for name, f := range reg.families {
			found := false
			for _, fam := range fams {
				if fam.Name != name {
					continue
				}
				found = true
				if fam.Type != f.typ {
					t.Errorf("seed %d: family %s type = %s, want %s", seed, name, fam.Type, f.typ)
				}
				if fam.Help != f.help {
					t.Errorf("seed %d: family %s help = %q, want %q", seed, name, fam.Help, f.help)
				}
			}
			if !found {
				t.Errorf("seed %d: family %s missing from parse", seed, name)
			}
		}
		reg.mu.Unlock()
	}
}

// TestParseTextRowsCarryHistogramInternals pins the row shape bicrit top
// depends on: bucket rows keep their le label and _bucket suffix, and
// HistogramRows reassembles them into le-ordered cumulative buckets.
func TestParseTextRowsCarryHistogramInternals(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("bicrit_rt_hist_seconds", "h", LogBuckets(1e-2, 1e2, 4), L("phase", "knap"))
	for _, v := range []float64{0.05, 0.5, 5, 50, 1e4} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("got %d families, want 1", len(fams))
	}
	hists := HistogramRows(fams[0])
	if len(hists) != 1 {
		t.Fatalf("got %d histogram series, want 1", len(hists))
	}
	hs := hists[0]
	if hs.Count != 5 || len(hs.Buckets) != 6 {
		t.Fatalf("count=%g buckets=%d, want 5 and 6", hs.Count, len(hs.Buckets))
	}
	if !math.IsInf(hs.Buckets[len(hs.Buckets)-1].Le, 1) {
		t.Fatalf("last bucket le = %g, want +Inf", hs.Buckets[len(hs.Buckets)-1].Le)
	}
	if hs.Buckets[len(hs.Buckets)-1].Cum != 5 {
		t.Fatalf("+Inf cum = %g, want 5", hs.Buckets[len(hs.Buckets)-1].Cum)
	}
	if got := hs.Label("phase"); got != "knap" {
		t.Fatalf("phase label = %q, want knap", got)
	}
}
