package obs

import (
	"math"
	"math/rand"
	"testing"

	"bicriteria/internal/stats"
)

// TestBucketQuantileHandCases pins the nearest-rank semantics on a small
// hand-built distribution.
func TestBucketQuantileHandCases(t *testing.T) {
	// 10 samples: 3 at or below 1, 7 at or below 10, 9 at or below 100,
	// 1 beyond every finite bound.
	buckets := []Bucket{
		{Le: 1, Cum: 3},
		{Le: 10, Cum: 7},
		{Le: 100, Cum: 9},
		{Le: math.Inf(1), Cum: 10},
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},              // rank 1 lands in the first bucket
		{0.3, 1},            // rank 3 is still the first bucket
		{0.31, 10},          // rank 4 crosses into the second
		{0.5, 10},           // rank 5
		{0.7, 10},           // rank 7 is the last of the second bucket
		{0.9, 100},          // rank 9
		{0.95, math.Inf(1)}, // rank 10 lives in the overflow bucket
		{1, math.Inf(1)},
		{-1, 1}, // clamped to p=0
		{2, math.Inf(1)},
	}
	for _, c := range cases {
		if got := BucketQuantile(c.p, buckets); got != c.want {
			t.Errorf("BucketQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := BucketQuantile(0.5, nil); got != 0 {
		t.Errorf("empty buckets: got %g, want 0", got)
	}
	if got := BucketQuantile(0.5, []Bucket{{Le: 1, Cum: 0}, {Le: math.Inf(1), Cum: 0}}); got != 0 {
		t.Errorf("zero-count buckets: got %g, want 0", got)
	}
	// Unsorted input is sorted, not trusted.
	shuffled := []Bucket{buckets[2], buckets[0], buckets[3], buckets[1]}
	if got := BucketQuantile(0.5, shuffled); got != 10 {
		t.Errorf("shuffled buckets: got %g, want 10", got)
	}
}

// TestBucketQuantileBoundaryExactOnLogBuckets is the cross-package
// contract: a stats.Histogram mirrored into the registry via SetFrom
// (the exact path the serve layer uses) must yield bit-identical
// quantiles whether asked directly or estimated from the scraped
// cumulative buckets. Exactness holds because both sides use the
// nearest-rank rule over the same log-spaced bucket geometry and return
// bucket boundaries, never interpolations.
func TestBucketQuantileBoundaryExactOnLogBuckets(t *testing.T) {
	const lo, hi, nb = 1e-2, 1e3, 24
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		sh, err := stats.NewHistogram(lo, hi, nb)
		if err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		oh := reg.Histogram("bicrit_q_seconds", "q", LogBuckets(lo, hi, nb))
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			// Heavy-tailed samples that exercise underflow and overflow too.
			sh.Observe(math.Exp(r.NormFloat64() * 5))
		}
		oh.SetFrom(sh.Snapshot(), sh.Sum())

		cum, _, _ := oh.snapshot()
		bounds := oh.bounds
		buckets := make([]Bucket, len(cum))
		for i := range bounds {
			buckets[i] = Bucket{Le: bounds[i], Cum: float64(cum[i])}
		}
		buckets[len(cum)-1] = Bucket{Le: math.Inf(1), Cum: float64(cum[len(cum)-1])}

		for p := 0.0; p <= 1.0; p += 1.0 / 64 {
			want := sh.Quantile(p)
			got := BucketQuantile(p, buckets)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("seed %d n %d p %g: BucketQuantile = %v, stats.Quantile = %v", seed, n, p, got, want)
			}
		}
	}
}
