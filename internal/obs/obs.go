// Package obs is the shared observability layer of the library: a
// dependency-free Prometheus-style metrics registry and a deterministic
// structured-event trace sink, wired through every runtime layer
// (cluster, grid, serve) and the scenario runner.
//
// The registry holds counters, gauges and histograms under stable,
// fully-qualified metric names with ordered label sets, and renders them
// in the Prometheus text exposition format (WritePrometheus) with
// deterministic ordering: families sorted by name, series sorted by
// label value. Histograms reuse the log-spaced bucket geometry of
// stats.Histogram (LogBuckets), so the scrape schema matches the
// distributions the JSON /metrics endpoint already exposes. ParseText is
// the matching format validator, used by the golden tests and usable
// against any scrape body.
//
// The trace sink (Sink) records the scheduling events of a replay —
// batches, routing decisions, kills, migrations, drains — stamped with
// simulated time, and renders them as JSONL (one event per line) or as
// Chrome trace-event JSON viewable in perfetto, one track per cluster
// shard. Sinks sort events under a total deterministic order before
// rendering, so a concurrent replay emits bytes identical to a
// sequential one.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"bicriteria/internal/stats"
)

// Label is one name/value pair of a metric series. Labels are rendered
// in the order they were supplied, which must therefore be consistent
// across lookups of the same family.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// MetricType is the exposition TYPE of a family.
type MetricType string

// Metric types of the text exposition format.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; build with NewRegistry. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric family: a type, a help line and its series.
type family struct {
	name    string
	help    string
	typ     MetricType
	bounds  []float64 // histogram families only: shared bucket bounds
	series  map[string]metric
	ordered []string // series keys in creation order, sorted at render
}

// metric is one series of a family.
type metric interface {
	labels() []Label
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family, creating it on first use, and checks that
// later lookups agree on the type (a name registered as a counter cannot
// come back as a gauge).
func (r *Registry) lookup(name, help string, typ MetricType) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// seriesKey renders the label values into the map key that identifies a
// series inside its family.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// Counter returns the counter series of the family, creating family and
// series on first use. Counters are cumulative and must only go up.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, TypeCounter)
	key := seriesKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{lbl: labels}
	f.series[key] = c
	f.ordered = append(f.ordered, key)
	return c
}

// Gauge returns the gauge series of the family, creating family and
// series on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, TypeGauge)
	key := seriesKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{lbl: labels}
	f.series[key] = g
	f.ordered = append(f.ordered, key)
	return g
}

// Histogram returns the histogram series of the family, creating family
// and series on first use. The bounds are the strictly increasing upper
// bucket bounds (an implicit +Inf bucket is always appended); every
// series of one family shares the bounds of the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, TypeHistogram)
	if f.bounds == nil {
		for i := 1; i < len(bounds); i++ {
			if !(bounds[i] > bounds[i-1]) {
				panic(fmt.Sprintf("obs: histogram %q bounds are not strictly increasing", name))
			}
		}
		f.bounds = append([]float64(nil), bounds...)
	}
	key := seriesKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{lbl: labels, bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	f.series[key] = h
	f.ordered = append(f.ordered, key)
	return h
}

// Counter is a monotone cumulative metric.
type Counter struct {
	mu  sync.Mutex
	lbl []Label
	v   float64
}

func (c *Counter) labels() []Label { return c.lbl }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative or NaN deltas are ignored (a
// counter never goes down).
func (c *Counter) Add(delta float64) {
	if !(delta > 0) {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Sync pins the counter to an externally maintained monotone total (the
// serve layer keeps its admission counters under its own mutex and
// mirrors them at scrape time). Values below the current one are
// ignored, preserving monotonicity.
func (c *Counter) Sync(total float64) {
	c.mu.Lock()
	if total > c.v {
		c.v = total
	}
	c.mu.Unlock()
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	mu  sync.Mutex
	lbl []Label
	v   float64
}

func (g *Gauge) labels() []Label { return g.lbl }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the gauge value.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a cumulative-bucket distribution metric: counts of
// samples at or below each upper bound, plus sum and count, rendered in
// the Prometheus histogram convention.
type Histogram struct {
	mu     sync.Mutex
	lbl    []Label
	bounds []float64 // upper bounds; +Inf is implicit at the end
	counts []uint64  // len(bounds)+1; per-bucket (non-cumulative) counts
	sum    float64
	n      uint64
}

func (h *Histogram) labels() []Label { return h.lbl }

// Observe adds one sample. NaN samples are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the bucket with le >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// SetFrom replaces the histogram's contents with a stats.Histogram
// snapshot whose bucket shape matches the bounds this histogram was
// registered with (LogBuckets of the same lo/hi/buckets): underflow
// lands in the first bucket, overflow in +Inf. The serve layer uses this
// to mirror its recomputed-per-scrape JSON distributions into the
// Prometheus registry; the mirrored totals only ever grow (done jobs
// never leave the set), so the rendered series stays monotone.
func (h *Histogram) SetFrom(snap stats.HistogramSnapshot, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.counts[0] = uint64(snap.Under)
	for i, b := range snap.Buckets {
		if i+1 < len(h.counts) {
			h.counts[i+1] += uint64(b.Count)
		} else {
			h.counts[len(h.counts)-1] += uint64(b.Count)
		}
	}
	h.counts[len(h.counts)-1] += uint64(snap.Over)
	h.n = uint64(snap.Count)
	h.sum = sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts (one per bound, then +Inf),
// the sum and the total count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	run := uint64(0)
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.n
}

// LogBuckets returns the upper bucket bounds of a log-spaced histogram
// covering [lo, hi) with the given bucket count — the exact bucket
// geometry of stats.NewHistogram(lo, hi, buckets), with lo itself
// prepended so a Prometheus first bucket captures what stats counts as
// underflow. The returned slice has buckets+1 bounds; the +Inf bucket
// the registry appends captures the overflow.
func LogBuckets(lo, hi float64, buckets int) []float64 {
	ratio := math.Pow(hi/lo, 1/float64(buckets))
	bounds := make([]float64, buckets+1)
	bounds[0] = lo
	for i := 1; i <= buckets; i++ {
		bounds[i] = lo * math.Pow(ratio, float64(i))
	}
	return bounds
}

// TimeBuckets is the standard latency bucket shape of the hot-path
// timing histograms: 1µs to 10s in 28 log-spaced buckets.
func TimeBuckets() []float64 { return LogBuckets(1e-6, 10, 28) }

// PhaseTimer returns a phase-labeled timing callback over one histogram
// family: calling the function observes seconds under {label: phase}.
// It is the hook shape core.Options.Timing expects, letting the DEMT
// internals record knapsack and compaction time without importing obs.
func (r *Registry) PhaseTimer(name, help, label string) func(phase string, seconds float64) {
	return func(phase string, seconds float64) {
		r.Histogram(name, help, TimeBuckets(), L(label, phase)).Observe(seconds)
	}
}
