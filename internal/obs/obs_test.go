package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"bicriteria/internal/stats"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bicrit_test_total", "help", L("kind", "a"))
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters never go down
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	c.Sync(10)
	c.Sync(5) // ignored: below current total
	if got := c.Value(); got != 10 {
		t.Fatalf("after Sync, counter = %g, want 10", got)
	}
	if again := r.Counter("bicrit_test_total", "help", L("kind", "a")); again != c {
		t.Fatalf("second lookup returned a different series")
	}

	g := r.Gauge("bicrit_test_gauge", "help")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("bicrit_test_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("bicrit_test_total", "help")
}

func TestLogBucketsMatchStatsGeometry(t *testing.T) {
	const lo, hi, n = 1e-2, 1e6, 40
	bounds := LogBuckets(lo, hi, n)
	if len(bounds) != n+1 {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), n+1)
	}
	h, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	// bounds[0] is lo (the underflow cut); bounds[i] for i >= 1 must be the
	// upper bound of stats bucket i-1.
	if bounds[0] != lo {
		t.Fatalf("bounds[0] = %g, want %g", bounds[0], lo)
	}
	for i, b := range snap.Buckets {
		if rel := math.Abs(bounds[i+1]-b.Hi) / b.Hi; rel > 1e-12 {
			t.Fatalf("bounds[%d] = %g, stats bucket hi = %g", i+1, bounds[i+1], b.Hi)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bicrit_test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100, math.NaN()} {
		h.Observe(v)
	}
	cum, sum, n := h.snapshot()
	if n != 5 {
		t.Fatalf("count = %d, want 5 (NaN ignored)", n)
	}
	if want := 0.05 + 0.1 + 0.5 + 2 + 100; sum != want {
		t.Fatalf("sum = %g, want %g", sum, want)
	}
	// le=0.1 captures 0.05 and 0.1; le=1 adds 0.5; le=10 adds 2; +Inf adds 100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
}

func TestHistogramSetFrom(t *testing.T) {
	const lo, hi, n = 1.0, 1e4, 10
	sh, err := stats.NewHistogram(lo, hi, n)
	if err != nil {
		t.Fatal(err)
	}
	samples := []float64{0.5, 1, 3, 700, 2e6}
	sum := 0.0
	for _, v := range samples {
		sh.Observe(v)
		sum += v
	}
	r := NewRegistry()
	h := r.Histogram("bicrit_test_mirror", "help", LogBuckets(lo, hi, n))
	h.SetFrom(sh.Snapshot(), sum)
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(samples))
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %g, want %g", h.Sum(), sum)
	}
	cum, _, _ := h.snapshot()
	// Underflow (0.5) lands in the first bucket; overflow (2e6) only in +Inf.
	if cum[0] != 1 {
		t.Fatalf("first bucket cumulative = %d, want 1", cum[0])
	}
	if last := cum[len(cum)-1]; last != uint64(len(samples)) {
		t.Fatalf("+Inf cumulative = %d, want %d", last, len(samples))
	}
	if beforeInf := cum[len(cum)-2]; beforeInf != uint64(len(samples)-1) {
		t.Fatalf("last finite cumulative = %d, want %d", beforeInf, len(samples)-1)
	}
}

func TestWritePrometheusDeterministicAndValid(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			switch i {
			case 0:
				r.Counter("bicrit_zz_total", "last family", L("kind", "b")).Add(2)
			case 1:
				r.Counter("bicrit_zz_total", "last family", L("kind", "a")).Add(1)
			case 2:
				r.Gauge("bicrit_aa_jobs", "first family").Set(7)
			case 3:
				h := r.Histogram("bicrit_mm_seconds", "middle family", []float64{0.5, 5}, L("algorithm", "demt"))
				h.Observe(0.1)
				h.Observe(50)
			}
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("registration order changed the rendered bytes:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, `bicrit_zz_total{kind="a"} 1`) {
		t.Fatalf("missing counter sample:\n%s", a)
	}
	if !strings.Contains(a, `bicrit_mm_seconds_bucket{algorithm="demt",le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", a)
	}
	idxAA := strings.Index(a, "bicrit_aa_jobs")
	idxMM := strings.Index(a, "bicrit_mm_seconds")
	idxZZ := strings.Index(a, "bicrit_zz_total")
	if !(idxAA < idxMM && idxMM < idxZZ) {
		t.Fatalf("families not sorted by name:\n%s", a)
	}

	fams, err := ParseText(strings.NewReader(a))
	if err != nil {
		t.Fatalf("own output does not parse: %v", err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["bicrit_mm_seconds"]; f.Type != TypeHistogram || f.Samples != 5 {
		t.Fatalf("histogram family = %+v, want histogram with 5 samples", f)
	}
	if f := byName["bicrit_zz_total"]; f.Type != TypeCounter || f.Samples != 2 {
		t.Fatalf("counter family = %+v, want counter with 2 samples", f)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("bicrit_esc", "help with \\ and\nnewline", L("path", "a\"b\\c\nd")).Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP bicrit_esc help with \\ and\nnewline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `bicrit_esc{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped output does not parse: %v", err)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad metric name":   "2bad_name 1\n",
		"bad label name":    `ok{2bad="x"} 1` + "\n",
		"unquoted label":    `ok{l=x} 1` + "\n",
		"missing value":     "ok{}\n",
		"bad value":         "ok notanumber\n",
		"unknown type":      "# TYPE ok exotic\n",
		"unterminated":      `ok{l="x` + "\n",
		"bucket without le": "# TYPE h histogram\nh_bucket 3\n",
		"buckets unordered": "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"non-monotone":      "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"no +Inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",
		"count mismatch":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
	}
	for name, body := range cases {
		if _, err := ParseText(strings.NewReader(body)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, body)
		}
	}
	// Sanity: a well-formed scrape with a timestamp and free comment passes.
	good := "# a free-form comment\n# TYPE ok counter\nok{l=\"x\"} 1 1700000000\n"
	if _, err := ParseText(strings.NewReader(good)); err != nil {
		t.Errorf("good scrape rejected: %v", err)
	}
}

func TestPhaseTimer(t *testing.T) {
	r := NewRegistry()
	timer := r.PhaseTimer("bicrit_demt_phase_seconds", "help", "phase")
	timer("knapsack", 0.002)
	timer("compact", 0.001)
	timer("knapsack", 0.004)
	h := r.Histogram("bicrit_demt_phase_seconds", "help", TimeBuckets(), L("phase", "knapsack"))
	if h.Count() != 2 {
		t.Fatalf("knapsack observations = %d, want 2", h.Count())
	}
	if got, want := h.Sum(), 0.006; math.Abs(got-want) > 1e-12 {
		t.Fatalf("knapsack sum = %g, want %g", got, want)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("bicrit_conc_total", "h").Inc()
				r.Histogram("bicrit_conc_seconds", "h", TimeBuckets()).Observe(0.001)
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("bicrit_conc_total", "h").Value(); got != 800 {
		t.Fatalf("counter = %g, want 800", got)
	}
}
