package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies a trace event.
type Kind string

// Event kinds recorded by the scenario runner.
const (
	// KindBatch is one committed batch on a cluster: Start is the fire
	// time, End the fire time plus the realized makespan, Name the winning
	// portfolio algorithm.
	KindBatch Kind = "batch"
	// KindDecision is one routing decision of the grid router: Job routed
	// to Cluster at Start (the release time), with the router's backlog
	// estimate in Backlog.
	KindDecision Kind = "decision"
	// KindKill is one task killed by an outage: Job on Cluster in Batch,
	// started at Start, killed at End.
	KindKill Kind = "kill"
	// KindMigration is a resubmission decision after a shard outage: Job
	// re-routed to Cluster at the outage instant Start.
	KindMigration Kind = "migration"
	// KindDrain is the run-level summary event closing a trace: Start is
	// 0, End the federation makespan, Tasks the number of jobs completed.
	KindDrain Kind = "drain"
)

// rank orders kinds within one (Start, Cluster) group of the total event
// order. The ordering is arbitrary but must never change: rendered traces
// are compared byte-for-byte across replays.
func (k Kind) rank() int {
	switch k {
	case KindDecision:
		return 0
	case KindMigration:
		return 1
	case KindBatch:
		return 2
	case KindKill:
		return 3
	case KindDrain:
		return 4
	}
	return 5
}

// Event is one structured trace event, stamped with simulated time.
// Cluster is -1 for grid-level events (drain); Batch and Job are -1 when
// the kind carries none.
type Event struct {
	Kind    Kind    `json:"kind"`
	Cluster int     `json:"cluster"`
	Batch   int     `json:"batch"`
	Job     int     `json:"job"`
	Name    string  `json:"name,omitempty"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Tasks   int     `json:"tasks,omitempty"`
	Backlog float64 `json:"backlog,omitempty"`
}

// less is the total deterministic order events are rendered in. Events
// arrive in nondeterministic order from a concurrent replay; sorting
// under a total order (no ties between distinct events of a seeded run)
// makes the rendered bytes independent of arrival order.
func (e Event) less(o Event) bool {
	if e.Start != o.Start {
		return e.Start < o.Start
	}
	if e.Cluster != o.Cluster {
		return e.Cluster < o.Cluster
	}
	if e.Kind != o.Kind {
		return e.Kind.rank() < o.Kind.rank()
	}
	if e.Batch != o.Batch {
		return e.Batch < o.Batch
	}
	if e.Job != o.Job {
		return e.Job < o.Job
	}
	return e.End < o.End
}

// Sink collects trace events from concurrently running shards and
// renders them deterministically. All methods are safe for concurrent
// use; the zero value is not usable, build with NewSink.
type Sink struct {
	mu     sync.Mutex
	events []Event
}

// NewSink builds an empty sink.
func NewSink() *Sink { return &Sink{} }

// Record appends one event.
func (s *Sink) Record(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Len returns the number of recorded events.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Events returns the recorded events sorted under the total order.
func (s *Sink) Events() []Event {
	s.mu.Lock()
	out := append([]Event(nil), s.events...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Trace output formats.
const (
	FormatJSONL  = "jsonl"
	FormatChrome = "chrome"
)

// Write renders the sink in the named format: FormatJSONL or
// FormatChrome. An empty format means chrome.
func (s *Sink) Write(w io.Writer, format string) error {
	switch format {
	case FormatJSONL:
		return s.WriteJSONL(w)
	case FormatChrome, "":
		return s.WriteChromeTrace(w)
	}
	return fmt.Errorf("obs: unknown trace format %q", format)
}

// WriteJSONL renders one event per line, in the total order.
func (s *Sink) WriteJSONL(w io.Writer) error {
	for _, ev := range s.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format. Field order
// is fixed by the struct, keeping the rendered bytes deterministic.
type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the event detail shown in the viewer's args pane.
type chromeArgs struct {
	Name    string  `json:"name,omitempty"`
	Batch   int     `json:"batch,omitempty"`
	Job     int     `json:"job,omitempty"`
	Tasks   int     `json:"tasks,omitempty"`
	Backlog float64 `json:"backlog,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// pid maps a cluster index onto a Chrome process track: cluster i is
// pid i+1, grid-level events (cluster -1) are pid 0.
func pid(cluster int) int {
	if cluster < 0 {
		return 0
	}
	return cluster + 1
}

// WriteChromeTrace renders the sink as Chrome trace-event JSON: one
// process track per cluster (plus a "grid" track for run-level events),
// batches as complete ("X") spans, everything else as instants. One
// simulated time unit maps to one displayed millisecond (ts is in
// microseconds). The output loads in perfetto or chrome://tracing as a
// machine-readable Gantt of the replay.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	events := s.Events()
	trace := chromeTrace{DisplayTimeUnit: "ms"}

	// Name every track up front, grid first, clusters in index order.
	pids := map[int]string{}
	for _, ev := range events {
		p := pid(ev.Cluster)
		if _, ok := pids[p]; !ok {
			if p == 0 {
				pids[p] = "grid"
			} else {
				pids[p] = fmt.Sprintf("cluster %d", ev.Cluster)
			}
		}
	}
	order := make([]int, 0, len(pids))
	for p := range pids {
		order = append(order, p)
	}
	sort.Ints(order)
	for _, p := range order {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  p,
			Args: &chromeArgs{Name: pids[p]},
		})
	}

	for _, ev := range events {
		ce := chromeEvent{
			Ts:  ev.Start * 1000,
			Pid: pid(ev.Cluster),
			Tid: 1,
		}
		switch ev.Kind {
		case KindBatch:
			ce.Name = fmt.Sprintf("batch %d (%s)", ev.Batch, ev.Name)
			ce.Ph = "X"
			ce.Dur = (ev.End - ev.Start) * 1000
			ce.Args = &chromeArgs{Batch: ev.Batch, Tasks: ev.Tasks}
		case KindDecision:
			ce.Name = fmt.Sprintf("route job %d", ev.Job)
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = &chromeArgs{Job: ev.Job, Backlog: ev.Backlog}
		case KindMigration:
			ce.Name = fmt.Sprintf("migrate job %d", ev.Job)
			ce.Ph = "i"
			ce.S = "t"
			ce.Args = &chromeArgs{Job: ev.Job, Backlog: ev.Backlog}
		case KindKill:
			ce.Name = fmt.Sprintf("kill job %d", ev.Job)
			ce.Ph = "i"
			ce.S = "t"
			ce.Ts = ev.End * 1000 // the kill instant, not the task start
			ce.Args = &chromeArgs{Batch: ev.Batch, Job: ev.Job}
		case KindDrain:
			ce.Name = "drain"
			ce.Ph = "X"
			ce.Dur = (ev.End - ev.Start) * 1000
			ce.Args = &chromeArgs{Tasks: ev.Tasks}
		default:
			ce.Name = string(ev.Kind)
			ce.Ph = "i"
			ce.S = "t"
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
