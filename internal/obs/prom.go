package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in the Prometheus text exposition
// format, deterministically: families sorted by name, series sorted by
// their label values, labels in registration order. Safe to call while
// other goroutines keep observing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// write renders one family.
func (f *family) write(w *bufio.Writer) error {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	keys := append([]string(nil), f.ordered...)
	sort.Strings(keys)
	for _, key := range keys {
		switch m := f.series[key].(type) {
		case *Counter:
			writeSample(w, f.name, m.labels(), nil, m.Value())
		case *Gauge:
			writeSample(w, f.name, m.labels(), nil, m.Value())
		case *Histogram:
			cum, sum, n := m.snapshot()
			lbl := m.labels()
			for i, bound := range m.bounds {
				writeSample(w, f.name+"_bucket", lbl, &Label{Name: "le", Value: formatValue(bound)}, float64(cum[i]))
			}
			writeSample(w, f.name+"_bucket", lbl, &Label{Name: "le", Value: "+Inf"}, float64(cum[len(cum)-1]))
			writeSample(w, f.name+"_sum", lbl, nil, sum)
			writeSample(w, f.name+"_count", lbl, nil, float64(n))
		}
	}
	return nil
}

// writeSample renders one sample line, appending the extra label (the
// histogram "le") after the series labels when present.
func writeSample(w *bufio.Writer, name string, labels []Label, extra *Label, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || extra != nil {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%s=\"%s\"", l.Name, escapeLabel(l.Value))
		}
		if extra != nil {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%s=\"%s\"", extra.Name, escapeLabel(extra.Value))
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, infinities as +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ---------------------------------------------------------------------------
// Validating parser
// ---------------------------------------------------------------------------

// Family is the parsed digest of one metric family of a text scrape.
type Family struct {
	// Name and Type come from the TYPE line (or are inferred as untyped).
	Name string
	Type MetricType
	// Help is the HELP line, unescaped.
	Help string
	// Samples counts the sample lines of the family, histogram internals
	// (_bucket, _sum, _count) included.
	Samples int
	// Rows holds every sample line of the family in scrape order, values
	// included — histogram internals keep their _bucket/_sum/_count
	// suffix in Sample.Name. This is what lets a scraper (bicrit top)
	// diff successive scrapes numerically instead of just counting lines.
	Rows []Sample
}

// Sample is one parsed sample line of a scrape.
type Sample struct {
	// Name is the full sample name, histogram suffixes included.
	Name string
	// Labels holds the sample's labels sorted by name (the text format
	// carries no canonical order).
	Labels []Label
	// Value is the sample value.
	Value float64
}

// Label returns the value of the named label, or "" when absent.
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParseText parses a Prometheus text-format scrape and validates it:
// well-formed comment and sample lines, legal metric and label names,
// parsable values, TYPE consistency, and — for histograms — monotone
// cumulative buckets ending in a +Inf bucket that agrees with _count.
// It returns the families in the order first seen. Any violation is an
// error naming the offending line.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var families []Family
	index := make(map[string]int)
	type histSeries struct {
		lastLe   float64
		lastCum  float64
		infCum   float64
		sawInf   bool
		count    float64
		sawCount bool
	}
	hists := make(map[string]*histSeries)
	lineNo := 0
	familyOf := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if i, ok := index[base]; ok && families[i].Type == TypeHistogram {
					return base
				}
			}
		}
		return name
	}
	touch := func(name string, typ MetricType) *Family {
		if i, ok := index[name]; ok {
			return &families[i]
		}
		index[name] = len(families)
		families = append(families, Family{Name: name, Type: typ})
		return &families[len(families)-1]
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("obs: line %d: invalid metric name %q in %s comment", lineNo, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: TYPE line needs a type", lineNo)
				}
				typ := MetricType(fields[3])
				switch typ {
				case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[3])
				}
				fam := touch(name, typ)
				if fam.Type != typ && fam.Type != "" {
					return nil, fmt.Errorf("obs: line %d: metric %q redeclared as %s (was %s)", lineNo, name, typ, fam.Type)
				}
				fam.Type = typ
			} else if len(fields) == 4 {
				touch(name, "").Help = unescapeHelp(fields[3])
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		base := familyOf(name)
		fam := touch(base, "")
		fam.Samples++
		fam.Rows = append(fam.Rows, Sample{Name: name, Labels: sortLabels(labels), Value: value})
		if fam.Type != TypeHistogram {
			continue
		}
		key := base + "{" + nonLeKey(labels) + "}"
		hs := hists[key]
		if hs == nil {
			hs = &histSeries{lastLe: math.Inf(-1)}
			hists[key] = hs
		}
		switch {
		case name == base+"_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return nil, fmt.Errorf("obs: line %d: histogram bucket of %q without le label", lineNo, base)
			}
			le, err := parseFloat(leStr)
			if err != nil {
				return nil, fmt.Errorf("obs: line %d: bad le %q: %v", lineNo, leStr, err)
			}
			if le <= hs.lastLe {
				return nil, fmt.Errorf("obs: line %d: histogram %q buckets out of order (le %q after %g)", lineNo, base, leStr, hs.lastLe)
			}
			if value < hs.lastCum {
				return nil, fmt.Errorf("obs: line %d: histogram %q cumulative count decreases at le %q", lineNo, base, leStr)
			}
			hs.lastLe, hs.lastCum = le, value
			if math.IsInf(le, 1) {
				hs.sawInf, hs.infCum = true, value
			}
		case name == base+"_count":
			hs.count, hs.sawCount = value, true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Validate in sorted key order so the reported error is the same
	// whichever way the map iterates.
	keys := make([]string, 0, len(hists))
	for key := range hists {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		hs := hists[key]
		if !hs.sawInf {
			return nil, fmt.Errorf("obs: histogram series %s has no +Inf bucket", key)
		}
		if hs.sawCount && hs.infCum != hs.count {
			return nil, fmt.Errorf("obs: histogram series %s: +Inf bucket %g disagrees with _count %g", key, hs.infCum, hs.count)
		}
	}
	return families, nil
}

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
	}
	name := rest[:end]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels := map[string]string{}
	rest = rest[end:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if len(rest) == 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("label %q value is not quoted", lname)
			}
			val, n, err := unquoteLabel(rest)
			if err != nil {
				return "", nil, 0, err
			}
			labels[lname] = val
			rest = rest[n:]
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
	}
	valueStr := rest
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		valueStr = rest[:sp] // an optional timestamp may follow
	}
	v, err := parseFloat(valueStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", valueStr, err)
	}
	return name, labels, v, nil
}

// unquoteLabel consumes a quoted, escaped label value and returns the
// value and the number of input bytes consumed.
func unquoteLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c in label value", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// unescapeHelp reverses escapeHelp: \\ and \n back to backslash and
// newline. Unknown escapes are left intact, matching the format's
// lenient readers.
func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// sortLabels renders a parsed label map into a name-sorted slice.
func sortLabels(labels map[string]string) []Label {
	if len(labels) == 0 {
		return nil
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Label, len(names))
	for i, n := range names {
		out[i] = Label{Name: n, Value: labels[n]}
	}
	return out
}

// nonLeKey renders the non-le labels of a bucket sample into a stable
// series key.
func nonLeKey(labels map[string]string) string {
	names := make([]string, 0, len(labels))
	for n := range labels {
		if n != "le" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + labels[n]
	}
	return strings.Join(parts, ",")
}

// parseFloat parses a sample or le value, accepting the format's +Inf,
// -Inf and NaN spellings.
func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validMetricName reports whether s is a legal metric name.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
