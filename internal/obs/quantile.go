package obs

import (
	"math"
	"sort"
)

// Bucket is one cumulative histogram bucket of a scrape: the upper bound
// (the le label) and the cumulative count of samples at or below it.
type Bucket struct {
	Le  float64
	Cum float64
}

// BucketQuantile estimates the p-th quantile (p in [0, 1]) of a
// Prometheus-style cumulative bucket distribution using the nearest-rank
// rule: it returns the upper bound of the bucket holding the rank-th
// sample. The estimate is deliberately an upper bound, exactly matching
// stats.Histogram.Quantile on the log-spaced bucket geometry both
// packages share — a histogram mirrored through Histogram.SetFrom yields
// bit-identical quantiles from either side. Samples in the +Inf bucket
// resolve to +Inf; an empty distribution returns 0; p is clamped to
// [0, 1]. Buckets are sorted by bound if needed; the final bucket's
// cumulative count is the total.
func BucketQuantile(p float64, buckets []Bucket) float64 {
	if len(buckets) == 0 {
		return 0
	}
	if !sort.SliceIsSorted(buckets, func(i, j int) bool { return buckets[i].Le < buckets[j].Le }) {
		buckets = append([]Bucket(nil), buckets...)
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].Le < buckets[j].Le })
	}
	total := buckets[len(buckets)-1].Cum
	if total <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := math.Ceil(p * total)
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.Cum >= rank {
			return b.Le
		}
	}
	return buckets[len(buckets)-1].Le
}

// HistogramRows digests the _bucket/_sum/_count rows of one parsed
// histogram family (see ParseText) into per-series cumulative bucket
// sets. Series are keyed by their non-le labels and returned sorted by
// that key, so successive scrapes line up deterministically.
func HistogramRows(fam Family) []ScrapeHistogram {
	byKey := make(map[string]*ScrapeHistogram)
	order := []string{}
	get := func(key string, labels []Label) *ScrapeHistogram {
		h, ok := byKey[key]
		if !ok {
			h = &ScrapeHistogram{Labels: labels}
			byKey[key] = h
			order = append(order, key)
		}
		return h
	}
	for _, row := range fam.Rows {
		labels := make([]Label, 0, len(row.Labels))
		for _, l := range row.Labels {
			if l.Name != "le" {
				labels = append(labels, l)
			}
		}
		key := seriesKey(labels)
		switch row.Name {
		case fam.Name + "_bucket":
			le, err := parseFloat(row.Label("le"))
			if err != nil {
				continue // ParseText validated the scrape; be lenient here
			}
			h := get(key, labels)
			h.Buckets = append(h.Buckets, Bucket{Le: le, Cum: row.Value})
		case fam.Name + "_sum":
			get(key, labels).Sum = row.Value
		case fam.Name + "_count":
			get(key, labels).Count = row.Value
		}
	}
	sort.Strings(order)
	out := make([]ScrapeHistogram, len(order))
	for i, key := range order {
		out[i] = *byKey[key]
	}
	return out
}

// ScrapeHistogram is one histogram series reassembled from a scrape.
type ScrapeHistogram struct {
	// Labels are the series labels, le excluded, sorted by name.
	Labels []Label
	// Buckets are the cumulative buckets in le order (+Inf last).
	Buckets []Bucket
	// Sum and Count mirror the _sum and _count samples.
	Sum   float64
	Count float64
}

// Quantile estimates the p-th quantile of the series (see
// BucketQuantile).
func (h ScrapeHistogram) Quantile(p float64) float64 { return BucketQuantile(p, h.Buckets) }

// Label returns the value of the named series label, or "" when absent.
func (h ScrapeHistogram) Label(name string) string {
	for _, l := range h.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}
