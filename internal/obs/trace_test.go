package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// traceFixture returns a small event set resembling a two-cluster replay.
func traceFixture() []Event {
	return []Event{
		{Kind: KindDecision, Cluster: 0, Batch: -1, Job: 3, Start: 0, End: 0, Backlog: 0.5},
		{Kind: KindDecision, Cluster: 1, Batch: -1, Job: 4, Start: 0, End: 0, Backlog: 0.25},
		{Kind: KindBatch, Cluster: 0, Batch: 0, Job: -1, Name: "demt", Start: 0, End: 12.5, Tasks: 3},
		{Kind: KindBatch, Cluster: 1, Batch: 0, Job: -1, Name: "list-saf", Start: 0, End: 9, Tasks: 2},
		{Kind: KindKill, Cluster: 1, Batch: 0, Job: 4, Start: 2, End: 5.5},
		{Kind: KindMigration, Cluster: 0, Batch: -1, Job: 4, Start: 5.5, End: 5.5, Backlog: 1.5},
		{Kind: KindBatch, Cluster: 0, Batch: 1, Job: -1, Name: "gang", Start: 12.5, End: 20, Tasks: 1},
		{Kind: KindDrain, Cluster: -1, Batch: -1, Job: -1, Start: 0, End: 20, Tasks: 5},
	}
}

func render(t *testing.T, events []Event, format string) string {
	t.Helper()
	s := NewSink()
	for _, ev := range events {
		s.Record(ev)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf, format); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSinkOrderIndependent(t *testing.T) {
	base := traceFixture()
	for _, format := range []string{FormatJSONL, FormatChrome} {
		want := render(t, base, format)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 10; trial++ {
			shuffled := append([]Event(nil), base...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := render(t, shuffled, format); got != want {
				t.Fatalf("%s output depends on insertion order (trial %d):\n--- want ---\n%s--- got ---\n%s",
					format, trial, want, got)
			}
		}
	}
}

func TestSinkTotalOrder(t *testing.T) {
	s := NewSink()
	for _, ev := range traceFixture() {
		s.Record(ev)
	}
	events := s.Events()
	for i := 1; i < len(events); i++ {
		if events[i].less(events[i-1]) {
			t.Fatalf("events[%d] sorts before events[%d]: %+v < %+v", i, i-1, events[i], events[i-1])
		}
	}
	if events[len(events)-1].Kind != KindDrain {
		// Drain starts at 0 but ... the order is (Start, Cluster, kind);
		// with Start 0 and Cluster -1 it sorts first, not last. Assert the
		// actual invariant instead: drain is present exactly once.
		drains := 0
		for _, ev := range events {
			if ev.Kind == KindDrain {
				drains++
			}
		}
		if drains != 1 {
			t.Fatalf("drain events = %d, want 1", drains)
		}
	}
}

func TestChromeTraceShape(t *testing.T) {
	out := render(t, traceFixture(), FormatChrome)
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	var meta, spans, instants int
	pids := map[int]bool{}
	for _, ev := range trace.TraceEvents {
		pids[ev.Pid] = true
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Fatalf("span %q has negative duration %g", ev.Name, ev.Dur)
			}
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// Tracks: grid (pid 0) + clusters 0 and 1 (pids 1 and 2).
	for _, p := range []int{0, 1, 2} {
		if !pids[p] {
			t.Fatalf("missing track pid %d (have %v)", p, pids)
		}
	}
	if meta != 3 {
		t.Fatalf("process_name metadata events = %d, want 3", meta)
	}
	if spans != 4 { // 3 batches + 1 drain
		t.Fatalf("complete spans = %d, want 4", spans)
	}
	if instants != 4 { // 2 decisions + 1 kill + 1 migration
		t.Fatalf("instants = %d, want 4", instants)
	}
}

func TestJSONLShape(t *testing.T) {
	out := render(t, traceFixture(), FormatJSONL)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(traceFixture()) {
		t.Fatalf("lines = %d, want %d", len(lines), len(traceFixture()))
	}
	kinds := map[Kind]int{}
	for _, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	want := map[Kind]int{KindBatch: 3, KindDecision: 2, KindKill: 1, KindMigration: 1, KindDrain: 1}
	for k, n := range want {
		if kinds[k] != n {
			t.Fatalf("kind %q count = %d, want %d", k, kinds[k], n)
		}
	}
}

// TestMigrationDrainRenderingPinned pins the byte-exact rendering of the
// migration and drain events in both formats. These bytes are compared
// across replays (the determinism guarantee) and consumed by external
// viewers, so any drift here is a compatibility decision.
func TestMigrationDrainRenderingPinned(t *testing.T) {
	jsonl := render(t, traceFixture(), FormatJSONL)
	lines := strings.Split(strings.TrimRight(jsonl, "\n"), "\n")
	wantLines := map[string]string{
		"migration": `{"kind":"migration","cluster":0,"batch":-1,"job":4,"start":5.5,"end":5.5,"backlog":1.5}`,
		"drain":     `{"kind":"drain","cluster":-1,"batch":-1,"job":-1,"start":0,"end":20,"tasks":5}`,
	}
	for kind, want := range wantLines {
		found := false
		for _, line := range lines {
			if line == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("JSONL %s line drifted from pinned bytes:\nwant %s\nhave:\n%s", kind, want, jsonl)
		}
	}

	chrome := render(t, traceFixture(), FormatChrome)
	for kind, want := range map[string]string{
		"migration": `{"name":"migrate job 4","ph":"i","ts":5500,"pid":1,"tid":1,"s":"t","args":{"job":4,"backlog":1.5}}`,
		"drain":     `{"name":"drain","ph":"X","ts":0,"dur":20000,"pid":0,"tid":1,"args":{"tasks":5}}`,
	} {
		if !strings.Contains(chrome, want) {
			t.Errorf("chrome %s event drifted from pinned bytes:\nwant %s\nhave:\n%s", kind, want, chrome)
		}
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	s := NewSink()
	if err := s.Write(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
