// Package buildinfo holds the library version in a leaf package, so
// every layer — including internal/serve, which the facade imports —
// can stamp scrapes, traces and HTTP responses without import cycles.
package buildinfo

import "runtime"

// Version is the library version, bumped on every released change set.
const Version = "0.6.0"

// GoVersion returns the version of the Go runtime the binary was built
// with, used as a build-info scrape label.
func GoVersion() string { return runtime.Version() }
