// Package listsched implements list-scheduling engines for rigid parallel
// tasks (tasks whose allocation size has already been decided, e.g. by the
// dual-approximation allotment or by the DEMT batch selection).
//
// Two engines are provided:
//
//   - Graham: the classical event-driven list algorithm (Garey & Graham). At
//     every event time, the highest-priority tasks that fit in the free
//     processors are started. A task may be overtaken by a lower-priority
//     task that fits when it does not ("greedy / backfilling" behaviour),
//     which is exactly the algorithm used by the paper's list baselines and
//     by the DEMT compaction step.
//
//   - Insertion: tasks are placed strictly in priority order, each at the
//     earliest instant at which enough processors are simultaneously idle,
//     possibly inside holes left by previous placements (conservative
//     backfilling style). Used for ablation studies of the compaction step.
package listsched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// Item is a rigid task handed to the list scheduler. Items are scheduled in
// the order of the slice (the "list" of list scheduling).
type Item struct {
	// TaskID is the identifier copied into the resulting assignment.
	TaskID int
	// NProcs is the (fixed) number of processors the task requires.
	NProcs int
	// Duration is the processing time for that allocation.
	Duration float64
	// Release is the earliest start time (0 in the off-line setting).
	Release float64
}

func validateItems(m int, items []Item) error {
	if m < 1 {
		return fmt.Errorf("listsched: machine needs at least one processor, got %d", m)
	}
	for _, it := range items {
		if it.NProcs < 1 || it.NProcs > m {
			return fmt.Errorf("listsched: item %d requires %d processors, machine has %d", it.TaskID, it.NProcs, m)
		}
		if it.Duration <= 0 || math.IsNaN(it.Duration) || math.IsInf(it.Duration, 0) {
			return fmt.Errorf("listsched: item %d has invalid duration %g", it.TaskID, it.Duration)
		}
		if it.Release < 0 {
			return fmt.Errorf("listsched: item %d has negative release date %g", it.TaskID, it.Release)
		}
	}
	return nil
}

// Graham runs the event-driven list algorithm on m processors and returns a
// schedule with explicit processor assignments.
func Graham(m int, items []Item) (*schedule.Schedule, error) {
	return GrahamContext(context.Background(), m, items) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// GrahamContext is Graham with cancellation: the context is checked at
// every event time of the list loop, so a racing portfolio can abort a
// straggling member mid-schedule. A cancellation returns the context's
// error (errors.Is(err, ctx.Err()) holds).
func GrahamContext(ctx context.Context, m int, items []Item) (*schedule.Schedule, error) {
	if err := validateItems(m, items); err != nil {
		return nil, err
	}
	sched := schedule.New(m)
	if len(items) == 0 {
		return sched, nil
	}

	freeAt := make([]float64, m)
	done := make([]bool, len(items))
	remaining := len(items)

	// Start at the earliest release date.
	t := math.Inf(1)
	for _, it := range items {
		if it.Release < t {
			t = it.Release
		}
	}

	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("listsched: list loop aborted: %w", err)
		}
		// Collect processors free at time t.
		free := free(freeAt, t)
		// Start as many tasks as possible, scanning the list in priority
		// order; restart the scan after each placement because the free set
		// shrank but an earlier (larger) task can never become startable by
		// a later placement, so a single pass is enough.
		for i, it := range items {
			if done[i] || it.Release > t+moldable.Eps {
				continue
			}
			if it.NProcs <= len(free) {
				procs := append([]int(nil), free[:it.NProcs]...)
				free = free[it.NProcs:]
				for _, p := range procs {
					freeAt[p] = t + it.Duration
				}
				sched.Add(schedule.Assignment{
					TaskID:   it.TaskID,
					Start:    t,
					NProcs:   it.NProcs,
					Procs:    procs,
					Duration: it.Duration,
				})
				done[i] = true
				remaining--
			}
		}
		if remaining == 0 {
			break
		}
		// Advance to the next event: a processor becoming free or a release
		// date of an unscheduled task.
		next := math.Inf(1)
		for _, f := range freeAt {
			if f > t+moldable.Eps && f < next {
				next = f
			}
		}
		for i, it := range items {
			if !done[i] && it.Release > t+moldable.Eps && it.Release < next {
				next = it.Release
			}
		}
		if math.IsInf(next, 1) {
			return nil, fmt.Errorf("listsched: no progress possible at time %g (%d items left)", t, remaining)
		}
		t = next
	}
	return sched, nil
}

// free returns the indices of processors idle at time t, in increasing
// order.
func free(freeAt []float64, t float64) []int {
	out := make([]int, 0, len(freeAt))
	for p, f := range freeAt {
		if f <= t+moldable.Eps {
			out = append(out, p)
		}
	}
	return out
}

// interval is a busy period on a processor.
type interval struct {
	start, end float64
}

// Busy describes a pre-existing occupation of specific processors, such as
// an administrative node reservation: the listed processors are unavailable
// during [Start, End).
type Busy struct {
	Procs      []int
	Start, End float64
}

// Insertion places the items strictly in list order, each at the earliest
// feasible start time, filling holes of the partial schedule. The returned
// schedule carries explicit processor assignments.
func Insertion(m int, items []Item) (*schedule.Schedule, error) {
	return InsertionWithReservations(m, nil, items)
}

// InsertionWithReservations is Insertion on a machine whose processors are
// partially unavailable: the reservations are blocked out before any item
// is placed. The returned schedule only contains the items (reservations
// are not assignments).
func InsertionWithReservations(m int, reservations []Busy, items []Item) (*schedule.Schedule, error) {
	if err := validateItems(m, items); err != nil {
		return nil, err
	}
	busy := make([][]interval, m)
	for _, r := range reservations {
		if r.End <= r.Start {
			return nil, fmt.Errorf("listsched: reservation has non-positive length [%g, %g)", r.Start, r.End)
		}
		for _, p := range r.Procs {
			if p < 0 || p >= m {
				return nil, fmt.Errorf("listsched: reservation uses processor %d outside [0,%d)", p, m)
			}
			busy[p] = insertInterval(busy[p], interval{r.Start, r.End})
		}
	}
	sched := schedule.New(m)

	for _, it := range items {
		start := earliestStart(busy, it)
		procs := freeDuring(busy, start, start+it.Duration)
		if len(procs) < it.NProcs {
			return nil, fmt.Errorf("listsched: internal error, %d processors free at %g but %d needed", len(procs), start, it.NProcs)
		}
		procs = procs[:it.NProcs]
		for _, p := range procs {
			busy[p] = insertInterval(busy[p], interval{start, start + it.Duration})
		}
		sched.Add(schedule.Assignment{
			TaskID:   it.TaskID,
			Start:    start,
			NProcs:   it.NProcs,
			Procs:    append([]int(nil), procs...),
			Duration: it.Duration,
		})
	}
	return sched, nil
}

// earliestStart finds the smallest start >= release at which NProcs
// processors are simultaneously free for the item's duration. Candidate
// start times are the release date and the ends of existing busy intervals.
func earliestStart(busy [][]interval, it Item) float64 {
	candidates := []float64{it.Release}
	for _, ivs := range busy {
		for _, iv := range ivs {
			if iv.end > it.Release-moldable.Eps {
				candidates = append(candidates, iv.end)
			}
		}
	}
	sort.Float64s(candidates)
	for _, c := range candidates {
		if c < it.Release-moldable.Eps {
			continue
		}
		if len(freeDuring(busy, c, c+it.Duration)) >= it.NProcs {
			return c
		}
	}
	// Unreachable: after the last busy interval everything is free.
	last := it.Release
	for _, ivs := range busy {
		for _, iv := range ivs {
			if iv.end > last {
				last = iv.end
			}
		}
	}
	return last
}

// freeDuring returns the processors idle during the whole [start, end)
// window, in increasing index order.
func freeDuring(busy [][]interval, start, end float64) []int {
	out := make([]int, 0, len(busy))
	for p, ivs := range busy {
		conflict := false
		for _, iv := range ivs {
			if iv.start < end-moldable.Eps && iv.end > start+moldable.Eps {
				conflict = true
				break
			}
		}
		if !conflict {
			out = append(out, p)
		}
	}
	return out
}

// insertInterval keeps the per-processor interval list sorted by start time.
func insertInterval(ivs []interval, iv interval) []interval {
	pos := sort.Search(len(ivs), func(i int) bool { return ivs[i].start >= iv.start })
	ivs = append(ivs, interval{})
	copy(ivs[pos+1:], ivs[pos:])
	ivs[pos] = iv
	return ivs
}
