package listsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// validate converts the list-scheduler output into a full schedule check by
// building a matching rigid instance.
func validate(t *testing.T, m int, items []Item, s *schedule.Schedule) {
	t.Helper()
	tasks := make([]moldable.Task, len(items))
	rel := make(map[int]float64)
	for i, it := range items {
		tasks[i] = moldable.Rigid(it.TaskID, 1, it.NProcs, it.Duration)
		rel[it.TaskID] = it.Release
	}
	inst := moldable.NewInstance(m, tasks)
	if err := s.Validate(inst, &schedule.ValidateOptions{ReleaseDates: rel}); err != nil {
		t.Fatalf("invalid schedule: %v\n%s", err, s.String())
	}
}

func TestGrahamSimple(t *testing.T) {
	items := []Item{
		{TaskID: 0, NProcs: 2, Duration: 4},
		{TaskID: 1, NProcs: 2, Duration: 3},
		{TaskID: 2, NProcs: 4, Duration: 2},
		{TaskID: 3, NProcs: 1, Duration: 1},
	}
	s, err := Graham(4, items)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, 4, items, s)
	// Tasks 0 and 1 run in parallel; task 3 backfills at time 3 on the
	// processors freed by task 1; task 2 needs all 4 so waits for time 4.
	if a := s.Assignment(0); a.Start != 0 {
		t.Fatalf("task 0 start = %g, want 0", a.Start)
	}
	if a := s.Assignment(1); a.Start != 0 {
		t.Fatalf("task 1 start = %g, want 0", a.Start)
	}
	if a := s.Assignment(3); a.Start != 3 {
		t.Fatalf("task 3 start = %g, want 3 (backfilled)", a.Start)
	}
	if a := s.Assignment(2); a.Start != 4 {
		t.Fatalf("task 2 start = %g, want 4", a.Start)
	}
	if got := s.Makespan(); got != 6 {
		t.Fatalf("makespan = %g, want 6", got)
	}
}

func TestGrahamRespectsReleaseDates(t *testing.T) {
	items := []Item{
		{TaskID: 0, NProcs: 1, Duration: 2, Release: 5},
		{TaskID: 1, NProcs: 1, Duration: 2, Release: 0},
	}
	s, err := Graham(2, items)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, 2, items, s)
	if a := s.Assignment(0); a.Start != 5 {
		t.Fatalf("task 0 start = %g, want 5", a.Start)
	}
	if a := s.Assignment(1); a.Start != 0 {
		t.Fatalf("task 1 start = %g, want 0", a.Start)
	}
}

func TestGrahamEmptyAndErrors(t *testing.T) {
	s, err := Graham(3, nil)
	if err != nil || len(s.Assignments) != 0 {
		t.Fatalf("empty input should give an empty schedule, got %v, %v", s, err)
	}
	if _, err := Graham(0, []Item{{TaskID: 0, NProcs: 1, Duration: 1}}); err == nil {
		t.Fatalf("zero processors must fail")
	}
	if _, err := Graham(2, []Item{{TaskID: 0, NProcs: 3, Duration: 1}}); err == nil {
		t.Fatalf("oversized task must fail")
	}
	if _, err := Graham(2, []Item{{TaskID: 0, NProcs: 1, Duration: -1}}); err == nil {
		t.Fatalf("negative duration must fail")
	}
	if _, err := Graham(2, []Item{{TaskID: 0, NProcs: 1, Duration: 1, Release: -2}}); err == nil {
		t.Fatalf("negative release must fail")
	}
	if _, err := Insertion(2, []Item{{TaskID: 0, NProcs: 3, Duration: 1}}); err == nil {
		t.Fatalf("insertion with oversized task must fail")
	}
}

func TestInsertionFillsHoles(t *testing.T) {
	// Task 0 occupies both processors [0,4). Task 1 occupies processor 0 in
	// [4,10). Task 2 (1 proc, 3 units) should slot at time 4 on processor 1,
	// and task 3 (2 procs) must wait until time 10.
	items := []Item{
		{TaskID: 0, NProcs: 2, Duration: 4},
		{TaskID: 1, NProcs: 1, Duration: 6},
		{TaskID: 2, NProcs: 1, Duration: 3},
		{TaskID: 3, NProcs: 2, Duration: 1},
	}
	s, err := Insertion(2, items)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, 2, items, s)
	if a := s.Assignment(2); a.Start != 4 {
		t.Fatalf("task 2 start = %g, want 4", a.Start)
	}
	if a := s.Assignment(3); a.Start != 10 {
		t.Fatalf("task 3 start = %g, want 10", a.Start)
	}
}

func TestInsertionStrictOrderVsGrahamGreedy(t *testing.T) {
	// With insertion in list order, the big task is placed before the small
	// ones even though the small ones could start earlier; Graham would also
	// start the small ones at 0. Here both behave the same because
	// insertion fills the hole before the big task too. Check a case where
	// they differ: big task first in the list, machine busy by a long seq.
	items := []Item{
		{TaskID: 0, NProcs: 1, Duration: 10},
		{TaskID: 1, NProcs: 2, Duration: 2},
		{TaskID: 2, NProcs: 1, Duration: 9},
	}
	g, err := Graham(2, items)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Insertion(2, items)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, 2, items, g)
	validate(t, 2, items, ins)
	// Graham: task2 backfills at t=0 on processor 1 (task1 can't start), so
	// task1 starts at 10. Insertion: task1 is placed before task2 is
	// considered, so task1 starts at 10 as well and task2 starts at 12... no:
	// insertion places task1 at its earliest feasible time given only task0,
	// which is 10; then task2 goes into the hole [0,10) on processor 1.
	if a := g.Assignment(2); a.Start != 0 {
		t.Fatalf("Graham should backfill task 2 at 0, got %g", a.Start)
	}
	if a := ins.Assignment(2); a.Start != 0 {
		t.Fatalf("Insertion should place task 2 in the hole at 0, got %g", a.Start)
	}
	if g.Makespan() != 12 || ins.Makespan() != 12 {
		t.Fatalf("makespans = %g, %g, want 12, 12", g.Makespan(), ins.Makespan())
	}
}

func randomItems(r *rand.Rand, m int) []Item {
	n := 1 + r.Intn(40)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			TaskID:   i,
			NProcs:   1 + r.Intn(m),
			Duration: 0.1 + 10*r.Float64(),
			Release:  float64(r.Intn(3)) * 2.5,
		}
	}
	return items
}

func TestPropertyGrahamProducesValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(16)
		items := randomItems(r, m)
		s, err := Graham(m, items)
		if err != nil {
			return false
		}
		return checkQuick(m, items, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInsertionProducesValidSchedules(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(16)
		items := randomItems(r, m)
		s, err := Insertion(m, items)
		if err != nil {
			return false
		}
		return checkQuick(m, items, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGrahamTwoApproxBound(t *testing.T) {
	// Classical Graham bound for rigid tasks without release dates:
	// Cmax <= totalWork/m + longest duration (a weaker but always valid
	// bound), and Cmax >= max(totalWork/m, longest). Check both sides.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(16)
		items := randomItems(r, m)
		for i := range items {
			items[i].Release = 0
		}
		s, err := Graham(m, items)
		if err != nil {
			return false
		}
		work, longest := 0.0, 0.0
		for _, it := range items {
			work += float64(it.NProcs) * it.Duration
			if it.Duration > longest {
				longest = it.Duration
			}
		}
		lb := work / float64(m)
		if longest > lb {
			lb = longest
		}
		cmax := s.Makespan()
		return cmax >= lb-1e-6 && cmax <= work/float64(m)+longest*float64(m)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkQuick is a lighter-weight validity check used inside property tests.
func checkQuick(m int, items []Item, s *schedule.Schedule) bool {
	if len(s.Assignments) != len(items) {
		return false
	}
	byID := make(map[int]Item, len(items))
	for _, it := range items {
		byID[it.TaskID] = it
	}
	type span struct{ start, end float64 }
	perProc := make(map[int][]span)
	for _, a := range s.Assignments {
		it, ok := byID[a.TaskID]
		if !ok || a.NProcs != it.NProcs || a.Start < it.Release-1e-9 || len(a.Procs) != it.NProcs {
			return false
		}
		for _, p := range a.Procs {
			if p < 0 || p >= m {
				return false
			}
			perProc[p] = append(perProc[p], span{a.Start, a.End()})
		}
	}
	for _, spans := range perProc {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].start < spans[j].end-1e-9 && spans[j].start < spans[i].end-1e-9 {
					return false
				}
			}
		}
	}
	return true
}
