package perf

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bicriteria/internal/cluster"
	"bicriteria/internal/core"
	"bicriteria/internal/flight"
	"bicriteria/internal/grid"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/scenario"
	"bicriteria/internal/serve"
	"bicriteria/internal/slo"
	"bicriteria/internal/workload"
)

// Suite returns the full benchmark suite in canonical order: one named
// benchmark per instrumented hot path. Names are stable — they are the
// join keys of trajectory comparison — so renaming one is a compatibility
// decision, not a refactor.
func Suite() []Benchmark {
	suite := []Benchmark{
		{Name: "DEMT/schedule", F: benchDEMTSchedule},
		{Name: "DEMT/knapsack", F: func(b *testing.B) { benchDEMTPhase(b, "knapsack") }},
		{Name: "DEMT/compact", F: func(b *testing.B) { benchDEMTPhase(b, "compact") }},
	}
	for _, algo := range cluster.DefaultPortfolio(nil) {
		suite = append(suite, Benchmark{
			Name: "Portfolio/" + algo.Name,
			F:    func(b *testing.B) { benchPortfolioAlgorithm(b, algo) },
		})
	}
	suite = append(suite,
		Benchmark{Name: "BatchPlan", F: benchBatchPlan},
		Benchmark{Name: "PortfolioRace", F: benchPortfolioRace},
		Benchmark{Name: "ClusterReplay", F: benchClusterReplay},
		Benchmark{Name: "GridReplay/clusters=1", F: func(b *testing.B) { benchGridReplay(b, 1) }},
		Benchmark{Name: "GridReplay/clusters=4", F: func(b *testing.B) { benchGridReplay(b, 4) }},
		Benchmark{Name: "GridReplay/clusters=8", F: func(b *testing.B) { benchGridReplay(b, 8) }},
		Benchmark{Name: "ServeBulkIngest", F: benchServeBulkIngest},
		Benchmark{Name: "ScenarioCompile", F: benchScenarioCompile},
		Benchmark{Name: "FlightRecord", F: benchFlightRecord},
		Benchmark{Name: "SLOEvaluate", F: benchSLOEvaluate},
	)
	return suite
}

// batchInstance is the standard offline batch the DEMT and portfolio
// benchmarks schedule: the paper's mixed workload at 64 processors, 100
// tasks.
func batchInstance(b *testing.B) *moldable.Instance {
	inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: 64, N: 100, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// benchDEMTSchedule times one full DEMT run — dual approximation,
// knapsack batch construction and compaction — on the standard batch.
func benchDEMTSchedule(b *testing.B) {
	inst := batchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Schedule(inst, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDEMTPhase times one internal DEMT phase ("knapsack" or "compact")
// through the core.Options.Timing hook: the loop runs full schedules, the
// reported ns/op is the accumulated phase time per schedule. allocs/op
// and B/op still cover the whole run — the harness cannot attribute
// allocations to a phase.
func benchDEMTPhase(b *testing.B, phase string) {
	inst := batchInstance(b)
	var secs float64
	opts := &core.Options{Timing: func(ph string, s float64) {
		if ph == phase {
			secs += s
		}
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Schedule(inst, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(secs*1e9/float64(b.N), "ns/op")
}

// benchPortfolioAlgorithm times one portfolio member scheduling the
// standard batch — the per-algorithm latency the
// bicrit_portfolio_algorithm_seconds histogram watches live.
func benchPortfolioAlgorithm(b *testing.B, algo cluster.Algorithm) {
	inst := batchInstance(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := algo.Run(ctx, inst); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchPlan times planning and executing one single batch through
// the cluster engine: every job released at 0, batch-on-idle, so the
// whole run is one portfolio race plus one commit.
func benchBatchPlan(b *testing.B) {
	inst := batchInstance(b)
	jobs := make([]online.Job, len(inst.Tasks))
	for i, t := range inst.Tasks {
		jobs[i] = online.Job{Task: t}
	}
	eng, err := cluster.New(cluster.Config{
		M:         64,
		Objective: cluster.Objective{Kind: cluster.ObjectiveCombined, Alpha: 0.5},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPortfolioRace is benchBatchPlan with racing enabled, measured at
// the bandit's steady state: the replay schedules the standard batch six
// times over (releases spaced so batch-on-idle fires once per copy), the
// first batch teaches the bandit who wins, and from the second on the
// winner launches first and the slower members are cancelled mid-flight
// as soon as it lands within the cutoff of the batch lower bound. The
// reported ns/op is per batch — directly comparable to BatchPlan, which
// plans the identical instance without racing. allocs/op and B/op cover
// the whole replay.
func benchPortfolioRace(b *testing.B) {
	inst := batchInstance(b)
	const batches = 6
	jobs := make([]online.Job, 0, batches*len(inst.Tasks))
	for k := 0; k < batches; k++ {
		for _, t := range inst.Tasks {
			t.ID = len(jobs)
			jobs = append(jobs, online.Job{Task: t, Release: float64(k) * 1e6})
		}
	}
	eng, err := cluster.New(cluster.Config{
		M:         64,
		Objective: cluster.Objective{Kind: cluster.ObjectiveCombined, Alpha: 0.5},
		Racing:    cluster.Racing{Cutoff: 2.5, Bandit: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batches), "ns/op")
}

// benchClusterReplay is the historical ClusterReplay configuration (PR 6
// trajectory continuity): the event-driven cluster engine replaying a
// bursty Poisson stream with the concurrent portfolio, noisy runtimes and
// a reservation.
func benchClusterReplay(b *testing.B) {
	const m, n = 64, 150
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: m, N: n, Seed: 42},
		Rate:      4,
		BurstSize: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs := cluster.JobsFromArrivals(arrivals)
	perturb, err := cluster.UniformNoise(0.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		M:         m,
		Objective: cluster.Objective{Kind: cluster.ObjectiveCombined, Alpha: 0.5},
		Perturb:   perturb,
		Reservations: []reservation.Reservation{
			{Name: "maint", Procs: m / 8, Start: 10, End: 30},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGridReplay times the grid federation replaying one fixed 500-job
// burst-heavy stream across `clusters` shards — the routeStream hot path
// at 1/4/8 shards. The 4-shard variant is the historical
// GridReplay/clusters=4 configuration.
func benchGridReplay(b *testing.B, clusters int) {
	const perCluster = 32
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: perCluster, N: 500, Seed: 42},
		Rate:      100,
		BurstSize: 125,
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs := cluster.JobsFromArrivals(arrivals)
	specs := make([]grid.ClusterSpec, clusters)
	for i := range specs {
		perturb, err := cluster.UniformNoise(0.2, int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = grid.ClusterSpec{M: perCluster, Perturb: perturb}
	}
	fed, err := grid.New(grid.Config{
		Clusters: specs,
		Routing:  grid.LeastBacklog(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Run(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServeBulkIngest times the serve layer's front door: one bulk
// POST /jobs of 64 jobs through the real HTTP handler — JSON decode,
// validation, admission control and the sharded submission queue. IDs
// increment across iterations so the registry grows like a live
// service's; the refresher and snapshots are off, isolating ingest. With
// the refresher off nothing drains the queue, so its depth is sized to
// the iteration count — admission must never push back mid-run.
func benchServeBulkIngest(b *testing.B) {
	const bulk = 64
	srv, err := serve.NewServer(serve.Config{
		Grid: grid.Config{
			Clusters: []grid.ClusterSpec{{M: 32}, {M: 32}},
		},
		Speedup:          1e6,
		RefreshInterval:  -1,
		SnapshotInterval: -1,
		QueueDepth:       bulk * (b.N + 1),
	})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	var body bytes.Buffer
	nextID := 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Reset()
		body.WriteString(`{"jobs": [`)
		for j := 0; j < bulk; j++ {
			if j > 0 {
				body.WriteByte(',')
			}
			fmt.Fprintf(&body, `{"id": %d, "weight": 2, "times": [60, 35, 20]}`, nextID)
			nextID++
		}
		body.WriteString(`]}`)
		req := httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader(body.Bytes()))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("bulk submit: status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// flightReport replays the historical 4-shard grid configuration once
// and returns its report — the shared setup of the flight-recorder and
// SLO benchmarks, built outside their timed loops.
func flightReport(b *testing.B) *grid.Report {
	const perCluster, clusters = 32, 4
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: perCluster, N: 500, Seed: 42},
		Rate:      100,
		BurstSize: 125,
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs := cluster.JobsFromArrivals(arrivals)
	specs := make([]grid.ClusterSpec, clusters)
	for i := range specs {
		perturb, err := cluster.UniformNoise(0.2, int64(42+i))
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = grid.ClusterSpec{M: perCluster, Perturb: perturb}
	}
	fed, err := grid.New(grid.Config{Clusters: specs, Routing: grid.LeastBacklog()})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := fed.Run(jobs)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// benchFlightRecord times rebuilding a 500-job flight recorder from a
// finished grid report and sorting its events into total order — the
// serve layer's per-refresh observability cost (FromGridReport runs
// after every refresh and drain).
func benchFlightRecord(b *testing.B) {
	rep := flightReport(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := flight.FromGridReport(rep)
		if len(rec.Events()) == 0 {
			b.Fatal("empty flight record")
		}
	}
}

// benchSLOEvaluate times one SLO evaluation — deadline misses,
// per-cluster breakdown, burn-rate window and tail percentiles — over
// the 500-job outcome set of the standard grid replay.
func benchSLOEvaluate(b *testing.B) {
	rep := flightReport(b)
	var outcomes []slo.JobOutcome
	for c, crep := range rep.Clusters {
		if crep == nil {
			continue
		}
		for _, br := range crep.Batches {
			for _, p := range br.Placements {
				outcomes = append(outcomes, slo.JobOutcome{
					Job: p.TaskID, Cluster: c, Release: 0, Pmin: p.End - p.Start,
					Start: p.Start, End: p.End, Done: true,
				})
			}
		}
	}
	if len(outcomes) == 0 {
		b.Fatal("no outcomes")
	}
	spec := slo.Spec{
		MissBudget:    0.05,
		BurnWindow:    50,
		StretchTarget: 10,
		WaitTarget:    100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := slo.Evaluate(spec, outcomes)
		if sum.Jobs != len(outcomes) {
			b.Fatal("job count mismatch")
		}
	}
}

// benchScenarioCompile times the scenario front door: building and
// compiling a 4-cluster grid spec, which validates eagerly and generates
// the full 400-job arrival stream.
func benchScenarioCompile(b *testing.B) {
	spec, err := scenario.New(
		scenario.WithClusters(32, 32, 16, 16),
		scenario.WithWorkload("mixed", 400),
		scenario.WithArrivals(8, 4),
		scenario.WithNoise(0.15),
		scenario.WithSeed(42),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Compile(spec); err != nil {
			b.Fatal(err)
		}
	}
}
