package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bicriteria/internal/obs"
)

// scrape renders a registry and parses it back, the exact pipeline
// bicrit top runs against GET /metrics.prom.
func scrape(t *testing.T, reg *obs.Registry) []obs.Family {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// topRegistry builds the first-frame registry of the golden test: a
// slice of what a live serve scrape contains.
func topRegistry(t *testing.T) (*obs.Registry, *obs.Counter, *obs.Histogram) {
	reg := obs.NewRegistry()
	reg.Gauge("bicrit_serve_virtual_now", "Virtual time.").Set(120)
	reg.Gauge("bicrit_serve_jobs", "Jobs by state.", obs.L("state", "done")).Set(9)
	reg.Gauge("bicrit_serve_jobs", "Jobs by state.", obs.L("state", "queued")).Set(3)
	sub := reg.Counter("bicrit_serve_submitted_total", "Admitted jobs.")
	sub.Add(12)
	reg.Counter("bicrit_serve_rejected_total", "Refused jobs.", obs.L("reason", "rate-limit")).Add(2)
	h := reg.Histogram("bicrit_demt_phase_seconds", "DEMT phase time.",
		obs.LogBuckets(1e-6, 10, 28), obs.L("phase", "knapsack"))
	for _, v := range []float64{0.001, 0.002, 0.002, 0.004, 0.1} {
		h.Observe(v)
	}
	return reg, sub, h
}

// TestRenderDashboardGolden pins the two-frame dashboard render: frame
// one without rates, frame two with counter and histogram rates diffed
// over a 2-second interval.
func TestRenderDashboardGolden(t *testing.T) {
	reg, sub, h := topRegistry(t)
	first := scrape(t, reg)

	// Two seconds later: 6 more jobs, 4 more knapsack observations.
	sub.Add(6)
	for _, v := range []float64{0.001, 0.003, 0.003, 0.008} {
		h.Observe(v)
	}
	second := scrape(t, reg)

	got := RenderDashboard(nil, first, 0) + "---\n" + RenderDashboard(first, second, 2)
	golden := filepath.Join("testdata", "top.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("dashboard drifted from %s (regenerate with -update):\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestRenderDashboardRates spot-checks the numbers behind the golden
// bytes: rates over the interval and nearest-rank quantiles from the
// scraped buckets.
func TestRenderDashboardRates(t *testing.T) {
	reg, sub, _ := topRegistry(t)
	first := scrape(t, reg)
	sub.Add(6)
	second := scrape(t, reg)

	frame := RenderDashboard(first, second, 2)
	// 6 new jobs over 2 seconds.
	if !strings.Contains(frame, "bicrit_serve_submitted_total") || !strings.Contains(frame, "3") {
		t.Fatalf("submitted rate missing:\n%s", frame)
	}
	for _, want := range []string{"GAUGES", "COUNTERS", "HISTOGRAMS", "p50", "p99",
		`bicrit_serve_jobs{state="done"}`, `bicrit_demt_phase_seconds{phase="knapsack"}`} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame lacks %q:\n%s", want, frame)
		}
	}
	// First frame has no baseline: rates render as em dashes.
	if got := RenderDashboard(nil, first, 0); !strings.Contains(got, "—") {
		t.Errorf("first frame should render blank rates:\n%s", got)
	}
	// A counter that went down (restart) renders "reset", never a
	// negative rate.
	reg2 := obs.NewRegistry()
	reg2.Counter("bicrit_serve_submitted_total", "Admitted jobs.").Add(1)
	if got := RenderDashboard(second, scrape(t, reg2), 2); !strings.Contains(got, "reset") {
		t.Errorf("shrunk counter should render reset:\n%s", got)
	}
	if got := RenderDashboard(nil, nil, 0); got != "(empty scrape)\n" {
		t.Errorf("empty scrape render: %q", got)
	}
}

// TestSuiteShape pins the suite contract: names are unique, cover every
// instrumented hot path family, and Select filters like go test -bench.
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 10 {
		t.Fatalf("suite has %d benchmarks, want >= 10", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.F == nil {
			t.Errorf("benchmark %q has no body", b.Name)
		}
	}
	for _, want := range []string{
		"DEMT/knapsack", "DEMT/compact", "Portfolio/demt", "BatchPlan", "ClusterReplay",
		"GridReplay/clusters=1", "GridReplay/clusters=4", "GridReplay/clusters=8",
		"ServeBulkIngest", "ScenarioCompile",
	} {
		if !seen[want] {
			t.Errorf("suite lacks %q", want)
		}
	}

	sel, err := Select("^GridReplay/")
	if err != nil || len(sel) != 3 {
		t.Fatalf("Select(GridReplay) = %d benchmarks, err %v; want 3", len(sel), err)
	}
	if all, err := Select(""); err != nil || len(all) != len(suite) {
		t.Fatalf("empty pattern should keep the suite: %d, %v", len(all), err)
	}
	if _, err := Select("NoSuchBenchmark"); err == nil {
		t.Fatal("want error for a pattern matching nothing")
	}
	if _, err := Select("["); err == nil {
		t.Fatal("want error for a bad pattern")
	}
}
