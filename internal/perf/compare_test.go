package perf

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func twoTrajectories() (Trajectory, Trajectory) {
	old := Trajectory{Schema: SchemaVersion, Results: []Result{
		{Name: "ClusterReplay", N: 10, NsPerOp: 1.0e7, AllocsPerOp: 5000, BytesPerOp: 800000},
		{Name: "GridReplay/clusters=4", N: 5, NsPerOp: 4.0e7, AllocsPerOp: 20000, BytesPerOp: 3000000},
		{Name: "Portfolio/gang", N: 100, NsPerOp: 2.0e5, AllocsPerOp: 300, BytesPerOp: 40000},
	}}
	new := Trajectory{Schema: SchemaVersion, Results: []Result{
		// 2x regression.
		{Name: "ClusterReplay", N: 10, NsPerOp: 2.0e7, AllocsPerOp: 5100, BytesPerOp: 810000},
		// 25% improvement.
		{Name: "GridReplay/clusters=4", N: 5, NsPerOp: 3.0e7, AllocsPerOp: 18000, BytesPerOp: 2900000},
		// Portfolio/gang disappeared; ScenarioCompile is new.
		{Name: "ScenarioCompile", N: 50, NsPerOp: 1.5e6, AllocsPerOp: 900, BytesPerOp: 120000},
	}}
	return old, new
}

func TestCompareJoinsByName(t *testing.T) {
	old, new := twoTrajectories()
	deltas := Compare(old, new)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if r := byName["ClusterReplay"].NsRatio(); r != 2.0 {
		t.Errorf("ClusterReplay ratio = %g, want 2", r)
	}
	if r := byName["GridReplay/clusters=4"].NsRatio(); r != 0.75 {
		t.Errorf("GridReplay ratio = %g, want 0.75", r)
	}
	if d := byName["Portfolio/gang"]; d.New != nil || !math.IsNaN(d.NsRatio()) {
		t.Errorf("disappeared benchmark: %+v", d)
	}
	if d := byName["ScenarioCompile"]; d.Old != nil || !math.IsNaN(d.NsRatio()) {
		t.Errorf("new benchmark: %+v", d)
	}
	// Order: old trajectory order first, then new-only.
	if deltas[0].Name != "ClusterReplay" || deltas[3].Name != "ScenarioCompile" {
		t.Errorf("delta order: %v %v", deltas[0].Name, deltas[3].Name)
	}
}

// TestFormatDeltasGolden pins the delta table byte for byte — the output
// CI prints on every perf-gate run.
func TestFormatDeltasGolden(t *testing.T) {
	old, new := twoTrajectories()
	got := FormatDeltas(Compare(old, new))
	golden := filepath.Join("testdata", "deltas.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("delta table drifted from %s (regenerate with -update):\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestGate(t *testing.T) {
	old, new := twoTrajectories()
	deltas := Compare(old, new)

	failures, err := Gate(deltas, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two failures: the 2x regression and the disappearance. The
	// improvement and the new benchmark pass.
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want 2", failures)
	}
	if !strings.Contains(failures[0], "ClusterReplay") || !strings.Contains(failures[0], "2.00x") {
		t.Errorf("regression message: %q", failures[0])
	}
	if !strings.Contains(failures[1], "Portfolio/gang") || !strings.Contains(failures[1], "disappeared") {
		t.Errorf("disappearance message: %q", failures[1])
	}

	// A generous threshold forgives the regression but never the
	// disappearance.
	failures, err = Gate(deltas, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "disappeared") {
		t.Fatalf("generous gate: %v", failures)
	}

	// Identical trajectories pass.
	same := Compare(old, old)
	failures, err = Gate(same, 1.25)
	if err != nil || len(failures) != 0 {
		t.Fatalf("self-compare: %v %v", failures, err)
	}

	// Thresholds at or below 1 are configuration errors.
	for _, bad := range []float64{1, 0.5, 0, -2, math.NaN()} {
		if _, err := Gate(deltas, bad); err == nil {
			t.Errorf("threshold %g: want error", bad)
		}
	}
}

// TestGateInjectedSlowdown is the acceptance check: a synthetic 2x
// slowdown of one benchmark must trip the 1.25 gate.
func TestGateInjectedSlowdown(t *testing.T) {
	old := Trajectory{Schema: SchemaVersion, Results: sampleResults()}
	slowed := Trajectory{Schema: SchemaVersion, Results: append([]Result(nil), old.Results...)}
	slowed.Results[0].NsPerOp *= 2

	failures, err := Gate(Compare(old, slowed), 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], old.Results[0].Name) {
		t.Fatalf("injected slowdown not caught: %v", failures)
	}
}
