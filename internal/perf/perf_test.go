package perf

import (
	"strings"
	"testing"
)

// TestRunMeasures checks the harness flattening: N and ns/op come from
// testing.Benchmark, an explicit ns/op metric (the DEMT phase trick)
// overrides the wall clock, and a failed body is an error, not a NaN.
func TestRunMeasures(t *testing.T) {
	res, err := Run(Benchmark{Name: "trivial", F: func(b *testing.B) {
		var s int
		for i := 0; i < b.N; i++ {
			s += i
		}
		_ = s
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "trivial" || res.N <= 0 || res.NsPerOp <= 0 {
		t.Fatalf("flattened result: %+v", res)
	}

	res, err = Run(Benchmark{Name: "reported", F: func(b *testing.B) {
		b.ReportMetric(12345, "ns/op")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NsPerOp != 12345 {
		t.Fatalf("explicit ns/op metric not honoured: got %g", res.NsPerOp)
	}

	if _, err := Run(Benchmark{Name: "failing", F: func(b *testing.B) {
		b.Fatal("boom")
	}}); err == nil || !strings.Contains(err.Error(), "failing") {
		t.Fatalf("failed benchmark: err = %v", err)
	}
}
