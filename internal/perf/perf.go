// Package perf is the performance observatory of the library: a named
// benchmark suite over every instrumented hot path, a versioned
// machine-readable trajectory format (the BENCH_*.json files CI records
// on every commit), regression comparison and gating between two
// trajectories, and the terminal dashboard renderer behind bicrit top.
//
// The suite (Suite) drives the same code the runtime layers execute —
// DEMT's knapsack and compaction phases via core.Options.Timing, each
// portfolio algorithm on a standard batch, single-batch planning, the
// cluster and grid replays at 1/4/8 shards, the serve layer's bulk HTTP
// ingest and scenario compilation — under the standard testing harness,
// so ns/op, allocs/op and B/op are comparable to go test -bench output.
//
// Trajectories are compared benchmark-by-benchmark (Compare) and gated
// (Gate): a gate threshold of 1.25 fails any benchmark whose ns/op grew
// past 1.25x the old trajectory, and any benchmark that disappeared.
// cmd/bicrit wires this into `bicrit bench -compare old.json -gate 1.25`,
// which CI runs against the previous recorded trajectory (falling back
// to the committed testdata/BENCH_baseline.json).
//
// RenderDashboard turns two successive parsed /metrics.prom scrapes
// (obs.ParseText) into the live terminal view of bicrit top: gauges,
// counter rates over the scrape interval, and histogram quantiles
// estimated from the cumulative buckets (obs.BucketQuantile).
package perf

import (
	"fmt"
	"regexp"
	"testing"
)

// Benchmark is one named member of the suite.
type Benchmark struct {
	// Name identifies the benchmark in trajectories and -run patterns,
	// using go test's slash convention for variants ("GridReplay/clusters=4").
	Name string
	// F is the benchmark body.
	F func(b *testing.B)
}

// Select filters the suite by a go test -bench style regular expression
// matched against the benchmark names. An empty pattern keeps everything;
// a pattern matching nothing is an error.
func Select(pattern string) ([]Benchmark, error) {
	all := Suite()
	if pattern == "" {
		return all, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("perf: bad -run pattern: %v", err)
	}
	var out []Benchmark
	for _, b := range all {
		if re.MatchString(b.Name) {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perf: -run pattern %q matches no benchmark", pattern)
	}
	return out, nil
}

// Run executes one benchmark under the testing harness and flattens the
// measurement. A benchmark that reported an "ns/op" metric explicitly
// (the DEMT phase benchmarks, which time a sub-phase of each iteration)
// overrides the harness wall clock, exactly as testing.BenchmarkResult
// does. A benchmark body that failed (b.Fatal) leaves N at zero in the
// harness result; that is an error here, not a NaN in the trajectory.
func Run(b Benchmark) (Result, error) {
	res := testing.Benchmark(b.F)
	if res.N == 0 {
		return Result{}, fmt.Errorf("perf: benchmark %s failed", b.Name)
	}
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	if v, ok := res.Extra["ns/op"]; ok {
		nsPerOp = v
	}
	return Result{
		Name:        b.Name,
		N:           res.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}
