package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// SchemaVersion is the current BENCH file schema. Version 1 was PR 6's
// bare JSON array of results; version 2 wraps the results in an envelope
// carrying the provenance a trajectory needs to be comparable (commit, go
// version, GOMAXPROCS, timestamp).
const SchemaVersion = 2

// Result is one benchmark's measurement, the unit of a trajectory.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Trajectory is one recorded run of the suite: the BENCH_*.json schema.
type Trajectory struct {
	// Schema is the file format version (SchemaVersion).
	Schema int `json:"schema"`
	// Commit is the VCS revision the run measured, when known.
	Commit string `json:"commit,omitempty"`
	// GoVersion and GOMAXPROCS describe the measuring toolchain and
	// machine.
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	// Timestamp is the recording time in RFC 3339, informational only —
	// comparisons join on benchmark names, never on time.
	Timestamp string `json:"timestamp,omitempty"`
	// Results lists the measurements in suite order.
	Results []Result `json:"results"`
}

// NewTrajectory wraps results in the current schema envelope, stamping
// the runtime metadata. Commit may be empty when no VCS information is
// available.
func NewTrajectory(results []Result, commit string, now time.Time) Trajectory {
	t := Trajectory{
		Schema:     SchemaVersion,
		Commit:     commit,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	if !now.IsZero() {
		t.Timestamp = now.UTC().Format(time.RFC3339)
	}
	return t
}

// Lookup returns the named result, or nil.
func (t Trajectory) Lookup(name string) *Result {
	for i := range t.Results {
		if t.Results[i].Name == name {
			return &t.Results[i]
		}
	}
	return nil
}

// WriteTrajectory renders the trajectory as indented JSON.
func WriteTrajectory(w io.Writer, t Trajectory) error {
	if t.Schema == 0 {
		t.Schema = SchemaVersion
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrajectory parses a BENCH file. The current schema (a version-2
// envelope) is decoded strictly — unknown fields and unknown schema
// versions are rejected, the same contract as scenario files. A legacy
// bare-array file (PR 6's schema 1) is still accepted, so trajectories
// recorded before the envelope existed remain comparable.
func ReadTrajectory(r io.Reader) (Trajectory, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Trajectory{}, err
	}
	i := 0
	for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
		i++
	}
	if i == len(data) {
		return Trajectory{}, fmt.Errorf("perf: empty BENCH file")
	}
	if data[i] == '[' {
		var results []Result
		if err := json.Unmarshal(data, &results); err != nil {
			return Trajectory{}, fmt.Errorf("perf: legacy BENCH array: %v", err)
		}
		return Trajectory{Schema: 1, Results: results}, nil
	}
	var t Trajectory
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Trajectory{}, fmt.Errorf("perf: BENCH file: %v", err)
	}
	if t.Schema != SchemaVersion {
		return Trajectory{}, fmt.Errorf("perf: unsupported BENCH schema %d (this build reads schema %d and the legacy array form)", t.Schema, SchemaVersion)
	}
	return t, nil
}

// LoadTrajectory reads a BENCH file from disk.
func LoadTrajectory(path string) (Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trajectory{}, err
	}
	defer f.Close()
	t, err := ReadTrajectory(f)
	if err != nil {
		return Trajectory{}, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
