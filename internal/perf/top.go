package perf

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"bicriteria/internal/obs"
)

// RenderDashboard turns one parsed /metrics.prom scrape into the bicrit
// top frame: an ALERTS section when the scrape carries SLO alert gauges
// (bicrit_slo_alert_firing), gauges with their values, counters with totals and rates
// over the scrape interval, histograms with counts, rates and
// nearest-rank quantiles estimated from the cumulative buckets. prev is
// the previous scrape (nil on the first frame — rates render blank) and
// elapsed the wall-clock seconds between the two. Output is
// deterministic for fixed scrapes: families sort by name, series render
// in scrape order (itself deterministic, the registry sorts series).
func RenderDashboard(prev, cur []obs.Family, elapsed float64) string {
	prevRows := make(map[string]float64)
	prevHist := make(map[string]float64)
	for _, fam := range prev {
		if fam.Type == obs.TypeHistogram {
			for _, h := range obs.HistogramRows(fam) {
				prevHist[fam.Name+"{"+labelKey(h.Labels)+"}"] = h.Count
			}
			continue
		}
		for _, row := range fam.Rows {
			prevRows[row.Name+"{"+labelKey(row.Labels)+"}"] = row.Value
		}
	}

	fams := append([]obs.Family(nil), cur...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })

	var alerts, gauges, counters, hists strings.Builder
	for _, fam := range fams {
		// The SLO engine publishes one 0/1 gauge per alert rule; surface
		// them as their own dashboard section (they still appear among the
		// plain gauges below, like every other series).
		if fam.Name == "bicrit_slo_alert_firing" {
			for _, row := range fam.Rows {
				name := fam.Name
				for _, l := range row.Labels {
					if l.Name == "alert" {
						name = l.Value
					}
				}
				state := "resolved"
				if row.Value > 0 {
					state = "FIRING"
				}
				fmt.Fprintf(&alerts, "  %-52s %14s\n", name, state)
			}
		}
		switch fam.Type {
		case obs.TypeCounter:
			for _, row := range fam.Rows {
				rate := rateCell(prevRows, row.Name+"{"+labelKey(row.Labels)+"}", row.Value, elapsed)
				fmt.Fprintf(&counters, "  %-52s %14s %12s\n", series(row.Name, row.Labels), num(row.Value), rate)
			}
		case obs.TypeHistogram:
			for _, h := range obs.HistogramRows(fam) {
				key := fam.Name + "{" + labelKey(h.Labels) + "}"
				rate := rateCell(prevHist, key, h.Count, elapsed)
				mean := math.NaN()
				if h.Count > 0 {
					mean = h.Sum / h.Count
				}
				fmt.Fprintf(&hists, "  %-52s %10s %10s %10s %10s %10s %10s\n",
					series(fam.Name, h.Labels), num(h.Count), rate,
					num(h.Quantile(0.5)), num(h.Quantile(0.9)), num(h.Quantile(0.99)), num(mean))
			}
		default: // gauges and anything untyped
			for _, row := range fam.Rows {
				fmt.Fprintf(&gauges, "  %-52s %14s\n", series(row.Name, row.Labels), num(row.Value))
			}
		}
	}

	var b strings.Builder
	if alerts.Len() > 0 {
		fmt.Fprintf(&b, "%-54s %14s\n", "ALERTS", "state")
		b.WriteString(alerts.String())
	}
	if gauges.Len() > 0 {
		fmt.Fprintf(&b, "%-54s %14s\n", "GAUGES", "value")
		b.WriteString(gauges.String())
	}
	if counters.Len() > 0 {
		fmt.Fprintf(&b, "%-54s %14s %12s\n", "COUNTERS", "total", "rate/s")
		b.WriteString(counters.String())
	}
	if hists.Len() > 0 {
		fmt.Fprintf(&b, "%-54s %10s %10s %10s %10s %10s %10s\n",
			"HISTOGRAMS", "count", "rate/s", "p50", "p90", "p99", "mean")
		b.WriteString(hists.String())
	}
	if b.Len() == 0 {
		return "(empty scrape)\n"
	}
	return b.String()
}

// series renders a sample name with its labels in the scrape syntax.
func series(name string, labels []obs.Label) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + strconv.Quote(l.Value)
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// labelKey is the diff key of a series between two scrapes.
func labelKey(labels []obs.Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// rateCell renders the per-second growth of a monotone series between
// scrapes, blank when there is no previous scrape and "reset" when the
// total went down (a restarted server).
func rateCell(prev map[string]float64, key string, cur, elapsed float64) string {
	old, ok := prev[key]
	if !ok || elapsed <= 0 {
		return "—"
	}
	if cur < old {
		return "reset"
	}
	return num((cur - old) / elapsed)
}

// num renders a dashboard value compactly: integers without decimals,
// small magnitudes with sensible precision, NaN and infinities as
// placeholders.
func num(v float64) string {
	switch {
	case math.IsNaN(v):
		return "—"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 0.001 && math.Abs(v) < 1e7:
		s := strconv.FormatFloat(v, 'f', 4, 64)
		return strings.TrimRight(strings.TrimRight(s, "0"), ".")
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}
