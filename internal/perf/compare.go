package perf

import (
	"fmt"
	"math"
	"strings"
)

// Delta is one benchmark's change between two trajectories. Old is nil
// for a benchmark that only exists in the new trajectory, New is nil for
// one that disappeared.
type Delta struct {
	Name string
	Old  *Result
	New  *Result
}

// NsRatio is new ns/op over old ns/op; NaN when either side is missing
// or the old measurement is zero.
func (d Delta) NsRatio() float64 {
	if d.Old == nil || d.New == nil || d.Old.NsPerOp <= 0 {
		return math.NaN()
	}
	return d.New.NsPerOp / d.Old.NsPerOp
}

// Compare joins two trajectories on benchmark name: old-trajectory order
// first (disappeared benchmarks included), then new-only benchmarks in
// their own order.
func Compare(old, new Trajectory) []Delta {
	var deltas []Delta
	for i := range old.Results {
		d := Delta{Name: old.Results[i].Name, Old: &old.Results[i]}
		d.New = new.Lookup(d.Name)
		deltas = append(deltas, d)
	}
	for i := range new.Results {
		if old.Lookup(new.Results[i].Name) == nil {
			deltas = append(deltas, Delta{Name: new.Results[i].Name, New: &new.Results[i]})
		}
	}
	return deltas
}

// FormatDeltas renders the per-benchmark comparison table: old and new
// ns/op, allocs/op and B/op with signed percentage deltas. Disappeared
// benchmarks render as "gone", new ones as "new".
func FormatDeltas(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %8s %11s %11s %8s %11s %11s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta",
		"old allocs", "new allocs", "delta", "old B/op", "new B/op", "delta")
	for _, d := range deltas {
		switch {
		case d.New == nil:
			fmt.Fprintf(&b, "%-28s %14.0f %14s %8s %11d %11s %8s %11d %11s %8s\n",
				d.Name, d.Old.NsPerOp, "—", "gone", d.Old.AllocsPerOp, "—", "", d.Old.BytesPerOp, "—", "")
		case d.Old == nil:
			fmt.Fprintf(&b, "%-28s %14s %14.0f %8s %11s %11d %8s %11s %11d %8s\n",
				d.Name, "—", d.New.NsPerOp, "new", "—", d.New.AllocsPerOp, "", "—", d.New.BytesPerOp, "")
		default:
			fmt.Fprintf(&b, "%-28s %14.0f %14.0f %8s %11d %11d %8s %11d %11d %8s\n",
				d.Name,
				d.Old.NsPerOp, d.New.NsPerOp, pct(float64(d.Old.NsPerOp), float64(d.New.NsPerOp)),
				d.Old.AllocsPerOp, d.New.AllocsPerOp, pct(float64(d.Old.AllocsPerOp), float64(d.New.AllocsPerOp)),
				d.Old.BytesPerOp, d.New.BytesPerOp, pct(float64(d.Old.BytesPerOp), float64(d.New.BytesPerOp)))
		}
	}
	return b.String()
}

// pct renders a signed percentage change, "~" for a zero baseline.
func pct(old, new float64) string {
	if old <= 0 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
}

// Gate checks the deltas against a regression threshold: a benchmark
// whose ns/op grew past threshold times the old measurement fails, and
// so does one that disappeared (a silently dropped benchmark is how a
// trajectory rots). Improvements and new benchmarks pass. The returned
// messages are empty exactly when the gate passes; threshold must exceed
// 1.
func Gate(deltas []Delta, threshold float64) ([]string, error) {
	if !(threshold > 1) {
		return nil, fmt.Errorf("perf: gate threshold must exceed 1, got %g", threshold)
	}
	var failures []string
	for _, d := range deltas {
		switch {
		case d.New == nil:
			failures = append(failures, fmt.Sprintf("%s: benchmark disappeared from the new trajectory", d.Name))
		case d.Old == nil:
			// New benchmarks have no baseline to regress against.
		case d.NsRatio() > threshold:
			failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.2fx (%.0f -> %.0f, threshold %.2fx)",
				d.Name, d.NsRatio(), d.Old.NsPerOp, d.New.NsPerOp, threshold))
		}
	}
	return failures, nil
}
