package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleResults() []Result {
	return []Result{
		{Name: "ClusterReplay", N: 10, NsPerOp: 1.2e7, AllocsPerOp: 5000, BytesPerOp: 800000},
		{Name: "GridReplay/clusters=4", N: 5, NsPerOp: 4.5e7, AllocsPerOp: 21000, BytesPerOp: 3200000},
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	tr := NewTrajectory(sampleResults(), "abc1234", now)
	if tr.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", tr.Schema, SchemaVersion)
	}
	if tr.GoVersion == "" || tr.GOMAXPROCS < 1 {
		t.Fatalf("metadata not stamped: %+v", tr)
	}
	if tr.Timestamp != "2026-08-08T12:00:00Z" {
		t.Fatalf("timestamp = %q", tr.Timestamp)
	}
	var buf bytes.Buffer
	if err := WriteTrajectory(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrajectory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commit != "abc1234" || got.GOMAXPROCS != tr.GOMAXPROCS || len(got.Results) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if *got.Lookup("ClusterReplay") != tr.Results[0] {
		t.Fatalf("result mismatch: %+v", got.Results[0])
	}
	if got.Lookup("no-such-benchmark") != nil {
		t.Fatal("Lookup invented a result")
	}
}

// TestReadTrajectoryLegacyArray keeps PR 6's bare-array BENCH_smoke.json
// files readable: they parse as schema 1 with no metadata.
func TestReadTrajectoryLegacyArray(t *testing.T) {
	legacy := `[
  {"name": "ClusterReplay", "n": 3, "ns_per_op": 1e7, "allocs_per_op": 100, "bytes_per_op": 2000}
]`
	tr, err := ReadTrajectory(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != 1 || len(tr.Results) != 1 || tr.Results[0].Name != "ClusterReplay" {
		t.Fatalf("legacy parse: %+v", tr)
	}
}

func TestReadTrajectoryRejections(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown schema", `{"schema": 99, "results": []}`, "unsupported BENCH schema 99"},
		{"zero schema", `{"results": []}`, "unsupported BENCH schema 0"},
		{"unknown field", `{"schema": 2, "results": [], "surprise": 1}`, "unknown field"},
		{"empty", "   \n", "empty BENCH file"},
		{"garbage", "not json", "BENCH file"},
		{"bad array", `[{"name": 3}]`, "legacy BENCH array"},
	}
	for _, c := range cases {
		_, err := ReadTrajectory(strings.NewReader(c.body))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

func TestLoadTrajectoryMissingFile(t *testing.T) {
	if _, err := LoadTrajectory("/no/such/BENCH.json"); err == nil {
		t.Fatal("want error for a missing file")
	}
}
