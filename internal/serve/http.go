package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"bicriteria/internal/flight"
	"bicriteria/internal/grid"
	"bicriteria/internal/moldable"
	"bicriteria/internal/slo"
	"bicriteria/internal/stats"
)

// JobSpec is the wire form of one job submission. A zero weight means 1.
type JobSpec struct {
	ID     int       `json:"id"`
	Name   string    `json:"name,omitempty"`
	Weight float64   `json:"weight,omitempty"`
	Times  []float64 `json:"times"`
}

// task converts the spec into the scheduling model.
func (js JobSpec) task() moldable.Task {
	w := js.Weight
	if w == 0 {
		w = 1
	}
	return moldable.Task{ID: js.ID, Name: js.Name, Weight: w, Times: js.Times}
}

// SubmitResponse is the body of POST /jobs: the jobs admitted (with their
// virtual release stamps) and, when the request stopped early, why.
type SubmitResponse struct {
	Accepted []Accepted `json:"accepted"`
	// Error explains the first refusal, which halts a bulk submission;
	// jobs listed in Accepted were admitted before it.
	Error string `json:"error,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 responses.
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
}

// MetricsResponse is the body of GET /metrics.
type MetricsResponse struct {
	// VirtualNow is the pacer's current simulated time, Speedup its
	// virtual-seconds-per-wall-second factor and UptimeSeconds the
	// wall-clock age of the process.
	VirtualNow    float64  `json:"virtual_now"`
	Speedup       float64  `json:"speedup"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	State         string   `json:"state"`
	Counters      Counters `json:"counters"`
	// JobStates counts the admitted jobs per lifecycle state, as of the
	// last refresh.
	JobStates map[string]int `json:"job_states"`
	// QueueDepths is the instantaneous occupancy of every submission
	// queue shard.
	QueueDepths []int `json:"queue_depths"`
	// Grid is the grid-wide aggregate of the latest stream replay (the
	// refresher's, or the final one after drain); GridVirtualTime is the
	// virtual time that replay was evaluated at.
	Grid            *grid.Metrics `json:"grid,omitempty"`
	GridVirtualTime float64       `json:"grid_virtual_time,omitempty"`
	// StretchHistogram and WaitHistogram are log-spaced distributions over
	// the completed jobs: per-job stretch, and virtual wait time
	// (start minus release, floored at the histogram's lower bound).
	StretchHistogram stats.HistogramSnapshot `json:"stretch_histogram"`
	WaitHistogram    stats.HistogramSnapshot `json:"wait_histogram"`
	// Faults summarizes the fault-injection status when the service runs
	// under a fault plan: the plan's size and the recovery counters of the
	// latest replay. Absent on a fault-free service, keeping its /metrics
	// body byte-identical to one without the subsystem.
	Faults *FaultsStatus `json:"faults,omitempty"`
}

// FaultsStatus is the fault block of GET /metrics.
type FaultsStatus struct {
	// PlanNodeOutages and PlanShardOutages count the windows of the
	// injected plan.
	PlanNodeOutages  int `json:"plan_node_outages"`
	PlanShardOutages int `json:"plan_shard_outages"`
	// Killed, Resubmitted, Lost, Recovered and Migrated are the grid-wide
	// recovery counters of the latest stream replay (see grid.Metrics).
	Killed      int `json:"killed"`
	Resubmitted int `json:"resubmitted"`
	Lost        int `json:"lost"`
	Recovered   int `json:"recovered"`
	Migrated    int `json:"migrated"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok", "draining" or "drained".
	Status     string  `json:"status"`
	VirtualNow float64 `json:"virtual_now"`
	Jobs       int     `json:"jobs"`
	// UptimeSeconds is the wall-clock age of the process.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// SnapshotAgeSeconds is the wall-clock age of the last successful
	// snapshot write — or the process age while none has been written yet,
	// so a wedged snapshot loop shows as a growing age either way. Absent
	// when snapshots are disabled.
	SnapshotAgeSeconds *float64 `json:"snapshot_age_seconds,omitempty"`
	// RefreshError and SnapshotError surface background-loop failures.
	RefreshError  string `json:"refresh_error,omitempty"`
	SnapshotError string `json:"snapshot_error,omitempty"`
}

// Fixed shapes of the /metrics histograms: stable scrape schemas matter
// more than per-deployment tuning. Stretch is dimensionless and starts at
// its floor 1; waits are in virtual time units.
const (
	stretchHistLo, stretchHistHi, stretchHistBuckets = 1, 1e4, 40
	waitHistLo, waitHistHi, waitHistBuckets          = 1e-2, 1e6, 40
)

// Handler returns the HTTP API of the service:
//
//	POST /jobs                  submit one job or a bulk batch
//	GET  /jobs/{id}             live status of a job
//	GET  /jobs/{id}/timeline    the job's flight-recorder timeline
//	GET  /alerts                SLO alert states (firing and resolved)
//	GET  /metrics               counters, state counts, distributions, grid aggregate
//	GET  /metrics.prom          the same state in the Prometheus text format
//	GET  /healthz               liveness, drain state, uptime, snapshot age
//	GET  /version               build information
//	POST /drain                 graceful drain; responds with the final report
//
// Every request is stamped with a sequential request ID (echoed in the
// X-Request-Id response header) and logged to the configured logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", s.handlePromMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("POST /drain", s.handleDrain)
	return s.accessLog(mux)
}

// requestID numbers the requests of this process for the access log.
var requestID atomic.Uint64

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// accessLog stamps every request with a process-sequential ID (echoed as
// X-Request-Id) and writes one structured access-log record per request.
// With the default discard logger the wrapper only costs the stamp.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := requestID.Add(1)
		w.Header().Set("X-Request-Id", strconv.FormatUint(id, 10))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration", time.Since(start))
	})
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// decodeSpecs accepts the three submission shapes: a single job object, a
// bare array of jobs, or an object with a "jobs" array.
func decodeSpecs(body []byte) ([]JobSpec, error) {
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\n' || body[i] == '\r') {
		i++
	}
	if i == len(body) {
		return nil, fmt.Errorf("empty request body")
	}
	if body[i] == '[' {
		var specs []JobSpec
		if err := json.Unmarshal(body, &specs); err != nil {
			return nil, err
		}
		return specs, nil
	}
	var wrapper struct {
		Jobs []JobSpec `json:"jobs"`
	}
	if err := json.Unmarshal(body, &wrapper); err == nil && len(wrapper.Jobs) > 0 {
		return wrapper.Jobs, nil
	}
	var one JobSpec
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, err
	}
	return []JobSpec{one}, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, SubmitResponse{Error: err.Error()})
		return
	}
	specs, err := decodeSpecs(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, SubmitResponse{Error: err.Error()})
		return
	}
	if len(specs) == 0 {
		writeJSON(w, http.StatusBadRequest, SubmitResponse{Error: "no jobs in request"})
		return
	}
	// Validate everything up front so a bulk request is never admitted
	// half-way because of a malformed tail.
	seen := make(map[int]bool, len(specs))
	for i, spec := range specs {
		task := spec.task()
		if err := task.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, SubmitResponse{Error: fmt.Sprintf("job %d of request: %v", i, err)})
			return
		}
		if seen[spec.ID] {
			writeJSON(w, http.StatusBadRequest, SubmitResponse{Error: fmt.Sprintf("duplicate job ID %d in request", spec.ID)})
			return
		}
		seen[spec.ID] = true
	}

	resp := SubmitResponse{Accepted: make([]Accepted, 0, len(specs))}
	for _, spec := range specs {
		acc, err := s.Submit(spec.task())
		if err == nil {
			resp.Accepted = append(resp.Accepted, acc)
			continue
		}
		status := http.StatusBadRequest
		var rej *Rejection
		var dup *DuplicateError
		switch {
		case errors.As(err, &rej):
			if rej.Reason == "draining" {
				status = http.StatusServiceUnavailable
			} else {
				status = http.StatusTooManyRequests
				secs := rej.RetryAfter.Seconds()
				resp.RetryAfterSeconds = secs
				// RFC 9110 allows Retry-After: 0, but a zero backoff (a
				// sub-second computed delay rounds down through Seconds())
				// invites clients to hammer the limiter; clamp to >= 1.
				retry := int(math.Ceil(secs))
				if retry < 1 {
					retry = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(retry))
			}
		case errors.As(err, &dup):
			status = http.StatusConflict
		}
		resp.Error = err.Error()
		writeJSON(w, status, resp)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "job ID must be an integer"})
		return
	}
	status, ok := s.Status(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown job %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// TimelineResponse is the body of GET /jobs/{id}/timeline: the job's
// flight-recorder events in total order, trusted up to the virtual time of
// the last replay. Final is true after a drain (the timeline can no longer
// change); while false, TrustedTo carries the prefix boundary. A job that
// has been admitted but not yet reached by a trusted replay shows its
// submitted event only.
type TimelineResponse struct {
	Job       int            `json:"job"`
	Final     bool           `json:"final"`
	TrustedTo *float64       `json:"trusted_to,omitempty"`
	Events    []flight.Event `json:"events"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "job ID must be an integer"})
		return
	}
	status, ok := s.Status(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown job %d", id)})
		return
	}
	s.liveMu.RLock()
	rec, at := s.flightRec, s.flightAt
	s.liveMu.RUnlock()
	resp := TimelineResponse{Job: id, Events: []flight.Event{}}
	if math.IsInf(at, 1) {
		resp.Final = true
	} else if rec != nil && !math.IsInf(at, -1) {
		trusted := at
		resp.TrustedTo = &trusted
	}
	if rec != nil {
		for _, ev := range rec.Timeline(id) {
			// The same prefix rule apply uses: an event at the margin of the
			// capture time could still change and stays provisional.
			if resp.Final || ev.Time < at-eps {
				resp.Events = append(resp.Events, ev)
			}
		}
	}
	if len(resp.Events) == 0 {
		// Admitted but not yet inside a trusted replay: the submission
		// itself is still a fact worth reporting.
		resp.Events = append(resp.Events, flight.Event{
			Kind: flight.KindSubmitted, Job: id, Time: status.Release,
			Cluster: -1, Batch: -1,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// AlertsResponse is the body of GET /alerts. Enabled reports whether an
// SLO spec is configured; with none, both alert lists are empty. Jobs and
// Misses summarize the deadline axis of the last evaluation.
type AlertsResponse struct {
	Enabled  bool        `json:"enabled"`
	Jobs     int         `json:"jobs"`
	Misses   int         `json:"misses"`
	MissRate float64     `json:"miss_rate"`
	Firing   []slo.Alert `json:"firing"`
	Resolved []slo.Alert `json:"resolved"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	resp := AlertsResponse{
		Enabled:  s.cfg.SLO != nil,
		Firing:   []slo.Alert{},
		Resolved: []slo.Alert{},
	}
	s.liveMu.RLock()
	sum := s.sloSum
	s.liveMu.RUnlock()
	if sum != nil {
		resp.Jobs = sum.Jobs
		resp.Misses = sum.Misses
		resp.MissRate = sum.MissRate
		for _, a := range sum.Alerts {
			if a.Firing() {
				resp.Firing = append(resp.Firing, a)
			} else {
				resp.Resolved = append(resp.Resolved, a)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stretchHist, _ := stats.NewHistogram(stretchHistLo, stretchHistHi, stretchHistBuckets)
	waitHist, _ := stats.NewHistogram(waitHistLo, waitHistHi, waitHistBuckets)
	s.reg.eachDone(func(j JobStatus) {
		stretchHist.Observe(j.Stretch)
		wait := j.Wait
		if wait < waitHistLo {
			wait = waitHistLo
		}
		waitHist.Observe(wait)
	})

	resp := MetricsResponse{
		VirtualNow:       s.Now(),
		Speedup:          s.cfg.Speedup,
		UptimeSeconds:    s.pacer.wall().Sub(s.started).Seconds(),
		State:            s.state(),
		Counters:         s.CountersSnapshot(),
		JobStates:        s.reg.stateCounts(),
		QueueDepths:      make([]int, len(s.shards)),
		StretchHistogram: stretchHist.Snapshot(),
		WaitHistogram:    waitHist.Snapshot(),
	}
	for i, ch := range s.shards {
		resp.QueueDepths[i] = len(ch)
	}
	s.liveMu.RLock()
	resp.Grid = s.live
	resp.GridVirtualTime = s.liveAt
	s.liveMu.RUnlock()
	if plan := s.cfg.Grid.Faults; !plan.Empty() {
		fs := &FaultsStatus{PlanNodeOutages: len(plan.Nodes), PlanShardOutages: len(plan.Shards)}
		if resp.Grid != nil {
			fs.Killed = resp.Grid.Killed
			fs.Resubmitted = resp.Grid.Resubmitted
			fs.Lost = resp.Grid.Lost
			fs.Recovered = resp.Grid.Recovered
			fs.Migrated = resp.Grid.Migrated
		}
		resp.Faults = fs
	}
	writeJSON(w, http.StatusOK, resp)
}

// state derives the health-status word.
func (s *Server) state() string {
	if s.Drained() {
		return "drained"
	}
	if s.Draining() {
		return "draining"
	}
	return "ok"
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	now := s.pacer.wall()
	resp := HealthResponse{
		Status:        s.state(),
		VirtualNow:    s.Now(),
		Jobs:          s.Jobs(),
		UptimeSeconds: now.Sub(s.started).Seconds(),
	}
	s.liveMu.RLock()
	if s.cfg.SnapshotPath != "" {
		since := s.lastSnapshot
		if since.IsZero() {
			since = s.started
		}
		age := now.Sub(since).Seconds()
		resp.SnapshotAgeSeconds = &age
	}
	if s.refreshErr != nil {
		resp.RefreshError = s.refreshErr.Error()
	}
	if s.snapshotErr != nil {
		resp.SnapshotError = s.snapshotErr.Error()
	}
	s.liveMu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Drain()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// ListenAndServe starts the HTTP API on addr and blocks until the server
// errors, like http.ListenAndServe. Most callers build their own
// http.Server around Handler instead; this is the convenience entry point.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.ListenAndServe()
}
