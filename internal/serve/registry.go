package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"bicriteria/internal/cluster"
	"bicriteria/internal/slo"
)

// JobState is the lifecycle position of a submitted job. States only move
// forward: queued → batched → scheduled → running → (resubmitted →) done.
// The serve layer derives them from prefix replays of the accumulated
// stream (see Server.refresh), so every non-final state a client observes
// is exactly what the deterministic replay of the stream so far implies.
// A job killed by a fault-plan outage shows resubmitted — once killed, the
// visible state stays resubmitted through the retry's own batching and
// execution, until the retry completes.
type JobState int

const (
	// StateQueued: admitted, waiting for its shard's batcher to fire.
	StateQueued JobState = iota
	// StateBatched: part of a committed batch, not yet placed in time.
	StateBatched
	// StateScheduled: placed with a concrete start time in the future.
	StateScheduled
	// StateRunning: started, not yet completed, at the current virtual time.
	StateRunning
	// StateResubmitted: killed by an outage and re-enqueued; stays until
	// the retry completes.
	StateResubmitted
	// StateDone: completed; stretch and bounded slowdown are final.
	StateDone
)

// String returns the wire name of the state.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateBatched:
		return "batched"
	case StateScheduled:
		return "scheduled"
	case StateRunning:
		return "running"
	case StateResubmitted:
		return "resubmitted"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// MarshalJSON encodes the state as its wire name.
func (s JobState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name back into a state.
func (s *JobState) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for st := StateQueued; st <= StateDone; st++ {
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("serve: unknown job state %q", name)
}

// JobStatus is the live view of one submitted job, as returned by
// GET /jobs/{id}. Virtual-time fields are meaningful from the state that
// first determines them: Cluster from routing, Start/End from scheduling,
// Wait/Stretch/BoundedSlowdown from completion.
type JobStatus struct {
	ID      int      `json:"id"`
	Name    string   `json:"name,omitempty"`
	Weight  float64  `json:"weight"`
	Release float64  `json:"release"`
	State   JobState `json:"state"`
	// Cluster is the shard the meta-scheduler routed the job to, -1 while
	// unknown. Batch is the shard-local batch index, -1 while unknown.
	Cluster int `json:"cluster"`
	Batch   int `json:"batch"`
	// Start and End are the job's realized execution window in virtual
	// time, known from StateScheduled on.
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	// Wait is Start - Release; Stretch is flow over the job's fastest
	// possible execution time; BoundedSlowdown is the flow over
	// max(pmin, threshold), floored at 1. All three are final in StateDone.
	Wait            float64 `json:"wait,omitempty"`
	Stretch         float64 `json:"stretch,omitempty"`
	BoundedSlowdown float64 `json:"bounded_slowdown,omitempty"`
	// Resubmissions counts how many times the job was killed by an outage
	// and re-enqueued (zero on a fault-free service).
	Resubmissions int `json:"resubmissions,omitempty"`
}

// registry tracks every admitted job's status under one lock. States only
// upgrade: a prefix replay can never move a job backwards, and the final
// drain replay fixes everything at done.
type registry struct {
	mu   sync.RWMutex
	jobs map[int]*JobStatus
	// pmin caches each job's fastest possible execution time for stretch.
	pmin   map[int]float64
	counts [StateDone + 1]int
}

func newRegistry() *registry {
	return &registry{jobs: make(map[int]*JobStatus), pmin: make(map[int]float64)}
}

// has reports whether the ID was ever admitted.
func (r *registry) has(id int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.jobs[id]
	return ok
}

// add registers a freshly admitted job in StateQueued.
func (r *registry) add(id int, name string, weight, release, pmin float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobs[id] = &JobStatus{
		ID: id, Name: name, Weight: weight, Release: release,
		State: StateQueued, Cluster: -1, Batch: -1,
	}
	r.pmin[id] = pmin
	r.counts[StateQueued]++
}

// get returns a copy of the job's status.
func (r *registry) get(id int) (JobStatus, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	j, ok := r.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return *j, true
}

// len returns the number of admitted jobs.
func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.jobs)
}

// stateCounts returns the number of jobs per lifecycle state.
func (r *registry) stateCounts() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int, len(r.counts))
	for st := StateQueued; st <= StateDone; st++ {
		out[st.String()] = r.counts[st]
	}
	return out
}

// upgrade moves a job's state forward, never backwards.
func (r *registry) upgrade(j *JobStatus, st JobState) {
	if st > j.State {
		r.counts[j.State]--
		r.counts[st]++
		j.State = st
	}
}

// setRouting records the meta-scheduler's cluster choice.
func (r *registry) setRouting(id, clusterIndex int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		j.Cluster = clusterIndex
	}
}

// markBatched records batch membership.
func (r *registry) markBatched(id, batch int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		j.Batch = batch
		r.upgrade(j, StateBatched)
	}
}

// markScheduled records a placement whose start is still in the future.
func (r *registry) markScheduled(id int, start, end float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		j.Start, j.End = start, end
		j.Wait = start - j.Release
		r.upgrade(j, StateScheduled)
	}
}

// markRunning records a placement that has started but not completed.
func (r *registry) markRunning(id int, start, end float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		j.Start, j.End = start, end
		j.Wait = start - j.Release
		r.upgrade(j, StateRunning)
	}
}

// markResubmitted records that the replay's trusted prefix saw the job
// killed and re-enqueued count times. The count only ever grows (prefix
// replays are monotone), and the state upgrade keeps the job visible as
// resubmitted until its retry completes.
func (r *registry) markResubmitted(id, count int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		if count > j.Resubmissions {
			j.Resubmissions = count
		}
		r.upgrade(j, StateResubmitted)
	}
}

// markDone records a completion and computes the per-job quality metrics.
func (r *registry) markDone(id int, start, end float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	j.Start, j.End = start, end
	j.Wait = start - j.Release
	flow := end - j.Release
	if pmin := r.pmin[id]; pmin > 0 {
		j.Stretch = flow / pmin
	}
	j.BoundedSlowdown = cluster.BoundedSlowdown(flow, r.pmin[id])
	r.upgrade(j, StateDone)
}

// eachDone calls fn for every completed job in ascending job-id order:
// the feed of the /metrics distribution histograms. The fixed order keeps
// even the low bits of the histograms' floating-point sums identical
// between scrapes of equal state.
func (r *registry) eachDone(fn func(JobStatus)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]int, 0, len(r.jobs))
	for id, j := range r.jobs {
		if j.State == StateDone {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		fn(*r.jobs[id])
	}
}

// sloOutcomes builds the SLO engine's input from the completed jobs
// (order unspecified — Evaluate sorts internally). Unfinished jobs are
// left out: a live service should not count a job still in flight as a
// deadline miss.
func (r *registry) sloOutcomes() []slo.JobOutcome {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]slo.JobOutcome, 0, len(r.jobs))
	for id, j := range r.jobs {
		if j.State != StateDone {
			continue
		}
		//lint:allow maprange slo.Evaluate sorts outcomes internally; order-independence is pinned by its tests
		out = append(out, slo.JobOutcome{
			Job: id, Cluster: j.Cluster, Release: j.Release, Pmin: r.pmin[id],
			Start: j.Start, End: j.End, Done: true,
		})
	}
	return out
}
