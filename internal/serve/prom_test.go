package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bicriteria/internal/buildinfo"
	"bicriteria/internal/obs"
)

// promNames are the metric families GET /metrics.prom must always
// expose; dashboards and scrape configs depend on them, so renames are
// breaking changes.
var promNames = []string{
	"bicrit_build_info",
	"bicrit_serve_virtual_now",
	"bicrit_serve_speedup",
	"bicrit_serve_uptime_seconds",
	"bicrit_serve_submitted_total",
	"bicrit_serve_restored_total",
	"bicrit_serve_rejected_total",
	"bicrit_serve_jobs",
	"bicrit_serve_queue_depth",
	"bicrit_serve_stretch",
	"bicrit_serve_wait_virtual_seconds",
}

// TestPromMetricsValidAndStable is the golden contract of the scrape
// endpoint: /metrics.prom parses as valid Prometheus text exposition
// with zero errors and carries the stable family set.
func TestPromMetricsValidAndStable(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.Speedup = 100 })
	defer s.Drain()
	for i := 0; i < 6; i++ {
		if _, err := s.Submit(seqTask(i, 5)); err != nil {
			t.Fatal(err)
		}
		clock.advance(50 * time.Millisecond)
	}
	s.refresh()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.prom = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape is not valid Prometheus text: %v\n%s", err, body)
	}
	have := map[string]bool{}
	for _, f := range families {
		have[f.Name] = true
	}
	for _, want := range promNames {
		if !have[want] {
			t.Errorf("scrape is missing family %s", want)
		}
	}
	// The portfolio instrumentation flows through the shared registry once
	// batches have committed; with per-algorithm labels.
	if !have["bicrit_portfolio_algorithm_seconds"] {
		t.Error("scrape is missing bicrit_portfolio_algorithm_seconds (shard instrumentation not wired)")
	}
	if !strings.Contains(string(body), `algorithm="demt"`) {
		t.Error(`scrape has no algorithm="demt" series in the portfolio latency histogram`)
	}

	// The quantile pipeline bicrit top runs on every frame: the parsed
	// rows must regroup into coherent histogram series whose quantile
	// estimates are monotone, positive and inside the bucket range.
	var hists []obs.ScrapeHistogram
	for _, f := range families {
		if f.Type != "histogram" {
			continue
		}
		rows := obs.HistogramRows(f)
		if len(rows) == 0 {
			t.Errorf("histogram family %s yields no series from its rows", f.Name)
		}
		hists = append(hists, rows...)
	}
	for _, h := range hists {
		if h.Count == 0 {
			continue
		}
		p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
		if !(p50 > 0) || p99 < p50 {
			t.Errorf("quantiles not monotone positive: p50=%g p99=%g (%v)", p50, p99, h.Labels)
		}
	}
}

// TestPromMetricsDeterministicBytes checks two consecutive scrapes with
// no intervening activity render identical bytes: stable family and
// label ordering, no map-iteration jitter.
func TestPromMetricsDeterministicBytes(t *testing.T) {
	s, _ := newTestServer(t, nil)
	defer s.Drain()
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(seqTask(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	scrape := func() []byte {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.prom", nil))
		return rec.Body.Bytes()
	}
	a, b := scrape(), scrape()
	if !bytes.Equal(a, b) {
		t.Fatalf("consecutive scrapes differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestVersionEndpoint pins GET /version.
func TestVersionEndpoint(t *testing.T) {
	s, _ := newTestServer(t, nil)
	defer s.Drain()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/version", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /version = %d, want 200", rec.Code)
	}
	var v VersionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Version != buildinfo.Version {
		t.Fatalf("version = %q, want %q", v.Version, buildinfo.Version)
	}
	if v.Go == "" {
		t.Fatal("go version is empty")
	}
}

// TestHealthzUptimeAndSnapshotAge checks the enriched health payload:
// uptime tracks the fake clock, and the snapshot age appears only when
// snapshotting is configured.
func TestHealthzUptimeAndSnapshotAge(t *testing.T) {
	health := func(s *Server) HealthResponse {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /healthz = %d, want 200", rec.Code)
		}
		var h HealthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	s, clock := newTestServer(t, nil)
	defer s.Drain()
	clock.advance(90 * time.Second)
	h := health(s)
	if h.UptimeSeconds < 89 || h.UptimeSeconds > 91 {
		t.Fatalf("uptime = %g, want ~90", h.UptimeSeconds)
	}
	if h.SnapshotAgeSeconds != nil {
		t.Fatal("snapshot age set without a snapshot path")
	}

	path := t.TempDir() + "/snap.json"
	s2, clock2 := newTestServer(t, func(c *Config) { c.SnapshotPath = path })
	defer s2.Drain()
	clock2.advance(30 * time.Second)
	h2 := health(s2)
	if h2.SnapshotAgeSeconds == nil {
		t.Fatal("snapshot age missing with a snapshot path configured")
	}
	// No snapshot written yet: the age falls back to the process start.
	if *h2.SnapshotAgeSeconds < 29 || *h2.SnapshotAgeSeconds > 31 {
		t.Fatalf("snapshot age before first snapshot = %g, want ~30 (age of the process)", *h2.SnapshotAgeSeconds)
	}
	if err := s2.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	clock2.advance(5 * time.Second)
	h3 := health(s2)
	if *h3.SnapshotAgeSeconds < 4 || *h3.SnapshotAgeSeconds > 6 {
		t.Fatalf("snapshot age after a snapshot = %g, want ~5", *h3.SnapshotAgeSeconds)
	}
}
