package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bicriteria/internal/faults"
	"bicriteria/internal/grid"
)

// faultedGrid is a single-shard grid whose only processor dies at virtual
// time 3 and is repaired at 5.
func faultedGrid() grid.Config {
	return grid.Config{
		Clusters: []grid.ClusterSpec{{M: 1}},
		Routing:  grid.LeastBacklog(),
		Faults: &faults.Plan{
			Nodes: []faults.NodeOutage{{Cluster: 0, Proc: 0, Start: 3, End: 5}},
		},
	}
}

func TestServeResubmittedLifecycle(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.Grid = faultedGrid() })
	defer s.Drain()
	// A 10-unit job at vnow 0: it starts at 0, dies at 3, replans around
	// the repair window and reruns on [5, 15].
	if _, err := s.Submit(seqTask(1, 10)); err != nil {
		t.Fatal(err)
	}
	clock.advance(4 * time.Second) // vnow = 4: killed at 3, retry pending
	if err := s.refresh(); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Status(1)
	if !ok {
		t.Fatal("job unknown")
	}
	if st.State != StateResubmitted {
		t.Fatalf("state at vnow 4 = %s, want resubmitted", st.State)
	}
	if st.Resubmissions != 1 {
		t.Fatalf("resubmissions = %d, want 1", st.Resubmissions)
	}
	counts := s.reg.stateCounts()
	if counts["resubmitted"] != 1 {
		t.Fatalf("state counts %v, want 1 resubmitted", counts)
	}

	clock.advance(20 * time.Second) // vnow = 24: retry done at 15
	if err := s.refresh(); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Status(1)
	if st.State != StateDone {
		t.Fatalf("state at vnow 24 = %s, want done", st.State)
	}
	if st.End != 15 {
		t.Fatalf("retry completion at %g, want 15", st.End)
	}
	if st.Resubmissions != 1 {
		t.Fatalf("resubmissions after completion = %d, want 1", st.Resubmissions)
	}
}

func TestServeMetricsFaultsBlock(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.Grid = faultedGrid() })
	defer s.Drain()
	if _, err := s.Submit(seqTask(1, 10)); err != nil {
		t.Fatal(err)
	}
	clock.advance(4 * time.Second)
	if err := s.refresh(); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	s.Handler().ServeHTTP(rec, req)
	var resp MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Faults == nil {
		t.Fatal("faulted service reports no faults block")
	}
	if resp.Faults.PlanNodeOutages != 1 || resp.Faults.Killed != 1 || resp.Faults.Resubmitted != 1 {
		t.Fatalf("unexpected faults block %+v", resp.Faults)
	}
	if !strings.Contains(rec.Body.String(), `"resubmitted": 1`) {
		t.Fatal("job state counts do not surface the resubmitted state")
	}
}

func TestServeFaultFreeMetricsOmitFaultsBlock(t *testing.T) {
	s, _ := newTestServer(t, nil)
	defer s.Drain()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), `"faults"`) {
		t.Fatal("fault-free /metrics body mentions faults")
	}
	var resp MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Faults != nil {
		t.Fatal("fault-free service decoded a faults block")
	}
}

func TestServeDrainFinalizesFaultedJobs(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.Grid = faultedGrid() })
	if _, err := s.Submit(seqTask(1, 10)); err != nil {
		t.Fatal(err)
	}
	clock.advance(time.Second)
	rep, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Killed != 1 || rep.Metrics.Recovered != 1 || rep.Metrics.Lost != 0 {
		t.Fatalf("final report fault counters %+v", rep.Metrics)
	}
	st, _ := s.Status(1)
	if st.State != StateDone || st.Resubmissions != 1 {
		t.Fatalf("drained job state %s resubmissions %d, want done/1", st.State, st.Resubmissions)
	}
}
