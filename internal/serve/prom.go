package serve

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"bicriteria/internal/buildinfo"
	"bicriteria/internal/obs"
	"bicriteria/internal/stats"
)

// syncProm mirrors the server's live state into the obs registry right
// before a scrape. The timing histograms (portfolio, batch planning,
// routing) are fed directly by the federation; everything the server
// keeps under its own mutexes — admission counters, job states, queue
// depths, the stretch/wait distributions recomputed over the done jobs —
// is pinned here, so a scrape always reflects the same state the JSON
// /metrics endpoint reports.
func (s *Server) syncProm() {
	r := s.obs
	r.Gauge("bicrit_build_info",
		"Build information; the value is always 1, the labels carry the versions.",
		obs.L("version", buildinfo.Version), obs.L("go", buildinfo.GoVersion())).Set(1)

	r.Gauge("bicrit_serve_virtual_now", "Current virtual time of the pacer.").Set(s.Now())
	r.Gauge("bicrit_serve_speedup", "Virtual time units per wall-clock second.").Set(s.cfg.Speedup)
	r.Gauge("bicrit_serve_uptime_seconds", "Wall-clock age of the process.").
		Set(s.pacer.wall().Sub(s.started).Seconds())

	c := s.CountersSnapshot()
	r.Counter("bicrit_serve_submitted_total", "Jobs admitted, snapshot-restored jobs included.").
		Sync(float64(c.Submitted))
	r.Counter("bicrit_serve_restored_total", "Jobs restored from a snapshot.").
		Sync(float64(c.Restored))
	rej := func(reason string, n int) {
		r.Counter("bicrit_serve_rejected_total", "Submissions refused, by reason.",
			obs.L("reason", reason)).Sync(float64(n))
	}
	rej("rate-limit", c.RejectedRate)
	rej("backlog", c.RejectedBacklog)
	rej("queue-full", c.RejectedQueue)

	for state, n := range s.reg.stateCounts() {
		// Each state writes its own gauge and Set calls commute; the obs
		// registry renders families and series sorted, so scrape bytes do
		// not depend on this loop's order.
		//lint:allow maprange one gauge per state; Set commutes and the registry sorts output
		r.Gauge("bicrit_serve_jobs", "Admitted jobs by lifecycle state.",
			obs.L("state", state)).Set(float64(n))
	}
	for i, ch := range s.shards {
		r.Gauge("bicrit_serve_queue_depth", "Occupancy of each submission queue shard.",
			obs.L("shard", strconv.Itoa(i))).Set(float64(len(ch)))
	}

	stretchHist, _ := stats.NewHistogram(stretchHistLo, stretchHistHi, stretchHistBuckets)
	waitHist, _ := stats.NewHistogram(waitHistLo, waitHistHi, waitHistBuckets)
	s.reg.eachDone(func(j JobStatus) {
		stretchHist.Observe(j.Stretch)
		wait := j.Wait
		if wait < waitHistLo {
			wait = waitHistLo
		}
		waitHist.Observe(wait)
	})
	r.Histogram("bicrit_serve_stretch", "Per-job stretch of the completed jobs.",
		obs.LogBuckets(stretchHistLo, stretchHistHi, stretchHistBuckets)).
		SetFrom(stretchHist.Snapshot(), stretchHist.Sum())
	r.Histogram("bicrit_serve_wait_virtual_seconds",
		"Virtual wait time (start minus release) of the completed jobs.",
		obs.LogBuckets(waitHistLo, waitHistHi, waitHistBuckets)).
		SetFrom(waitHist.Snapshot(), waitHist.Sum())
}

// handlePromMetrics serves GET /metrics.prom: the obs registry in the
// Prometheus text exposition format.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncProm()
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.obs.WritePrometheus(w)
}

// VersionResponse is the body of GET /version.
type VersionResponse struct {
	Version string `json:"version"`
	Go      string `json:"go"`
}

// handleVersion serves GET /version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{Version: buildinfo.Version, Go: buildinfo.GoVersion()})
}

// DebugHandler returns the net/http/pprof endpoints on their standard
// /debug/pprof/ paths, as an explicit mux (nothing leaks onto
// http.DefaultServeMux). The CLIs bind it to a separate listener behind
// -debug-addr, keeping profiling off the public API port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
