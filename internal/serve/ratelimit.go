package serve

import "time"

// tokenBucket is the classic rate limiter of the submission front door:
// tokens refill continuously at rate per wall-clock second up to burst, and
// every accepted submission spends one. When the bucket is empty the
// rejection carries the exact wall-clock wait until the next token, which
// the HTTP layer turns into a Retry-After header.
//
// The bucket is not internally synchronized: every call happens under the
// server's admission mutex, which also keeps the refill clock monotone.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now}
}

// take attempts to spend one token at the given instant. On failure it
// returns how long the caller should wait before the next token exists.
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}
