package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"bicriteria/internal/grid"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/workload"
)

// e2eGridConfig is the federation used on both sides of the equivalence
// check: the live service and the offline replay.
func e2eGridConfig() grid.Config {
	return grid.Config{
		Clusters: []grid.ClusterSpec{{M: 16}, {M: 8}, {M: 8}},
		Routing:  grid.LeastBacklog(),
	}
}

// postJSON posts a JSON body and decodes the response.
func postJSON(t *testing.T, client *http.Client, url string, body any, out any) (int, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("cannot decode %s response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("cannot decode %s response %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndServiceMatchesOfflineReplay is the acceptance test of the
// serve layer: a live server on an ephemeral port takes a concurrent
// burst from many goroutines, drains, and the final report must equal an
// offline grid replay of the identical submission stream (same jobs, same
// release stamps). Run under -race in CI.
func TestEndToEndServiceMatchesOfflineReplay(t *testing.T) {
	s, err := NewServer(Config{
		Grid: e2eGridConfig(),
		// A minute of wall clock is ~a year of virtual time: submissions
		// spread out over a wide virtual horizon, so batching is realistic.
		Speedup:         500_000,
		RefreshInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Generate a moldable workload and split it over N concurrent
	// submitters, some posting bulk chunks, some single jobs.
	inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: 16, N: 96, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 8
	var (
		mu        sync.Mutex
		releases  = make(map[int]float64)
		tasksByID = make(map[int]moldable.Task)
	)
	for _, task := range inst.Tasks {
		tasksByID[task.ID] = task
	}
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var chunk []JobSpec
			for i := w; i < len(inst.Tasks); i += submitters {
				task := inst.Tasks[i]
				spec := JobSpec{ID: task.ID, Name: task.Name, Weight: task.Weight, Times: task.Times}
				if w%2 == 0 {
					chunk = append(chunk, spec)
					continue
				}
				var resp SubmitResponse
				code, _ := postJSON(t, client, ts.URL+"/jobs", spec, &resp)
				if code != http.StatusAccepted || len(resp.Accepted) != 1 {
					t.Errorf("single submit of job %d: code %d, resp %+v", task.ID, code, resp)
					return
				}
				mu.Lock()
				releases[resp.Accepted[0].ID] = resp.Accepted[0].Release
				mu.Unlock()
			}
			if len(chunk) > 0 {
				var resp SubmitResponse
				code, _ := postJSON(t, client, ts.URL+"/jobs", map[string]any{"jobs": chunk}, &resp)
				if code != http.StatusAccepted || len(resp.Accepted) != len(chunk) {
					t.Errorf("bulk submit of %d jobs: code %d, resp %+v", len(chunk), code, resp)
					return
				}
				mu.Lock()
				for _, acc := range resp.Accepted {
					releases[acc.ID] = acc.Release
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(releases) != len(inst.Tasks) {
		t.Fatalf("accepted %d of %d jobs", len(releases), len(inst.Tasks))
	}

	// Live observability answers while the server runs.
	var health HealthResponse
	if code := getJSON(t, client, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if health.Status != "ok" || health.Jobs != len(inst.Tasks) {
		t.Fatalf("healthz = %+v, want ok with %d jobs", health, len(inst.Tasks))
	}
	anyID := inst.Tasks[0].ID
	var status JobStatus
	if code := getJSON(t, client, fmt.Sprintf("%s/jobs/%d", ts.URL, anyID), &status); code != http.StatusOK {
		t.Fatalf("job status returned %d", code)
	}
	if status.ID != anyID {
		t.Fatalf("job status %+v, want ID %d", status, anyID)
	}
	if code := getJSON(t, client, ts.URL+"/jobs/999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", code)
	}

	// Drain over HTTP and decode the final report.
	var final FinalReport
	if code, _ := postJSON(t, client, ts.URL+"/drain", map[string]any{}, &final); code != http.StatusOK {
		t.Fatalf("drain returned %d", code)
	}
	if final.Jobs != len(inst.Tasks) {
		t.Fatalf("final report covers %d jobs, want %d", final.Jobs, len(inst.Tasks))
	}

	// The offline replay of the identical stream: same tasks, the release
	// stamps the server handed back at submission time.
	var jobs []online.Job
	for id, release := range releases {
		jobs = append(jobs, online.Job{Task: tasksByID[id], Release: release})
	}
	offline, err := grid.New(e2eGridConfig())
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := offline.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if final.Metrics.Jobs != offRep.Metrics.Jobs {
		t.Fatalf("job counts differ: serve %d, offline %d", final.Metrics.Jobs, offRep.Metrics.Jobs)
	}
	if math.Abs(final.Metrics.Makespan-offRep.Metrics.Makespan) > 1e-6*math.Max(1, offRep.Metrics.Makespan) {
		t.Fatalf("makespan differs: serve %g, offline %g", final.Metrics.Makespan, offRep.Metrics.Makespan)
	}
	if math.Abs(final.Metrics.WeightedCompletion-offRep.Metrics.WeightedCompletion) > 1e-6*math.Max(1, offRep.Metrics.WeightedCompletion) {
		t.Fatalf("weighted completion differs: serve %g, offline %g",
			final.Metrics.WeightedCompletion, offRep.Metrics.WeightedCompletion)
	}
	if !reflect.DeepEqual(final.Metrics, offRep.Metrics) {
		t.Fatalf("full metrics differ:\nserve   %+v\noffline %+v", final.Metrics, offRep.Metrics)
	}

	// After the drain: /metrics shows a drained service whose histograms
	// cover every completed job, and the front door answers 503.
	var met MetricsResponse
	if code := getJSON(t, client, ts.URL+"/metrics", &met); code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	if met.State != "drained" {
		t.Fatalf("metrics state %q, want drained", met.State)
	}
	if met.JobStates["done"] != len(inst.Tasks) {
		t.Fatalf("job states %v, want all %d done", met.JobStates, len(inst.Tasks))
	}
	if met.StretchHistogram.Count != len(inst.Tasks) || met.WaitHistogram.Count != len(inst.Tasks) {
		t.Fatalf("histograms cover %d / %d jobs, want %d each",
			met.StretchHistogram.Count, met.WaitHistogram.Count, len(inst.Tasks))
	}
	var resp SubmitResponse
	code, _ := postJSON(t, client, ts.URL+"/jobs", JobSpec{ID: 424242, Times: []float64{1}}, &resp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain returned %d, want 503", code)
	}
}

// TestHTTPRateLimitReturns429 pins the wire behaviour of the token
// bucket: 429 with a Retry-After header.
func TestHTTPRateLimitReturns429(t *testing.T) {
	s, err := NewServer(Config{
		Grid:            e2eGridConfig(),
		SubmitRate:      0.5, // one token every 2s: the second post must fail
		SubmitBurst:     1,
		RefreshInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var resp SubmitResponse
	code, _ := postJSON(t, client, ts.URL+"/jobs", JobSpec{ID: 1, Times: []float64{5}}, &resp)
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d", code)
	}
	code, hdr := postJSON(t, client, ts.URL+"/jobs", JobSpec{ID: 2, Times: []float64{5}}, &resp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit returned %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" || resp.RetryAfterSeconds <= 0 {
		t.Fatalf("429 came without a Retry-After hint: header %q, body %+v", hdr.Get("Retry-After"), resp)
	}
	// The header is clamped to >= 1: a sub-second computed backoff must
	// never surface as "Retry-After: 0".
	if retry, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || retry < 1 {
		t.Fatalf("Retry-After header %q is not an integer >= 1 (err %v)", hdr.Get("Retry-After"), err)
	}
	if resp.Error == "" {
		t.Fatal("429 came without an error message")
	}
}

// TestHTTPBadRequests pins the validation surface of POST /jobs.
func TestHTTPBadRequests(t *testing.T) {
	s, err := NewServer(Config{Grid: e2eGridConfig(), RefreshInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	for name, body := range map[string]string{
		"garbage":          "{nope",
		"empty":            "",
		"no times":         `{"id": 1, "times": []}`,
		"duplicate in req": `[{"id": 1, "times": [5]}, {"id": 1, "times": [4]}]`,
		"empty array":      `[]`,
	} {
		resp, err := client.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: returned %d, want 400", name, resp.StatusCode)
		}
	}

	// A duplicate against the registry is a conflict, not a bad request.
	var resp SubmitResponse
	if code, _ := postJSON(t, client, ts.URL+"/jobs", JobSpec{ID: 9, Times: []float64{5}}, &resp); code != http.StatusAccepted {
		t.Fatalf("setup submit returned %d", code)
	}
	if code, _ := postJSON(t, client, ts.URL+"/jobs", JobSpec{ID: 9, Times: []float64{5}}, &resp); code != http.StatusConflict {
		t.Fatalf("registry duplicate returned %d, want 409", code)
	}
}
