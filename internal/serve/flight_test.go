package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bicriteria/internal/flight"
	"bicriteria/internal/grid"
	"bicriteria/internal/slo"
)

func getStatusJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
	}
}

// TestTimelineEndpointContract pins the GET /jobs/{id}/timeline contract:
// 400 for a non-integer ID, 404 for an unknown job, a submitted-only
// provisional timeline for a job no trusted replay has reached yet, and
// the full lifecycle with final=true after a drain.
func TestTimelineEndpointContract(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.Speedup = 100 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	getStatusJSON(t, ts, "/jobs/nope/timeline", http.StatusBadRequest, nil)
	getStatusJSON(t, ts, "/jobs/99/timeline", http.StatusNotFound, nil)

	if _, err := s.Submit(seqTask(1, 10)); err != nil {
		t.Fatal(err)
	}

	// Admitted but never replayed: the timeline reports the submission
	// itself and nothing more — the not-yet-batched contract.
	var provisional TimelineResponse
	getStatusJSON(t, ts, "/jobs/1/timeline", http.StatusOK, &provisional)
	if provisional.Final {
		t.Error("timeline final before any drain")
	}
	if len(provisional.Events) != 1 || provisional.Events[0].Kind != flight.KindSubmitted {
		t.Fatalf("provisional timeline = %+v, want exactly one submitted event", provisional.Events)
	}
	if provisional.Events[0].Cluster != -1 || provisional.Events[0].Batch != -1 {
		t.Errorf("submitted event carries a placement: %+v", provisional.Events[0])
	}

	clock.advance(time.Second) // 100 virtual units: the job is long done
	s.refresh()

	var refreshed TimelineResponse
	getStatusJSON(t, ts, "/jobs/1/timeline", http.StatusOK, &refreshed)
	if refreshed.Final {
		t.Error("timeline final after a refresh (only drain finalizes)")
	}
	if refreshed.TrustedTo == nil || *refreshed.TrustedTo <= 0 {
		t.Errorf("TrustedTo = %v, want the positive capture time", refreshed.TrustedTo)
	}

	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	var final TimelineResponse
	getStatusJSON(t, ts, "/jobs/1/timeline", http.StatusOK, &final)
	if !final.Final {
		t.Error("timeline not final after drain")
	}
	if final.TrustedTo != nil {
		t.Errorf("final timeline still carries TrustedTo = %g", *final.TrustedTo)
	}
	want := []flight.Kind{flight.KindSubmitted, flight.KindRouted, flight.KindBatched,
		flight.KindPlanned, flight.KindStarted, flight.KindDone}
	var got []flight.Kind
	for _, ev := range final.Events {
		got = append(got, ev.Kind)
	}
	if len(got) != len(want) {
		t.Fatalf("final stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final stages = %v, want %v", got, want)
		}
	}
	for _, ev := range final.Events {
		if ev.Kind == flight.KindBatched && ev.Winner == "" {
			t.Errorf("batched event lost its winner: %+v", ev)
		}
		if ev.Kind == flight.KindRouted && len(ev.Verdicts) == 0 {
			t.Errorf("routed event lost its verdicts: %+v", ev)
		}
	}
}

// TestAlertsEndpoint drives a single-processor cluster into deterministic
// deadline misses (three serialized jobs under deadline factor 1: only
// the first can meet release + pmin) and checks GET /alerts reports the
// firing deadline-miss-budget alert, plus the enabled=false shape when no
// SLO spec is configured.
func TestAlertsEndpoint(t *testing.T) {
	noSLO, _ := newTestServer(t, nil)
	defer noSLO.Drain()
	ts0 := httptest.NewServer(noSLO.Handler())
	defer ts0.Close()
	var disabled AlertsResponse
	getStatusJSON(t, ts0, "/alerts", http.StatusOK, &disabled)
	if disabled.Enabled || len(disabled.Firing) != 0 || len(disabled.Resolved) != 0 {
		t.Fatalf("no-SLO /alerts = %+v, want enabled=false with empty lists", disabled)
	}

	s, clock := newTestServer(t, func(c *Config) {
		c.Speedup = 1000
		c.Grid = grid.Config{Clusters: []grid.ClusterSpec{{M: 1}}}
		c.SLO = &slo.Spec{DeadlineFactor: 1, MissBudget: 0.5}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 1; i <= 3; i++ {
		if _, err := s.Submit(seqTask(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	clock.advance(time.Second) // 1000 virtual units
	s.refresh()

	var alerts AlertsResponse
	getStatusJSON(t, ts, "/alerts", http.StatusOK, &alerts)
	if !alerts.Enabled {
		t.Fatal("SLO-configured server reports enabled=false")
	}
	if alerts.Jobs != 3 {
		t.Fatalf("evaluated jobs = %d, want 3", alerts.Jobs)
	}
	// One processor serializes the batch: jobs 2 and 3 wait behind job 1
	// and blow their release+1*pmin deadlines. 2/3 > the 0.5 budget.
	if alerts.Misses != 2 {
		t.Fatalf("misses = %d, want 2", alerts.Misses)
	}
	found := false
	for _, a := range alerts.Firing {
		if a.Name == "deadline-miss-budget" {
			found = true
			if a.Value <= a.Threshold {
				t.Errorf("firing alert value %g <= threshold %g", a.Value, a.Threshold)
			}
		}
	}
	if !found {
		t.Fatalf("deadline-miss-budget not firing: %+v", alerts)
	}

	// The alert gauge rides the shared Prometheus exposition for bicrit top.
	resp, err := ts.Client().Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := `bicrit_slo_alert_firing{alert="deadline-miss-budget"} 1`; !strings.Contains(string(body), want) {
		t.Errorf("scrape lacks %q", want)
	}
}
