package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"bicriteria/internal/logx"
)

// syncBuffer guards the log buffer: the server logs from its own
// goroutines (refresher, drain) as well as from handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// records parses every JSON log line emitted so far.
func (b *syncBuffer) records(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

// TestStructuredLogging pins the serve log stream: a startup record, one
// request-ID-stamped access record per HTTP request (the ID echoed as
// X-Request-Id), admission-rejection warnings, and the drain lifecycle.
func TestStructuredLogging(t *testing.T) {
	var buf syncBuffer
	logger, err := logx.New(&buf, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, func(c *Config) { c.Logger = logger })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("response lacks X-Request-Id")
	}

	if _, err := s.Submit(seqTask(1, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(seqTask(1, 5)); err == nil {
		t.Fatal("duplicate submission accepted")
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	var started, access, rejected, drainStart, drainDone bool
	for _, rec := range buf.records(t) {
		switch rec["msg"] {
		case "server started":
			started = true
			if rec["clusters"] != float64(2) || rec["policy"] != "least-backlog" {
				t.Errorf("startup record = %v", rec)
			}
		case "request":
			if rec["path"] == "/healthz" {
				access = true
				if rec["status"] != float64(200) || rec["method"] != "GET" {
					t.Errorf("access record = %v", rec)
				}
				if id, ok := rec["id"].(float64); !ok || reqID != strconv.FormatFloat(id, 'f', -1, 64) {
					t.Errorf("access record id %v != header %q", rec["id"], reqID)
				}
			}
		case "submission rejected":
			rejected = true
			if rec["reason"] != "duplicate" || rec["job"] != float64(1) {
				t.Errorf("rejection record = %v", rec)
			}
		case "drain started":
			drainStart = true
		case "drain complete":
			drainDone = true
		}
	}
	for name, seen := range map[string]bool{
		"server started": started, "request": access, "submission rejected": rejected,
		"drain started": drainStart, "drain complete": drainDone,
	} {
		if !seen {
			t.Errorf("log stream lacks a %q record:\n%s", name, buf.String())
		}
	}
}
