package serve

import "time"

// pacer maps wall-clock time onto the simulated event time of the grid: a
// live service stamps every submission with a virtual release date so the
// replay machinery (which thinks in simulated time units) can consume a
// stream produced in real time. The speedup factor compresses wall time —
// tests run a whole "day" of virtual load in milliseconds, production runs
// at 1:1 — and the offset restores the virtual clock of a snapshotted
// server, so a restart resumes where the old process stopped instead of
// rewinding history.
type pacer struct {
	clock   func() time.Time
	start   time.Time
	offset  float64
	speedup float64
}

func newPacer(clock func() time.Time, speedup, offset float64) *pacer {
	if clock == nil {
		clock = time.Now
	}
	return &pacer{clock: clock, start: clock(), offset: offset, speedup: speedup}
}

// wall returns the current wall-clock time from the injected clock.
func (p *pacer) wall() time.Time { return p.clock() }

// at converts a wall-clock instant into virtual time.
func (p *pacer) at(t time.Time) float64 {
	return p.offset + t.Sub(p.start).Seconds()*p.speedup
}

// now returns the current virtual time.
func (p *pacer) now() float64 { return p.at(p.clock()) }

// realDuration converts a virtual duration into the wall-clock duration it
// spans at the configured speedup: the unit of Retry-After hints.
func (p *pacer) realDuration(virtual float64) time.Duration {
	if virtual <= 0 {
		return 0
	}
	return time.Duration(virtual / p.speedup * float64(time.Second))
}
