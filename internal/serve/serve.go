// Package serve turns the offline grid replay machinery into a live,
// long-running scheduler service: clients submit moldable jobs over a
// concurrent ingest front end while the portfolio scheduler runs, instead
// of handing a finished arrival list to a batch replay.
//
// The architecture, front to back:
//
//   - A wall-clock pacer maps real time onto the grid's simulated event
//     time (with a configurable speedup, so tests compress hours into
//     milliseconds). Every accepted submission is stamped with the virtual
//     time of its arrival — the release date the replay machinery needs.
//   - Admission control guards the front door: a token-bucket rate limit
//     (wall-clock jobs per second), a virtual-backlog limit (the same
//     per-processor backlog clock the grid router uses, measured against
//     the whole federation), and a sharded, bounded submission queue.
//     Every rejection says how long to back off, which the HTTP layer
//     turns into 429 + Retry-After.
//   - A job registry tracks every admitted job through
//     queued → batched → scheduled → running → done, with per-job stretch
//     and bounded slowdown on completion.
//   - A periodic refresher derives those live states by replaying the
//     accumulated stream through the deterministic grid federation and
//     trusting exactly the prefix that can no longer change: batches fired
//     before the current virtual time are final, because every later
//     submission carries a later release date.
//   - Periodic JSON snapshots checkpoint the accepted stream and the
//     virtual clock; a restarted server restores them and resumes where
//     the old process stopped.
//   - Graceful drain stops admissions, flushes the submission queues, runs
//     the full deterministic replay and emits the final grid report — by
//     construction identical to an offline grid run of the same stream.
//
// The HTTP surface is in http.go: POST /jobs (single and bulk),
// GET /jobs/{id}, GET /metrics, GET /healthz, POST /drain.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"bicriteria/internal/flight"
	"bicriteria/internal/grid"
	"bicriteria/internal/logx"
	"bicriteria/internal/moldable"
	"bicriteria/internal/obs"
	"bicriteria/internal/online"
	"bicriteria/internal/slo"
	"bicriteria/internal/validate"
)

// Defaults of the optional Config knobs.
const (
	// DefaultQueueShards is the number of submission queue shards.
	DefaultQueueShards = 4
	// DefaultQueueDepth is the per-shard submission queue capacity.
	DefaultQueueDepth = 256
	// DefaultRefreshInterval is the period of the live-state refresher.
	DefaultRefreshInterval = time.Second
	// DefaultSnapshotInterval is the period of the snapshot writer.
	DefaultSnapshotInterval = 10 * time.Second
)

// Config drives a scheduler service.
type Config struct {
	// Grid configures the federation behind the service exactly like an
	// offline grid replay: cluster shards, routing policy, dispatch queue
	// depth, router-level admission steering. OnDecision must be nil (the
	// service replays the stream repeatedly; it is forced to nil).
	// A single-cluster service is a grid with one shard.
	Grid grid.Config
	// Speedup is the number of virtual time units per wall-clock second.
	// Zero means 1 (real time); tests use large values to compress load.
	Speedup float64
	// SubmitRate is the token-bucket refill in jobs per wall-clock second.
	// Zero disables rate limiting.
	SubmitRate float64
	// SubmitBurst is the bucket capacity; zero means max(1, ceil(rate)).
	SubmitBurst int
	// AdmitBacklog rejects submissions (429) while the service-wide
	// estimated per-processor backlog, in virtual time units, exceeds the
	// limit. Zero disables the check. This is the front-door guard; the
	// grid router's own AdmitBacklog steers between shards and never
	// rejects.
	AdmitBacklog float64
	// QueueShards and QueueDepth shape the sharded bounded submission
	// queue. A full shard rejects with Retry-After (backpressure). Zeros
	// mean the defaults.
	QueueShards int
	QueueDepth  int
	// RefreshInterval is the period of the live-state refresher; zero
	// means DefaultRefreshInterval, negative disables periodic refreshes
	// (tests drive refreshes explicitly; drain still finalizes states).
	RefreshInterval time.Duration
	// SnapshotPath enables periodic JSON snapshots with restore-on-start:
	// if the file exists when the server is built, the stream, counters
	// and virtual clock are restored from it. Empty disables snapshots.
	SnapshotPath string
	// SnapshotInterval is the snapshot period; zero means
	// DefaultSnapshotInterval, negative disables the periodic writer
	// (drain still writes a final snapshot).
	SnapshotInterval time.Duration
	// Clock injects a wall clock for tests; nil means time.Now.
	Clock func() time.Time
	// Metrics injects a shared observability registry; nil means a fresh
	// one. Either way the server publishes its admission counters, state
	// gauges and latency distributions into it, threads it through the
	// federation (portfolio and routing timings land in the same scrape)
	// and serves it in the Prometheus text format at GET /metrics.prom.
	Metrics *obs.Registry
	// SLO, when non-nil, evaluates the deadline and tail-latency alerts
	// over the completed jobs after every refresh and drain; GET /alerts
	// serves the firing/resolved states and the alert gauges land in the
	// registry.
	SLO *slo.Spec
	// Logger receives the service's structured logs: request-ID-stamped
	// access logs (attached by Handler), admission rejections and the
	// snapshot/drain lifecycle. Nil means silence (a discard logger), so
	// a default service stays byte-quiet.
	Logger *slog.Logger
}

// Counters are the monotone admission statistics of a service.
type Counters struct {
	// Submitted counts accepted jobs, including jobs restored from a
	// snapshot.
	Submitted int `json:"submitted"`
	// Restored counts the subset of Submitted that came from a snapshot.
	Restored int `json:"restored,omitempty"`
	// RejectedRate, RejectedBacklog and RejectedQueue count submissions
	// refused by the token bucket, the virtual-backlog limit and a full
	// queue shard.
	RejectedRate    int `json:"rejected_rate_limit"`
	RejectedBacklog int `json:"rejected_backlog"`
	RejectedQueue   int `json:"rejected_queue_full"`
}

// Rejection is the typed refusal of a submission: why, and how long the
// client should back off before retrying.
type Rejection struct {
	// Reason is "rate-limit", "backlog", "queue-full" or "draining".
	Reason string
	// RetryAfter is the suggested wall-clock back-off; zero for
	// "draining", which never clears.
	RetryAfter time.Duration
}

// Error implements error.
func (r *Rejection) Error() string {
	if r.RetryAfter > 0 {
		return fmt.Sprintf("serve: submission rejected (%s), retry after %s", r.Reason, r.RetryAfter)
	}
	return fmt.Sprintf("serve: submission rejected (%s)", r.Reason)
}

// DuplicateError refuses a job ID that was already admitted.
type DuplicateError struct{ ID int }

// Error implements error.
func (e *DuplicateError) Error() string {
	return fmt.Sprintf("serve: job ID %d was already submitted", e.ID)
}

// Accepted acknowledges one admitted job: the virtual release date the
// pacer stamped is what the final report's replay will use.
type Accepted struct {
	ID      int     `json:"id"`
	Release float64 `json:"release"`
}

// FinalReport is the outcome of a drained service.
type FinalReport struct {
	// Policy is the routing policy name and Jobs the number of jobs the
	// service admitted over its life.
	Policy string `json:"policy"`
	Jobs   int    `json:"jobs"`
	// VirtualNow is the virtual time at which the drain started.
	VirtualNow float64 `json:"virtual_now"`
	// Metrics is the grid-wide aggregate of the final replay — identical
	// to an offline grid run of the same submission stream.
	Metrics grid.Metrics `json:"metrics"`
	// Grid is the full underlying report (decisions, per-shard reports).
	Grid *grid.Report `json:"-"`
}

// Server is a live scheduler service around a grid federation.
type Server struct {
	cfg        Config
	fed        *grid.Federation
	totalProcs int
	pacer      *pacer
	reg        *registry

	// mu guards the admission state: the token bucket, the virtual
	// backlog clock, the counters, the draining flag and the accepted
	// stream. Admission is a short serialized section; the expensive work
	// (replays) happens outside it.
	mu       sync.Mutex
	bucket   *tokenBucket
	ready    float64
	counters Counters
	draining bool
	stream   []online.Job

	shards      []chan online.Job
	collectorWG sync.WaitGroup

	// runMu serializes federation replays: the refresher and the drain
	// must not run the same engines concurrently.
	runMu sync.Mutex

	// liveMu guards the latest refresh digest served by /metrics.
	liveMu      sync.RWMutex
	live        *grid.Metrics
	liveAt      float64
	refreshErr  error
	snapshotErr error
	// flightRec is the flight recorder rebuilt from the latest replay
	// report; flightAt is the virtual time its prefix is trusted up to
	// (+Inf after the drain's final replay). GET /jobs/{id}/timeline
	// serves the events at or before flightAt.
	flightRec *flight.Recorder
	flightAt  float64
	// sloSum is the latest SLO evaluation (nil while no SLO is configured
	// or no refresh has run); GET /alerts serves it.
	sloSum *slo.Summary
	// lastSnapshot is the wall time of the last successful snapshot write
	// (zero while none has been written); /healthz turns it into an age so
	// probes can spot a wedged snapshot loop.
	lastSnapshot time.Time

	// obs is the Prometheus-style registry behind GET /metrics.prom.
	obs *obs.Registry

	// logger is cfg.Logger, defaulted to a discard logger.
	logger *slog.Logger

	started  time.Time
	stopCh   chan struct{}
	stopOnce sync.Once
	loopWG   sync.WaitGroup

	// loopCtx is cancelled together with stopCh: the refresher threads it
	// into the federation replay, so an in-flight refresh aborts between
	// batches instead of making a drain wait for a full replay.
	loopCtx    context.Context
	loopCancel context.CancelFunc

	drainOnce sync.Once
	final     *FinalReport
	drainErr  error
}

// NewServer validates the configuration, builds the federation, restores
// a snapshot when one exists, and starts the background loops (queue
// collectors, live-state refresher, snapshot writer). The server is live
// when NewServer returns; stop it with Drain.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Speedup < 0 || math.IsNaN(cfg.Speedup) || math.IsInf(cfg.Speedup, 0) {
		return nil, validate.Errorf("speedup", "speedup must be non-negative and finite, got %g", cfg.Speedup)
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 1
	}
	if cfg.SubmitRate < 0 || math.IsNaN(cfg.SubmitRate) || math.IsInf(cfg.SubmitRate, 0) {
		return nil, validate.Errorf("submit_rate", "submit rate must be non-negative and finite, got %g", cfg.SubmitRate)
	}
	if cfg.AdmitBacklog < 0 || math.IsNaN(cfg.AdmitBacklog) || math.IsInf(cfg.AdmitBacklog, 0) {
		return nil, validate.Errorf("admit_backlog", "admission backlog limit must be non-negative and finite, got %g", cfg.AdmitBacklog)
	}
	if cfg.QueueShards < 0 {
		return nil, validate.Errorf("queue_shards", "queue shards must be non-negative, got %d", cfg.QueueShards)
	}
	if cfg.QueueDepth < 0 {
		return nil, validate.Errorf("queue_depth", "queue depth must be non-negative, got %d", cfg.QueueDepth)
	}
	if cfg.QueueShards == 0 {
		cfg.QueueShards = DefaultQueueShards
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = DefaultRefreshInterval
	}
	if cfg.SnapshotInterval == 0 {
		cfg.SnapshotInterval = DefaultSnapshotInterval
	}
	// The service replays the stream repeatedly; a decision or batch
	// callback would fire once per replay, not once per job.
	cfg.Grid.OnDecision = nil
	cfg.Grid.OnBatch = nil
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = logx.Discard()
	}
	if cfg.SLO != nil {
		spec := cfg.SLO.Normalized()
		if err := spec.Validate(); err != nil {
			return nil, validate.Prefix("slo", err)
		}
		cfg.SLO = &spec
	}
	// One registry for the whole process: shard portfolio latencies and
	// routing timings land in the same scrape as the service's own series.
	cfg.Grid.Metrics = cfg.Metrics
	fed, err := grid.New(cfg.Grid)
	if err != nil {
		return nil, validate.Prefix("grid", err)
	}
	total := 0
	for _, spec := range cfg.Grid.Clusters {
		total += spec.M
	}

	loopCtx, loopCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		fed:        fed,
		totalProcs: total,
		reg:        newRegistry(),
		obs:        cfg.Metrics,
		logger:     cfg.Logger,
		stopCh:     make(chan struct{}),
		loopCtx:    loopCtx,
		loopCancel: loopCancel,
	}
	offset := 0.0
	if cfg.SnapshotPath != "" {
		restored, err := s.restoreSnapshot(cfg.SnapshotPath)
		if err != nil {
			return nil, err
		}
		offset = restored
	}
	s.pacer = newPacer(cfg.Clock, cfg.Speedup, offset)
	s.started = s.pacer.wall()
	if cfg.SubmitRate > 0 {
		burst := cfg.SubmitBurst
		if burst <= 0 {
			burst = int(math.Ceil(cfg.SubmitRate))
		}
		s.bucket = newTokenBucket(cfg.SubmitRate, burst, s.started)
	}

	s.shards = make([]chan online.Job, cfg.QueueShards)
	for i := range s.shards {
		s.shards[i] = make(chan online.Job, cfg.QueueDepth)
		s.collectorWG.Add(1)
		go s.collect(s.shards[i])
	}
	if cfg.RefreshInterval > 0 {
		s.loopWG.Add(1)
		go s.refreshLoop(cfg.RefreshInterval)
	}
	if cfg.SnapshotPath != "" && cfg.SnapshotInterval > 0 {
		s.loopWG.Add(1)
		go s.snapshotLoop(cfg.SnapshotInterval)
	}
	policy := "least-backlog"
	if cfg.Grid.Routing != nil {
		policy = cfg.Grid.Routing.Name()
	}
	s.logger.Info("server started",
		"clusters", len(cfg.Grid.Clusters),
		"procs", total,
		"policy", policy,
		"speedup", cfg.Speedup,
		"restored", s.counters.Restored,
		"slo", cfg.SLO != nil)
	return s, nil
}

// minWork is the front-door backlog contribution of a task: its least work
// over all allocations, the same quantity the grid router charges its
// virtual clocks with.
func minWork(t moldable.Task) float64 {
	w, _ := t.MinWork()
	return w
}

// Submit admits one job: validation, duplicate check, token bucket,
// virtual-backlog limit, then the sharded bounded queue, in that order.
// Refusals are a *Rejection (back-off) or a *DuplicateError; validation
// failures are plain errors. The returned Accepted carries the virtual
// release date the pacer stamped.
func (s *Server) Submit(task moldable.Task) (Accepted, error) {
	if err := task.Validate(); err != nil {
		return Accepted{}, err
	}
	pmin, _ := task.MinTime()
	work := minWork(task)

	s.mu.Lock()
	defer s.mu.Unlock()
	// The clock is read under the admission mutex, so release dates are
	// non-decreasing in admission order — the property the refresher's
	// prefix rule builds on.
	now := s.pacer.wall()
	if s.draining {
		s.logger.Warn("submission rejected", "job", task.ID, "reason", "draining")
		return Accepted{}, &Rejection{Reason: "draining"}
	}
	if s.reg.has(task.ID) {
		s.logger.Warn("submission rejected", "job", task.ID, "reason", "duplicate")
		return Accepted{}, &DuplicateError{ID: task.ID}
	}
	if s.bucket != nil {
		if ok, retry := s.bucket.take(now); !ok {
			s.counters.RejectedRate++
			s.logger.Warn("submission rejected", "job", task.ID, "reason", "rate-limit", "retry_after", retry)
			return Accepted{}, &Rejection{Reason: "rate-limit", RetryAfter: retry}
		}
	}
	vnow := s.pacer.at(now)
	if s.cfg.AdmitBacklog > 0 {
		if backlog := s.ready - vnow; backlog > s.cfg.AdmitBacklog {
			s.counters.RejectedBacklog++
			retry := s.pacer.realDuration(backlog - s.cfg.AdmitBacklog)
			s.logger.Warn("submission rejected", "job", task.ID, "reason", "backlog", "backlog", backlog, "retry_after", retry)
			return Accepted{}, &Rejection{Reason: "backlog", RetryAfter: retry}
		}
	}
	shard := s.shards[shardOf(task.ID, len(s.shards))]
	select {
	case shard <- online.Job{Task: task, Release: vnow}:
	default:
		s.counters.RejectedQueue++
		// A full shard clears as fast as the collector drains it, which is
		// quick; suggest a backlog-scaled wait with a small floor.
		retry := s.pacer.realDuration(1)
		if retry < 10*time.Millisecond {
			retry = 10 * time.Millisecond
		}
		s.logger.Warn("submission rejected", "job", task.ID, "reason", "queue-full", "retry_after", retry)
		return Accepted{}, &Rejection{Reason: "queue-full", RetryAfter: retry}
	}
	if s.ready < vnow {
		s.ready = vnow
	}
	s.ready += work / float64(s.totalProcs)
	s.counters.Submitted++
	s.reg.add(task.ID, task.Name, task.Weight, vnow, pmin)
	return Accepted{ID: task.ID, Release: vnow}, nil
}

// shardOf spreads job IDs over the queue shards.
func shardOf(id, shards int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return int(h % uint64(shards))
}

// collect drains one queue shard into the accepted stream.
func (s *Server) collect(ch chan online.Job) {
	defer s.collectorWG.Done()
	for j := range ch {
		s.mu.Lock()
		s.stream = append(s.stream, j)
		s.mu.Unlock()
	}
}

// Status returns the live status of a submitted job.
func (s *Server) Status(id int) (JobStatus, bool) { return s.reg.get(id) }

// Jobs returns the number of admitted jobs.
func (s *Server) Jobs() int { return s.reg.len() }

// Now returns the current virtual time.
func (s *Server) Now() float64 { return s.pacer.now() }

// CountersSnapshot returns the current admission counters.
func (s *Server) CountersSnapshot() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// Metrics returns the server's observability registry — the one behind
// GET /metrics.prom, shared with the federation's timing histograms.
func (s *Server) Metrics() *obs.Registry { return s.obs }

// Draining reports whether admissions are closed.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// refreshLoop periodically refreshes the live job states.
func (s *Server) refreshLoop(every time.Duration) {
	defer s.loopWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			err := s.refresh()
			if errors.Is(err, context.Canceled) {
				// Our own shutdown cancelled the replay mid-flight (the
				// drain path cancels loopCtx): not a refresh failure, and
				// it must not linger in /healthz after a clean drain.
				return
			}
			s.liveMu.Lock()
			s.refreshErr = err
			s.liveMu.Unlock()
		}
	}
}

// refresh replays the accumulated stream through the federation and
// updates the registry with every state the replay has already fixed.
//
// The prefix argument: the virtual time vnow is captured before the stream
// is copied, and every job admitted later carries a release date after
// vnow. A batch that fired at or before vnow therefore contains exactly
// the jobs a full-stream replay would give it — later arrivals cannot
// join it, and batching policies only consult the pending backlog — so
// its routing, membership and realized execution are final. States beyond
// vnow (a scheduled start in the future) are provisional and never
// downgraded.
func (s *Server) refresh() error {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	jobs, vnow := s.capture()
	if len(jobs) == 0 {
		s.liveMu.Lock()
		s.liveAt = vnow
		s.liveMu.Unlock()
		return nil
	}
	rep, err := s.fed.RunContext(s.loopCtx, jobs)
	if err != nil {
		return err
	}
	s.apply(rep, vnow, false)
	s.observe(rep, vnow, false)
	s.liveMu.Lock()
	s.live = &rep.Metrics
	if !math.IsInf(vnow, -1) {
		s.liveAt = vnow
	}
	s.liveMu.Unlock()
	s.logger.Debug("refresh complete", "jobs", len(jobs), "virtual_now", vnow)
	return nil
}

// capture snapshots the accepted stream together with the virtual time of
// the capture. The virtual time is read first, under the admission mutex;
// the copy is then delayed until the queue collectors have caught up with
// every admission stamped before it, so the prefix rules of apply never
// finalize a batch whose true membership is still sitting in a shard
// queue. Collectors only ever hold the mutex to append, so the catch-up
// wait is microseconds; if it ever exceeds its bound, the capture returns
// a -Inf virtual time, which makes the refresh a safe no-op.
func (s *Server) capture() ([]online.Job, float64) {
	s.mu.Lock()
	vnow := s.pacer.now()
	admitted := s.counters.Submitted
	s.mu.Unlock()
	for i := 0; ; i++ {
		s.mu.Lock()
		if len(s.stream) >= admitted {
			jobs := append([]online.Job(nil), s.stream...)
			s.mu.Unlock()
			return jobs, vnow
		}
		s.mu.Unlock()
		if i >= 200 {
			s.mu.Lock()
			jobs := append([]online.Job(nil), s.stream...)
			s.mu.Unlock()
			return jobs, math.Inf(-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// eps is the shared floating-point tolerance of the scheduling library.
const eps = moldable.Eps

// apply folds a replay report into the registry. When final is true the
// whole report is trusted (the drain's full replay); otherwise only the
// prefix strictly fixed before vnow is: the engines admit arrivals within
// eps of a fire time, so a batch (or routing decision) at vnow's margin
// could still gain a concurrent submission and is left provisional.
func (s *Server) apply(rep *grid.Report, vnow float64, final bool) {
	for _, d := range rep.Decisions {
		if final || d.Release < vnow-eps {
			s.reg.setRouting(d.JobID, d.Cluster)
		}
	}
	for _, crep := range rep.Clusters {
		fired := make(map[int]bool)
		for bi, b := range crep.Batches {
			if !final && b.FireTime >= vnow-eps {
				continue
			}
			for _, id := range b.Jobs {
				fired[id] = true
				s.reg.markBatched(id, bi)
			}
		}
		for _, a := range crep.Schedule.Assignments {
			if !fired[a.TaskID] {
				continue
			}
			end := a.End()
			switch {
			case final || end <= vnow:
				s.reg.markDone(a.TaskID, a.Start, end)
			case a.Start <= vnow:
				s.reg.markRunning(a.TaskID, a.Start, end)
			default:
				s.reg.markScheduled(a.TaskID, a.Start, end)
			}
		}
		// Kills are final once realized inside the trusted prefix: the
		// batch they interrupted fired before vnow (kills happen after
		// their batch fires), and a batch's kills are a deterministic
		// function of the batch and the fault plan.
		if len(crep.Kills) > 0 {
			counts := make(map[int]int)
			for _, k := range crep.Kills {
				if final || k.Time < vnow-eps {
					counts[k.TaskID]++
				}
			}
			for id, n := range counts {
				//lint:allow maprange each job id writes only its own registry entry; the updates commute
				s.reg.markResubmitted(id, n)
			}
		}
	}
}

// observe folds a replay report into the observability surfaces beyond
// the registry: the flight recorder behind GET /jobs/{id}/timeline and,
// when an SLO is configured, the alert summary behind GET /alerts. The
// recorder is rebuilt from the report (the federation cannot stream
// observers — it replays the stream repeatedly); the trusted prefix is
// vnow, or +Inf after the drain's final replay.
func (s *Server) observe(rep *grid.Report, vnow float64, final bool) {
	rec := flight.FromGridReport(rep)
	at := vnow
	if final {
		at = math.Inf(1)
	}
	var sum *slo.Summary
	if s.cfg.SLO != nil {
		sum = slo.Evaluate(*s.cfg.SLO, s.reg.sloOutcomes())
		sum.Publish(s.obs)
		for _, a := range sum.Alerts {
			if a.State == slo.StateFiring {
				s.logger.Warn("slo alert firing",
					"alert", a.Name, "value", a.Value, "threshold", a.Threshold)
			}
		}
	}
	s.liveMu.Lock()
	s.flightRec = rec
	s.flightAt = at
	if sum != nil {
		s.sloSum = sum
	}
	s.liveMu.Unlock()
}

// stopLoops stops the refresher and the snapshot writer, cancelling any
// in-flight refresh replay so the wait is short.
func (s *Server) stopLoops() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		s.loopCancel()
	})
	s.loopWG.Wait()
}

// Drain gracefully stops the service: admissions close (further submits
// are rejected with "draining"), the background loops stop, the
// submission queues flush, the full stream replays through the federation
// one final time, every job is finalized in the registry, a final
// snapshot is written when snapshots are configured, and the grid report
// comes back. Drain is idempotent; later calls return the same report.
func (s *Server) Drain() (*FinalReport, error) {
	s.drainOnce.Do(func() {
		s.logger.Info("drain started")
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.stopLoops()
		for _, ch := range s.shards {
			close(ch)
		}
		s.collectorWG.Wait()

		s.runMu.Lock()
		defer s.runMu.Unlock()
		vnow := s.pacer.now()
		s.mu.Lock()
		jobs := append([]online.Job(nil), s.stream...)
		s.mu.Unlock()
		rep, err := s.fed.Run(jobs)
		if err != nil {
			s.drainErr = err
			s.logger.Error("drain replay failed", "error", err)
			return
		}
		s.apply(rep, vnow, true)
		s.observe(rep, vnow, true)
		s.liveMu.Lock()
		s.live = &rep.Metrics
		s.liveAt = vnow
		s.liveMu.Unlock()
		s.liveMu.Lock()
		s.final = &FinalReport{
			Policy:     rep.Policy,
			Jobs:       len(jobs),
			VirtualNow: vnow,
			Metrics:    rep.Metrics,
			Grid:       rep,
		}
		s.liveMu.Unlock()
		if s.cfg.SnapshotPath != "" {
			if err := s.writeSnapshot(); err != nil {
				s.liveMu.Lock()
				s.snapshotErr = err
				s.liveMu.Unlock()
				s.logger.Error("final snapshot failed", "error", err)
			}
		}
		s.logger.Info("drain complete", "jobs", len(jobs), "virtual_now", vnow)
	})
	return s.final, s.drainErr
}

// Drained reports whether the service has finished draining.
func (s *Server) Drained() bool {
	s.liveMu.RLock()
	defer s.liveMu.RUnlock()
	return s.final != nil
}
