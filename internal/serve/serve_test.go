package serve

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"bicriteria/internal/grid"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
)

// fakeClock is a manually advanced wall clock shared with a server.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// gridConfig is a small deterministic two-shard federation.
func gridConfig() grid.Config {
	return grid.Config{
		Clusters: []grid.ClusterSpec{{M: 8}, {M: 4}},
		Routing:  grid.LeastBacklog(),
	}
}

// newTestServer builds a server with periodic loops disabled so the tests
// drive refreshes and snapshots explicitly.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	cfg := Config{
		Grid:             gridConfig(),
		Speedup:          1,
		RefreshInterval:  -1,
		SnapshotInterval: -1,
		Clock:            clock.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func TestPacerMapsWallOntoVirtualTime(t *testing.T) {
	clock := newFakeClock()
	p := newPacer(clock.now, 10, 5)
	if got := p.now(); got != 5 {
		t.Fatalf("virtual time at start = %g, want the offset 5", got)
	}
	clock.advance(2 * time.Second)
	if got := p.now(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("virtual time after 2s at speedup 10 = %g, want 25", got)
	}
	if d := p.realDuration(20); d != 2*time.Second {
		t.Fatalf("realDuration(20) = %s, want 2s", d)
	}
}

func TestTokenBucketRefillsAtRate(t *testing.T) {
	start := time.Unix(0, 0)
	b := newTokenBucket(2, 1, start) // 2 tokens/s, capacity 1
	if ok, _ := b.take(start); !ok {
		t.Fatal("first take from a full bucket failed")
	}
	ok, wait := b.take(start)
	if ok {
		t.Fatal("empty bucket handed out a token")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("wait = %s, want (0, 500ms]", wait)
	}
	if ok, _ := b.take(start.Add(600 * time.Millisecond)); !ok {
		t.Fatal("bucket did not refill after the advertised wait")
	}
}

func seqTask(id int, duration float64) moldable.Task {
	return moldable.Sequential(id, 1, duration)
}

func TestSubmitStampsMonotoneReleases(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) { c.Speedup = 100 })
	defer s.Drain()
	var last float64 = -1
	for i := 0; i < 5; i++ {
		acc, err := s.Submit(seqTask(i, 10))
		if err != nil {
			t.Fatal(err)
		}
		if acc.Release < last {
			t.Fatalf("release %g went backwards (previous %g)", acc.Release, last)
		}
		last = acc.Release
		clock.advance(50 * time.Millisecond) // 5 virtual units at speedup 100
	}
	if last < 4*5-1e-9 {
		t.Fatalf("last release %g, want about 20 (4 advances of 5 virtual units)", last)
	}
}

func TestSubmitRejectsDuplicates(t *testing.T) {
	s, _ := newTestServer(t, nil)
	defer s.Drain()
	if _, err := s.Submit(seqTask(7, 3)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(seqTask(7, 4))
	var dup *DuplicateError
	if !errors.As(err, &dup) || dup.ID != 7 {
		t.Fatalf("resubmitting ID 7 gave %v, want a DuplicateError", err)
	}
}

func TestSubmitRateLimit(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) {
		c.SubmitRate = 1
		c.SubmitBurst = 1
	})
	defer s.Drain()
	if _, err := s.Submit(seqTask(0, 5)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(seqTask(1, 5))
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != "rate-limit" {
		t.Fatalf("second submit gave %v, want a rate-limit rejection", err)
	}
	if rej.RetryAfter <= 0 || rej.RetryAfter > time.Second {
		t.Fatalf("retry-after %s, want (0, 1s]", rej.RetryAfter)
	}
	if got := s.CountersSnapshot().RejectedRate; got != 1 {
		t.Fatalf("rejected_rate counter = %d, want 1", got)
	}
	clock.advance(rej.RetryAfter + time.Millisecond)
	if _, err := s.Submit(seqTask(1, 5)); err != nil {
		t.Fatalf("submit after the advertised back-off still failed: %v", err)
	}
}

func TestSubmitBacklogAdmissionControl(t *testing.T) {
	// Total 12 processors; a sequential job of duration 120 charges the
	// virtual backlog clock 10 units. Limit 15: the second job trips it.
	s, clock := newTestServer(t, func(c *Config) { c.AdmitBacklog = 15 })
	defer s.Drain()
	if _, err := s.Submit(seqTask(0, 120)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(seqTask(1, 120)); err != nil {
		t.Fatal(err) // backlog 10 <= 15, still open
	}
	_, err := s.Submit(seqTask(2, 120))
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != "backlog" {
		t.Fatalf("saturated submit gave %v, want a backlog rejection", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("backlog rejection came without a back-off hint")
	}
	// The virtual backlog drains in real time: after the hinted wait the
	// front door reopens.
	clock.advance(rej.RetryAfter + time.Second)
	if _, err := s.Submit(seqTask(2, 120)); err != nil {
		t.Fatalf("submit after backlog drained still failed: %v", err)
	}
	if got := s.CountersSnapshot().RejectedBacklog; got != 1 {
		t.Fatalf("rejected_backlog counter = %d, want 1", got)
	}
}

func TestRefreshWalksJobLifecycle(t *testing.T) {
	s, clock := newTestServer(t, func(c *Config) {
		c.Grid = grid.Config{Clusters: []grid.ClusterSpec{{M: 4}}, Routing: grid.LeastBacklog()}
	})
	defer s.Drain()
	// Two parallel-capable sequential jobs at virtual time 0: the batcher
	// fires immediately, both run on [0, 10].
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(seqTask(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	clock.advance(time.Second) // vnow = 1: batch fired at 0, jobs running
	if err := s.refresh(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		st, ok := s.Status(i)
		if !ok {
			t.Fatalf("job %d unknown", i)
		}
		if st.State != StateRunning {
			t.Fatalf("job %d at vnow 1: state %s, want running", i, st.State)
		}
		if st.Cluster != 0 || st.Batch != 0 {
			t.Fatalf("job %d routing not recorded: %+v", i, st)
		}
	}
	clock.advance(15 * time.Second) // vnow = 16: both completed at 10
	if err := s.refresh(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		st, _ := s.Status(i)
		if st.State != StateDone {
			t.Fatalf("job %d at vnow 16: state %s, want done", i, st.State)
		}
		if math.Abs(st.Stretch-1) > 1e-9 || math.Abs(st.End-10) > 1e-9 {
			t.Fatalf("job %d finished with stretch %g end %g, want 1 and 10", i, st.Stretch, st.End)
		}
	}
	counts := s.reg.stateCounts()
	if counts["done"] != 2 {
		t.Fatalf("state counts %v, want 2 done", counts)
	}
}

func TestRefreshNeverFinalizesTheMargin(t *testing.T) {
	s, _ := newTestServer(t, nil)
	defer s.Drain()
	// A job submitted at exactly the refresh's virtual time: the batch
	// fires at vnow, inside the eps margin, so nothing may be finalized.
	if _, err := s.Submit(seqTask(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.refresh(); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(0)
	if st.State != StateQueued {
		t.Fatalf("margin batch was finalized: state %s, want queued", st.State)
	}
}

func TestDrainMatchesOfflineReplay(t *testing.T) {
	cfg := gridConfig()
	s, clock := newTestServer(t, func(c *Config) {
		c.Grid = cfg
		c.Speedup = 50
	})
	var jobs []online.Job
	for i := 0; i < 40; i++ {
		task := moldable.PerfectlyMoldable(i, 1+float64(i%3), 20+float64(i%7), 1+i%6)
		acc, err := s.Submit(task)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, online.Job{Task: task, Release: acc.Release})
		clock.advance(time.Duration(i%5) * 100 * time.Millisecond)
	}
	rep, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("drained %d jobs, want %d", rep.Jobs, len(jobs))
	}
	offline, err := grid.New(gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := offline.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Metrics, offRep.Metrics) {
		t.Fatalf("drained metrics differ from the offline replay:\nserve   %+v\noffline %+v", rep.Metrics, offRep.Metrics)
	}
	if !reflect.DeepEqual(rep.Grid.Decisions, offRep.Decisions) {
		t.Fatal("drained routing decisions differ from the offline replay")
	}
	// Every job is final after the drain.
	for _, j := range jobs {
		st, _ := s.Status(j.Task.ID)
		if st.State != StateDone {
			t.Fatalf("job %d not done after drain: %s", j.Task.ID, st.State)
		}
	}
	// Drain is idempotent and closes the front door.
	again, err := s.Drain()
	if err != nil || again != rep {
		t.Fatalf("second drain returned (%p, %v), want the same report", again, err)
	}
	_, err = s.Submit(seqTask(999, 1))
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != "draining" {
		t.Fatalf("submit after drain gave %v, want a draining rejection", err)
	}
}

func TestSnapshotRestoreResumesService(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.json")
	cfgFor := func(clock *fakeClock) Config {
		return Config{
			Grid:             gridConfig(),
			Speedup:          20,
			RefreshInterval:  -1,
			SnapshotInterval: -1,
			SnapshotPath:     path,
			Clock:            clock.now,
		}
	}

	clockA := newFakeClock()
	a, err := NewServer(cfgFor(clockA))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []online.Job
	for i := 0; i < 10; i++ {
		task := seqTask(i, 5+float64(i))
		acc, err := a.Submit(task)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, online.Job{Task: task, Release: acc.Release})
		clockA.advance(200 * time.Millisecond)
	}
	vnowA := a.Now()
	if err := a.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	// The first process dies here (no drain). A new one restores.
	clockB := newFakeClock()
	b, err := NewServer(cfgFor(clockB))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Jobs(); got != 10 {
		t.Fatalf("restored server knows %d jobs, want 10", got)
	}
	if got := b.CountersSnapshot(); got.Submitted != 10 || got.Restored != 10 {
		t.Fatalf("restored counters %+v, want 10 submitted / 10 restored", got)
	}
	if now := b.Now(); math.Abs(now-vnowA) > 1e-9 {
		t.Fatalf("restored virtual clock %g, want to resume from %g", now, vnowA)
	}
	// New submissions continue after the restored history.
	task := seqTask(100, 3)
	acc, err := b.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Release < vnowA {
		t.Fatalf("post-restore release %g rewound before %g", acc.Release, vnowA)
	}
	jobs = append(jobs, online.Job{Task: task, Release: acc.Release})

	rep, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := grid.New(gridConfig())
	if err != nil {
		t.Fatal(err)
	}
	offRep, err := offline.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Metrics, offRep.Metrics) {
		t.Fatalf("restored drain differs from the offline replay:\nserve   %+v\noffline %+v", rep.Metrics, offRep.Metrics)
	}
}

func TestNewServerValidatesConfig(t *testing.T) {
	bad := []Config{
		{Grid: gridConfig(), Speedup: -1},
		{Grid: gridConfig(), Speedup: math.NaN()},
		{Grid: gridConfig(), SubmitRate: -2},
		{Grid: gridConfig(), AdmitBacklog: math.Inf(1)},
		{Grid: gridConfig(), QueueShards: -1},
		{Grid: grid.Config{}}, // no clusters
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d accepted, want an error", i)
		}
	}
}
