package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
)

// snapshotFile is the on-disk checkpoint of a running service: the
// accepted stream (tasks with their virtual release stamps), the virtual
// clock and the admission counters. It is a periodic checkpoint, not a
// write-ahead log: submissions admitted after the last write are lost on
// a crash (a graceful drain always writes a final, complete snapshot).
type snapshotFile struct {
	// Version of the format, currently 1.
	Version int `json:"version"`
	// VirtualNow is the virtual clock at the time of the snapshot; a
	// restored server resumes its pacer from it.
	VirtualNow float64 `json:"virtual_now"`
	// Drained records whether the snapshot is the final one of a drain.
	Drained  bool          `json:"drained"`
	Counters Counters      `json:"counters"`
	Jobs     []snapshotJob `json:"jobs"`
}

type snapshotJob struct {
	ID      int       `json:"id"`
	Name    string    `json:"name,omitempty"`
	Weight  float64   `json:"weight"`
	Times   []float64 `json:"times"`
	Release float64   `json:"release"`
}

const snapshotVersion = 1

// writeSnapshot checkpoints the current state to cfg.SnapshotPath,
// atomically (write to a temp file in the same directory, then rename).
func (s *Server) writeSnapshot() error {
	// capture waits for the queue collectors to catch up with every
	// admission, so the checkpoint never misses a job still in flight
	// between the front door and the stream.
	jobs, _ := s.capture()
	s.mu.Lock()
	snap := snapshotFile{
		Version:    snapshotVersion,
		VirtualNow: s.pacer.now(),
		Counters:   s.counters,
		Jobs:       make([]snapshotJob, len(jobs)),
	}
	s.mu.Unlock()
	// An admission may land between the capture and the counters read:
	// pin Submitted to the jobs actually checkpointed, or a restored
	// server would wait forever for stream entries that never existed.
	snap.Counters.Submitted = len(jobs)
	for i, j := range jobs {
		snap.Jobs[i] = snapshotJob{
			ID: j.Task.ID, Name: j.Task.Name, Weight: j.Task.Weight,
			Times: j.Task.Times, Release: j.Release,
		}
	}
	s.liveMu.RLock()
	snap.Drained = s.final != nil
	s.liveMu.RUnlock()

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".serve-snapshot-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.liveMu.Lock()
	s.lastSnapshot = s.pacer.wall()
	s.liveMu.Unlock()
	s.logger.Debug("snapshot written", "path", s.cfg.SnapshotPath, "jobs", len(jobs))
	return nil
}

// restoreSnapshot loads a checkpoint if one exists at path, rebuilding the
// stream, the registry and the admission backlog clock, and returns the
// virtual-clock offset the pacer should resume from. A missing file is a
// fresh start, not an error. Called before the background loops start, so
// no locking is needed.
func (s *Server) restoreSnapshot(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("serve: cannot decode snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("serve: unsupported snapshot version %d (want %d)", snap.Version, snapshotVersion)
	}
	for i, sj := range snap.Jobs {
		task := moldable.Task{ID: sj.ID, Name: sj.Name, Weight: sj.Weight, Times: sj.Times}
		if err := task.Validate(); err != nil {
			return 0, fmt.Errorf("serve: snapshot job %d: %w", i, err)
		}
		if sj.Release < 0 || sj.Release > snap.VirtualNow {
			return 0, fmt.Errorf("serve: snapshot job %d has release %g outside [0, %g]", i, sj.Release, snap.VirtualNow)
		}
		if s.reg.has(task.ID) {
			return 0, fmt.Errorf("serve: snapshot has duplicate job ID %d", task.ID)
		}
		pmin, _ := task.MinTime()
		s.stream = append(s.stream, online.Job{Task: task, Release: sj.Release})
		s.reg.add(task.ID, task.Name, task.Weight, sj.Release, pmin)
		// Recharge the front-door backlog clock exactly as the original
		// admissions did.
		if s.ready < sj.Release {
			s.ready = sj.Release
		}
		s.ready += minWork(task) / float64(s.totalProcs)
	}
	s.counters = snap.Counters
	// The restored stream IS the submitted history: pin the counter to it
	// (a hand-edited snapshot must not leave capture() waiting for stream
	// entries that never existed).
	s.counters.Submitted = len(snap.Jobs)
	s.counters.Restored = len(snap.Jobs)
	s.logger.Info("snapshot restored", "path", path, "jobs", len(snap.Jobs), "virtual_now", snap.VirtualNow)
	return snap.VirtualNow, nil
}

// snapshotLoop periodically writes checkpoints.
func (s *Server) snapshotLoop(every time.Duration) {
	defer s.loopWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			err := s.writeSnapshot()
			s.liveMu.Lock()
			s.snapshotErr = err
			s.liveMu.Unlock()
		}
	}
}
