package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"bicriteria/internal/flight"
)

// runWithFlight compiles and runs a scenario with a flight recorder
// attached, returning the report and the recorder.
func runWithFlight(t *testing.T, s Scenario) (*Report, *flight.Recorder) {
	t.Helper()
	r, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder()
	r.Flight(rec)
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep, rec
}

// renderFlights renders every recorded job timeline into one byte
// stream — the widest byte-identity surface of the recorder.
func renderFlights(t *testing.T, rec *flight.Recorder) string {
	t.Helper()
	var buf bytes.Buffer
	for _, id := range rec.Jobs() {
		if err := flight.FormatTimeline(&buf, id, rec.Timeline(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFlightConcurrentMatchesSequential is the acceptance pin of the
// flight recorder: a concurrent replay and a sequential replay of one
// faulted grid scenario render byte-identical timelines and traces for
// every job.
func TestFlightConcurrentMatchesSequential(t *testing.T) {
	s := base()
	s.Noise = 0.2
	s.Faults = &Faults{MTBF: 20, Repair: 5}

	_, concurrent := runWithFlight(t, s)
	s.Sequential = true
	_, sequential := runWithFlight(t, s)

	conc, seq := renderFlights(t, concurrent), renderFlights(t, sequential)
	if conc != seq {
		t.Fatalf("concurrent and sequential flight renderings differ:\n--- concurrent ---\n%s--- sequential ---\n%s", conc, seq)
	}
	if len(concurrent.Jobs()) != s.Workload.Jobs {
		t.Fatalf("recorded %d jobs, scenario has %d", len(concurrent.Jobs()), s.Workload.Jobs)
	}
	// The recorder must have captured provenance, not just lifecycle: at
	// least one batched event with a winner and a positive lower bound,
	// and at least one routed event carrying per-shard verdicts.
	var winners, verdicts int
	for _, ev := range concurrent.Events() {
		if ev.Kind == flight.KindBatched && ev.Winner != "" && ev.LowerBound > 0 {
			winners++
		}
		if ev.Kind == flight.KindRouted && len(ev.Verdicts) == len(s.Clusters) {
			verdicts++
		}
	}
	if winners == 0 {
		t.Error("no batched event carries winner + lower bound provenance")
	}
	if verdicts == 0 {
		t.Error("no routed event carries per-shard verdicts")
	}
}

// TestScenarioSLOReport pins the SLO axis of the scenario report: a tight
// deadline factor yields a deterministic nonzero miss count, identical
// between concurrent and sequential replays, rendered in both report
// formats, and absent without an SLO block.
func TestScenarioSLOReport(t *testing.T) {
	s := base()
	s.SLO = &SLOSpec{DeadlineFactor: 1, MissBudget: 0.1, BurnWindow: 50, StretchTarget: 2, WaitTarget: 1}

	r1, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLO == nil {
		t.Fatal("report lacks the SLO summary")
	}
	if rep.SLO.Jobs != s.Workload.Jobs {
		t.Fatalf("SLO evaluated %d jobs, want %d", rep.SLO.Jobs, s.Workload.Jobs)
	}
	if rep.SLO.Misses == 0 {
		t.Fatal("deadline factor 1 produced zero misses; the acceptance scenario needs a nonzero deterministic count")
	}
	if len(rep.SLO.PerCluster) == 0 {
		t.Fatal("SLO summary lacks the per-cluster axis")
	}
	if len(rep.SLO.Alerts) != 4 {
		t.Fatalf("alerts = %d, want 4 (deadline, burn, stretch, wait)", len(rep.SLO.Alerts))
	}
	var deadline *int
	for i, a := range rep.SLO.Alerts {
		if a.Name == "deadline-miss-budget" {
			deadline = &i
			if !a.Firing() {
				t.Errorf("deadline-miss-budget resolved despite miss rate %g > budget 0.1", rep.SLO.MissRate)
			}
		}
	}
	if deadline == nil {
		t.Fatal("no deadline-miss-budget alert")
	}

	s.Sequential = true
	r2, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	seqRep, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.SLO, seqRep.SLO) {
		t.Fatalf("concurrent and sequential SLO summaries differ:\n%+v\n%+v", rep.SLO, seqRep.SLO)
	}

	var text bytes.Buffer
	if err := WriteReport(&text, r1.Info(), rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slo:", "deadline misses", "alert deadline-miss-budget"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report lacks %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := WriteReportJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"slo"`) {
		t.Error("JSON report lacks the slo block")
	}

	// Golden safety: without an SLO block neither format mentions SLO.
	plain := base()
	pr, err := Compile(plain)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := pr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prep.SLO != nil {
		t.Fatal("SLO summary present without an SLO block")
	}
	var ptext, pjs bytes.Buffer
	if err := WriteReport(&ptext, pr.Info(), prep); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportJSON(&pjs, prep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ptext.String(), "slo:") || strings.Contains(pjs.String(), `"slo"`) {
		t.Error("SLO leaked into the report of a scenario without an SLO block")
	}
}
