package scenario

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"bicriteria/internal/cluster"
	"bicriteria/internal/grid"
)

// TestCompileMatrix compiles and runs every topology × batch policy ×
// faults combination and checks the report shape matches the topology.
func TestCompileMatrix(t *testing.T) {
	topologies := []struct {
		name     string
		topology Topology
		clusters []Cluster
	}{
		{"single", TopologySingle, []Cluster{{Machines: 16}}},
		{"grid", TopologyGrid, []Cluster{{Machines: 16}, {Machines: 8}}},
	}
	policies := []string{"idle", "interval", "adaptive"}
	faultSections := []struct {
		name   string
		faults *Faults
	}{
		{"no-faults", nil},
		{"node-faults", &Faults{MTBF: 12, Repair: 4}},
		{"shard-faults", &Faults{MTBF: 15, ShardMTBF: 60, Replan: "checkpoint"}},
	}
	for _, topo := range topologies {
		for _, policy := range policies {
			for _, fs := range faultSections {
				t.Run(topo.name+"/"+policy+"/"+fs.name, func(t *testing.T) {
					t.Parallel()
					s := Scenario{
						Version:  Version,
						Seed:     3,
						Topology: topo.topology,
						Clusters: topo.clusters,
						Workload: Workload{Kind: "mixed", Jobs: 30},
						Arrivals: Arrivals{Rate: 5},
						Batch:    Batch{Policy: policy},
						Faults:   fs.faults,
					}
					r, err := Compile(s)
					if err != nil {
						t.Fatal(err)
					}
					if r.Topology() != topo.topology {
						t.Fatalf("runner topology %q, want %q", r.Topology(), topo.topology)
					}
					info := r.Info()
					if info.Jobs != 30 {
						t.Fatalf("info jobs %d, want 30", info.Jobs)
					}
					if (info.Plan != nil) != (fs.faults != nil) {
						t.Fatalf("plan presence %v does not match faults section %v", info.Plan != nil, fs.faults != nil)
					}
					rep, err := r.Run(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					if rep.Topology != topo.topology || rep.Jobs != 30 {
						t.Fatalf("report header %q/%d", rep.Topology, rep.Jobs)
					}
					switch topo.topology {
					case TopologySingle:
						if rep.Cluster == nil || rep.Grid != nil {
							t.Fatal("single report must carry exactly the cluster half")
						}
					case TopologyGrid:
						if rep.Grid == nil || rep.Cluster != nil {
							t.Fatal("grid report must carry exactly the grid half")
						}
					}
					if rep.Makespan() <= 0 || rep.Utilization() <= 0 {
						t.Fatalf("degenerate metrics: makespan %g, utilization %g", rep.Makespan(), rep.Utilization())
					}
				})
			}
		}
	}
}

// TestCompileRejects pins that Compile validates eagerly: every bad spec
// fails before Run with a *ValidationError.
func TestCompileRejects(t *testing.T) {
	bad := []func(*Scenario){
		func(s *Scenario) { s.Clusters = nil },
		func(s *Scenario) { s.Workload.Kind = "nope" },
		func(s *Scenario) { s.Arrivals.Rate = -2 },
		func(s *Scenario) { s.Batch.Policy = "cron" },
		func(s *Scenario) { s.Routing.Policy = "dice" },
		func(s *Scenario) { s.Noise = 2 },
		func(s *Scenario) { s.Faults = &Faults{MTBF: 10, Replan: "undo"} },
		func(s *Scenario) { s.Arrivals.File = "/definitely/not/here.json" },
	}
	for i, mutate := range bad {
		s := base()
		mutate(&s)
		_, err := Compile(s)
		if err == nil {
			t.Fatalf("case %d: bad scenario compiled", i)
		}
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("case %d: error is not a *ValidationError: %v", i, err)
		}
	}
}

// TestCompileEquivalentRunsAreDeterministic pins that a runner replays
// identically across Runs and across the sequential switch.
func TestCompileEquivalentRunsAreDeterministic(t *testing.T) {
	s := base()
	s.Noise = 0.2
	s.Faults = &Faults{MTBF: 20, Repair: 5}
	r1, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := r1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Grid.Metrics, second.Grid.Metrics) {
		t.Fatal("two runs of one runner differ")
	}
	s.Sequential = true
	r2, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Grid.Metrics, sequential.Grid.Metrics) {
		t.Fatal("concurrent and sequential scenario runs differ")
	}
}

// TestObserverStreamsEvents pins the Observer hooks: batches and
// decisions stream for a grid run, kills fire on a faulted single run.
func TestObserverStreamsEvents(t *testing.T) {
	s := base()
	r, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	batches, decisions := 0, 0
	r.Observe(Observer{
		Batch:    func(int, cluster.BatchReport) { mu.Lock(); batches++; mu.Unlock() },
		Decision: func(grid.Decision) { mu.Lock(); decisions++; mu.Unlock() },
	})
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	totalBatches := 0
	for _, crep := range rep.Grid.Clusters {
		totalBatches += len(crep.Batches)
	}
	if batches != totalBatches {
		t.Fatalf("observed %d batches, report has %d", batches, totalBatches)
	}
	if decisions != len(rep.Grid.Decisions) {
		t.Fatalf("observed %d decisions, report has %d", decisions, len(rep.Grid.Decisions))
	}

	// Kills: a heavily faulted single-cluster scenario must stream them.
	fs := Scenario{
		Version:  Version,
		Seed:     3,
		Topology: TopologySingle,
		Clusters: []Cluster{{Machines: 16}},
		Workload: Workload{Kind: "mixed", Jobs: 60},
		Arrivals: Arrivals{Rate: 8},
		Faults:   &Faults{MTBF: 8, Repair: 3},
	}
	fr, err := Compile(fs)
	if err != nil {
		t.Fatal(err)
	}
	kills := 0
	fr.Observe(Observer{Kill: func(c int, k cluster.KillEvent) {
		kills++
		if k.Time < k.Start {
			t.Errorf("kill of task %d precedes its start: %v < %v", k.TaskID, k.Time, k.Start)
		}
	}})
	frep, err := fr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if kills != len(frep.Cluster.Kills) {
		t.Fatalf("observed %d kills, report has %d", kills, len(frep.Cluster.Kills))
	}
	if kills == 0 {
		t.Fatal("fault scenario produced no kills; the observer path is untested")
	}
}

// TestRunContextCancellation aborts a compiled grid scenario mid-replay
// through the runner's context and checks for a prompt, wrapped return.
func TestRunContextCancellation(t *testing.T) {
	s := base()
	s.Workload.Jobs = 80
	r, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	r.Observe(Observer{Batch: func(int, cluster.BatchReport) { once.Do(cancel) }})
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled scenario run never returned")
	}
}
