package scenario

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"bicriteria/internal/cluster"
	"bicriteria/internal/core"
	"bicriteria/internal/faults"
	"bicriteria/internal/flight"
	"bicriteria/internal/grid"
	"bicriteria/internal/obs"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/serve"
	"bicriteria/internal/slo"
	"bicriteria/internal/trace"
	"bicriteria/internal/validate"
	"bicriteria/internal/workload"
)

// Observer streams a run's events as they happen. Every field is
// optional; nil callbacks are skipped. On a concurrent grid replay the
// shard events are serialized by the runner, so callbacks never run
// concurrently with each other.
type Observer struct {
	// Batch receives every committed batch, tagged with its cluster index
	// (0 for the single topology).
	Batch func(cluster int, br cluster.BatchReport)
	// Decision receives every routing decision of a grid run in stream
	// order.
	Decision func(d grid.Decision)
	// Kill receives every job killed by an outage: the cluster it died on
	// and the full kill record (task, batch, absolute start and kill
	// times).
	Kill func(cluster int, kill cluster.KillEvent)
	// Migration receives the routing decisions that moved a job off a
	// dark shard (a subset of Decision's stream, for callers that only
	// care about migrations).
	Migration func(d grid.Decision)
}

// Report is the unified outcome of a scenario run: a superset of the
// cluster and grid reports. Exactly one of Cluster and Grid is non-nil,
// matching the topology.
type Report struct {
	// Topology echoes the compiled scenario's topology.
	Topology Topology
	// Jobs is the number of jobs of the replayed stream.
	Jobs int
	// Cluster is the single-cluster engine report (single topology).
	Cluster *cluster.Report
	// Grid is the federation report (grid topology).
	Grid *grid.Report
	// SLO is the SLO summary axis — deadline misses per cluster, tail
	// values and alert states. Non-nil only when the scenario declared an
	// SLO block; the evaluation is deterministic, so concurrent and
	// sequential replays report identical summaries.
	SLO *slo.Summary
}

// Makespan returns the realized makespan of the run, whatever the
// topology.
func (r *Report) Makespan() float64 {
	if r.Grid != nil {
		return r.Grid.Metrics.Makespan
	}
	return r.Cluster.Metrics.Makespan
}

// WeightedCompletion returns the weighted sum of completion times.
func (r *Report) WeightedCompletion() float64 {
	if r.Grid != nil {
		return r.Grid.Metrics.WeightedCompletion
	}
	return r.Cluster.Metrics.WeightedCompletion
}

// Utilization returns the realized machine utilization in [0, 1].
func (r *Report) Utilization() float64 {
	if r.Grid != nil {
		return r.Grid.Metrics.Utilization
	}
	return r.Cluster.Metrics.Utilization
}

// MeanStretch returns the mean job stretch.
func (r *Report) MeanStretch() float64 {
	if r.Grid != nil {
		return r.Grid.Metrics.MeanStretch
	}
	return r.Cluster.Metrics.MeanStretch
}

// Info describes what a scenario compiled to: the resolved facts the
// report renderers need (policy names, plan sizes) without re-deriving
// them from the spec.
type Info struct {
	// Topology and Sizes echo the compiled scenario.
	Topology Topology
	Sizes    []int
	// Jobs is the size of the compiled job stream.
	Jobs int
	// BatchPolicy is the Name() of the (per-shard) batching policy and
	// Objective the commit criterion's name.
	BatchPolicy string
	Objective   string
	// Routing is the grid routing policy's name (grid topology).
	Routing string
	// Reservations counts the reservations of the single cluster.
	Reservations int
	// Outages counts the single cluster's fault windows; Plan is the full
	// fault plan (nil without a faults section).
	Outages int
	Plan    *faults.Plan
	// Replan is the replan policy kind's name ("restart"/"checkpoint").
	Replan string
}

// Runner is a compiled scenario, ready to replay. Observe (optional)
// must be called before Run; Run may be called repeatedly — every replay
// is deterministic and starts from scratch.
type Runner interface {
	// Topology reports which engine the scenario compiled to.
	Topology() Topology
	// Info returns the compiled facts (policy names, stream size, plan).
	Info() Info
	// Observe installs the event callbacks of subsequent Runs.
	Observe(Observer)
	// Flight registers a flight recorder: every subsequent Run resets it,
	// seeds it with the stream's submission events and streams every
	// decision, batch and kill into it (alongside any Observer installed
	// via Observe). Pass nil to detach.
	Flight(*flight.Recorder)
	// Metrics returns the runner's observability registry: the wall-clock
	// timing histograms of the compiled engine (portfolio latency per
	// algorithm, DEMT phases, batch planning, grid routing) accumulate in
	// it across Runs, renderable with WritePrometheus.
	Metrics() *obs.Registry
	// Run replays the stream through the compiled engine. Cancelling the
	// context aborts the replay between batches without deadlock;
	// errors.Is(err, ctx.Err()) holds on the returned error.
	Run(ctx context.Context) (*Report, error)
}

// Compile validates the scenario eagerly — every constructor runs before
// any goroutine spawns, so a bad spec fails with a *ValidationError
// naming the field path — loads or generates the job stream and the
// fault plan, and returns the Runner of the scenario's topology.
func Compile(s Scenario) (Runner, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	jobs, err := buildJobs(s)
	if err != nil {
		return nil, err
	}
	plan, err := buildFaults(s, jobs)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	switch s.Topology {
	case TopologySingle:
		cfg, err := clusterConfig(s, plan, reg)
		if err != nil {
			return nil, err
		}
		// Eager validation: surface config errors now, not at Run.
		if _, err := cluster.New(cfg); err != nil {
			return nil, validate.Prefix("clusters[0]", err)
		}
		return &clusterRunner{scn: s, cfg: cfg, jobs: jobs, plan: plan, reg: reg}, nil
	default:
		cfg, err := gridConfig(s, plan, reg)
		if err != nil {
			return nil, err
		}
		if _, err := grid.New(cfg); err != nil {
			return nil, err
		}
		return &gridRunner{scn: s, cfg: cfg, jobs: jobs, plan: plan, reg: reg}, nil
	}
}

// ServeConfig compiles the scenario into a live-service configuration:
// the grid section exactly as Compile builds it (a single cluster is a
// grid with one shard), plus the pacing of the optional service section.
func ServeConfig(s Scenario) (serve.Config, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return serve.Config{}, err
	}
	// The service ingests live submissions: a replayed stream would fight
	// the front door for job IDs.
	if !s.Arrivals.Generated() {
		return serve.Config{}, validate.Errorf("arrivals", "a service scenario cannot replay a file or trace; submissions arrive over HTTP")
	}
	plan, err := buildFaults(s, nil)
	if err != nil {
		return serve.Config{}, err
	}
	// One registry for the whole service: the DEMT phase timings of the
	// shard portfolios land in the same scrape as the server's own series.
	reg := obs.NewRegistry()
	gcfg, err := gridConfig(s, plan, reg)
	if err != nil {
		return serve.Config{}, err
	}
	cfg := serve.Config{Grid: gcfg, Metrics: reg}
	if s.SLO != nil {
		spec := s.SLO.spec()
		cfg.SLO = &spec
	}
	if svc := s.Service; svc != nil {
		cfg.Speedup = svc.Speedup
		cfg.SubmitRate = svc.SubmitRate
		cfg.SubmitBurst = svc.SubmitBurst
		cfg.AdmitBacklog = svc.AdmitBacklog
		cfg.QueueShards = svc.QueueShards
		cfg.QueueDepth = svc.QueueDepth
		cfg.RefreshInterval = time.Duration(svc.RefreshSeconds * float64(time.Second))
		cfg.SnapshotPath = svc.SnapshotPath
		cfg.SnapshotInterval = time.Duration(svc.SnapshotSeconds * float64(time.Second))
	}
	return cfg, nil
}

// ---------------------------------------------------------------------------
// Spec resolution: zero-means-default, matching the legacy CLI defaults
// so flag shims are behaviour-preserving.
// ---------------------------------------------------------------------------

// Default knob values of the batching policies (the legacy CLI flag
// defaults).
const (
	DefaultInterval   = 25
	DefaultWorkFactor = 4
	DefaultMaxDelay   = 50
	DefaultAlpha      = 0.5
)

func parseWorkloadKind(kind string) (workload.Kind, error) {
	if kind == "" {
		kind = "mixed"
	}
	return workload.ParseKind(kind)
}

func parseDistribution(law string) (workload.Distribution, error) {
	return workload.ParseDistribution(law)
}

func parseRoutingPolicy(policy string) (grid.RoutingPolicy, error) {
	if policy == "" {
		policy = "least-backlog"
	}
	return grid.ParsePolicy(policy)
}

// workloadSeed resolves the task-stream seed.
func (s Scenario) workloadSeed() int64 {
	if s.Workload.Seed != 0 {
		return s.Workload.Seed
	}
	return s.Seed
}

// faultSeed resolves the fault-plan sub-seed: explicit when set,
// otherwise derived from the master seed with FaultSeedSalt.
func (s Scenario) faultSeed() int64 {
	if s.Faults != nil && s.Faults.Seed != 0 {
		return s.Faults.Seed
	}
	return s.Seed ^ FaultSeedSalt
}

// racing resolves the racing section into the engine's configuration: the
// zero value (racing disabled) without a section, otherwise the cutoff
// plus the bandit seed, explicit when set and derived from the master seed
// with RaceSeedSalt otherwise.
func (s Scenario) racing() cluster.Racing {
	if s.Racing == nil {
		return cluster.Racing{}
	}
	seed := s.Racing.Seed
	if seed == 0 {
		seed = s.Seed ^ RaceSeedSalt
	}
	return cluster.Racing{Cutoff: s.Racing.Cutoff, Bandit: s.Racing.Bandit, Seed: seed}
}

// batchPolicy builds the batching policy of a machine of m processors.
func (s Scenario) batchPolicy(m int) (cluster.BatchPolicy, error) {
	interval, workFactor, maxDelay := s.Batch.Interval, s.Batch.WorkFactor, s.Batch.MaxDelay
	if interval == 0 {
		interval = DefaultInterval
	}
	if workFactor == 0 {
		workFactor = DefaultWorkFactor
	}
	if maxDelay == 0 {
		maxDelay = DefaultMaxDelay
	}
	switch s.Batch.Policy {
	case "", "idle":
		return cluster.BatchOnIdle(), nil
	case "interval":
		return cluster.FixedInterval(interval)
	case "adaptive":
		return cluster.AdaptiveBacklog(workFactor*float64(m), maxDelay)
	}
	return nil, validate.Errorf("batch.policy", "unknown batching policy %q", s.Batch.Policy)
}

// objective builds the commit objective.
func (s Scenario) objective() (cluster.Objective, error) {
	alpha := s.Objective.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	switch s.Objective.Kind {
	case "", "makespan":
		return cluster.Objective{Kind: cluster.ObjectiveMakespan}, nil
	case "minsum":
		return cluster.Objective{Kind: cluster.ObjectiveWeightedCompletion}, nil
	case "combined":
		return cluster.Objective{Kind: cluster.ObjectiveCombined, Alpha: alpha}, nil
	}
	return cluster.Objective{}, validate.Errorf("objective.kind", "unknown objective %q", s.Objective.Kind)
}

// replanPolicy builds the killed-job replan policy of the faults section.
func (s Scenario) replanPolicy() (cluster.ReplanPolicy, error) {
	if s.Faults == nil {
		return cluster.ReplanPolicy{}, nil
	}
	kindName := s.Faults.Replan
	if kindName == "" {
		kindName = "restart"
	}
	kind, err := cluster.ParseReplanKind(kindName)
	if err != nil {
		return cluster.ReplanPolicy{}, validate.Errorf("faults.replan", "%v", err)
	}
	return cluster.ReplanPolicy{Kind: kind, Credit: s.Faults.CheckpointCredit}, nil
}

// perturb builds the runtime-noise function of cluster index i,
// reproducing the exact legacy seed derivations: the single topology
// perturbs with the raw seed (bicrit-cluster), the grid decorrelates the
// shards with seed ^ (i+1)*0x9E3779B9 (bicrit-grid).
func (s Scenario) perturb(i int) (func(taskID int, planned float64) float64, error) {
	seed := s.Seed
	if s.Topology == TopologyGrid {
		seed = s.Seed ^ int64(i+1)*0x9E3779B9
	}
	fn, err := cluster.UniformNoise(s.Noise, seed)
	if err != nil {
		return nil, validate.Errorf("noise", "%v", err)
	}
	return fn, nil
}

// reservations converts one cluster's reservation specs.
func (c Cluster) reservations() []reservation.Reservation {
	if len(c.Reservations) == 0 {
		return nil
	}
	out := make([]reservation.Reservation, len(c.Reservations))
	for i, r := range c.Reservations {
		out[i] = reservation.Reservation{Procs: r.Procs, Start: r.Start, End: r.End}
	}
	return out
}

// buildJobs loads or generates the job stream.
func buildJobs(s Scenario) ([]online.Job, error) {
	switch {
	case s.Arrivals.Trace != "":
		f, err := os.Open(s.Arrivals.Trace)
		if err != nil {
			return nil, validate.Errorf("arrivals.trace", "%v", err)
		}
		defer f.Close()
		records, err := trace.Parse(f)
		if err != nil {
			return nil, validate.Errorf("arrivals.trace", "%v", err)
		}
		tasks := trace.ToTasks(records, s.MaxMachines(), nil)
		releases := trace.Releases(records)
		jobs := make([]online.Job, len(tasks))
		for i, t := range tasks {
			jobs[i] = online.Job{Task: t, Release: releases[t.ID]}
		}
		return jobs, nil
	case s.Arrivals.File != "":
		arrivals, _, err := workload.LoadArrivals(s.Arrivals.File)
		if err != nil {
			return nil, validate.Errorf("arrivals.file", "%v", err)
		}
		return cluster.JobsFromArrivals(arrivals), nil
	default:
		kind, err := parseWorkloadKind(s.Workload.Kind)
		if err != nil {
			return nil, validate.Errorf("workload.kind", "%v", err)
		}
		interarrival, err := parseDistribution(s.Arrivals.Interarrival)
		if err != nil {
			return nil, validate.Errorf("arrivals.interarrival", "%v", err)
		}
		runtimeTail, err := parseDistribution(s.Arrivals.RuntimeTail)
		if err != nil {
			return nil, validate.Errorf("arrivals.runtime_tail", "%v", err)
		}
		arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
			Workload: workload.Config{
				Kind: kind,
				M:    s.MaxMachines(),
				N:    s.Workload.Jobs,
				Seed: s.workloadSeed(),
			},
			Rate:              s.Arrivals.Rate,
			BurstSize:         s.Arrivals.Burst,
			Interarrival:      interarrival,
			InterarrivalShape: s.Arrivals.InterarrivalShape,
			RuntimeTail:       runtimeTail,
			RuntimeTailShape:  s.Arrivals.RuntimeTailShape,
		})
		if err != nil {
			return nil, err
		}
		return cluster.JobsFromArrivals(arrivals), nil
	}
}

// buildFaults generates the deterministic fault plan of the scenario, or
// nil without an active faults section. The horizon, when unset, is
// estimated from the stream exactly like the legacy CLIs
// (faults.SuggestHorizon over the total processors); ServeConfig passes
// nil jobs and therefore requires an explicit horizon.
func buildFaults(s Scenario, jobs []online.Job) (*faults.Plan, error) {
	if !s.Faults.Active() {
		return nil, nil
	}
	cfg := faults.Config{
		Seed:            s.faultSeed(),
		Horizon:         s.Faults.Horizon,
		Clusters:        s.Sizes(),
		MTBF:            s.Faults.MTBF,
		Shape:           s.Faults.Shape,
		RepairMean:      s.Faults.Repair,
		RepairSigma:     s.Faults.RepairSigma,
		CorrelatedMTBF:  s.Faults.CorrelatedMTBF,
		CorrelatedSize:  s.Faults.CorrelatedSize,
		ShardMTBF:       s.Faults.ShardMTBF,
		ShardRepairMean: s.Faults.ShardRepair,
	}
	if cfg.Horizon == 0 {
		if jobs == nil {
			return nil, validate.Errorf("faults.horizon", "a service scenario needs an explicit fault horizon (no finite stream to estimate one from)")
		}
		maxRelease, work := 0.0, 0.0
		for i := range jobs {
			if jobs[i].Release > maxRelease {
				maxRelease = jobs[i].Release
			}
			w, _ := jobs[i].Task.MinWork()
			work += w
		}
		procs := 0
		for _, m := range cfg.Clusters {
			procs += m
		}
		cfg.Horizon = faults.SuggestHorizon(maxRelease, work, procs)
	}
	plan, err := faults.Generate(cfg)
	if err != nil {
		return nil, validate.Prefix("faults", err)
	}
	return plan, nil
}

// coreOptions builds the DEMT options of a shard's portfolio, hooking
// the phase timer of the registry in. The timings are observational
// only: they never feed back into scheduling, so the replay stays
// deterministic.
func coreOptions(s Scenario, reg *obs.Registry) *core.Options {
	o := &core.Options{Seed: s.Seed}
	if reg != nil {
		o.Timing = reg.PhaseTimer("bicrit_demt_phase_seconds",
			"Wall-clock time of DEMT internal phases per batch.", "phase")
	}
	return o
}

// clusterConfig assembles the single-topology engine configuration.
func clusterConfig(s Scenario, plan *faults.Plan, reg *obs.Registry) (cluster.Config, error) {
	m := s.Clusters[0].Machines
	policy, err := s.batchPolicy(m)
	if err != nil {
		return cluster.Config{}, err
	}
	objective, err := s.objective()
	if err != nil {
		return cluster.Config{}, err
	}
	perturb, err := s.perturb(0)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.Config{
		M:            m,
		Portfolio:    cluster.DefaultPortfolio(coreOptions(s, reg)),
		Objective:    objective,
		Policy:       policy,
		Reservations: s.Clusters[0].reservations(),
		Perturb:      perturb,
		Racing:       s.racing(),
		Sequential:   s.Sequential,
		Metrics:      reg,
	}
	if plan != nil {
		cfg.Outages = plan.ClusterWindows(0, m)
		replan, err := s.replanPolicy()
		if err != nil {
			return cluster.Config{}, err
		}
		cfg.Replan = replan
		cfg.MaxRetries = s.Faults.MaxRetries
	}
	return cfg, nil
}

// gridConfig assembles the grid-topology federation configuration.
func gridConfig(s Scenario, plan *faults.Plan, reg *obs.Registry) (grid.Config, error) {
	objective, err := s.objective()
	if err != nil {
		return grid.Config{}, err
	}
	routing, err := parseRoutingPolicy(s.Routing.Policy)
	if err != nil {
		return grid.Config{}, validate.Errorf("routing.policy", "%v", err)
	}
	specs := make([]grid.ClusterSpec, len(s.Clusters))
	for i, c := range s.Clusters {
		policy, err := s.batchPolicy(c.Machines)
		if err != nil {
			return grid.Config{}, err
		}
		perturb, err := s.perturb(i)
		if err != nil {
			return grid.Config{}, err
		}
		specs[i] = grid.ClusterSpec{
			M:            c.Machines,
			Portfolio:    cluster.DefaultPortfolio(coreOptions(s, reg)),
			Objective:    objective,
			Policy:       policy,
			Reservations: c.reservations(),
			Perturb:      perturb,
			Racing:       s.racing(),
		}
	}
	cfg := grid.Config{
		Clusters:     specs,
		Routing:      routing,
		QueueDepth:   s.Routing.QueueDepth,
		AdmitBacklog: s.Routing.AdmitBacklog,
		Sequential:   s.Sequential,
		Metrics:      reg,
	}
	if plan != nil {
		cfg.Faults = plan
		replan, err := s.replanPolicy()
		if err != nil {
			return grid.Config{}, err
		}
		cfg.Replan = replan
		cfg.MaxRetries = s.Faults.MaxRetries
	}
	return cfg, nil
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

// mergeFlight chains a flight recorder behind an observer: the caller's
// callbacks run first, then the recorder consumes the same event. Kill
// events need no extra hook — the recorder derives them from each batch
// report's KillEvents.
func mergeFlight(w Observer, rec *flight.Recorder) Observer {
	base := w
	w.Batch = func(c int, br cluster.BatchReport) {
		if base.Batch != nil {
			base.Batch(c, br)
		}
		rec.OnBatch(c, br)
	}
	w.Decision = func(d grid.Decision) {
		if base.Decision != nil {
			base.Decision(d)
		}
		rec.OnDecision(d)
	}
	return w
}

// LogObserver is the scenario runner's half of the structured-logging
// surface: one record per committed batch (the replan summary rides the
// batch record through Replanned), per kill and per migration. With the
// discard logger this is free; the CLIs wire it behind -log-level.
func LogObserver(l *slog.Logger) Observer {
	return Observer{
		Batch: func(c int, br cluster.BatchReport) {
			l.Info("batch committed",
				"cluster", c,
				"batch", br.Index,
				"fire_time", br.FireTime,
				"jobs", len(br.Jobs),
				"winner", br.Winner,
				"planned_makespan", br.PlannedMakespan,
				"realized_makespan", br.RealizedMakespan,
				"killed", len(br.Killed))
		},
		Kill: func(c int, k cluster.KillEvent) {
			l.Warn("job killed",
				"cluster", c, "job", k.TaskID, "batch", k.Batch,
				"started", k.Start, "killed_at", k.Time)
		},
		Migration: func(d grid.Decision) {
			l.Info("job migrated",
				"job", d.JobID, "to_cluster", d.Cluster, "t", d.Release)
		},
	}
}

// seedFlight resets the recorder and records the stream's submissions.
func seedFlight(rec *flight.Recorder, jobs []online.Job) {
	rec.Reset()
	for i := range jobs {
		rec.Submitted(jobs[i].Task.ID, jobs[i].Release)
	}
}

// sloOutcomes builds the SLO engine's input from the replayed stream and
// the realized report: one outcome per submitted job, marked done (with
// its cluster and execution bounds) when the realized schedule ran it.
func sloOutcomes(jobs []online.Job, rep *Report) []slo.JobOutcome {
	type placed struct {
		cluster    int
		start, end float64
	}
	place := make(map[int]placed, len(jobs))
	if rep.Cluster != nil {
		for _, a := range rep.Cluster.Schedule.Assignments {
			place[a.TaskID] = placed{0, a.Start, a.End()}
		}
	} else if rep.Grid != nil {
		for c, crep := range rep.Grid.Clusters {
			for _, a := range crep.Schedule.Assignments {
				place[a.TaskID] = placed{c, a.Start, a.End()}
			}
		}
	}
	out := make([]slo.JobOutcome, 0, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		pmin, _ := j.Task.MinTime()
		o := slo.JobOutcome{Job: j.Task.ID, Cluster: -1, Release: j.Release, Pmin: pmin}
		if p, ok := place[j.Task.ID]; ok {
			o.Cluster, o.Start, o.End, o.Done = p.cluster, p.start, p.end, true
		}
		out = append(out, o)
	}
	return out
}

// evaluateSLO attaches the SLO axis to the report and publishes it into
// the runner's registry when the scenario declares an SLO block.
func evaluateSLO(s Scenario, jobs []online.Job, rep *Report, reg *obs.Registry) {
	if s.SLO == nil {
		return
	}
	sum := slo.Evaluate(s.SLO.spec(), sloOutcomes(jobs, rep))
	sum.Publish(reg)
	rep.SLO = sum
}

// clusterRunner replays a single-topology scenario.
type clusterRunner struct {
	scn    Scenario
	cfg    cluster.Config
	jobs   []online.Job
	plan   *faults.Plan
	reg    *obs.Registry
	watch  Observer
	flight *flight.Recorder
}

func (r *clusterRunner) Topology() Topology { return TopologySingle }

func (r *clusterRunner) Observe(o Observer) { r.watch = o }

func (r *clusterRunner) Flight(rec *flight.Recorder) { r.flight = rec }

func (r *clusterRunner) Metrics() *obs.Registry { return r.reg }

func (r *clusterRunner) Info() Info {
	return Info{
		Topology:     TopologySingle,
		Sizes:        r.scn.Sizes(),
		Jobs:         len(r.jobs),
		BatchPolicy:  r.cfg.Policy.Name(),
		Objective:    r.cfg.Objective.Kind.String(),
		Reservations: len(r.cfg.Reservations),
		Outages:      len(r.cfg.Outages),
		Plan:         r.plan,
		Replan:       r.cfg.Replan.Kind.String(),
	}
}

func (r *clusterRunner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	watched := r.watch
	if r.flight != nil {
		seedFlight(r.flight, r.jobs)
		watched = mergeFlight(watched, r.flight)
	}
	if watch := watched; watch.Batch != nil || watch.Kill != nil {
		cfg.OnBatch = func(br cluster.BatchReport) {
			if watch.Batch != nil {
				watch.Batch(0, br)
			}
			if watch.Kill != nil {
				for _, k := range br.KillEvents {
					watch.Kill(0, k)
				}
			}
		}
	}
	eng, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := eng.RunContext(ctx, r.jobs)
	if err != nil {
		return nil, err
	}
	// The legacy CLI cross-checks the realized trace against the
	// reservations after every run; keep that safety net.
	if len(cfg.Reservations) > 0 {
		if err := reservation.ValidateAgainstReservations(rep.Schedule, cfg.Reservations, rep.Blocked); err != nil {
			return nil, fmt.Errorf("realized trace violates a reservation: %w", err)
		}
	}
	report := &Report{Topology: TopologySingle, Jobs: len(r.jobs), Cluster: rep}
	evaluateSLO(r.scn, r.jobs, report, r.reg)
	return report, nil
}

// gridRunner replays a grid-topology scenario.
type gridRunner struct {
	scn    Scenario
	cfg    grid.Config
	jobs   []online.Job
	plan   *faults.Plan
	reg    *obs.Registry
	watch  Observer
	flight *flight.Recorder
}

func (r *gridRunner) Topology() Topology { return TopologyGrid }

func (r *gridRunner) Observe(o Observer) { r.watch = o }

func (r *gridRunner) Flight(rec *flight.Recorder) { r.flight = rec }

func (r *gridRunner) Metrics() *obs.Registry { return r.reg }

func (r *gridRunner) Info() Info {
	return Info{
		Topology:    TopologyGrid,
		Sizes:       r.scn.Sizes(),
		Jobs:        len(r.jobs),
		BatchPolicy: r.cfg.Clusters[0].Policy.Name(),
		Objective:   r.cfg.Clusters[0].Objective.Kind.String(),
		Routing:     r.cfg.Routing.Name(),
		Plan:        r.plan,
		Replan:      r.cfg.Replan.Kind.String(),
	}
}

func (r *gridRunner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	watch := r.watch
	if r.flight != nil {
		seedFlight(r.flight, r.jobs)
		watch = mergeFlight(watch, r.flight)
	}
	if watch.Decision != nil || watch.Migration != nil {
		cfg.OnDecision = func(d grid.Decision) {
			if watch.Decision != nil {
				watch.Decision(d)
			}
			if watch.Migration != nil && d.Migrated {
				watch.Migration(d)
			}
		}
	}
	if watch.Batch != nil || watch.Kill != nil {
		// Shards report concurrently; serialize the observer.
		var mu sync.Mutex
		cfg.OnBatch = func(shard int, br cluster.BatchReport) {
			mu.Lock()
			defer mu.Unlock()
			if watch.Batch != nil {
				watch.Batch(shard, br)
			}
			if watch.Kill != nil {
				for _, k := range br.KillEvents {
					watch.Kill(shard, k)
				}
			}
		}
	}
	fed, err := grid.New(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := fed.RunContext(ctx, r.jobs)
	if err != nil {
		return nil, err
	}
	report := &Report{Topology: TopologyGrid, Jobs: len(r.jobs), Grid: rep}
	evaluateSLO(r.scn, r.jobs, report, r.reg)
	return report, nil
}
