package scenario

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"bicriteria/internal/flight"
	"bicriteria/internal/obs"
)

// racingStressScenario is an 8-shard heterogeneous grid with noise,
// faults and racing (bandit on) all enabled — the hostile end of the
// configuration space for the byte-identical-replay invariant.
func racingStressScenario() Scenario {
	return Scenario{
		Version:  Version,
		Seed:     11,
		Topology: TopologyGrid,
		Clusters: []Cluster{
			{Machines: 48}, {Machines: 32}, {Machines: 24}, {Machines: 16},
			{Machines: 16}, {Machines: 12}, {Machines: 8}, {Machines: 8},
		},
		Workload: Workload{Kind: "mixed", Jobs: 120},
		Arrivals: Arrivals{Rate: 6, Burst: 3},
		Noise:    0.2,
		Racing:   &RacingSpec{Cutoff: 2, Bandit: true},
		Faults:   &Faults{MTBF: 30, Repair: 5},
	}
}

// TestRacingDeterminismStress is the racing-mode repeatability stress:
// the 8-shard faulted grid with the portfolio race and the bandit both on
// replays concurrently (full GOMAXPROCS) and sequentially, and the
// report, the event trace and every flight timeline must serialize to the
// same bytes. Racing cancels different goroutines at different wall-clock
// moments run to run — none of that may leak into committed state.
func TestRacingDeterminismStress(t *testing.T) {
	run := func(sequential bool) (report, trace, flights []byte) {
		s := racingStressScenario()
		s.Sequential = sequential
		r, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		sink := obs.NewSink()
		r.Observe(TraceObserver(sink))
		rec := flight.NewRecorder()
		r.Flight(rec)
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		RecordDrain(sink, rep)
		var repBuf, traceBuf, flightBuf bytes.Buffer
		if err := WriteReportJSON(&repBuf, rep); err != nil {
			t.Fatal(err)
		}
		if err := sink.WriteJSONL(&traceBuf); err != nil {
			t.Fatal(err)
		}
		for _, id := range rec.Jobs() {
			if err := flight.FormatTimeline(&flightBuf, id, rec.Timeline(id)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rec.WriteJSONL(&flightBuf); err != nil {
			t.Fatal(err)
		}
		// The stress must exercise the race, not just tolerate the block:
		// at least one batch has to cut off a straggler.
		cut := 0
		for _, ev := range rec.Events() {
			if ev.Kind == flight.KindBatched {
				cut += len(ev.CutOff)
			}
		}
		if cut == 0 {
			t.Fatal("racing stress scenario never cut off a portfolio member")
		}
		return repBuf.Bytes(), traceBuf.Bytes(), flightBuf.Bytes()
	}

	old := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(old)
	report, trace, flights := run(false)
	for i := 0; i < 2; i++ {
		rep2, trace2, flights2 := run(false)
		if !bytes.Equal(rep2, report) {
			t.Fatalf("concurrent racing replay %d: report bytes differ", i+2)
		}
		if !bytes.Equal(trace2, trace) {
			t.Fatalf("concurrent racing replay %d: trace bytes differ", i+2)
		}
		if !bytes.Equal(flights2, flights) {
			t.Fatalf("concurrent racing replay %d: flight bytes differ", i+2)
		}
	}
	seqRep, seqTrace, seqFlights := run(true)
	if !bytes.Equal(seqRep, report) {
		t.Fatal("sequential racing replay: report bytes differ from concurrent")
	}
	if !bytes.Equal(seqTrace, trace) {
		t.Fatal("sequential racing replay: trace bytes differ from concurrent")
	}
	if !bytes.Equal(seqFlights, flights) {
		t.Fatal("sequential racing replay: flight timelines differ from concurrent")
	}
}
