package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"bicriteria/internal/cluster"
	"bicriteria/internal/obs"
)

// traceScenario is the seeded grid scenario of the determinism tests:
// heavy faults so every event kind (batches, decisions, kills,
// migrations) appears in the stream.
func traceScenario(sequential bool) Scenario {
	return Scenario{
		Version:    Version,
		Seed:       11,
		Topology:   TopologyGrid,
		Clusters:   []Cluster{{Machines: 16}, {Machines: 8}, {Machines: 8}},
		Workload:   Workload{Kind: "mixed", Jobs: 50},
		Arrivals:   Arrivals{Rate: 6, Burst: 4},
		Noise:      0.2,
		Faults:     &Faults{MTBF: 10, Repair: 4, ShardMTBF: 12, ShardRepair: 8},
		Sequential: sequential,
	}
}

// renderTrace replays the scenario with a trace observer and renders the
// sink in the given format.
func renderTrace(t *testing.T, s Scenario, format string) ([]byte, *Report) {
	t.Helper()
	r, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	r.Observe(TraceObserver(sink))
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	RecordDrain(sink, rep)
	var buf bytes.Buffer
	if err := sink.Write(&buf, format); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestTraceByteIdenticalAcrossReplayModes pins the determinism contract
// of the trace pipeline: a seeded grid scenario renders byte-identical
// traces whether the shards replay concurrently or sequentially, in both
// output formats.
func TestTraceByteIdenticalAcrossReplayModes(t *testing.T) {
	for _, format := range []string{obs.FormatChrome, obs.FormatJSONL} {
		t.Run(format, func(t *testing.T) {
			concurrent, _ := renderTrace(t, traceScenario(false), format)
			sequential, _ := renderTrace(t, traceScenario(true), format)
			if !bytes.Equal(concurrent, sequential) {
				t.Fatalf("concurrent and sequential replays rendered different %s traces (%d vs %d bytes)",
					format, len(concurrent), len(sequential))
			}
			rerun, _ := renderTrace(t, traceScenario(false), format)
			if !bytes.Equal(concurrent, rerun) {
				t.Fatalf("two concurrent replays rendered different %s traces", format)
			}
		})
	}
}

// TestTraceEventsReconcileWithReport checks that the trace's event
// counts agree with the final report: every committed batch, routing
// decision and kill of the report appears exactly once in the sink.
func TestTraceEventsReconcileWithReport(t *testing.T) {
	s := traceScenario(false)
	r, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	r.Observe(TraceObserver(sink))
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	RecordDrain(sink, rep)

	counts := map[obs.Kind]int{}
	for _, ev := range sink.Events() {
		counts[ev.Kind]++
	}

	batches := 0
	for _, crep := range rep.Grid.Clusters {
		batches += len(crep.Batches)
	}
	if counts[obs.KindBatch] != batches {
		t.Errorf("trace has %d batch events, report has %d batches", counts[obs.KindBatch], batches)
	}
	migrations := 0
	for _, d := range rep.Grid.Decisions {
		if d.Migrated {
			migrations++
		}
	}
	if got := counts[obs.KindDecision] + counts[obs.KindMigration]; got != len(rep.Grid.Decisions) {
		t.Errorf("trace has %d decision+migration events, report has %d decisions", got, len(rep.Grid.Decisions))
	}
	if counts[obs.KindMigration] != migrations {
		t.Errorf("trace has %d migration events, report has %d migrated decisions", counts[obs.KindMigration], migrations)
	}
	kills := 0
	for _, crep := range rep.Grid.Clusters {
		kills += len(crep.Kills)
	}
	if counts[obs.KindKill] != kills {
		t.Errorf("trace has %d kill events, report has %d kills", counts[obs.KindKill], kills)
	}
	if counts[obs.KindKill] == 0 {
		t.Error("fault scenario produced no kill events; the trace path is untested")
	}
	if counts[obs.KindMigration] == 0 {
		t.Error("shard-fault scenario produced no migration events; the trace path is untested")
	}
	if counts[obs.KindDrain] != 1 {
		t.Errorf("trace has %d drain events, want 1", counts[obs.KindDrain])
	}
}

// TestRunnerMetricsPopulated checks the compiled runner's registry
// accumulates the timing histograms during a replay and renders as valid
// Prometheus text.
func TestRunnerMetricsPopulated(t *testing.T) {
	r, err := Compile(traceScenario(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("runner registry rendered invalid Prometheus text: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	for _, f := range families {
		names[f.Name] = true
	}
	for _, want := range []string{
		"bicrit_portfolio_algorithm_seconds",
		"bicrit_batch_schedule_seconds",
		"bicrit_grid_route_stream_seconds",
		"bicrit_demt_phase_seconds",
	} {
		if !names[want] {
			t.Errorf("registry is missing family %s after a replay; have %s",
				want, strings.Join(sortedNames(names), ", "))
		}
	}
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// Order does not matter for the error message; keep it simple.
	return out
}

// TestMergeObservers checks both chained observers see every event.
func TestMergeObservers(t *testing.T) {
	var a, b int
	count := func(n *int) Observer {
		return Observer{
			Batch: func(int, cluster.BatchReport) { *n++ },
		}
	}
	merged := MergeObservers(count(&a), count(&b))
	merged.Batch(0, cluster.BatchReport{})
	merged.Batch(1, cluster.BatchReport{})
	if a != 2 || b != 2 {
		t.Fatalf("merged observer dispatched a=%d b=%d, want 2 and 2", a, b)
	}
}
