package scenario

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestScenarioRoundTrip pins Write → Read identity for a spec exercising
// every section.
func TestScenarioRoundTrip(t *testing.T) {
	s := Scenario{
		Version:  Version,
		Name:     "round-trip",
		Seed:     9,
		Topology: TopologyGrid,
		Clusters: []Cluster{
			{Machines: 32, Reservations: []Reservation{{Procs: 4, Start: 10, End: 40}}},
			{Machines: 16},
		},
		Workload:  Workload{Kind: "cirne", Jobs: 42, Seed: 5},
		Arrivals:  Arrivals{Rate: 3.5, Burst: 4, Interarrival: "lognormal", InterarrivalShape: 1.1, RuntimeTail: "weibull", RuntimeTailShape: 0.6},
		Batch:     Batch{Policy: "adaptive", WorkFactor: 6, MaxDelay: 30},
		Objective: Objective{Kind: "combined", Alpha: 0.25},
		Routing:   Routing{Policy: "moldability", AdmitBacklog: 40},
		Noise:     0.15,
		Faults: &Faults{
			Seed: 77, MTBF: 20, Repair: 4, ShardMTBF: 100, Replan: "checkpoint",
			CheckpointCredit: 0.5, MaxRetries: 2,
		},
		Service: &Service{Speedup: 60, SubmitRate: 100, AdmitBacklog: 50, SnapshotPath: "snap.json"},
	}
	var buf bytes.Buffer
	if err := WriteScenario(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip drifted:\nwrote %+v\nread  %+v", s, got)
	}
}

// TestSaveLoadScenario round-trips through a file path.
func TestSaveLoadScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scn.json")
	s := base()
	s.Name = "file"
	if err := SaveScenario(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "file" || got.Topology != TopologyGrid || len(got.Clusters) != 2 {
		t.Fatalf("loaded scenario drifted: %+v", got)
	}
}

// TestReadRejectsUnknownVersion pins the version check.
func TestReadRejectsUnknownVersion(t *testing.T) {
	_, err := ReadScenario(strings.NewReader(`{
		"version": 2,
		"topology": "single",
		"clusters": [{"machines": 8}],
		"workload": {"jobs": 1},
		"arrivals": {"rate": 1}
	}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted (err: %v)", err)
	}
	if _, err := ReadScenario(strings.NewReader(`{
		"topology": "single",
		"clusters": [{"machines": 8}],
		"workload": {"jobs": 1},
		"arrivals": {"rate": 1}
	}`)); err == nil {
		t.Fatal("missing version accepted")
	}
}

// TestReadRejectsUnknownFields pins that a typoed knob fails loudly
// instead of silently running the default.
func TestReadRejectsUnknownFields(t *testing.T) {
	for _, doc := range []string{
		`{"version": 1, "topolgy": "grid", "clusters": [{"machines": 8}], "workload": {"jobs": 1}, "arrivals": {"rate": 1}}`,
		`{"version": 1, "topology": "grid", "clusters": [{"machines": 8, "reserved": 2}], "workload": {"jobs": 1}, "arrivals": {"rate": 1}}`,
		`{"version": 1, "topology": "grid", "clusters": [{"machines": 8}], "workload": {"jobs": 1}, "arrivals": {"rate": 1, "ratee": 2}}`,
	} {
		if _, err := ReadScenario(strings.NewReader(doc)); err == nil {
			t.Fatalf("unknown field accepted in %s", doc)
		}
	}
}

// TestWriteValidates pins that a bad spec cannot be serialized at all.
func TestWriteValidates(t *testing.T) {
	s := base()
	s.Clusters[0].Machines = 0
	if err := WriteScenario(&bytes.Buffer{}, s); err == nil {
		t.Fatal("invalid scenario serialized")
	}
}
