// Package scenario is the composable front door of the library: one
// versioned, declarative Scenario spec that describes a complete
// experiment — workload and arrival process, topology (a single cluster
// or a sharded grid), batching and routing policies, objectives, fault
// injection, replanning and service pacing — and compiles to whichever
// engine the topology needs.
//
// The spec is a plain value with a stable JSON form (Write/Read/Save/
// LoadScenario, version-checked and unknown-field-rejecting), buildable
// either as a struct literal or through functional options (New with
// WithClusters, WithWorkload, ...). Validation is eager and field-
// anchored: every failure is a *ValidationError naming the offending path
// ("clusters[2].machines", "arrivals.rate"), raised at Compile time —
// before any goroutine spawns.
//
// Compile turns a Scenario into a Runner: Run(ctx) replays the stream
// through the right engine (cancellation threads into the batch loops),
// an Observer streams batch, routing, kill and migration events as they
// happen, and the unified Report is a superset of the cluster and grid
// reports. The legacy CLIs (bicrit-cluster, bicrit-grid, bicrit-serve)
// are thin shims translating their flags into a Scenario; cmd/bicrit
// consumes scenario files directly.
package scenario

import (
	"fmt"
	"math"

	"bicriteria/internal/slo"
	"bicriteria/internal/validate"
)

// Version is the current scenario file-format version.
const Version = 1

// FaultSeedSalt derives the fault-plan sub-seed from a scenario's main
// seed: when Faults.Seed is zero, the plan is generated with
// Seed ^ FaultSeedSalt, decorrelating the failure streams from the task
// stream the same way workload.ArrivalSeedSalt decorrelates the arrival
// instants. (The legacy CLIs reused the raw seed; their shims pass it
// explicitly to stay behaviour-preserving.)
const FaultSeedSalt int64 = 0x5851F42D4C957F2D

// RaceSeedSalt derives the racing-bandit sub-seed the same way: when
// Racing.Seed is zero, the bandit's exploration draws are keyed by
// Seed ^ RaceSeedSalt, decorrelating launch-order exploration from the
// task, arrival and fault streams.
const RaceSeedSalt int64 = 0x6C62272E07BB0142

// Topology selects the engine a scenario compiles to.
type Topology string

const (
	// TopologySingle replays the stream through one cluster engine
	// (exactly one entry in Clusters).
	TopologySingle Topology = "single"
	// TopologyGrid routes the stream across the clusters through the
	// sharded grid federation.
	TopologyGrid Topology = "grid"
)

// ValidationError is the unified configuration error of the library: it
// names the exact field path that is wrong. cluster.New, grid.New and
// serve.NewServer raise it too, so a bad config fails eagerly with the
// same shape at every layer.
type ValidationError = validate.Error

// Cluster describes one machine of the scenario: a processor count and
// optional reservations.
type Cluster struct {
	// Machines is the processor count. Required, at least 1.
	Machines int `json:"machines"`
	// Reservations blocks processors during absolute time windows.
	Reservations []Reservation `json:"reservations,omitempty"`
}

// Reservation blocks Procs processors during [Start, End).
type Reservation struct {
	Procs int     `json:"procs"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Workload selects the task-generation family.
type Workload struct {
	// Kind is the workload family: "weakly-parallel", "highly-parallel",
	// "mixed" or "cirne". Empty means "mixed".
	Kind string `json:"kind,omitempty"`
	// Jobs is the number of generated jobs. Required when the arrival
	// section generates (no File/Trace replay).
	Jobs int `json:"jobs,omitempty"`
	// Seed overrides the scenario seed for the task stream; zero uses
	// Scenario.Seed.
	Seed int64 `json:"seed,omitempty"`
}

// Arrivals describes the submission process: either a generated renewal
// stream or a replayed file.
type Arrivals struct {
	// Rate is the mean number of jobs per time unit of the generated
	// stream. Required (positive) when generating.
	Rate float64 `json:"rate,omitempty"`
	// Burst groups submissions: values above 1 make jobs arrive in bursts
	// sharing one instant. Zero or one keeps independent arrivals.
	Burst int `json:"burst,omitempty"`
	// Interarrival selects the inter-burst gap law: "exponential"
	// (default), "lognormal" or "weibull".
	Interarrival string `json:"interarrival,omitempty"`
	// InterarrivalShape tunes the heavy-tailed gap laws (lognormal sigma
	// or Weibull shape); zero picks the defaults.
	InterarrivalShape float64 `json:"interarrival_shape,omitempty"`
	// RuntimeTail scales realized runtimes by a heavy-tailed mean-1
	// factor: "" or "default" (none), "lognormal" or "weibull".
	RuntimeTail string `json:"runtime_tail,omitempty"`
	// RuntimeTailShape tunes the runtime law like InterarrivalShape.
	RuntimeTailShape float64 `json:"runtime_tail_shape,omitempty"`
	// File replays a saved arrival stream (workload.WriteArrivals JSON)
	// instead of generating one. Mutually exclusive with Trace.
	File string `json:"file,omitempty"`
	// Trace replays an SWF trace fragment, reconstructing moldable tasks
	// with the Downey model. Mutually exclusive with File.
	Trace string `json:"trace,omitempty"`
}

// Generated reports whether the arrival stream is generated (as opposed
// to replayed from File or Trace).
func (a Arrivals) Generated() bool { return a.File == "" && a.Trace == "" }

// Batch selects the per-cluster batching policy.
type Batch struct {
	// Policy is "idle" (default), "interval" or "adaptive".
	Policy string `json:"policy,omitempty"`
	// Interval is the period of the interval policy; zero means 25.
	Interval float64 `json:"interval,omitempty"`
	// WorkFactor scales the adaptive policy's work target: a batch fires
	// once the backlog carries WorkFactor * machines units of minimum
	// work. Zero means 4.
	WorkFactor float64 `json:"work_factor,omitempty"`
	// MaxDelay bounds the adaptive policy's oldest-job wait; zero means 50.
	MaxDelay float64 `json:"max_delay,omitempty"`
}

// Objective selects the per-batch commit criterion.
type Objective struct {
	// Kind is "makespan" (default), "minsum" or "combined".
	Kind string `json:"kind,omitempty"`
	// Alpha is the makespan weight of the combined objective, in [0, 1];
	// zero means 0.5.
	Alpha float64 `json:"alpha,omitempty"`
}

// Routing configures the grid meta-scheduler (grid topology only).
type Routing struct {
	// Policy is "round-robin", "least-backlog" (default), "lower-bound"
	// or "moldability".
	Policy string `json:"policy,omitempty"`
	// AdmitBacklog closes a shard to new admissions above this estimated
	// per-processor backlog; zero disables admission control.
	AdmitBacklog float64 `json:"admit_backlog,omitempty"`
	// QueueDepth is retained for configuration compatibility with
	// grid.Config.QueueDepth; zero means the default.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// Faults configures deterministic fault injection and the replanning of
// killed jobs. A nil section injects nothing.
type Faults struct {
	// Seed keys the fault plan; zero derives Scenario.Seed ^ FaultSeedSalt.
	Seed int64 `json:"seed,omitempty"`
	// MTBF is the per-node mean time between failures; zero disables
	// independent node crashes.
	MTBF float64 `json:"mtbf,omitempty"`
	// Shape is the Weibull shape of the failure law; zero means default.
	Shape float64 `json:"shape,omitempty"`
	// Repair is the mean node repair duration; zero means MTBF/10.
	Repair float64 `json:"repair,omitempty"`
	// RepairSigma is the lognormal sigma of the repair law; zero default.
	RepairSigma float64 `json:"repair_sigma,omitempty"`
	// CorrelatedMTBF adds per-cluster correlated group failures.
	CorrelatedMTBF float64 `json:"correlated_mtbf,omitempty"`
	// CorrelatedSize is the width of a correlated group; zero means a
	// quarter of the cluster.
	CorrelatedSize int `json:"correlated_size,omitempty"`
	// ShardMTBF adds whole-shard outages (grid topology).
	ShardMTBF float64 `json:"shard_mtbf,omitempty"`
	// ShardRepair is the mean shard outage duration; zero ShardMTBF/10.
	ShardRepair float64 `json:"shard_repair,omitempty"`
	// Horizon bounds generated failures; zero estimates it from the
	// stream (faults.SuggestHorizon).
	Horizon float64 `json:"horizon,omitempty"`
	// Replan is "restart" (default) or "checkpoint".
	Replan string `json:"replan,omitempty"`
	// CheckpointCredit is the fraction of finished work a checkpoint
	// restart keeps, in [0, 1]; zero means full credit.
	CheckpointCredit float64 `json:"checkpoint_credit,omitempty"`
	// MaxRetries caps per-job kills before the job is lost; zero default.
	MaxRetries int `json:"max_retries,omitempty"`
}

// Active reports whether the section generates any fault events.
func (f *Faults) Active() bool {
	return f != nil && (f.MTBF > 0 || f.CorrelatedMTBF > 0 || f.ShardMTBF > 0)
}

// Service configures the live-service pacing of a scenario (the serve
// layer). A nil section uses the serve defaults everywhere.
type Service struct {
	// Speedup is the number of virtual time units per wall-clock second;
	// zero means 1 (real time).
	Speedup float64 `json:"speedup,omitempty"`
	// SubmitRate is the token-bucket rate limit in jobs per second; zero
	// disables rate limiting. SubmitBurst is the bucket capacity.
	SubmitRate  float64 `json:"submit_rate,omitempty"`
	SubmitBurst int     `json:"submit_burst,omitempty"`
	// AdmitBacklog rejects submissions (429) above this service-wide
	// virtual per-processor backlog; zero disables the check.
	AdmitBacklog float64 `json:"admit_backlog,omitempty"`
	// QueueShards and QueueDepth shape the sharded submission queue.
	QueueShards int `json:"queue_shards,omitempty"`
	QueueDepth  int `json:"queue_depth,omitempty"`
	// RefreshSeconds is the live-state refresh period in wall seconds;
	// zero means the serve default (1s).
	RefreshSeconds float64 `json:"refresh_seconds,omitempty"`
	// SnapshotPath enables periodic snapshots with restore-on-start;
	// SnapshotSeconds is the period (zero means the 10s default).
	SnapshotPath    string  `json:"snapshot_path,omitempty"`
	SnapshotSeconds float64 `json:"snapshot_seconds,omitempty"`
}

// TraceSpec activates the structured event trace of a run: every batch,
// routing decision, kill, migration and the final drain summary is
// recorded with simulated-time stamps and rendered to Path when the run
// completes. Traces of a seeded scenario are byte-identical across
// replays, concurrent or sequential.
type TraceSpec struct {
	// Path is the output file. Required when the section is present.
	Path string `json:"path"`
	// Format is "chrome" (default: Chrome trace-event JSON, one track per
	// cluster, viewable in perfetto or chrome://tracing) or "jsonl" (one
	// structured event per line).
	Format string `json:"format,omitempty"`
}

// SLOVersion is the current version of the SLO block.
const SLOVersion = 1

// SLOSpec declares the per-job service-level objectives of a scenario:
// a deadline per job (release + deadline_factor · the job's own lower
// bound pmin), an overall miss budget with an optional burn-rate window,
// and tail targets on stretch and wait. The block is versioned
// independently of the scenario so SLO rules can evolve without a spec
// bump. A nil section evaluates nothing.
type SLOSpec struct {
	// Version is the SLO block version, currently 1; zero is normalized.
	Version int `json:"version,omitempty"`
	// DeadlineFactor sets every job's deadline to release + factor·pmin;
	// zero means slo.DefaultDeadlineFactor.
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`
	// MissBudget is the tolerated deadline-miss rate in [0, 1); the
	// deadline alert fires above it.
	MissBudget float64 `json:"miss_budget,omitempty"`
	// BurnWindow, when positive, additionally watches the trailing
	// window (in simulated time units) of completions; BurnFactor scales
	// the burn alert's threshold (zero means slo.DefaultBurnFactor).
	BurnWindow float64 `json:"burn_window,omitempty"`
	BurnFactor float64 `json:"burn_factor,omitempty"`
	// StretchPercentile/StretchTarget alert when the given percentile of
	// job stretch exceeds the target; a zero target disables the rule.
	StretchPercentile float64 `json:"stretch_percentile,omitempty"`
	StretchTarget     float64 `json:"stretch_target,omitempty"`
	// WaitPercentile/WaitTarget alert on the wait-time tail the same way.
	WaitPercentile float64 `json:"wait_percentile,omitempty"`
	WaitTarget     float64 `json:"wait_target,omitempty"`
}

// spec converts the block to the SLO engine's resolved rule set.
func (s *SLOSpec) spec() slo.Spec {
	return slo.Spec{
		DeadlineFactor:    s.DeadlineFactor,
		MissBudget:        s.MissBudget,
		BurnWindow:        s.BurnWindow,
		BurnFactor:        s.BurnFactor,
		StretchPercentile: s.StretchPercentile,
		StretchTarget:     s.StretchTarget,
		WaitPercentile:    s.WaitPercentile,
		WaitTarget:        s.WaitTarget,
	}
}

func (s *SLOSpec) validate() error {
	if s == nil {
		return nil
	}
	if s.Version != 0 && s.Version != SLOVersion {
		return validate.Errorf("slo.version", "unsupported SLO block version %d (want %d)", s.Version, SLOVersion)
	}
	if err := s.spec().Validate(); err != nil {
		return validate.Prefix("slo", err)
	}
	return nil
}

// RacingSpec configures portfolio racing: the engine cancels portfolio
// stragglers as soon as one candidate's score is provably within Cutoff of
// the batch lower bound. Racing only affects wall-clock and which members
// get cut off — the committed schedules are byte-identical between
// concurrent and sequential replays, and identical to a non-racing run
// when the cutoff is 1 (disabled). A nil section disables racing.
type RacingSpec struct {
	// Cutoff is the early-cutoff factor relative to the batch lower
	// bound; 0 or 1 disables racing, values in (0, 1) are rejected.
	Cutoff float64 `json:"cutoff"`
	// Bandit biases the launch order toward recent winners with a seeded
	// deterministic selector.
	Bandit bool `json:"bandit,omitempty"`
	// Seed keys the bandit's exploration draws; zero derives
	// Scenario.Seed ^ RaceSeedSalt.
	Seed int64 `json:"seed,omitempty"`
}

func (r *RacingSpec) validate() error {
	if r == nil {
		return nil
	}
	if math.IsNaN(r.Cutoff) || math.IsInf(r.Cutoff, 0) || r.Cutoff < 0 {
		return validate.Errorf("racing.cutoff", "cutoff must be a finite non-negative factor, got %g", r.Cutoff)
	}
	if r.Cutoff > 0 && r.Cutoff < 1 {
		return validate.Errorf("racing.cutoff", "cutoff %g lies below 1; no candidate can score under the lower bound", r.Cutoff)
	}
	return nil
}

// Scenario is the complete declarative spec of one experiment: the single
// input every layer of the stack — offline cluster replay, grid
// federation, live service — compiles from.
type Scenario struct {
	// Version is the spec version, currently 1. Zero is normalized to the
	// current version; anything else is rejected.
	Version int `json:"version"`
	// Name labels the scenario (reports, file headers). Optional.
	Name string `json:"name,omitempty"`
	// Seed is the master seed: it drives the task stream, the DEMT
	// shuffles and the runtime noise, and deterministically derives the
	// arrival (Seed ^ workload.ArrivalSeedSalt), runtime-tail
	// (Seed ^ workload.RuntimeSeedSalt) and fault (Seed ^ FaultSeedSalt)
	// sub-seeds.
	Seed int64 `json:"seed"`
	// Topology selects the engine; empty infers "single" for one cluster
	// and "grid" otherwise.
	Topology Topology `json:"topology"`
	// Clusters lists the machines. Single topology needs exactly one.
	Clusters []Cluster `json:"clusters"`
	// Workload and Arrivals describe the job stream.
	Workload Workload `json:"workload"`
	Arrivals Arrivals `json:"arrivals"`
	// Batch, Objective and Routing select the scheduling policies.
	Batch     Batch     `json:"batch,omitzero"`
	Objective Objective `json:"objective,omitzero"`
	Routing   Routing   `json:"routing,omitzero"`
	// Noise perturbs realized runtimes by a uniform factor in
	// [1-Noise, 1+Noise], seeded per cluster; zero means exact execution.
	Noise float64 `json:"noise,omitempty"`
	// Sequential disables all goroutines (the determinism switch).
	Sequential bool `json:"sequential,omitempty"`
	// Racing, when present, enables the portfolio early cutoff on every
	// cluster.
	Racing *RacingSpec `json:"racing,omitempty"`
	// Faults and Service are optional sections.
	Faults  *Faults  `json:"faults,omitempty"`
	Service *Service `json:"service,omitempty"`
	// Trace, when present, renders the run's event stream to a file.
	Trace *TraceSpec `json:"trace,omitempty"`
	// SLO, when present, evaluates per-job deadlines and tail targets
	// after every run and attaches the summary (and its alerts) to the
	// report.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// Option mutates a scenario under construction; see New.
type Option func(*Scenario)

// New builds a scenario from functional options, applies the defaults
// (version, inferred topology) and validates eagerly: the returned error,
// if any, is a *ValidationError naming the offending field path.
func New(opts ...Option) (Scenario, error) {
	var s Scenario
	s.Version = Version
	s.Seed = 1
	for _, opt := range opts {
		opt(&s)
	}
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// WithName labels the scenario.
func WithName(name string) Option { return func(s *Scenario) { s.Name = name } }

// WithSeed sets the master seed.
func WithSeed(seed int64) Option { return func(s *Scenario) { s.Seed = seed } }

// WithTopology forces the topology (normally inferred from the cluster
// count: one cluster is "single", several are "grid"; a one-cluster grid
// must be forced explicitly).
func WithTopology(t Topology) Option { return func(s *Scenario) { s.Topology = t } }

// WithClusters declares one cluster per processor count. Reservations
// already attached to a cluster index (options apply in order, and
// WithReservation may run first) are kept; clusters beyond the new count
// are dropped.
func WithClusters(machines ...int) Option {
	return func(s *Scenario) {
		clusters := make([]Cluster, len(machines))
		for i, m := range machines {
			if i < len(s.Clusters) {
				clusters[i] = s.Clusters[i]
			}
			clusters[i].Machines = m
		}
		s.Clusters = clusters
	}
}

// WithReservation blocks procs processors of cluster index during
// [start, end). The option is order-independent with WithClusters: a
// reservation on a not-yet-declared index grows the cluster list with
// zero-machine placeholders, which a later WithClusters fills in — and
// which validation rejects ("clusters[i].machines") if nothing ever
// does, so a misaddressed reservation fails eagerly instead of being
// dropped. A negative index panics, like any out-of-range slice index.
func WithReservation(cluster, procs int, start, end float64) Option {
	return func(s *Scenario) {
		if cluster < 0 {
			panic(fmt.Sprintf("scenario: negative cluster index %d in WithReservation", cluster))
		}
		for len(s.Clusters) <= cluster {
			s.Clusters = append(s.Clusters, Cluster{})
		}
		s.Clusters[cluster].Reservations = append(s.Clusters[cluster].Reservations,
			Reservation{Procs: procs, Start: start, End: end})
	}
}

// WithWorkload selects the task family and job count.
func WithWorkload(kind string, jobs int) Option {
	return func(s *Scenario) { s.Workload.Kind, s.Workload.Jobs = kind, jobs }
}

// WithArrivals sets the generated stream's rate and burst size.
func WithArrivals(rate float64, burst int) Option {
	return func(s *Scenario) { s.Arrivals.Rate, s.Arrivals.Burst = rate, burst }
}

// WithArrivalLaws selects the inter-arrival and runtime-tail laws.
func WithArrivalLaws(interarrival string, interarrivalShape float64, runtimeTail string, runtimeTailShape float64) Option {
	return func(s *Scenario) {
		s.Arrivals.Interarrival = interarrival
		s.Arrivals.InterarrivalShape = interarrivalShape
		s.Arrivals.RuntimeTail = runtimeTail
		s.Arrivals.RuntimeTailShape = runtimeTailShape
	}
}

// WithArrivalFile replays a saved arrival stream instead of generating.
func WithArrivalFile(path string) Option { return func(s *Scenario) { s.Arrivals.File = path } }

// WithTraceFile replays an SWF trace instead of generating.
func WithTraceFile(path string) Option { return func(s *Scenario) { s.Arrivals.Trace = path } }

// WithBatchPolicy selects the batching policy and its knobs (pass zeros
// for the defaults).
func WithBatchPolicy(policy string, interval, workFactor, maxDelay float64) Option {
	return func(s *Scenario) {
		s.Batch = Batch{Policy: policy, Interval: interval, WorkFactor: workFactor, MaxDelay: maxDelay}
	}
}

// WithObjective selects the commit objective.
func WithObjective(kind string, alpha float64) Option {
	return func(s *Scenario) { s.Objective = Objective{Kind: kind, Alpha: alpha} }
}

// WithRouting selects the grid routing policy and admission limit.
func WithRouting(policy string, admitBacklog float64) Option {
	return func(s *Scenario) { s.Routing.Policy, s.Routing.AdmitBacklog = policy, admitBacklog }
}

// WithNoise perturbs realized runtimes by a uniform fraction.
func WithNoise(frac float64) Option { return func(s *Scenario) { s.Noise = frac } }

// WithSequential disables all goroutines.
func WithSequential(sequential bool) Option { return func(s *Scenario) { s.Sequential = sequential } }

// WithRacing attaches a portfolio-racing section.
func WithRacing(r RacingSpec) Option { return func(s *Scenario) { s.Racing = &r } }

// WithFaults attaches a fault-injection section.
func WithFaults(f Faults) Option { return func(s *Scenario) { s.Faults = &f } }

// WithService attaches a service-pacing section.
func WithService(svc Service) Option { return func(s *Scenario) { s.Service = &svc } }

// WithTrace renders the run's event stream to path; format is "chrome"
// (default) or "jsonl".
func WithTrace(path, format string) Option {
	return func(s *Scenario) { s.Trace = &TraceSpec{Path: path, Format: format} }
}

// WithSLO attaches a service-level-objective section: per-job deadlines
// and tail targets evaluated after every run.
func WithSLO(spec SLOSpec) Option { return func(s *Scenario) { s.SLO = &spec } }

// Normalized returns a copy with the resolvable defaults filled in: the
// current version for a zero version and the inferred topology for an
// empty one. Deeper zero-means-default fields (batch knobs, objective
// alpha, sub-seeds) are resolved at Compile time so the JSON stays
// minimal.
func (s Scenario) Normalized() Scenario {
	if s.Version == 0 {
		s.Version = Version
	}
	if s.Topology == "" {
		if len(s.Clusters) == 1 {
			s.Topology = TopologySingle
		} else {
			s.Topology = TopologyGrid
		}
	}
	return s
}

// Sizes returns the processor counts of the clusters in order.
func (s Scenario) Sizes() []int {
	sizes := make([]int, len(s.Clusters))
	for i, c := range s.Clusters {
		sizes[i] = c.Machines
	}
	return sizes
}

// MaxMachines returns the largest cluster size: the machine size the
// workload generator targets, so wide jobs can exploit the biggest shard.
func (s Scenario) MaxMachines() int {
	max := 0
	for _, c := range s.Clusters {
		if c.Machines > max {
			max = c.Machines
		}
	}
	return max
}

// finiteNonNegative rejects NaN, infinities and negatives.
func finiteNonNegative(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Validate checks the whole spec eagerly; every failure is a
// *ValidationError naming the offending field path.
func (s Scenario) Validate() error {
	if s.Version != Version {
		return validate.Errorf("version", "unsupported scenario version %d (want %d)", s.Version, Version)
	}
	switch s.Topology {
	case TopologySingle:
		if len(s.Clusters) != 1 {
			return validate.Errorf("topology", "single topology needs exactly one cluster, got %d", len(s.Clusters))
		}
	case TopologyGrid:
		if len(s.Clusters) == 0 {
			return validate.Errorf("clusters", "grid topology needs at least one cluster")
		}
	default:
		return validate.Errorf("topology", "unknown topology %q (want %q or %q)", s.Topology, TopologySingle, TopologyGrid)
	}
	for i, c := range s.Clusters {
		if c.Machines < 1 {
			return validate.Errorf(validate.Index("clusters", i)+".machines", "cluster needs at least one processor, got %d", c.Machines)
		}
		for j, r := range c.Reservations {
			field := validate.Index(validate.Index("clusters", i)+".reservations", j)
			if r.Procs < 1 {
				return validate.Errorf(field+".procs", "reservation needs at least one processor, got %d", r.Procs)
			}
			if !finiteNonNegative(r.Start) || math.IsNaN(r.End) || math.IsInf(r.End, 0) || r.End <= r.Start {
				return validate.Errorf(field, "reservation window [%g, %g) is invalid", r.Start, r.End)
			}
		}
	}
	if err := s.validateStream(); err != nil {
		return err
	}
	if err := s.validatePolicies(); err != nil {
		return err
	}
	if err := s.Racing.validate(); err != nil {
		return err
	}
	if err := s.Faults.validate(); err != nil {
		return err
	}
	if err := s.Trace.validate(); err != nil {
		return err
	}
	if err := s.SLO.validate(); err != nil {
		return err
	}
	return s.Service.validate()
}

func (t *TraceSpec) validate() error {
	if t == nil {
		return nil
	}
	if t.Path == "" {
		return validate.Errorf("trace.path", "a trace section needs an output path")
	}
	switch t.Format {
	case "", "chrome", "jsonl":
	default:
		return validate.Errorf("trace.format", "unknown trace format %q (want chrome or jsonl)", t.Format)
	}
	return nil
}

func (s Scenario) validateStream() error {
	if s.Arrivals.File != "" && s.Arrivals.Trace != "" {
		return validate.Errorf("arrivals", "file and trace are mutually exclusive")
	}
	if _, err := parseWorkloadKind(s.Workload.Kind); err != nil {
		return validate.Errorf("workload.kind", "%v", err)
	}
	if s.Arrivals.Generated() {
		if s.Workload.Jobs < 1 {
			return validate.Errorf("workload.jobs", "a generated stream needs at least one job, got %d", s.Workload.Jobs)
		}
		if !(s.Arrivals.Rate > 0) || math.IsInf(s.Arrivals.Rate, 0) {
			return validate.Errorf("arrivals.rate", "arrival rate must be positive and finite, got %g", s.Arrivals.Rate)
		}
	}
	if s.Arrivals.Burst < 0 {
		return validate.Errorf("arrivals.burst", "negative burst size %d", s.Arrivals.Burst)
	}
	for _, d := range []struct {
		law   string
		shape float64
		field string
	}{
		{s.Arrivals.Interarrival, s.Arrivals.InterarrivalShape, "arrivals.interarrival"},
		{s.Arrivals.RuntimeTail, s.Arrivals.RuntimeTailShape, "arrivals.runtime_tail"},
	} {
		if _, err := parseDistribution(d.law); err != nil {
			return validate.Errorf(d.field, "%v", err)
		}
		if !finiteNonNegative(d.shape) {
			return validate.Errorf(d.field+"_shape", "shape must be non-negative and finite, got %g", d.shape)
		}
	}
	return nil
}

func (s Scenario) validatePolicies() error {
	switch s.Batch.Policy {
	case "", "idle", "interval", "adaptive":
	default:
		return validate.Errorf("batch.policy", "unknown batching policy %q (want idle, interval or adaptive)", s.Batch.Policy)
	}
	if s.Batch.Interval < 0 || math.IsNaN(s.Batch.Interval) || math.IsInf(s.Batch.Interval, 0) {
		return validate.Errorf("batch.interval", "interval must be positive and finite, got %g", s.Batch.Interval)
	}
	if s.Batch.WorkFactor < 0 || math.IsNaN(s.Batch.WorkFactor) || math.IsInf(s.Batch.WorkFactor, 0) {
		return validate.Errorf("batch.work_factor", "work factor must be positive and finite, got %g", s.Batch.WorkFactor)
	}
	if s.Batch.MaxDelay < 0 || math.IsNaN(s.Batch.MaxDelay) {
		return validate.Errorf("batch.max_delay", "invalid max delay %g", s.Batch.MaxDelay)
	}
	switch s.Objective.Kind {
	case "", "makespan", "minsum", "combined":
	default:
		return validate.Errorf("objective.kind", "unknown objective %q (want makespan, minsum or combined)", s.Objective.Kind)
	}
	if s.Objective.Alpha < 0 || s.Objective.Alpha > 1 || math.IsNaN(s.Objective.Alpha) {
		return validate.Errorf("objective.alpha", "alpha must lie in [0, 1], got %g", s.Objective.Alpha)
	}
	if s.Topology == TopologyGrid || s.Routing.Policy != "" {
		if _, err := parseRoutingPolicy(s.Routing.Policy); err != nil {
			return validate.Errorf("routing.policy", "%v", err)
		}
	}
	if !finiteNonNegative(s.Routing.AdmitBacklog) {
		return validate.Errorf("routing.admit_backlog", "admission backlog limit must be non-negative and finite, got %g", s.Routing.AdmitBacklog)
	}
	if s.Routing.QueueDepth < 0 {
		return validate.Errorf("routing.queue_depth", "negative queue depth %d", s.Routing.QueueDepth)
	}
	if math.IsNaN(s.Noise) || s.Noise < 0 || s.Noise >= 1 {
		return validate.Errorf("noise", "noise fraction must lie in [0, 1), got %g", s.Noise)
	}
	return nil
}

func (f *Faults) validate() error {
	if f == nil {
		return nil
	}
	for _, v := range []struct {
		v     float64
		field string
	}{
		{f.MTBF, "faults.mtbf"},
		{f.Shape, "faults.shape"},
		{f.Repair, "faults.repair"},
		{f.RepairSigma, "faults.repair_sigma"},
		{f.CorrelatedMTBF, "faults.correlated_mtbf"},
		{f.ShardMTBF, "faults.shard_mtbf"},
		{f.ShardRepair, "faults.shard_repair"},
		{f.Horizon, "faults.horizon"},
	} {
		if !finiteNonNegative(v.v) {
			return validate.Errorf(v.field, "must be non-negative and finite, got %g", v.v)
		}
	}
	if f.CorrelatedSize < 0 {
		return validate.Errorf("faults.correlated_size", "negative correlated group size %d", f.CorrelatedSize)
	}
	if f.MaxRetries < 0 {
		return validate.Errorf("faults.max_retries", "negative max retries %d", f.MaxRetries)
	}
	switch f.Replan {
	case "", "restart", "checkpoint":
	default:
		return validate.Errorf("faults.replan", "unknown replan policy %q (want restart or checkpoint)", f.Replan)
	}
	if f.CheckpointCredit < 0 || f.CheckpointCredit > 1 || math.IsNaN(f.CheckpointCredit) {
		return validate.Errorf("faults.checkpoint_credit", "checkpoint credit must lie in [0, 1], got %g", f.CheckpointCredit)
	}
	return nil
}

func (svc *Service) validate() error {
	if svc == nil {
		return nil
	}
	for _, v := range []struct {
		v     float64
		field string
	}{
		{svc.Speedup, "service.speedup"},
		{svc.SubmitRate, "service.submit_rate"},
		{svc.AdmitBacklog, "service.admit_backlog"},
		{svc.RefreshSeconds, "service.refresh_seconds"},
		{svc.SnapshotSeconds, "service.snapshot_seconds"},
	} {
		if !finiteNonNegative(v.v) {
			return validate.Errorf(v.field, "must be non-negative and finite, got %g", v.v)
		}
	}
	for _, v := range []struct {
		v     int
		field string
	}{
		{svc.SubmitBurst, "service.submit_burst"},
		{svc.QueueShards, "service.queue_shards"},
		{svc.QueueDepth, "service.queue_depth"},
	} {
		if v.v < 0 {
			return validate.Errorf(v.field, "must be non-negative, got %d", v.v)
		}
	}
	return nil
}
