package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bicriteria/internal/validate"
)

// WriteScenario serializes the scenario as indented JSON, stamping the
// current format version when the spec carries none.
func WriteScenario(w io.Writer, s Scenario) error {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadScenario parses a scenario previously written by WriteScenario and
// validates it eagerly. Like the arrivals format, the version is checked
// — and unknown fields are rejected outright, so a typoed knob fails
// loudly instead of silently running the default.
func ReadScenario(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: cannot decode scenario: %w", err)
	}
	if s.Version != Version {
		return Scenario{}, validate.Errorf("version", "unsupported scenario version %d (want %d)", s.Version, Version)
	}
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// SaveScenario writes the scenario to a file path.
func SaveScenario(path string, s Scenario) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteScenario(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadScenario reads a scenario from a file path.
func LoadScenario(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	return ReadScenario(f)
}
