package scenario

import (
	"errors"
	"strings"
	"testing"
)

// base returns a minimal valid grid scenario for mutation tests.
func base() Scenario {
	return Scenario{
		Version:  Version,
		Seed:     1,
		Topology: TopologyGrid,
		Clusters: []Cluster{{Machines: 16}, {Machines: 8}},
		Workload: Workload{Kind: "mixed", Jobs: 20},
		Arrivals: Arrivals{Rate: 4},
	}
}

// TestValidateFieldPaths pins that every eager check fails with a
// *ValidationError naming the offending field path.
func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		field  string
	}{
		{"version", func(s *Scenario) { s.Version = 99 }, "version"},
		{"topology", func(s *Scenario) { s.Topology = "ring" }, "topology"},
		{"single needs one cluster", func(s *Scenario) { s.Topology = TopologySingle }, "topology"},
		{"no clusters", func(s *Scenario) { s.Clusters = nil }, "clusters"},
		{"machines", func(s *Scenario) { s.Clusters[1].Machines = 0 }, "clusters[1].machines"},
		{"reservation procs", func(s *Scenario) {
			s.Clusters[0].Reservations = []Reservation{{Procs: 0, Start: 0, End: 10}}
		}, "clusters[0].reservations[0].procs"},
		{"reservation window", func(s *Scenario) {
			s.Clusters[0].Reservations = []Reservation{{Procs: 2, Start: 10, End: 5}}
		}, "clusters[0].reservations[0]"},
		{"workload kind", func(s *Scenario) { s.Workload.Kind = "nonsense" }, "workload.kind"},
		{"jobs", func(s *Scenario) { s.Workload.Jobs = 0 }, "workload.jobs"},
		{"rate", func(s *Scenario) { s.Arrivals.Rate = 0 }, "arrivals.rate"},
		{"burst", func(s *Scenario) { s.Arrivals.Burst = -1 }, "arrivals.burst"},
		{"interarrival", func(s *Scenario) { s.Arrivals.Interarrival = "zipf" }, "arrivals.interarrival"},
		{"runtime tail", func(s *Scenario) { s.Arrivals.RuntimeTail = "zipf" }, "arrivals.runtime_tail"},
		{"file and trace", func(s *Scenario) { s.Arrivals.File, s.Arrivals.Trace = "a", "b" }, "arrivals"},
		{"batch policy", func(s *Scenario) { s.Batch.Policy = "cron" }, "batch.policy"},
		{"interval", func(s *Scenario) { s.Batch.Interval = -1 }, "batch.interval"},
		{"objective", func(s *Scenario) { s.Objective.Kind = "latency" }, "objective.kind"},
		{"alpha", func(s *Scenario) { s.Objective.Alpha = 2 }, "objective.alpha"},
		{"routing", func(s *Scenario) { s.Routing.Policy = "random" }, "routing.policy"},
		{"admit backlog", func(s *Scenario) { s.Routing.AdmitBacklog = -1 }, "routing.admit_backlog"},
		{"noise", func(s *Scenario) { s.Noise = 1.5 }, "noise"},
		{"fault mtbf", func(s *Scenario) { s.Faults = &Faults{MTBF: -1} }, "faults.mtbf"},
		{"replan", func(s *Scenario) { s.Faults = &Faults{Replan: "undo"} }, "faults.replan"},
		{"checkpoint credit", func(s *Scenario) { s.Faults = &Faults{CheckpointCredit: 2} }, "faults.checkpoint_credit"},
		{"service speedup", func(s *Scenario) { s.Service = &Service{Speedup: -1} }, "service.speedup"},
		{"service queue", func(s *Scenario) { s.Service = &Service{QueueDepth: -1} }, "service.queue_depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("bad scenario validated")
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error is not a *ValidationError: %v", err)
			}
			if verr.Field != tc.field {
				t.Fatalf("field path %q, want %q (err: %v)", verr.Field, tc.field, err)
			}
		})
	}
}

// TestValidateAccepts pins that representative good scenarios pass.
func TestValidateAccepts(t *testing.T) {
	good := []Scenario{
		base(),
		{
			Version: Version, Seed: 3, Topology: TopologySingle,
			Clusters: []Cluster{{Machines: 32, Reservations: []Reservation{{Procs: 4, Start: 5, End: 25}}}},
			Workload: Workload{Kind: "cirne", Jobs: 10},
			Arrivals: Arrivals{Rate: 1, Burst: 4, Interarrival: "lognormal", RuntimeTail: "weibull"},
			Batch:    Batch{Policy: "adaptive"},
			Faults:   &Faults{MTBF: 20, Replan: "checkpoint", CheckpointCredit: 0.5},
			Service:  &Service{Speedup: 60, SubmitRate: 100},
		},
		{
			Version: Version, Topology: TopologyGrid,
			Clusters: []Cluster{{Machines: 8}},
			Arrivals: Arrivals{File: "stream.json"}, // replayed: no jobs/rate required
		},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("scenario %d rejected: %v", i, err)
		}
	}
}

// TestNewOptions builds a scenario through the functional options and
// checks defaults, inference and eager validation.
func TestNewOptions(t *testing.T) {
	s, err := New(
		WithName("opts"),
		WithSeed(7),
		WithClusters(64, 32),
		WithReservation(0, 8, 10, 20),
		WithWorkload("mixed", 50),
		WithArrivals(3, 2),
		WithArrivalLaws("lognormal", 1.2, "weibull", 0.7),
		WithBatchPolicy("interval", 40, 0, 0),
		WithObjective("combined", 0.25),
		WithRouting("round-robin", 12),
		WithNoise(0.1),
		WithSequential(true),
		WithFaults(Faults{MTBF: 30}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != Version {
		t.Fatalf("version %d", s.Version)
	}
	if s.Topology != TopologyGrid {
		t.Fatalf("two clusters should infer grid, got %q", s.Topology)
	}
	if len(s.Clusters[0].Reservations) != 1 || s.Clusters[0].Reservations[0].Procs != 8 {
		t.Fatalf("reservation lost: %+v", s.Clusters)
	}
	if s.Faults == nil || s.Faults.MTBF != 30 {
		t.Fatalf("faults section lost: %+v", s.Faults)
	}

	single, err := New(WithClusters(16), WithWorkload("mixed", 5), WithArrivals(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if single.Topology != TopologySingle {
		t.Fatalf("one cluster should infer single, got %q", single.Topology)
	}

	if _, err := New(WithClusters(0)); err == nil {
		t.Fatal("zero-processor cluster accepted")
	}
}

// TestSubSeedDerivation pins the documented sub-seed derivation: the
// fault seed is Seed ^ FaultSeedSalt unless pinned explicitly.
func TestSubSeedDerivation(t *testing.T) {
	s := base()
	if got, want := s.faultSeed(), int64(1)^FaultSeedSalt; got != want {
		t.Fatalf("derived fault seed %d, want %d", got, want)
	}
	s.Faults = &Faults{Seed: 42}
	if got := s.faultSeed(); got != 42 {
		t.Fatalf("explicit fault seed %d, want 42", got)
	}
}

// TestValidationErrorRendering pins the "path: message" error shape.
func TestValidationErrorRendering(t *testing.T) {
	s := base()
	s.Clusters[1].Machines = -3
	err := s.Validate()
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.HasPrefix(err.Error(), "clusters[1].machines: ") {
		t.Fatalf("unexpected rendering: %q", err.Error())
	}
}

// TestWithReservationOrderIndependent pins the review fix: a reservation
// attached before its cluster is declared survives WithClusters, and a
// reservation on an index no WithClusters ever fills fails validation
// instead of being silently dropped.
func TestWithReservationOrderIndependent(t *testing.T) {
	s, err := New(
		WithReservation(0, 4, 50, 120), // before WithClusters
		WithClusters(16, 8),
		WithWorkload("mixed", 10),
		WithArrivals(2, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters[0].Reservations) != 1 || s.Clusters[0].Reservations[0].Procs != 4 {
		t.Fatalf("reservation placed before WithClusters was dropped: %+v", s.Clusters)
	}

	_, err = New(
		WithClusters(16),
		WithReservation(3, 4, 50, 120), // index never declared
		WithWorkload("mixed", 10),
		WithArrivals(2, 0),
	)
	if err == nil {
		t.Fatal("reservation on an undeclared cluster index validated")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) || !strings.Contains(verr.Field, "machines") {
		t.Fatalf("want a clusters[i].machines validation error, got %v", err)
	}
}
