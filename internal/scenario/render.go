package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bicriteria/internal/cluster"
	"bicriteria/internal/grid"
	"bicriteria/internal/serve"
	"bicriteria/internal/slo"
)

// This file renders scenario reports in the exact byte format the legacy
// CLIs (bicrit-cluster, bicrit-grid, bicrit-serve) printed, so the flag
// shims and `bicrit run` reproduce the pinned golden files unchanged.

// FormatBatchLine renders one committed batch as the legacy verbose line.
func FormatBatchLine(br cluster.BatchReport) string {
	killed := ""
	if len(br.Killed) > 0 {
		killed = fmt.Sprintf("  killed=%d", len(br.Killed))
	}
	return fmt.Sprintf("batch %3d  t=%9.2f  jobs=%3d  winner=%-9s  planned=%8.2f  realized=%8.2f  util=%5.1f%%%s\n",
		br.Index, br.FireTime, len(br.Jobs), br.Winner, br.PlannedMakespan, br.RealizedMakespan,
		100*br.Cumulative.Utilization, killed)
}

// FormatDecisionLine renders one routing decision as the legacy verbose
// line.
func FormatDecisionLine(d grid.Decision) string {
	migrated := ""
	if d.Migrated {
		migrated = "  [migrated]"
	}
	return fmt.Sprintf("route job %4d  t=%9.2f  -> cluster %d  (backlog %.2f)%s\n",
		d.JobID, d.Release, d.Cluster, d.Backlog, migrated)
}

// WriteReport renders the unified report as the legacy text report of the
// matching topology, followed by the SLO section when the scenario carried
// an SLO block (absent otherwise, keeping the legacy bytes intact).
func WriteReport(w io.Writer, info Info, rep *Report) error {
	var err error
	switch {
	case rep.Cluster != nil:
		err = writeClusterText(w, info, rep.Cluster)
	case rep.Grid != nil:
		err = writeGridText(w, info, rep.Grid)
	default:
		return fmt.Errorf("scenario: report carries neither a cluster nor a grid run")
	}
	if err == nil && rep.SLO != nil {
		writeSLOText(w, rep.SLO)
	}
	return err
}

// writeSLOText renders the SLO axis: the deadline misses overall and per
// cluster, then every evaluated alert rule with its state.
func writeSLOText(w io.Writer, sum *slo.Summary) {
	fmt.Fprintln(w, "slo:")
	fmt.Fprintf(w, "  deadline misses       %d of %d jobs (rate %.4f)\n", sum.Misses, sum.Jobs, sum.MissRate)
	for _, cs := range sum.PerCluster {
		name := strconv.Itoa(cs.Cluster)
		if cs.Cluster < 0 {
			name = "unplaced"
		}
		fmt.Fprintf(w, "    cluster %-9s misses=%-3d jobs=%-4d rate=%.4f\n", name, cs.Misses, cs.Jobs, cs.MissRate)
	}
	for _, a := range sum.Alerts {
		fmt.Fprintf(w, "  alert %-21s %-9s value=%.4f threshold=%.4f (%s)\n",
			a.Name, a.State, a.Value, a.Threshold, a.Detail)
	}
}

func writeClusterText(w io.Writer, info Info, report *cluster.Report) error {
	met := report.Metrics
	m := 0
	if len(info.Sizes) > 0 {
		m = info.Sizes[0]
	}
	fmt.Fprintf(w, "replayed %d jobs in %d batches on %d processors (policy %s, objective %s)\n",
		info.Jobs, met.Batches, m, info.BatchPolicy, info.Objective)
	fmt.Fprintf(w, "  realized makespan     %.2f\n", met.Makespan)
	fmt.Fprintf(w, "  weighted completion   %.2f\n", met.WeightedCompletion)
	fmt.Fprintf(w, "  max flow              %.2f\n", met.MaxFlow)
	fmt.Fprintf(w, "  mean stretch          %.2f\n", met.MeanStretch)
	fmt.Fprintf(w, "  stretch p50/p95/p99   %.2f / %.2f / %.2f\n", met.StretchP50, met.StretchP95, met.StretchP99)
	fmt.Fprintf(w, "  bounded slowdown      %.2f (p50 %.2f, p95 %.2f, p99 %.2f)\n",
		met.MeanBoundedSlowdown, met.BoundedSlowdownP50, met.BoundedSlowdownP95, met.BoundedSlowdownP99)
	fmt.Fprintf(w, "  utilization           %.1f%%\n", 100*met.Utilization)
	fmt.Fprintf(w, "  delayed tasks         %d\n", met.Delayed)
	if info.Reservations > 0 {
		fmt.Fprintf(w, "  reservations          %d (all respected)\n", info.Reservations)
	}
	if info.Outages > 0 {
		fmt.Fprintf(w, "  fault injection       %d outage windows (%s replan)\n", info.Outages, info.Replan)
		fmt.Fprintf(w, "  kills                 %d (resubmitted %d, recovered %d, lost %d)\n",
			met.Killed, met.Resubmitted, met.Recovered, met.Lost)
	}
	names := make([]string, 0, len(met.Wins))
	for name := range met.Wins {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "portfolio wins:")
	for _, name := range names {
		fmt.Fprintf(w, "  %-10s %d\n", name, met.Wins[name])
	}
	return nil
}

func writeGridText(w io.Writer, info Info, report *grid.Report) error {
	met := report.Metrics
	total := 0
	for _, m := range info.Sizes {
		total += m
	}
	fmt.Fprintf(w, "routed %d jobs across %d clusters (%d processors, policy %s)\n",
		info.Jobs, met.Clusters, total, report.Policy)
	fmt.Fprintf(w, "  grid makespan         %.2f\n", met.Makespan)
	fmt.Fprintf(w, "  weighted completion   %.2f\n", met.WeightedCompletion)
	fmt.Fprintf(w, "  max flow              %.2f\n", met.MaxFlow)
	fmt.Fprintf(w, "  mean stretch          %.2f\n", met.MeanStretch)
	fmt.Fprintf(w, "  stretch p50/p95/p99   %.2f / %.2f / %.2f\n", met.StretchP50, met.StretchP95, met.StretchP99)
	fmt.Fprintf(w, "  bounded slowdown      %.2f (p50 %.2f, p95 %.2f, p99 %.2f)\n",
		met.MeanBoundedSlowdown, met.BoundedSlowdownP50, met.BoundedSlowdownP95, met.BoundedSlowdownP99)
	fmt.Fprintf(w, "  grid utilization      %.1f%%\n", 100*met.Utilization)
	fmt.Fprintf(w, "  admission rejections  %d\n", met.Rejections)
	faulted := info.Plan != nil
	if faulted {
		fmt.Fprintf(w, "  fault plan            %d node outages, %d shard outages\n", len(info.Plan.Nodes), len(info.Plan.Shards))
		fmt.Fprintf(w, "  kills                 %d (resubmitted %d, migrated %d, recovered %d, lost %d)\n",
			met.Killed, met.Resubmitted, met.Migrated, met.Recovered, met.Lost)
	}
	fmt.Fprintln(w, "per-cluster:")
	for _, pc := range met.PerCluster {
		winners := make([]string, 0, len(pc.Wins))
		for name := range pc.Wins {
			winners = append(winners, name)
		}
		sort.Strings(winners)
		wins := make([]string, 0, len(winners))
		for _, name := range winners {
			wins = append(wins, fmt.Sprintf("%s:%d", name, pc.Wins[name]))
		}
		faultCols := ""
		if faulted {
			faultCols = fmt.Sprintf("killed=%d migrated=%d lost=%d  ", pc.Killed, pc.Migrated, pc.Lost)
		}
		fmt.Fprintf(w, "  cluster %d  m=%-4d jobs=%-4d batches=%-3d makespan=%8.2f  util=%5.1f%%  stretch=%.2f  peak-backlog=%.2f  rejected=%d  %swins %s\n",
			pc.Index, pc.M, pc.Jobs, pc.Batches, pc.Makespan, 100*pc.Utilization, pc.MeanStretch, pc.PeakBacklog, pc.Rejected, faultCols, strings.Join(wins, " "))
	}
	return nil
}

// jsonReport is the stable JSON shape of a grid run (the exact legacy
// bicrit-grid export).
type jsonReport struct {
	Policy    string          `json:"policy"`
	Metrics   grid.Metrics    `json:"metrics"`
	Decisions []grid.Decision `json:"decisions"`
	// SLO appears exactly when the scenario carried an SLO block, so the
	// legacy export bytes are untouched without one.
	SLO *slo.Summary `json:"slo,omitempty"`
}

// WriteReportJSON exports the grid half of the report as the stable JSON
// shape. Single-topology reports have no JSON export (the legacy
// bicrit-cluster never had one).
func WriteReportJSON(w io.Writer, rep *Report) error {
	if rep.Grid == nil {
		return fmt.Errorf("scenario: JSON export needs a grid report")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{
		Policy:    rep.Grid.Policy,
		Metrics:   rep.Grid.Metrics,
		Decisions: rep.Grid.Decisions,
		SLO:       rep.SLO,
	})
}

// WriteReportCSV exports the per-cluster summary table as CSV, with the
// fault columns appearing exactly when the compiled scenario carries a
// fault plan (Info.Plan non-nil) — the legacy column contract.
func WriteReportCSV(w io.Writer, info Info, rep *Report) error {
	if rep.Grid == nil {
		return fmt.Errorf("scenario: CSV export needs a grid report")
	}
	faulted := info.Plan != nil
	cw := csv.NewWriter(w)
	header := []string{"cluster", "m", "jobs", "batches", "makespan", "utilization", "mean_stretch", "peak_backlog", "rejected"}
	if faulted {
		header = append(header, "killed", "resubmitted", "migrated", "recovered", "lost")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pc := range rep.Grid.Metrics.PerCluster {
		rec := []string{
			strconv.Itoa(pc.Index),
			strconv.Itoa(pc.M),
			strconv.Itoa(pc.Jobs),
			strconv.Itoa(pc.Batches),
			strconv.FormatFloat(pc.Makespan, 'f', 6, 64),
			strconv.FormatFloat(pc.Utilization, 'f', 6, 64),
			strconv.FormatFloat(pc.MeanStretch, 'f', 6, 64),
			strconv.FormatFloat(pc.PeakBacklog, 'f', 6, 64),
			strconv.Itoa(pc.Rejected),
		}
		if faulted {
			rec = append(rec,
				strconv.Itoa(pc.Killed),
				strconv.Itoa(pc.Resubmitted),
				strconv.Itoa(pc.Migrated),
				strconv.Itoa(pc.Recovered),
				strconv.Itoa(pc.Lost),
			)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFinalReport renders a drained service's final report as the legacy
// bicrit-serve text.
func WriteFinalReport(w io.Writer, rep *serve.FinalReport) {
	met := rep.Metrics
	fmt.Fprintf(w, "final report: %d jobs drained at virtual time %.2f (policy %s)\n",
		rep.Jobs, rep.VirtualNow, rep.Policy)
	fmt.Fprintf(w, "  grid makespan         %.2f\n", met.Makespan)
	fmt.Fprintf(w, "  weighted completion   %.2f\n", met.WeightedCompletion)
	fmt.Fprintf(w, "  mean stretch          %.2f (p95 %.2f, p99 %.2f)\n",
		met.MeanStretch, met.StretchP95, met.StretchP99)
	fmt.Fprintf(w, "  grid utilization      %.1f%%\n", 100*met.Utilization)
	for _, pc := range met.PerCluster {
		fmt.Fprintf(w, "  cluster %d  m=%-4d jobs=%-4d batches=%-3d makespan=%8.2f  util=%5.1f%%\n",
			pc.Index, pc.M, pc.Jobs, pc.Batches, pc.Makespan, 100*pc.Utilization)
	}
}
