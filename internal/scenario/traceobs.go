package scenario

import (
	"bicriteria/internal/cluster"
	"bicriteria/internal/grid"
	"bicriteria/internal/obs"
)

// TraceObserver returns an Observer that records every batch, routing
// decision, kill and migration of a run into the sink, stamped with
// simulated time only — rendering the sink after a seeded replay
// therefore yields byte-identical output whether the replay ran
// sequentially or concurrently.
func TraceObserver(sink *obs.Sink) Observer {
	return Observer{
		Batch: func(c int, br cluster.BatchReport) {
			sink.Record(obs.Event{
				Kind:    obs.KindBatch,
				Cluster: c,
				Batch:   br.Index,
				Job:     -1,
				Name:    br.Winner,
				Start:   br.FireTime,
				End:     br.FireTime + br.RealizedMakespan,
				Tasks:   len(br.Jobs),
			})
		},
		Decision: func(d grid.Decision) {
			if d.Migrated {
				// Recorded by the Migration callback under its own kind.
				return
			}
			sink.Record(obs.Event{
				Kind:    obs.KindDecision,
				Cluster: d.Cluster,
				Batch:   -1,
				Job:     d.JobID,
				Start:   d.Release,
				End:     d.Release,
				Backlog: d.Backlog,
			})
		},
		Migration: func(d grid.Decision) {
			sink.Record(obs.Event{
				Kind:    obs.KindMigration,
				Cluster: d.Cluster,
				Batch:   -1,
				Job:     d.JobID,
				Start:   d.Release,
				End:     d.Release,
				Backlog: d.Backlog,
			})
		},
		Kill: func(c int, k cluster.KillEvent) {
			sink.Record(obs.Event{
				Kind:    obs.KindKill,
				Cluster: c,
				Batch:   k.Batch,
				Job:     k.TaskID,
				Start:   k.Start,
				End:     k.Time,
			})
		},
	}
}

// RecordDrain closes a trace with the run-level summary event: the full
// horizon of the replay as one span on the grid track.
func RecordDrain(sink *obs.Sink, rep *Report) {
	sink.Record(obs.Event{
		Kind:    obs.KindDrain,
		Cluster: -1,
		Batch:   -1,
		Job:     -1,
		Start:   0,
		End:     rep.Makespan(),
		Tasks:   rep.Jobs,
	})
}

// MergeObservers chains two observers: each callback of the result
// invokes a's then b's corresponding callback when set. Used to stack a
// trace sink under a caller's own observer without either knowing about
// the other.
func MergeObservers(a, b Observer) Observer {
	return Observer{
		Batch: func(c int, br cluster.BatchReport) {
			if a.Batch != nil {
				a.Batch(c, br)
			}
			if b.Batch != nil {
				b.Batch(c, br)
			}
		},
		Decision: func(d grid.Decision) {
			if a.Decision != nil {
				a.Decision(d)
			}
			if b.Decision != nil {
				b.Decision(d)
			}
		},
		Kill: func(c int, k cluster.KillEvent) {
			if a.Kill != nil {
				a.Kill(c, k)
			}
			if b.Kill != nil {
				b.Kill(c, k)
			}
		},
		Migration: func(d grid.Decision) {
			if a.Migration != nil {
				a.Migration(d)
			}
			if b.Migration != nil {
				b.Migration(d)
			}
		},
	}
}
