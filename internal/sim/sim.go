// Package sim is a small discrete-event simulator of a homogeneous cluster
// executing a schedule produced by this library. It replaces the Icluster2
// hardware of the paper's deployment section: it dispatches tasks in
// planned order on their planned processors, optionally perturbing the
// actual execution times (user estimates are rarely exact), and reports the
// realized metrics so the robustness of a scheduler can be studied.
package sim

import (
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// Options tunes the simulation.
type Options struct {
	// Perturb maps a task's planned duration to its actual duration (for
	// example multiplying by a random factor). Nil means exact execution.
	Perturb func(taskID int, planned float64) float64
	// Strict makes the simulation fail if a task cannot start exactly at
	// its planned time because one of its processors is still busy. The
	// default (false) delays the task until its processors are free, as a
	// real runtime system would.
	Strict bool
	// Blocked lists processor windows that are unavailable during the run
	// (node reservations, maintenance). A task whose realized execution
	// would overlap a blocked window on one of its processors is delayed
	// past the window, exactly as the runtime system of the paper's
	// deployment would hold a job for an advance reservation.
	Blocked []BlockedWindow
	// Failures lists machine down windows the planner did NOT know about:
	// node crashes. Unlike Blocked windows, which delay tasks out of the
	// way, a failure beginning while a task is running kills the task at
	// the failure instant — it appears in Result.Killed instead of
	// completing, and its partial work still counts as busy time (the
	// cycles were spent). A task dispatched while one of its processors is
	// already down is delayed past the repair, like a real runtime system
	// that cannot place work on a dead node. Note the gang-dispatch
	// consequence: a wide task waits for an instant when every one of its
	// processors is up at once, so under very dense failures a
	// whole-machine task can starve (delayed past the last repair) rather
	// than start and be killed.
	Failures []FailureWindow
}

// BlockedWindow makes a set of processors unavailable during [Start, End).
type BlockedWindow struct {
	Procs      []int
	Start, End float64
}

// FailureWindow is a set of processors crashed during [Start, End): down
// from Start, repaired and usable again at End.
type FailureWindow struct {
	Procs      []int
	Start, End float64
}

// KilledTask records one task killed by a failure: it started at Start and
// died at KilledAt, before completing the realized Duration it would have
// run (so (KilledAt-Start)/Duration is the fraction of work finished).
type KilledTask struct {
	TaskID   int
	Start    float64
	KilledAt float64
	Duration float64
	Procs    []int
}

// TaskTrace records the realized execution of one task.
type TaskTrace struct {
	TaskID  int
	Start   float64
	End     float64
	Procs   []int
	Delayed bool // true when the task could not start at its planned time
}

// Result is the outcome of a simulation.
type Result struct {
	// Traces holds one entry per task, sorted by realized start time.
	Traces []TaskTrace
	// Makespan is the realized completion time of the last task.
	Makespan float64
	// WeightedCompletion is the realized sum(w_i * C_i).
	WeightedCompletion float64
	// SumCompletion is the realized sum of completion times.
	SumCompletion float64
	// BusyTime is, per processor, the total time spent executing tasks,
	// including the partial (wasted) work of killed tasks.
	BusyTime []float64
	// Delayed is the number of tasks that started later than planned.
	Delayed int
	// Killed lists the tasks killed by failure windows, in dispatch order.
	// Killed tasks do not appear in Traces and contribute nothing to the
	// completion metrics; the caller decides how to reschedule them.
	Killed []KilledTask
}

// Execute runs the schedule on a simulated cluster.
func Execute(inst *moldable.Instance, sched *schedule.Schedule, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if sched.M != inst.M {
		return nil, fmt.Errorf("sim: schedule is for %d processors, instance for %d", sched.M, inst.M)
	}
	for i := range sched.Assignments {
		a := &sched.Assignments[i]
		if inst.Task(a.TaskID) == nil {
			return nil, fmt.Errorf("sim: schedule references unknown task %d", a.TaskID)
		}
		if len(a.Procs) != a.NProcs {
			return nil, fmt.Errorf("sim: task %d has no explicit processor assignment", a.TaskID)
		}
	}

	// Dispatch in planned start order (ties broken by task ID for
	// determinism).
	order := make([]int, len(sched.Assignments))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		ax, ay := &sched.Assignments[order[x]], &sched.Assignments[order[y]]
		if ax.Start != ay.Start {
			return ax.Start < ay.Start
		}
		return ax.TaskID < ay.TaskID
	})

	blocked, err := blockedByProc(opts.Blocked, inst.M)
	if err != nil {
		return nil, err
	}
	failures, err := failuresByProc(opts.Failures, inst.M)
	if err != nil {
		return nil, err
	}

	res := &Result{BusyTime: make([]float64, inst.M)}
	freeAt := make([]float64, inst.M)
	for _, i := range order {
		a := &sched.Assignments[i]
		start := a.Start
		for _, p := range a.Procs {
			if p < 0 || p >= inst.M {
				return nil, fmt.Errorf("sim: task %d uses processor %d outside the machine", a.TaskID, p)
			}
			if freeAt[p] > start {
				start = freeAt[p]
			}
		}
		duration := a.Duration
		if opts.Perturb != nil {
			duration = opts.Perturb(a.TaskID, a.Duration)
			if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
				return nil, fmt.Errorf("sim: perturbation produced an invalid duration %g for task %d", duration, a.TaskID)
			}
		}
		busyUntil := start
		// Blocked windows are known in advance (the whole planned span must
		// clear them); failures only reveal themselves at dispatch (a dead
		// node cannot accept work, but a future crash is invisible).
		// Pushing past one kind can land inside the other, so alternate to
		// a fixpoint.
		for changed := true; changed; {
			changed = false
			if s := delayPastBlocked(blocked, a.Procs, start, duration); s > start {
				start = s
				changed = true
			}
			if s := delayPastDown(failures, a.Procs, start); s > start {
				start = s
				changed = true
			}
		}
		delayed := start > a.Start+moldable.Eps
		if delayed && opts.Strict {
			if start > busyUntil {
				return nil, fmt.Errorf("sim: task %d cannot start at its planned time %g (processors blocked until %g)", a.TaskID, a.Start, start)
			}
			return nil, fmt.Errorf("sim: task %d cannot start at its planned time %g (processors busy until %g)", a.TaskID, a.Start, start)
		}
		end := start + duration
		if killAt, killed := firstFailureDuring(failures, a.Procs, start, end); killed {
			// The crash kills the task mid-run: the partial work is spent
			// (busy time), nothing completes, and the caller reschedules.
			for _, p := range a.Procs {
				freeAt[p] = killAt
				res.BusyTime[p] += killAt - start
			}
			if delayed {
				res.Delayed++
			}
			res.Killed = append(res.Killed, KilledTask{
				TaskID:   a.TaskID,
				Start:    start,
				KilledAt: killAt,
				Duration: duration,
				Procs:    append([]int(nil), a.Procs...),
			})
			continue
		}
		for _, p := range a.Procs {
			freeAt[p] = end
			res.BusyTime[p] += duration
		}
		if delayed {
			res.Delayed++
		}
		res.Traces = append(res.Traces, TaskTrace{
			TaskID:  a.TaskID,
			Start:   start,
			End:     end,
			Procs:   append([]int(nil), a.Procs...),
			Delayed: delayed,
		})
		if end > res.Makespan {
			res.Makespan = end
		}
		t := inst.Task(a.TaskID)
		res.WeightedCompletion += t.Weight * end
		res.SumCompletion += end
	}
	sort.SliceStable(res.Traces, func(a, b int) bool { return res.Traces[a].Start < res.Traces[b].Start })
	return res, nil
}

// blockedByProc indexes the blocked windows by processor, sorted by start.
func blockedByProc(windows []BlockedWindow, m int) (map[int][]BlockedWindow, error) {
	if len(windows) == 0 {
		return nil, nil
	}
	perProc := make(map[int][]BlockedWindow)
	for _, w := range windows {
		if w.End <= w.Start {
			return nil, fmt.Errorf("sim: blocked window has empty or negative span [%g, %g)", w.Start, w.End)
		}
		for _, p := range w.Procs {
			if p < 0 || p >= m {
				return nil, fmt.Errorf("sim: blocked window uses processor %d outside the machine", p)
			}
			perProc[p] = append(perProc[p], w)
		}
	}
	for p := range perProc {
		sort.SliceStable(perProc[p], func(a, b int) bool { return perProc[p][a].Start < perProc[p][b].Start })
	}
	return perProc, nil
}

// delayPastBlocked pushes the start time until [start, start+duration) is
// clear of every blocked window on every processor of the task. Pushing past
// one window can land inside another, so the sweep repeats until stable.
func delayPastBlocked(blocked map[int][]BlockedWindow, procs []int, start, duration float64) float64 {
	if len(blocked) == 0 {
		return start
	}
	for changed := true; changed; {
		changed = false
		for _, p := range procs {
			for _, w := range blocked[p] {
				if start < w.End-moldable.Eps && start+duration > w.Start+moldable.Eps {
					start = w.End
					changed = true
				}
			}
		}
	}
	return start
}

// failuresByProc indexes the failure windows by processor, sorted by start.
func failuresByProc(windows []FailureWindow, m int) (map[int][]FailureWindow, error) {
	if len(windows) == 0 {
		return nil, nil
	}
	perProc := make(map[int][]FailureWindow)
	for _, w := range windows {
		if w.End <= w.Start {
			return nil, fmt.Errorf("sim: failure window has empty or negative span [%g, %g)", w.Start, w.End)
		}
		for _, p := range w.Procs {
			if p < 0 || p >= m {
				return nil, fmt.Errorf("sim: failure window uses processor %d outside the machine", p)
			}
			perProc[p] = append(perProc[p], w)
		}
	}
	for p := range perProc {
		sort.SliceStable(perProc[p], func(a, b int) bool { return perProc[p][a].Start < perProc[p][b].Start })
	}
	return perProc, nil
}

// delayPastDown pushes the start time past every failure window that is
// active at the start instant on one of the task's processors: the runtime
// cannot dispatch onto a dead node, but it does not know about crashes
// that have not happened yet. Pushing past one window can land inside
// another, so the sweep repeats until stable.
func delayPastDown(failures map[int][]FailureWindow, procs []int, start float64) float64 {
	if len(failures) == 0 {
		return start
	}
	for changed := true; changed; {
		changed = false
		for _, p := range procs {
			for _, w := range failures[p] {
				if start >= w.Start-moldable.Eps && start < w.End-moldable.Eps {
					start = w.End
					changed = true
				}
			}
		}
	}
	return start
}

// firstFailureDuring returns the earliest failure that begins strictly
// inside the task's execution (start, end) on one of its processors — the
// instant the task dies — or false when the task runs to completion.
func firstFailureDuring(failures map[int][]FailureWindow, procs []int, start, end float64) (float64, bool) {
	if len(failures) == 0 {
		return 0, false
	}
	earliest := math.Inf(1)
	for _, p := range procs {
		for _, w := range failures[p] {
			if w.Start > start+moldable.Eps && w.Start < end-moldable.Eps && w.Start < earliest {
				earliest = w.Start
			}
		}
	}
	if math.IsInf(earliest, 1) {
		return 0, false
	}
	return earliest, true
}

// Utilization returns the average fraction of the machine kept busy until
// the realized makespan.
func (r *Result) Utilization(m int) float64 {
	if r.Makespan <= 0 || m == 0 {
		return 0
	}
	busy := 0.0
	for _, b := range r.BusyTime {
		busy += b
	}
	return busy / (r.Makespan * float64(m))
}
