package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bicriteria/internal/core"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
	"bicriteria/internal/workload"
)

func testInstance() *moldable.Instance {
	return moldable.NewInstance(4, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{8, 5, 4, 3.5}},
		{ID: 1, Weight: 1, Times: []float64{4, 2.5}},
		{ID: 2, Weight: 3, Times: []float64{6, 3.5, 2.5, 2}},
	})
}

func plannedSchedule() *schedule.Schedule {
	s := schedule.New(4)
	s.Add(schedule.Assignment{TaskID: 0, Start: 0, NProcs: 2, Procs: []int{0, 1}, Duration: 5})
	s.Add(schedule.Assignment{TaskID: 1, Start: 0, NProcs: 1, Procs: []int{2}, Duration: 4})
	s.Add(schedule.Assignment{TaskID: 2, Start: 5, NProcs: 4, Procs: []int{0, 1, 2, 3}, Duration: 2})
	return s
}

func TestExecuteExactMatchesPlan(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	res, err := Execute(inst, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-s.Makespan()) > 1e-9 {
		t.Fatalf("realized makespan %g differs from planned %g", res.Makespan, s.Makespan())
	}
	if math.Abs(res.WeightedCompletion-s.WeightedCompletion(inst)) > 1e-9 {
		t.Fatalf("realized minsum differs from planned")
	}
	if res.Delayed != 0 {
		t.Fatalf("no task should be delayed in an exact execution")
	}
	if len(res.Traces) != 3 {
		t.Fatalf("expected 3 traces")
	}
	if u := res.Utilization(4); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of range", u)
	}
}

func TestExecuteWithPerturbationDelaysSuccessors(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	res, err := Execute(inst, s, &Options{
		Perturb: func(taskID int, planned float64) float64 {
			if taskID == 0 {
				return planned * 1.5 // task 0 runs 50% longer than estimated
			}
			return planned
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Task 2 uses the processors of task 0, so it must be delayed to 7.5.
	var trace2 *TaskTrace
	for i := range res.Traces {
		if res.Traces[i].TaskID == 2 {
			trace2 = &res.Traces[i]
		}
	}
	if trace2 == nil || math.Abs(trace2.Start-7.5) > 1e-9 || !trace2.Delayed {
		t.Fatalf("task 2 should be delayed to 7.5, got %+v", trace2)
	}
	if res.Delayed != 1 {
		t.Fatalf("exactly one task should be delayed, got %d", res.Delayed)
	}
	if res.Makespan <= s.Makespan() {
		t.Fatalf("perturbed makespan should exceed the planned one")
	}
}

func TestExecuteStrictModeRejectsDelays(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	_, err := Execute(inst, s, &Options{
		Strict: true,
		Perturb: func(taskID int, planned float64) float64 {
			if taskID == 0 {
				return planned * 2
			}
			return planned
		},
	})
	if err == nil {
		t.Fatalf("strict mode must reject a delayed start")
	}
	// Without perturbation strict mode accepts the valid plan.
	if _, err := Execute(inst, s, &Options{Strict: true}); err != nil {
		t.Fatalf("strict execution of a valid plan should pass: %v", err)
	}
}

func TestExecuteRejectsMalformedInput(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	s.M = 5
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("machine mismatch must fail")
	}
	s = plannedSchedule()
	s.Assignments[0].TaskID = 99
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("unknown task must fail")
	}
	s = plannedSchedule()
	s.Assignments[0].Procs = nil
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("missing processor assignment must fail")
	}
	s = plannedSchedule()
	s.Assignments[0].Procs = []int{0, 9}
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("out-of-range processor must fail")
	}
	s = plannedSchedule()
	if _, err := Execute(inst, s, &Options{Perturb: func(int, float64) float64 { return -1 }}); err == nil {
		t.Fatalf("invalid perturbed duration must fail")
	}
}

func TestPropertySimulatedDEMTSchedulesMatchPlanExactly(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, err := workload.Generate(workload.Config{Kind: workload.HighlyParallel, M: 8 + r.Intn(8), N: 5 + r.Intn(20), Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Schedule(inst, &core.Options{Shuffles: 2})
		if err != nil {
			return false
		}
		out, err := Execute(inst, res.Schedule, nil)
		if err != nil {
			return false
		}
		// Exact execution of a valid schedule never delays anything and
		// reproduces the planned metrics.
		return out.Delayed == 0 &&
			math.Abs(out.Makespan-res.Schedule.Makespan()) < 1e-6 &&
			math.Abs(out.WeightedCompletion-res.Schedule.WeightedCompletion(inst)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteDelaysPastBlockedWindows(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	// Processor 2 is reserved during [1, 6): task 1 (planned [0, 4) on proc
	// 2) would overlap, so it must be pushed past the window, and task 2
	// (all four processors) must in turn wait for it.
	res, err := Execute(inst, s, &Options{
		Blocked: []BlockedWindow{{Procs: []int{2}, Start: 1, End: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		for _, p := range tr.Procs {
			if p == 2 && tr.Start < 6-moldable.Eps && tr.End > 1+moldable.Eps {
				t.Fatalf("task %d runs on reserved processor 2 during [%g, %g)", tr.TaskID, tr.Start, tr.End)
			}
		}
		if tr.TaskID == 1 && math.Abs(tr.Start-6) > 1e-9 {
			t.Fatalf("task 1 should start at the window end 6, got %g", tr.Start)
		}
	}
	if res.Delayed == 0 {
		t.Fatalf("blocked windows should count as delays")
	}

	// Chained windows: pushing past the first must not land inside the
	// second.
	s = plannedSchedule()
	res, err = Execute(inst, s, &Options{
		Blocked: []BlockedWindow{
			{Procs: []int{2}, Start: 1, End: 6},
			{Procs: []int{2}, Start: 6.5, End: 12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if tr.TaskID == 1 && math.Abs(tr.Start-12) > 1e-9 {
			t.Fatalf("task 1 should cascade past both windows to 12, got %g", tr.Start)
		}
	}

	// Malformed windows are rejected.
	if _, err := Execute(inst, plannedSchedule(), &Options{Blocked: []BlockedWindow{{Procs: []int{9}, Start: 0, End: 1}}}); err == nil {
		t.Fatalf("out-of-range blocked processor must fail")
	}
	if _, err := Execute(inst, plannedSchedule(), &Options{Blocked: []BlockedWindow{{Procs: []int{0}, Start: 2, End: 2}}}); err == nil {
		t.Fatalf("empty blocked window must fail")
	}
}

func TestExecuteFailureKillsRunningTask(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	// Processor 1 crashes at t=2, while task 0 (procs 0,1 for [0,5)) runs.
	res, err := Execute(inst, s, &Options{
		Failures: []FailureWindow{{Procs: []int{1}, Start: 2, End: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Killed) != 1 {
		t.Fatalf("want 1 killed task, got %d", len(res.Killed))
	}
	k := res.Killed[0]
	if k.TaskID != 0 || k.Start != 0 || k.KilledAt != 2 || k.Duration != 5 {
		t.Fatalf("unexpected kill record %+v", k)
	}
	// The killed task completes nothing: no trace, no completion metrics.
	for _, tr := range res.Traces {
		if tr.TaskID == 0 {
			t.Fatal("killed task has a completion trace")
		}
	}
	// Its partial work still counts as busy (cycles were spent): 2 wasted
	// units on proc 0 plus task 2's 2 units, against task 2's bare 2 units
	// on proc 3.
	if res.BusyTime[0] != 4 || res.BusyTime[3] != 2 {
		t.Fatalf("wasted work not accounted: busy[0] = %g (want 4), busy[3] = %g (want 2)", res.BusyTime[0], res.BusyTime[3])
	}
	// Task 2 was planned at t=5 on all four procs; procs 0/1 freed at the
	// kill instant and the crash is repaired by then, so it still starts on
	// time.
	for _, tr := range res.Traces {
		if tr.TaskID == 2 && tr.Start != 5 {
			t.Fatalf("task 2 starts at %g, want 5", tr.Start)
		}
	}
}

func TestExecuteFailureDelaysDispatchOnDeadNode(t *testing.T) {
	inst := moldable.NewInstance(1, []moldable.Task{{ID: 7, Weight: 1, Times: []float64{2}}})
	s := schedule.New(1)
	s.Add(schedule.Assignment{TaskID: 7, Start: 1, NProcs: 1, Procs: []int{0}, Duration: 2})
	// The node is already down when the task should be dispatched: the
	// runtime holds it until the repair instead of killing it.
	res, err := Execute(inst, s, &Options{
		Failures: []FailureWindow{{Procs: []int{0}, Start: 0.5, End: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Killed) != 0 {
		t.Fatal("task dispatched onto a known-dead node should be delayed, not killed")
	}
	if len(res.Traces) != 1 || res.Traces[0].Start != 4 || !res.Traces[0].Delayed {
		t.Fatalf("unexpected trace %+v", res.Traces)
	}
}

func TestExecuteFailureChainsAcrossWindows(t *testing.T) {
	inst := moldable.NewInstance(1, []moldable.Task{{ID: 1, Weight: 1, Times: []float64{3}}})
	s := schedule.New(1)
	s.Add(schedule.Assignment{TaskID: 1, Start: 0, NProcs: 1, Procs: []int{0}, Duration: 3})
	// Killed at 1; the caller would resubmit. Within one Execute the task
	// dies once and is simply gone: a second window later must not matter.
	res, err := Execute(inst, s, &Options{
		Failures: []FailureWindow{
			{Procs: []int{0}, Start: 1, End: 2},
			{Procs: []int{0}, Start: 2.5, End: 2.6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Killed) != 1 || res.Killed[0].KilledAt != 1 {
		t.Fatalf("want one kill at the earliest failure, got %+v", res.Killed)
	}
	if len(res.Traces) != 0 {
		t.Fatal("killed task completed")
	}
	if res.Makespan != 0 {
		t.Fatalf("makespan %g should only count completions", res.Makespan)
	}
}

func TestExecuteFailureValidation(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	if _, err := Execute(inst, s, &Options{
		Failures: []FailureWindow{{Procs: []int{0}, Start: 3, End: 3}},
	}); err == nil {
		t.Fatal("empty failure window accepted")
	}
	if _, err := Execute(inst, s, &Options{
		Failures: []FailureWindow{{Procs: []int{99}, Start: 1, End: 2}},
	}); err == nil {
		t.Fatal("failure window outside the machine accepted")
	}
}
