package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bicriteria/internal/core"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
	"bicriteria/internal/workload"
)

func testInstance() *moldable.Instance {
	return moldable.NewInstance(4, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{8, 5, 4, 3.5}},
		{ID: 1, Weight: 1, Times: []float64{4, 2.5}},
		{ID: 2, Weight: 3, Times: []float64{6, 3.5, 2.5, 2}},
	})
}

func plannedSchedule() *schedule.Schedule {
	s := schedule.New(4)
	s.Add(schedule.Assignment{TaskID: 0, Start: 0, NProcs: 2, Procs: []int{0, 1}, Duration: 5})
	s.Add(schedule.Assignment{TaskID: 1, Start: 0, NProcs: 1, Procs: []int{2}, Duration: 4})
	s.Add(schedule.Assignment{TaskID: 2, Start: 5, NProcs: 4, Procs: []int{0, 1, 2, 3}, Duration: 2})
	return s
}

func TestExecuteExactMatchesPlan(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	res, err := Execute(inst, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-s.Makespan()) > 1e-9 {
		t.Fatalf("realized makespan %g differs from planned %g", res.Makespan, s.Makespan())
	}
	if math.Abs(res.WeightedCompletion-s.WeightedCompletion(inst)) > 1e-9 {
		t.Fatalf("realized minsum differs from planned")
	}
	if res.Delayed != 0 {
		t.Fatalf("no task should be delayed in an exact execution")
	}
	if len(res.Traces) != 3 {
		t.Fatalf("expected 3 traces")
	}
	if u := res.Utilization(4); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of range", u)
	}
}

func TestExecuteWithPerturbationDelaysSuccessors(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	res, err := Execute(inst, s, &Options{
		Perturb: func(taskID int, planned float64) float64 {
			if taskID == 0 {
				return planned * 1.5 // task 0 runs 50% longer than estimated
			}
			return planned
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Task 2 uses the processors of task 0, so it must be delayed to 7.5.
	var trace2 *TaskTrace
	for i := range res.Traces {
		if res.Traces[i].TaskID == 2 {
			trace2 = &res.Traces[i]
		}
	}
	if trace2 == nil || math.Abs(trace2.Start-7.5) > 1e-9 || !trace2.Delayed {
		t.Fatalf("task 2 should be delayed to 7.5, got %+v", trace2)
	}
	if res.Delayed != 1 {
		t.Fatalf("exactly one task should be delayed, got %d", res.Delayed)
	}
	if res.Makespan <= s.Makespan() {
		t.Fatalf("perturbed makespan should exceed the planned one")
	}
}

func TestExecuteStrictModeRejectsDelays(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	_, err := Execute(inst, s, &Options{
		Strict: true,
		Perturb: func(taskID int, planned float64) float64 {
			if taskID == 0 {
				return planned * 2
			}
			return planned
		},
	})
	if err == nil {
		t.Fatalf("strict mode must reject a delayed start")
	}
	// Without perturbation strict mode accepts the valid plan.
	if _, err := Execute(inst, s, &Options{Strict: true}); err != nil {
		t.Fatalf("strict execution of a valid plan should pass: %v", err)
	}
}

func TestExecuteRejectsMalformedInput(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	s.M = 5
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("machine mismatch must fail")
	}
	s = plannedSchedule()
	s.Assignments[0].TaskID = 99
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("unknown task must fail")
	}
	s = plannedSchedule()
	s.Assignments[0].Procs = nil
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("missing processor assignment must fail")
	}
	s = plannedSchedule()
	s.Assignments[0].Procs = []int{0, 9}
	if _, err := Execute(inst, s, nil); err == nil {
		t.Fatalf("out-of-range processor must fail")
	}
	s = plannedSchedule()
	if _, err := Execute(inst, s, &Options{Perturb: func(int, float64) float64 { return -1 }}); err == nil {
		t.Fatalf("invalid perturbed duration must fail")
	}
}

func TestPropertySimulatedDEMTSchedulesMatchPlanExactly(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inst, err := workload.Generate(workload.Config{Kind: workload.HighlyParallel, M: 8 + r.Intn(8), N: 5 + r.Intn(20), Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Schedule(inst, &core.Options{Shuffles: 2})
		if err != nil {
			return false
		}
		out, err := Execute(inst, res.Schedule, nil)
		if err != nil {
			return false
		}
		// Exact execution of a valid schedule never delays anything and
		// reproduces the planned metrics.
		return out.Delayed == 0 &&
			math.Abs(out.Makespan-res.Schedule.Makespan()) < 1e-6 &&
			math.Abs(out.WeightedCompletion-res.Schedule.WeightedCompletion(inst)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteDelaysPastBlockedWindows(t *testing.T) {
	inst := testInstance()
	s := plannedSchedule()
	// Processor 2 is reserved during [1, 6): task 1 (planned [0, 4) on proc
	// 2) would overlap, so it must be pushed past the window, and task 2
	// (all four processors) must in turn wait for it.
	res, err := Execute(inst, s, &Options{
		Blocked: []BlockedWindow{{Procs: []int{2}, Start: 1, End: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		for _, p := range tr.Procs {
			if p == 2 && tr.Start < 6-moldable.Eps && tr.End > 1+moldable.Eps {
				t.Fatalf("task %d runs on reserved processor 2 during [%g, %g)", tr.TaskID, tr.Start, tr.End)
			}
		}
		if tr.TaskID == 1 && math.Abs(tr.Start-6) > 1e-9 {
			t.Fatalf("task 1 should start at the window end 6, got %g", tr.Start)
		}
	}
	if res.Delayed == 0 {
		t.Fatalf("blocked windows should count as delays")
	}

	// Chained windows: pushing past the first must not land inside the
	// second.
	s = plannedSchedule()
	res, err = Execute(inst, s, &Options{
		Blocked: []BlockedWindow{
			{Procs: []int{2}, Start: 1, End: 6},
			{Procs: []int{2}, Start: 6.5, End: 12},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Traces {
		if tr.TaskID == 1 && math.Abs(tr.Start-12) > 1e-9 {
			t.Fatalf("task 1 should cascade past both windows to 12, got %g", tr.Start)
		}
	}

	// Malformed windows are rejected.
	if _, err := Execute(inst, plannedSchedule(), &Options{Blocked: []BlockedWindow{{Procs: []int{9}, Start: 0, End: 1}}}); err == nil {
		t.Fatalf("out-of-range blocked processor must fail")
	}
	if _, err := Execute(inst, plannedSchedule(), &Options{Blocked: []BlockedWindow{{Procs: []int{0}, Start: 2, End: 2}}}); err == nil {
		t.Fatalf("empty blocked window must fail")
	}
}
