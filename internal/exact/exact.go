// Package exact computes provably optimal schedules for tiny moldable
// instances by exhaustive search. It exists to validate the rest of the
// library: lower bounds must never exceed the optimum, and the DEMT /
// baseline schedules must never beat it.
//
// The search enumerates, for every task, its Pareto-optimal allotments and,
// for every permutation of the tasks, the schedule produced by the serial
// schedule-generation scheme (each task placed at the earliest instant at
// which enough processors are free, filling holes). Over all permutations
// this scheme generates every active schedule, and the set of active
// schedules contains an optimum for any regular objective such as the
// makespan or the weighted sum of completion times.
//
// Complexity is O(n! * prod_i allotments_i * n^2): usable up to ~7 tasks,
// which is all the tests need.
package exact

import (
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// Objective selects the criterion to optimize.
type Objective int

const (
	// Makespan minimizes Cmax.
	Makespan Objective = iota
	// WeightedCompletion minimizes sum(w_i * C_i).
	WeightedCompletion
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case Makespan:
		return "makespan"
	case WeightedCompletion:
		return "weighted-completion"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Limits bounds the exhaustive search.
type Limits struct {
	// MaxTasks refuses instances with more tasks (default 8).
	MaxTasks int
	// MaxSchedules bounds the number of evaluated (permutation, allotment)
	// combinations (default 5 million).
	MaxSchedules int
}

func (l *Limits) withDefaults() Limits {
	out := Limits{MaxTasks: 8, MaxSchedules: 5_000_000}
	if l != nil {
		if l.MaxTasks > 0 {
			out.MaxTasks = l.MaxTasks
		}
		if l.MaxSchedules > 0 {
			out.MaxSchedules = l.MaxSchedules
		}
	}
	return out
}

// Result is the outcome of the exact search.
type Result struct {
	// Schedule is an optimal schedule (with explicit processors).
	Schedule *schedule.Schedule
	// Value is the optimal objective value.
	Value float64
	// Evaluated is the number of (permutation, allotment) combinations
	// examined.
	Evaluated int
}

// Solve finds an optimal schedule of the instance for the objective.
func Solve(inst *moldable.Instance, objective Objective, limits *Limits) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	lim := limits.withDefaults()
	n := inst.N()
	if n > lim.MaxTasks {
		return nil, fmt.Errorf("exact: instance has %d tasks, limit is %d", n, lim.MaxTasks)
	}
	switch objective {
	case Makespan, WeightedCompletion:
	default:
		return nil, fmt.Errorf("exact: unknown objective %d", int(objective))
	}

	// Pareto-optimal allotments per task: keep only allocations that
	// strictly decrease the processing time compared to every smaller
	// allocation (any other allocation is dominated for both criteria).
	allotments := make([][]int, n)
	for i := range inst.Tasks {
		t := &inst.Tasks[i]
		best := math.Inf(1)
		for k := 1; k <= t.MaxProcs(); k++ {
			if t.Time(k) < best-moldable.Eps {
				best = t.Time(k)
				allotments[i] = append(allotments[i], k)
			}
		}
	}

	res := &Result{Value: math.Inf(1)}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	alloc := make([]int, n)

	var enumerateAlloc func(pos int) error
	var permute func(k int) error

	evaluate := func() error {
		res.Evaluated++
		if res.Evaluated > lim.MaxSchedules {
			return fmt.Errorf("exact: search exceeded the limit of %d schedules", lim.MaxSchedules)
		}
		sched, value := buildAndEvaluate(inst, perm, alloc, objective)
		if value < res.Value-moldable.Eps {
			res.Value = value
			res.Schedule = sched
		}
		return nil
	}

	enumerateAlloc = func(pos int) error {
		if pos == n {
			return evaluate()
		}
		for _, k := range allotments[perm[pos]] {
			alloc[pos] = k
			if err := enumerateAlloc(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}

	permute = func(k int) error {
		if k == n {
			return enumerateAlloc(0)
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := permute(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}

	if err := permute(0); err != nil {
		return nil, err
	}
	return res, nil
}

// placedTask is a capacity reservation used during the serial schedule
// generation.
type placedTask struct {
	start, end float64
	procs      int
}

// buildAndEvaluate runs the serial schedule-generation scheme: tasks are
// placed in permutation order (alloc[pos] is the allocation of task
// perm[pos]), each at the earliest time at which enough processors are free
// given the previously placed tasks, filling holes.
func buildAndEvaluate(inst *moldable.Instance, perm, alloc []int, objective Objective) (*schedule.Schedule, float64) {
	var placed []placedTask
	m := inst.M
	sched := schedule.New(m)

	for pos, idx := range perm {
		t := &inst.Tasks[idx]
		k := alloc[pos]
		d := t.Time(k)
		// Candidate start times: 0 and every completion time of an already
		// placed task; the last candidate (after everything) always fits.
		candidates := []float64{0}
		for _, p := range placed {
			candidates = append(candidates, p.end)
		}
		sort.Float64s(candidates)
		start := candidates[len(candidates)-1]
		for _, c := range candidates {
			if capacityFree(placed, c, c+d, m) >= k {
				start = c
				break
			}
		}
		placed = append(placed, placedTask{start: start, end: start + d, procs: k})
		sched.Add(schedule.Assignment{TaskID: t.ID, Start: start, NProcs: k, Duration: d})
	}
	assignProcessors(sched)

	switch objective {
	case Makespan:
		return sched, sched.Makespan()
	default:
		return sched, sched.WeightedCompletion(inst)
	}
}

// capacityFree returns the minimum number of free processors over the
// window [start, end) given the already placed tasks.
func capacityFree(placed []placedTask, start, end float64, m int) int {
	// The used capacity only changes at task starts; evaluate at the window
	// start and at every task start inside the window.
	points := []float64{start}
	for _, p := range placed {
		if p.start > start+moldable.Eps && p.start < end-moldable.Eps {
			points = append(points, p.start)
		}
	}
	free := m
	for _, pt := range points {
		used := 0
		for _, q := range placed {
			if q.start <= pt+moldable.Eps && q.end > pt+moldable.Eps {
				used += q.procs
			}
		}
		if m-used < free {
			free = m - used
		}
	}
	return free
}

// assignProcessors gives every assignment an explicit processor set with a
// sweep in start-time order; this always succeeds for a capacity-feasible
// schedule of interval tasks.
func assignProcessors(s *schedule.Schedule) {
	order := make([]int, len(s.Assignments))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.Assignments[order[a]].Start < s.Assignments[order[b]].Start
	})
	freeAt := make([]float64, s.M)
	for _, i := range order {
		a := &s.Assignments[i]
		var procs []int
		for p := 0; p < s.M && len(procs) < a.NProcs; p++ {
			if freeAt[p] <= a.Start+moldable.Eps {
				procs = append(procs, p)
			}
		}
		a.Procs = procs
		for _, p := range procs {
			freeAt[p] = a.End()
		}
	}
}
