package exact

import (
	"math"
	"testing"
	"testing/quick"

	"bicriteria/internal/baselines"
	"bicriteria/internal/core"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/moldable"
	"bicriteria/internal/workload"
)

func TestObjectiveString(t *testing.T) {
	if Makespan.String() == "" || WeightedCompletion.String() == "" || Objective(9).String() == "" {
		t.Fatalf("objective names must not be empty")
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	if _, err := Solve(&moldable.Instance{M: 0}, Makespan, nil); err == nil {
		t.Fatalf("invalid instance must fail")
	}
	inst := moldable.NewInstance(2, []moldable.Task{moldable.Sequential(0, 1, 1)})
	if _, err := Solve(inst, Objective(9), nil); err == nil {
		t.Fatalf("unknown objective must fail")
	}
	big := make([]moldable.Task, 12)
	for i := range big {
		big[i] = moldable.Sequential(i, 1, 1)
	}
	if _, err := Solve(moldable.NewInstance(2, big), Makespan, nil); err == nil {
		t.Fatalf("too many tasks must fail")
	}
	if _, err := Solve(inst, Makespan, &Limits{MaxSchedules: 0}); err != nil {
		t.Fatalf("zero MaxSchedules should fall back to the default: %v", err)
	}
}

func TestSolveKnownOptimalMakespan(t *testing.T) {
	// Three sequential unit-ish tasks on 2 processors: optimal makespan is
	// achieved by pairing the two short ones.
	inst := moldable.NewInstance(2, []moldable.Task{
		moldable.Sequential(0, 1, 4),
		moldable.Sequential(1, 1, 2),
		moldable.Sequential(2, 1, 2),
	})
	res, err := Solve(inst, Makespan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-4) > 1e-9 {
		t.Fatalf("optimal makespan = %g, want 4", res.Value)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
}

func TestSolveKnownOptimalMinsumSingleProcessor(t *testing.T) {
	// On one processor the optimum is Smith's rule: known closed form.
	inst := moldable.NewInstance(1, []moldable.Task{
		moldable.Sequential(0, 3, 2), // ratio 2/3
		moldable.Sequential(1, 1, 4), // ratio 4
		moldable.Sequential(2, 2, 1), // ratio 1/2
	})
	res, err := Solve(inst, WeightedCompletion, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Smith order 2,0,1: completions 1,3,7 -> 2*1+3*3+1*7 = 18.
	if math.Abs(res.Value-18) > 1e-9 {
		t.Fatalf("optimal minsum = %g, want 18", res.Value)
	}
}

func TestSolveUsesMoldability(t *testing.T) {
	// A single perfectly moldable task: the optimum uses all processors.
	inst := moldable.NewInstance(4, []moldable.Task{moldable.PerfectlyMoldable(0, 1, 8, 4)})
	res, err := Solve(inst, Makespan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-2) > 1e-9 {
		t.Fatalf("optimal makespan = %g, want 2", res.Value)
	}
	if res.Schedule.Assignments[0].NProcs != 4 {
		t.Fatalf("optimum should use all 4 processors")
	}
}

func TestLowerBoundsNeverExceedOptimum(t *testing.T) {
	kinds := workload.Kinds()
	for seed := int64(0); seed < 6; seed++ {
		kind := kinds[int(seed)%len(kinds)]
		inst, err := workload.Generate(workload.Config{Kind: kind, M: 4, N: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		optCmax, err := Solve(inst, Makespan, nil)
		if err != nil {
			t.Fatal(err)
		}
		optMinsum, err := Solve(inst, WeightedCompletion, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lb := lowerbound.Makespan(inst); lb > optCmax.Value+1e-6 {
			t.Fatalf("seed %d: makespan lower bound %g exceeds the optimum %g", seed, lb, optCmax.Value)
		}
		if lb := lowerbound.MinsumSquashedArea(inst); lb > optMinsum.Value+1e-6 {
			t.Fatalf("seed %d: squashed-area bound %g exceeds the optimum %g", seed, lb, optMinsum.Value)
		}
		lpBound, err := lowerbound.MinsumLP(inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lpBound.Value > optMinsum.Value+1e-6 {
			t.Fatalf("seed %d: LP bound %g exceeds the optimum %g", seed, lpBound.Value, optMinsum.Value)
		}
	}
}

func TestHeuristicsNeverBeatOptimum(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		inst, err := workload.Generate(workload.Config{Kind: workload.Cirne, M: 4, N: 5, Seed: 100 + seed})
		if err != nil {
			t.Fatal(err)
		}
		optCmax, err := Solve(inst, Makespan, nil)
		if err != nil {
			t.Fatal(err)
		}
		optMinsum, err := Solve(inst, WeightedCompletion, nil)
		if err != nil {
			t.Fatal(err)
		}

		demt, err := core.Schedule(inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if demt.Schedule.Makespan() < optCmax.Value-1e-6 {
			t.Fatalf("seed %d: DEMT makespan %g beats the proven optimum %g", seed, demt.Schedule.Makespan(), optCmax.Value)
		}
		if demt.Schedule.WeightedCompletion(inst) < optMinsum.Value-1e-6 {
			t.Fatalf("seed %d: DEMT minsum beats the proven optimum", seed)
		}

		gang, err := baselines.Gang(inst)
		if err != nil {
			t.Fatal(err)
		}
		if gang.Makespan() < optCmax.Value-1e-6 {
			t.Fatalf("seed %d: Gang makespan beats the proven optimum", seed)
		}
		seq, err := baselines.Sequential(inst)
		if err != nil {
			t.Fatal(err)
		}
		if seq.WeightedCompletion(inst) < optMinsum.Value-1e-6 {
			t.Fatalf("seed %d: Sequential minsum beats the proven optimum", seed)
		}
	}
}

func TestPropertyOptimalSchedulesAreValidAndDominated(t *testing.T) {
	f := func(seed int64) bool {
		inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: 3, N: 4, Seed: seed})
		if err != nil {
			return false
		}
		res, err := Solve(inst, WeightedCompletion, nil)
		if err != nil {
			return false
		}
		if err := res.Schedule.Validate(inst, nil); err != nil {
			return false
		}
		// The optimum value matches the schedule's actual criterion.
		if math.Abs(res.Schedule.WeightedCompletion(inst)-res.Value) > 1e-6 {
			return false
		}
		return res.Evaluated > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
