package stats

import (
	"math"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	cases := []struct {
		lo, hi  float64
		buckets int
	}{
		{0, 10, 4},
		{-1, 10, 4},
		{1, 1, 4},
		{10, 1, 4},
		{1, 100, 0},
		{math.Inf(1), math.Inf(1), 4},
		{1, math.Inf(1), 4},
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.lo, c.hi, c.buckets); err == nil {
			t.Errorf("NewHistogram(%g, %g, %d): expected error", c.lo, c.hi, c.buckets)
		}
	}
	if _, err := NewHistogram(1, 1000, 12); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}
}

func TestHistogramBucketBoundsAreLogSpaced(t *testing.T) {
	h, err := NewHistogram(1, 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 8 {
		t.Fatalf("got %d buckets, want 8", len(s.Buckets))
	}
	if math.Abs(s.Buckets[0].Lo-1) > 1e-12 {
		t.Fatalf("first bucket starts at %g, want 1", s.Buckets[0].Lo)
	}
	if math.Abs(s.Buckets[7].Hi-10000) > 1e-6 {
		t.Fatalf("last bucket ends at %g, want 10000", s.Buckets[7].Hi)
	}
	ratio := s.Buckets[0].Hi / s.Buckets[0].Lo
	for i, b := range s.Buckets {
		if r := b.Hi / b.Lo; math.Abs(r-ratio) > 1e-9 {
			t.Fatalf("bucket %d has ratio %g, want constant %g", i, r, ratio)
		}
		if i > 0 && math.Abs(b.Lo-s.Buckets[i-1].Hi) > 1e-9*b.Lo {
			t.Fatalf("bucket %d starts at %g but bucket %d ends at %g", i, b.Lo, i-1, s.Buckets[i-1].Hi)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram(1, 100, 4) // bounds 1, ~3.16, 10, ~31.6, 100
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 2, 5, 10, 20, 50, 99.99, 100, 1e6, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if h.Count() != 10 || s.Count != 10 {
		t.Fatalf("count = %d / %d, want 10 (NaN ignored)", h.Count(), s.Count)
	}
	if s.Under != 1 {
		t.Fatalf("under = %d, want 1 (the 0.5 sample)", s.Under)
	}
	// Expectations are recomputed from the actual bounds to stay robust to
	// floating-point boundary placement (the computed top bound may land an
	// ulp above 100, absorbing the 100 sample into the last bucket).
	wantCounts := make([]int, 4)
	wantOver := 0
	for _, v := range []float64{1, 2, 5, 10, 20, 50, 99.99, 100, 1e6} {
		placed := false
		for i, b := range s.Buckets {
			if v >= b.Lo && v < b.Hi {
				wantCounts[i]++
				placed = true
				break
			}
		}
		if !placed {
			wantOver++
		}
	}
	if s.Over != wantOver {
		t.Fatalf("over = %d, want %d", s.Over, wantOver)
	}
	total := 0
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d [%g, %g) has %d samples, want %d", i, b.Lo, b.Hi, b.Count, wantCounts[i])
		}
		total += b.Count
	}
	if total+s.Under+s.Over != s.Count {
		t.Fatalf("bucket counts %d + under %d + over %d != total %d", total, s.Under, s.Over, s.Count)
	}
}

func TestHistogramBoundarySamplesStayInRange(t *testing.T) {
	h, err := NewHistogram(1, 1e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	// Hammer every boundary from both sides: each sample must land in a
	// bucket whose range contains it, never off by one.
	for _, b := range s.Buckets {
		for _, v := range []float64{b.Lo, math.Nextafter(b.Lo, 0), math.Nextafter(b.Hi, 0)} {
			probe, _ := NewHistogram(1, 1e6, 60)
			probe.Observe(v)
			ps := probe.Snapshot()
			if v < 1 {
				if ps.Under != 1 {
					t.Fatalf("sample %g below range not counted as under", v)
				}
				continue
			}
			for i, pb := range ps.Buckets {
				if pb.Count == 1 {
					if v < pb.Lo || v >= pb.Hi {
						t.Fatalf("sample %.17g landed in bucket %d [%.17g, %.17g)", v, i, pb.Lo, pb.Hi)
					}
				}
			}
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(1, 1024, 10) // bounds are exact powers of 2
	if err != nil {
		t.Fatal(err)
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // first bucket [1, 2)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket [64, 128)
	}
	if q := h.Quantile(0.25); math.Abs(q-2) > 1e-9 {
		t.Fatalf("p25 = %g, want 2 (upper bound of the first bucket)", q)
	}
	if q := h.Quantile(0.99); math.Abs(q-128) > 1e-9 {
		t.Fatalf("p99 = %g, want 128", q)
	}
	h.Observe(1e9)
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 with overflow = %g, want +Inf", q)
	}
	probe, _ := NewHistogram(1, 1024, 10)
	probe.Observe(0.1)
	if q := probe.Quantile(0.5); math.Abs(q-1) > 1e-12 {
		t.Fatalf("all-underflow quantile = %g, want the lower bound 1", q)
	}
}
