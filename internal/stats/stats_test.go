package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", s.Mean)
	}
	// Sample standard deviation of this classic data set is ~2.138.
	if math.Abs(s.StdDev-2.1380899) > 1e-6 {
		t.Fatalf("stddev = %g", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Count != 1 || s.Mean != 3 || s.StdDev != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
}

func TestRatioAggregator(t *testing.T) {
	var agg RatioAggregator
	if err := agg.Add(4, 2); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(9, 3); err != nil {
		t.Fatal(err)
	}
	if agg.Count() != 2 {
		t.Fatalf("count = %d", agg.Count())
	}
	r := agg.Result()
	// Ratio of sums: 13/5 = 2.6; per-run ratios 2 and 3.
	if math.Abs(r.Mean-2.6) > 1e-12 || r.Min != 2 || r.Max != 3 || r.Count != 2 {
		t.Fatalf("ratio wrong: %+v", r)
	}
	if !strings.Contains(r.String(), "2.600") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestRatioAggregatorRejectsInvalid(t *testing.T) {
	var agg RatioAggregator
	if err := agg.Add(1, 0); err == nil {
		t.Fatalf("zero reference must fail")
	}
	if err := agg.Add(1, -2); err == nil {
		t.Fatalf("negative reference must fail")
	}
	if err := agg.Add(math.NaN(), 1); err == nil {
		t.Fatalf("NaN value must fail")
	}
	if err := agg.Add(-1, 1); err == nil {
		t.Fatalf("negative value must fail")
	}
	if agg.Count() != 0 {
		t.Fatalf("rejected observations must not be recorded")
	}
	if r := agg.Result(); r.Count != 0 || r.Mean != 0 {
		t.Fatalf("empty aggregator should give zero result: %+v", r)
	}
}

func TestPropertyRatioOfSumsBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var agg RatioAggregator
		for i, b := range raw {
			value := float64(b%40) + 1
			ref := float64(i%7) + 1
			if err := agg.Add(value, ref); err != nil {
				return false
			}
		}
		r := agg.Result()
		return r.Mean >= r.Min-1e-12 && r.Mean <= r.Max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, b := range raw {
			values[i] = float64(b)
		}
		s := Summarize(values)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Count == len(values) && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty sample percentile %g, want 0", got)
	}
	values := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{-10, 1}, {0, 1}, {20, 1}, {40, 2}, {50, 3}, {60, 3}, {80, 4}, {95, 5}, {100, 5}, {150, 5},
	} {
		if got := Percentile(values, tc.p); got != tc.want {
			t.Fatalf("P%g of %v = %g, want %g", tc.p, values, got, tc.want)
		}
	}
	// The input must not be reordered.
	if values[0] != 5 || values[4] != 3 {
		t.Fatalf("Percentile mutated its input: %v", values)
	}
	single := []float64{7}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := Percentile(single, p); got != 7 {
			t.Fatalf("P%g of a singleton = %g, want 7", p, got)
		}
	}
}

func TestTailSummary(t *testing.T) {
	if got := TailSummary(nil); got != (Tail{}) {
		t.Fatalf("empty sample digest %+v, want zero", got)
	}
	values := []float64{5, 1, 4, 2, 3}
	got := TailSummary(values)
	want := Tail{Mean: 3, P50: 3, P95: 5, P99: 5}
	if got != want {
		t.Fatalf("TailSummary(%v) = %+v, want %+v", values, got, want)
	}
	// Must agree with Percentile and not reorder the input.
	for _, p := range []float64{50, 95, 99} {
		if Percentile(values, p) != map[float64]float64{50: got.P50, 95: got.P95, 99: got.P99}[p] {
			t.Fatalf("TailSummary disagrees with Percentile at p=%g", p)
		}
	}
	if values[0] != 5 {
		t.Fatalf("TailSummary mutated its input: %v", values)
	}
	// TailOfSorted on a sorted copy gives the same digest.
	sorted := []float64{1, 2, 3, 4, 5}
	if s := TailOfSorted(sorted); s != want {
		t.Fatalf("TailOfSorted = %+v, want %+v", s, want)
	}
	if s := TailOfSorted(nil); s != (Tail{}) {
		t.Fatalf("TailOfSorted(nil) = %+v, want zero", s)
	}
}

// TestPercentileEdgeCases pins the documented contract on degenerate
// inputs: empty samples, single elements and out-of-range p values.
func TestPercentileEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		p      float64
		want   float64
	}{
		{"empty p50", nil, 50, 0},
		{"empty p0", []float64{}, 0, 0},
		{"empty p200", []float64{}, 200, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"single clamped low", []float64{7}, -10, 7},
		{"single clamped high", []float64{7}, 400, 7},
		{"pair p50", []float64{1, 9}, 50, 1},
		{"pair p51", []float64{1, 9}, 51, 9},
		{"clamp low is min", []float64{3, 1, 2}, -5, 1},
		{"clamp high is max", []float64{3, 1, 2}, 150, 3},
		{"tiny p is min", []float64{3, 1, 2}, 1e-12, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.values, tc.p); got != tc.want {
				t.Fatalf("Percentile(%v, %g) = %g, want %g", tc.values, tc.p, got, tc.want)
			}
		})
	}
	// The input must never be reordered.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Percentile reordered its input: %v", in)
	}
}

// TestTailSummaryEdgeCases pins the zero-Tail and single-sample contract.
func TestTailSummaryEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		want   Tail
	}{
		{"empty", nil, Tail{}},
		{"empty slice", []float64{}, Tail{}},
		{"single", []float64{4.5}, Tail{Mean: 4.5, P50: 4.5, P95: 4.5, P99: 4.5}},
		{"pair", []float64{2, 4}, Tail{Mean: 3, P50: 2, P95: 4, P99: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := TailSummary(tc.values); got != tc.want {
				t.Fatalf("TailSummary(%v) = %+v, want %+v", tc.values, got, tc.want)
			}
		})
	}
	if got := TailOfSorted(nil); got != (Tail{}) {
		t.Fatalf("TailOfSorted(nil) = %+v, want zero", got)
	}
	if got := TailOfSorted([]float64{8}); got != (Tail{Mean: 8, P50: 8, P95: 8, P99: 8}) {
		t.Fatalf("TailOfSorted single = %+v", got)
	}
}
