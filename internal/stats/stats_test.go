package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", s.Mean)
	}
	// Sample standard deviation of this classic data set is ~2.138.
	if math.Abs(s.StdDev-2.1380899) > 1e-6 {
		t.Fatalf("stddev = %g", s.StdDev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Count != 1 || s.Mean != 3 || s.StdDev != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
}

func TestRatioAggregator(t *testing.T) {
	var agg RatioAggregator
	if err := agg.Add(4, 2); err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(9, 3); err != nil {
		t.Fatal(err)
	}
	if agg.Count() != 2 {
		t.Fatalf("count = %d", agg.Count())
	}
	r := agg.Result()
	// Ratio of sums: 13/5 = 2.6; per-run ratios 2 and 3.
	if math.Abs(r.Mean-2.6) > 1e-12 || r.Min != 2 || r.Max != 3 || r.Count != 2 {
		t.Fatalf("ratio wrong: %+v", r)
	}
	if !strings.Contains(r.String(), "2.600") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestRatioAggregatorRejectsInvalid(t *testing.T) {
	var agg RatioAggregator
	if err := agg.Add(1, 0); err == nil {
		t.Fatalf("zero reference must fail")
	}
	if err := agg.Add(1, -2); err == nil {
		t.Fatalf("negative reference must fail")
	}
	if err := agg.Add(math.NaN(), 1); err == nil {
		t.Fatalf("NaN value must fail")
	}
	if err := agg.Add(-1, 1); err == nil {
		t.Fatalf("negative value must fail")
	}
	if agg.Count() != 0 {
		t.Fatalf("rejected observations must not be recorded")
	}
	if r := agg.Result(); r.Count != 0 || r.Mean != 0 {
		t.Fatalf("empty aggregator should give zero result: %+v", r)
	}
}

func TestPropertyRatioOfSumsBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var agg RatioAggregator
		for i, b := range raw {
			value := float64(b%40) + 1
			ref := float64(i%7) + 1
			if err := agg.Add(value, ref); err != nil {
				return false
			}
		}
		r := agg.Result()
		return r.Mean >= r.Min-1e-12 && r.Mean <= r.Max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, b := range raw {
			values[i] = float64(b)
		}
		s := Summarize(values)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Count == len(values) && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
