// Package stats provides the small statistical helpers used by the
// experiment harness: summaries of samples and the ratio-of-sums
// aggregation of competitive ratios recommended by Jain ("The art of
// computer systems performance analysis"), which is how the paper averages
// its performance ratios (section 4.2).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 values.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	Sum    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(values []float64) Summary {
	s := Summary{}
	if len(values) == 0 {
		return s
	}
	s.Count = len(values)
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, v := range values {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.Count)
	if s.Count > 1 {
		varSum := 0.0
		for _, v := range values {
			d := v - s.Mean
			varSum += d * d
		}
		s.StdDev = math.Sqrt(varSum / float64(s.Count-1))
	}
	return s
}

// nearestRank returns the p-th percentile of a non-empty sorted sample
// under the nearest-rank definition: the smallest value v such that at
// least p% of the sample is <= v. p outside [0, 100] is clamped.
func nearestRank(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Percentile returns the p-th percentile (p in [0, 100]) of the sample
// using the nearest-rank definition. The input is not modified.
//
// Edge cases are part of the contract, not accidents of the
// implementation: an empty sample yields 0 (there is no meaningful
// percentile, and callers aggregate-and-print without checking); a
// single-element sample yields that element for every p; p at or below 0
// yields the minimum, p at or above 100 the maximum (clamping, never an
// error). NaN inputs are not handled — callers must filter them, as every
// producer in this library already guarantees NaN-free samples.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return nearestRank(sorted, p)
}

// Tail digests a sample by its mean and tail percentiles.
type Tail struct {
	Mean float64
	P50  float64
	P95  float64
	P99  float64
}

// TailSummary computes the mean and the nearest-rank p50/p95/p99 of the
// sample with a single copy and sort (cheaper than three Percentile
// calls). The input is not modified.
//
// Edge cases follow Percentile's contract: an empty sample yields the
// zero Tail (all fields 0), and a single-element sample yields that
// element as the mean and every percentile.
func TailSummary(values []float64) Tail {
	if len(values) == 0 {
		return Tail{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return TailOfSorted(sorted)
}

// TailOfSorted is TailSummary for a sample the caller keeps sorted: no
// copy, no sort. Accumulators that snapshot repeatedly (once per batch)
// should sort their sample in place and call this — re-sorting an
// almost-sorted slice is far cheaper than copying and sorting from
// scratch on every snapshot.
func TailOfSorted(sorted []float64) Tail {
	if len(sorted) == 0 {
		return Tail{}
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Tail{
		Mean: sum / float64(len(sorted)),
		P50:  nearestRank(sorted, 50),
		P95:  nearestRank(sorted, 95),
		P99:  nearestRank(sorted, 99),
	}
}

// RatioAggregator accumulates pairs (value, reference) and reports the
// ratio of sums together with the minimum and maximum per-pair ratio.
type RatioAggregator struct {
	valueSum float64
	refSum   float64
	ratios   []float64
}

// Add records one observation. Reference values that are not strictly
// positive are rejected to avoid silent division by zero.
func (r *RatioAggregator) Add(value, reference float64) error {
	if reference <= 0 || math.IsNaN(reference) || math.IsInf(reference, 0) {
		return fmt.Errorf("stats: invalid reference value %g", reference)
	}
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("stats: invalid value %g", value)
	}
	r.valueSum += value
	r.refSum += reference
	r.ratios = append(r.ratios, value/reference)
	return nil
}

// Count returns the number of recorded observations.
func (r *RatioAggregator) Count() int { return len(r.ratios) }

// Ratio is the aggregated view of a RatioAggregator.
type Ratio struct {
	// Mean is the ratio of sums (sum of values / sum of references).
	Mean float64
	// Min and Max are the extreme per-observation ratios.
	Min float64
	Max float64
	// Count is the number of observations.
	Count int
}

// Result returns the aggregated ratio. An empty aggregator returns a zero
// Ratio.
func (r *RatioAggregator) Result() Ratio {
	if len(r.ratios) == 0 {
		return Ratio{}
	}
	out := Ratio{Mean: r.valueSum / r.refSum, Count: len(r.ratios)}
	out.Min = math.Inf(1)
	out.Max = math.Inf(-1)
	for _, v := range r.ratios {
		if v < out.Min {
			out.Min = v
		}
		if v > out.Max {
			out.Max = v
		}
	}
	return out
}

// String formats a ratio as "mean [min, max]".
func (r Ratio) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", r.Mean, r.Min, r.Max)
}
