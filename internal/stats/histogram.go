package stats

import (
	"fmt"
	"math"
)

// Histogram counts samples in fixed log-spaced buckets: bucket i covers
// [Lo * r^i, Lo * r^(i+1)) for a constant ratio r. Log spacing matches the
// heavy-tailed distributions this library measures (stretch, wait times):
// constant relative resolution over many orders of magnitude with a small,
// fixed bucket count, so a long-running service can expose distributions
// without keeping every sample.
//
// Samples below Lo and at or above the last bucket's upper bound are
// counted separately (Under, Over) instead of being clamped, so saturation
// is visible. The zero value is not usable; build with NewHistogram.
type Histogram struct {
	lo     float64
	ratio  float64
	counts []int
	under  int
	over   int
	total  int
	sum    float64
}

// HistogramBucket is one bucket of a snapshot: the half-open value range
// [Lo, Hi) and the number of samples that fell in it.
type HistogramBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

// HistogramSnapshot is the JSON-friendly digest of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations, including Under and Over.
	Count int `json:"count"`
	// Under and Over count samples below the first bucket and at or above
	// the last bucket's upper bound.
	Under int `json:"under,omitempty"`
	Over  int `json:"over,omitempty"`
	// Buckets lists every bucket in increasing value order, empty ones
	// included (the shape stays fixed over the histogram's life).
	Buckets []HistogramBucket `json:"buckets"`
}

// NewHistogram builds a log-spaced histogram of the given bucket count
// covering [lo, hi): the first bucket starts at lo, the last ends at hi,
// and consecutive bucket bounds grow by the constant ratio (hi/lo)^(1/n).
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo > 0) || math.IsInf(lo, 0) {
		return nil, fmt.Errorf("stats: histogram lower bound must be positive and finite, got %g", lo)
	}
	if !(hi > lo) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("stats: histogram upper bound must exceed the lower bound %g, got %g", lo, hi)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", buckets)
	}
	return &Histogram{
		lo:     lo,
		ratio:  math.Pow(hi/lo, 1/float64(buckets)),
		counts: make([]int, buckets),
	}, nil
}

// Observe adds one sample. NaN samples are ignored.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.total++
	h.sum += v
	if v < h.lo {
		h.under++
		return
	}
	// Index by logarithm, then repair the boundary cases floating point
	// gets wrong: a sample must never land below its bucket's lower bound
	// or at/above its upper bound.
	i := int(math.Log(v/h.lo) / math.Log(h.ratio))
	if i < 0 {
		i = 0
	}
	for i < len(h.counts) && v >= h.bound(i+1) {
		i++
	}
	for i > 0 && v < h.bound(i) {
		i--
	}
	if i >= len(h.counts) {
		h.over++
		return
	}
	h.counts[i]++
}

// bound returns the i-th bucket boundary, lo * ratio^i.
func (h *Histogram) bound(i int) float64 {
	return h.lo * math.Pow(h.ratio, float64(i))
}

// Count returns the total number of observations, including under- and
// overflow.
func (h *Histogram) Count() int { return h.total }

// Sum returns the sum of all observed values, under- and overflow
// included, matching the Prometheus histogram _sum convention.
func (h *Histogram) Sum() float64 { return h.sum }

// Snapshot returns the current bucket counts in a JSON-friendly shape.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.total,
		Under:   h.under,
		Over:    h.over,
		Buckets: make([]HistogramBucket, len(h.counts)),
	}
	for i, c := range h.counts {
		s.Buckets[i] = HistogramBucket{Lo: h.bound(i), Hi: h.bound(i + 1), Count: c}
	}
	return s
}

// Quantile returns an upper bound on the p-th quantile (p in [0, 1]): the
// upper bound of the bucket holding the nearest-rank sample. Underflow
// samples resolve to the first bucket's lower bound, overflow samples to
// +Inf. An empty histogram returns 0; p is clamped to [0, 1].
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	seen := h.under
	if rank <= seen {
		return h.lo
	}
	for i, c := range h.counts {
		seen += c
		if rank <= seen {
			return h.bound(i + 1)
		}
	}
	return math.Inf(1)
}
