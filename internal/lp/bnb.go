package lp

import (
	"fmt"
	"math"
)

// BinaryOptions tunes SolveBinary.
type BinaryOptions struct {
	// MaxNodes bounds the number of branch-and-bound nodes explored
	// (default 10000).
	MaxNodes int
	// LP carries the options used for every LP relaxation.
	LP *Options
}

// BinarySolution is the result of SolveBinary.
type BinarySolution struct {
	Status Status
	// X is the best integral assignment found (values 0 or 1).
	X []float64
	// Objective is its cost.
	Objective float64
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
	// Proven reports whether the returned solution is proven optimal (the
	// search completed within MaxNodes).
	Proven bool
}

// SolveBinary minimizes the problem with every variable restricted to
// {0, 1}, using LP-relaxation branch and bound. It is intended for small
// instances (tests and exact reference values for the lower bound), not for
// production-size problems.
func SolveBinary(p *Problem, opts *BinaryOptions) (*BinarySolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxNodes := 10000
	var lpOpts *Options
	if opts != nil {
		if opts.MaxNodes > 0 {
			maxNodes = opts.MaxNodes
		}
		lpOpts = opts.LP
	}

	best := &BinarySolution{Status: Infeasible, Objective: math.Inf(1)}
	type node struct {
		fixed map[int]float64
	}
	stack := []node{{fixed: map[int]float64{}}}

	for len(stack) > 0 && best.Nodes < maxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		best.Nodes++

		rel := relaxWithBounds(p, nd.fixed)
		sol, err := Solve(rel, lpOpts)
		if err != nil {
			return nil, err
		}
		if sol.Status == Unbounded {
			return nil, fmt.Errorf("lp: binary relaxation unbounded, the model is malformed")
		}
		if sol.Status != Optimal {
			continue // infeasible or iteration limit: prune
		}
		if sol.Objective >= best.Objective-1e-9 {
			continue // bound prune
		}
		// Find the most fractional variable.
		branchVar, frac := -1, 0.0
		for j := 0; j < p.NumVars; j++ {
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > 1e-6 && f > frac {
				frac = f
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integral solution.
			x := make([]float64, p.NumVars)
			for j := range x {
				x[j] = math.Round(sol.X[j])
			}
			best.Status = Optimal
			best.X = x
			best.Objective = sol.Objective
			continue
		}
		for _, v := range []float64{1, 0} {
			child := map[int]float64{}
			for k, val := range nd.fixed {
				child[k] = val
			}
			child[branchVar] = v
			stack = append(stack, node{fixed: child})
		}
	}
	best.Proven = len(stack) == 0 && best.Nodes <= maxNodes
	return best, nil
}

// relaxWithBounds builds the LP relaxation of the binary problem with the
// given variables fixed: every variable gets an x <= 1 row, and fixed
// variables get an equality row.
func relaxWithBounds(p *Problem, fixed map[int]float64) *Problem {
	rel := NewProblem(p.NumVars)
	copy(rel.Objective, p.Objective)
	rel.Constraints = append(rel.Constraints, p.Constraints...)
	for j := 0; j < p.NumVars; j++ {
		coeffs := make([]float64, j+1)
		coeffs[j] = 1
		if v, ok := fixed[j]; ok {
			rel.AddConstraint(coeffs, EQ, v)
		} else {
			rel.AddConstraint(coeffs, LE, 1)
		}
	}
	return rel
}
