package lp

import "math"

// tableau is the dense simplex tableau shared by both phases.
type tableau struct {
	rows, cols    int
	a             [][]float64 // rows x cols constraint matrix (updated in place)
	b             []float64   // right-hand side, kept non-negative
	obj           []float64   // reduced-cost row for the current phase
	phaseCost     []float64   // original cost of each column for the current phase
	basis         []int       // basic column of each row
	numStructural int
	numArtificial int
	artStart      int // first artificial column index
	tol           float64
}

// newTableau builds the standard-form tableau: slack/surplus columns for
// inequality rows and artificial columns for >=/= rows, with a feasible
// starting basis.
func newTableau(p *Problem, tol float64) *tableau {
	n := p.NumVars
	m := len(p.Constraints)

	// Normalize rows to non-negative RHS and count auxiliary columns.
	type rowInfo struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	rowsInfo := make([]rowInfo, m)
	numSlack, numArt := 0, 0
	for i, c := range p.Constraints {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		sense := c.Sense
		rhs := c.RHS
		if rhs < 0 {
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rowsInfo[i] = rowInfo{coeffs, sense, rhs}
		switch sense {
		case LE, GE:
			numSlack++
		}
		if sense == GE || sense == EQ {
			numArt++
		}
	}

	t := &tableau{
		rows:          m,
		cols:          n + numSlack + numArt,
		numStructural: n,
		numArtificial: numArt,
		artStart:      n + numSlack,
		tol:           tol,
	}
	t.a = make([][]float64, m)
	t.b = make([]float64, m)
	t.basis = make([]int, m)
	t.obj = make([]float64, t.cols)
	t.phaseCost = make([]float64, t.cols)

	slackCol := n
	artCol := t.artStart
	for i, ri := range rowsInfo {
		row := make([]float64, t.cols)
		copy(row, ri.coeffs)
		t.b[i] = ri.rhs
		switch ri.sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

// setPhase1Objective installs the auxiliary objective (sum of artificials)
// and prices out the initial basis.
func (t *tableau) setPhase1Objective() {
	for j := range t.phaseCost {
		if j >= t.artStart {
			t.phaseCost[j] = 1
		} else {
			t.phaseCost[j] = 0
		}
	}
	t.recomputeReducedCosts()
}

// setPhase2Objective installs the real objective. Artificial columns keep a
// zero cost but are excluded from entering the basis by iterate().
func (t *tableau) setPhase2Objective(p *Problem) {
	for j := range t.phaseCost {
		switch {
		case j < t.numStructural:
			t.phaseCost[j] = p.Objective[j]
		default:
			t.phaseCost[j] = 0
		}
	}
	t.recomputeReducedCosts()
}

// recomputeReducedCosts prices every column against the current basis:
// obj[j] = c_j - sum_i c_basis(i) * a[i][j].
func (t *tableau) recomputeReducedCosts() {
	copy(t.obj, t.phaseCost)
	for i := 0; i < t.rows; i++ {
		cb := t.phaseCost[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= cb * row[j]
		}
	}
}

// objectiveValue returns the current objective of the basic solution.
func (t *tableau) objectiveValue() float64 {
	v := 0.0
	for i := 0; i < t.rows; i++ {
		v += t.phaseCost[t.basis[i]] * t.b[i]
	}
	return v
}

// iterate runs simplex pivots until optimality, unboundedness or the
// iteration limit. Artificial columns may enter the basis only during
// phase 1 (allowArtificial).
func (t *tableau) iterate(maxIter int, allowArtificial bool) (Status, int) {
	iters := 0
	degenerate := 0
	useBland := false
	for ; iters < maxIter; iters++ {
		enter := t.chooseEntering(allowArtificial, useBland)
		if enter < 0 {
			return Optimal, iters
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			return Unbounded, iters
		}
		if t.b[leave]/t.a[leave][enter] < t.tol {
			degenerate++
			if degenerate > 64 {
				useBland = true
			}
		} else {
			degenerate = 0
			useBland = false
		}
		t.pivot(leave, enter)
	}
	return IterationLimit, iters
}

// chooseEntering picks the entering column: Dantzig's most negative reduced
// cost, or the smallest eligible index under Bland's rule.
func (t *tableau) chooseEntering(allowArtificial, useBland bool) int {
	limit := t.cols
	if !allowArtificial {
		limit = t.artStart
	}
	best := -1
	bestVal := -t.tol
	for j := 0; j < limit; j++ {
		if t.obj[j] < bestVal {
			if useBland {
				return j
			}
			best = j
			bestVal = t.obj[j]
		}
	}
	return best
}

// chooseLeaving performs the ratio test for the entering column, breaking
// ties on the smallest basic variable index (lexicographic safeguard).
func (t *tableau) chooseLeaving(enter int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		pivot := t.a[i][enter]
		if pivot <= t.tol {
			continue
		}
		ratio := t.b[i] / pivot
		if ratio < bestRatio-t.tol || (ratio < bestRatio+t.tol && (best < 0 || t.basis[i] < t.basis[best])) {
			best = i
			bestRatio = ratio
		}
	}
	return best
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	pivotVal := t.a[leave][enter]
	rowL := t.a[leave]
	inv := 1 / pivotVal
	for j := 0; j < t.cols; j++ {
		rowL[j] *= inv
	}
	t.b[leave] *= inv
	if t.b[leave] < 0 && t.b[leave] > -1e-11 {
		t.b[leave] = 0
	}
	rowL[enter] = 1 // kill round-off on the pivot element

	for i := 0; i < t.rows; i++ {
		if i == leave {
			continue
		}
		factor := t.a[i][enter]
		if factor == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			row[j] -= factor * rowL[j]
		}
		row[enter] = 0
		t.b[i] -= factor * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	factor := t.obj[enter]
	if factor != 0 {
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= factor * rowL[j]
		}
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}

// removeArtificialsFromBasis pivots zero-valued artificial variables out of
// the basis after phase 1; rows whose artificial cannot be pivoted out are
// redundant and dropped from the tableau.
func (t *tableau) removeArtificialsFromBasis() {
	keep := make([]bool, t.rows)
	for i := range keep {
		keep[i] = true
	}
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivotCol := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > t.tol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		} else {
			keep[i] = false // redundant constraint
		}
	}
	// Compact rows if any redundant constraint was found.
	newRows := 0
	for i := 0; i < t.rows; i++ {
		if keep[i] {
			t.a[newRows] = t.a[i]
			t.b[newRows] = t.b[i]
			t.basis[newRows] = t.basis[i]
			newRows++
		}
	}
	t.a = t.a[:newRows]
	t.b = t.b[:newRows]
	t.basis = t.basis[:newRows]
	t.rows = newRows
}

// extractSolution reads the values of the first n structural variables.
func (t *tableau) extractSolution(n int) []float64 {
	x := make([]float64, n)
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.b[i]
		}
	}
	return x
}
