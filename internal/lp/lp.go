// Package lp implements a dense two-phase primal simplex solver for linear
// programs in inequality form. It is the substrate behind the paper's
// minsum lower bound (section 3.3), which relaxes an integer linear program
// into an LP. Only the Go standard library is used.
//
// The solver targets the moderate problem sizes produced by the lower
// bound: a few hundred rows and a few thousand columns. It uses the
// classical tableau form with Dantzig pricing and an automatic switch to
// Bland's rule to escape degenerate cycling.
package lp

import (
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	// LE is "less than or equal".
	LE Sense = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the usual mathematical symbol of the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is one row of the LP: Coeffs . x  (Sense)  RHS.
// Coeffs may be shorter than the number of variables; missing entries are
// treated as zero.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program: minimize Objective . x subject to the
// constraints and x >= 0.
//
// Variables are implicitly non-negative; general bounds can be encoded as
// extra constraints by the caller.
type Problem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Objective holds the cost of each variable (minimization).
	Objective []float64
	// Constraints are the rows of the program.
	Constraints []Constraint
}

// NewProblem allocates a problem with n variables and a zero objective.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// SetObjective sets the cost of variable j.
func (p *Problem) SetObjective(j int, cost float64) {
	p.Objective[j] = cost
}

// AddConstraint appends a constraint row.
func (p *Problem) AddConstraint(coeffs []float64, sense Sense, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs})
}

// Validate checks structural sanity of the problem.
func (p *Problem) Validate() error {
	if p.NumVars < 1 {
		return fmt.Errorf("lp: problem needs at least one variable")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d entries for %d variables", len(p.Objective), p.NumVars)
	}
	for j, c := range p.Objective {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: invalid objective coefficient %g for variable %d", c, j)
		}
	}
	for i, row := range p.Constraints {
		if len(row.Coeffs) > p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(row.Coeffs), p.NumVars)
		}
		if math.IsNaN(row.RHS) || math.IsInf(row.RHS, 0) {
			return fmt.Errorf("lp: constraint %d has invalid RHS %g", i, row.RHS)
		}
		for j, c := range row.Coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("lp: constraint %d has invalid coefficient %g at variable %d", i, c, j)
			}
		}
		switch row.Sense {
		case LE, GE, EQ:
		default:
			return fmt.Errorf("lp: constraint %d has unknown sense %d", i, int(row.Sense))
		}
	}
	return nil
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal: an optimal basic solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective can decrease without bound.
	Unbounded
	// IterationLimit: the solver gave up after too many pivots.
	IterationLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X holds the value of each structural variable (only meaningful when
	// Status == Optimal).
	X []float64
	// Objective is the objective value of X.
	Objective float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
}

// Options tunes the solver.
type Options struct {
	// MaxIterations bounds the total number of pivots (default: 50 times
	// the number of rows plus columns).
	MaxIterations int
	// Tolerance is the numerical tolerance on reduced costs and pivots
	// (default 1e-9).
	Tolerance float64
}

const defaultTolerance = 1e-9

// Solve optimizes the problem with the two-phase primal simplex method.
func Solve(p *Problem, opts *Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tol := defaultTolerance
	maxIter := 0
	if opts != nil {
		if opts.Tolerance > 0 {
			tol = opts.Tolerance
		}
		maxIter = opts.MaxIterations
	}

	t := newTableau(p, tol)
	if maxIter <= 0 {
		maxIter = 50 * (t.rows + t.cols)
	}

	sol := &Solution{}

	// Phase 1: drive the artificial variables to zero.
	if t.numArtificial > 0 {
		t.setPhase1Objective()
		status, iters := t.iterate(maxIter, true)
		sol.Iterations += iters
		if status == IterationLimit {
			sol.Status = IterationLimit
			return sol, nil
		}
		if t.objectiveValue() > 1e-6 {
			sol.Status = Infeasible
			return sol, nil
		}
		t.removeArtificialsFromBasis()
	}

	// Phase 2: optimize the real objective.
	t.setPhase2Objective(p)
	status, iters := t.iterate(maxIter, false)
	sol.Iterations += iters
	sol.Status = status
	if status != Optimal {
		return sol, nil
	}
	sol.X = t.extractSolution(p.NumVars)
	obj := 0.0
	for j := 0; j < p.NumVars; j++ {
		obj += p.Objective[j] * sol.X[j]
	}
	sol.Objective = obj
	return sol, nil
}
