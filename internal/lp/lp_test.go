package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatalf("sense strings wrong")
	}
	if Sense(9).String() == "" || Status(9).String() == "" {
		t.Fatalf("unknown enums should still print")
	}
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterationLimit} {
		if s.String() == "" {
			t.Fatalf("status %d has empty string", s)
		}
	}
}

func TestValidateRejectsMalformedProblems(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1} // wrong length
	if err := p.Validate(); err == nil {
		t.Fatalf("objective length mismatch must fail")
	}
	p = NewProblem(0)
	if err := p.Validate(); err == nil {
		t.Fatalf("zero variables must fail")
	}
	p = NewProblem(1)
	p.SetObjective(0, math.NaN())
	if err := p.Validate(); err == nil {
		t.Fatalf("NaN objective must fail")
	}
	p = NewProblem(1)
	p.AddConstraint([]float64{1, 2}, LE, 1)
	if err := p.Validate(); err == nil {
		t.Fatalf("too many coefficients must fail")
	}
	p = NewProblem(1)
	p.AddConstraint([]float64{1}, Sense(7), 1)
	if err := p.Validate(); err == nil {
		t.Fatalf("unknown sense must fail")
	}
	p = NewProblem(1)
	p.AddConstraint([]float64{math.Inf(1)}, LE, 1)
	if err := p.Validate(); err == nil {
		t.Fatalf("Inf coefficient must fail")
	}
	p = NewProblem(1)
	p.AddConstraint([]float64{1}, LE, math.NaN())
	if err := p.Validate(); err == nil {
		t.Fatalf("NaN RHS must fail")
	}
}

func TestSolveSimpleMaximizationAsMinimization(t *testing.T) {
	// max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  =>  x=2, y=6, obj 36.
	p := NewProblem(2)
	p.SetObjective(0, -3)
	p.SetObjective(1, -5)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -36, 1e-6) {
		t.Fatalf("objective = %g, want -36", sol.Objective)
	}
	if !approx(sol.X[0], 2, 1e-6) || !approx(sol.X[1], 6, 1e-6) {
		t.Fatalf("x = %v, want [2 6]", sol.X)
	}
}

func TestSolveWithGEAndEQConstraints(t *testing.T) {
	// min 2x + 3y  s.t. x + y >= 4, x = 1  =>  x=1, y=3, obj 11.
	p := NewProblem(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	p.AddConstraint([]float64{1, 1}, GE, 4)
	p.AddConstraint([]float64{1, 0}, EQ, 1)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 11, 1e-6) {
		t.Fatalf("got %v obj %g, want optimal 11", sol.Status, sol.Objective)
	}
}

func TestSolveNegativeRHSNormalization(t *testing.T) {
	// min x  s.t. -x <= -3   (i.e. x >= 3)  =>  x=3.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{-1}, LE, -3)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[0], 3, 1e-6) {
		t.Fatalf("got %v x=%v", sol.Status, sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and x >= 3 cannot hold together.
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 3)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x with only x >= 1: objective goes to -inf.
	p := NewProblem(1)
	p.SetObjective(0, -1)
	p.AddConstraint([]float64{1}, GE, 1)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveDegenerateAndRedundant(t *testing.T) {
	// Redundant equality pair and degenerate vertex.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint([]float64{1, 1}, GE, 2)
	p.AddConstraint([]float64{2, 2}, GE, 4) // redundant copy
	p.AddConstraint([]float64{1, 0}, LE, 2)
	p.AddConstraint([]float64{0, 1}, LE, 2)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 2, 1e-6) {
		t.Fatalf("got %v obj %g, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestSolveEqualityOnlySystem(t *testing.T) {
	// x + y = 5, x - y = 1 => x=3, y=2; minimize x.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, -1}, EQ, 1)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.X[0], 3, 1e-6) || !approx(sol.X[1], 2, 1e-6) {
		t.Fatalf("got %v x=%v", sol.Status, sol.X)
	}
}

func TestSolveIterationLimit(t *testing.T) {
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObjective(j, -1)
	}
	p.AddConstraint([]float64{1, 1, 1}, LE, 10)
	sol, err := Solve(p, &Options{MaxIterations: 0}) // 0 means default; use 1 explicitly below
	if err != nil || sol.Status != Optimal {
		t.Fatalf("default iteration limit should solve: %v %v", sol, err)
	}
	sol, err = Solve(p, &Options{MaxIterations: -1})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("negative limit treated as default should solve: %v %v", sol, err)
	}
}

// bruteForceLP evaluates a small LP by enumerating basic solutions built
// from all pairs of tight constraints (2-variable problems only).
func bruteForceLP2(p *Problem) (float64, bool) {
	type line struct{ a, b, c float64 } // a*x + b*y = c
	var lines []line
	for _, cons := range p.Constraints {
		a, b := 0.0, 0.0
		if len(cons.Coeffs) > 0 {
			a = cons.Coeffs[0]
		}
		if len(cons.Coeffs) > 1 {
			b = cons.Coeffs[1]
		}
		lines = append(lines, line{a, b, cons.RHS})
	}
	// Axis constraints x=0, y=0.
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
	feasible := func(x, y float64) bool {
		if x < -1e-7 || y < -1e-7 {
			return false
		}
		for _, cons := range p.Constraints {
			a, b := 0.0, 0.0
			if len(cons.Coeffs) > 0 {
				a = cons.Coeffs[0]
			}
			if len(cons.Coeffs) > 1 {
				b = cons.Coeffs[1]
			}
			v := a*x + b*y
			switch cons.Sense {
			case LE:
				if v > cons.RHS+1e-7 {
					return false
				}
			case GE:
				if v < cons.RHS-1e-7 {
					return false
				}
			case EQ:
				if math.Abs(v-cons.RHS) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	best := math.Inf(1)
	found := false
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			l1, l2 := lines[i], lines[j]
			det := l1.a*l2.b - l2.a*l1.b
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (l1.c*l2.b - l2.c*l1.b) / det
			y := (l1.a*l2.c - l2.a*l1.c) / det
			if feasible(x, y) {
				found = true
				obj := p.Objective[0]*x + p.Objective[1]*y
				if obj < best {
					best = obj
				}
			}
		}
	}
	return best, found
}

func TestPropertySimplexMatchesVertexEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewProblem(2)
		p.SetObjective(0, float64(r.Intn(11)))
		p.SetObjective(1, float64(r.Intn(11)))
		nCons := 2 + r.Intn(4)
		for i := 0; i < nCons; i++ {
			coeffs := []float64{float64(r.Intn(7)), float64(r.Intn(7))}
			sense := LE
			rhs := float64(1 + r.Intn(20))
			if r.Intn(3) == 0 && coeffs[0]+coeffs[1] > 0 {
				sense = GE
				rhs = float64(r.Intn(8))
			}
			p.AddConstraint(coeffs, sense, rhs)
		}
		// Keep the region bounded so vertex enumeration is exhaustive.
		p.AddConstraint([]float64{1, 0}, LE, 50)
		p.AddConstraint([]float64{0, 1}, LE, 50)

		sol, err := Solve(p, nil)
		if err != nil {
			return false
		}
		want, feasible := bruteForceLP2(p)
		if !feasible {
			return sol.Status == Infeasible
		}
		if sol.Status != Optimal {
			return false
		}
		return approx(sol.Objective, want, 1e-5*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeSparseCoveringProblem(t *testing.T) {
	// A structured problem similar in shape to the minsum lower bound:
	// n tasks x K intervals, coverage >= 1 per task, capacity per interval.
	n, K := 60, 6
	p := NewProblem(n * K)
	for i := 0; i < n; i++ {
		cover := make([]float64, n*K)
		for j := 0; j < K; j++ {
			p.SetObjective(i*K+j, float64(j+1)*(1+float64(i%7)))
			cover[i*K+j] = 1
		}
		p.AddConstraint(cover, GE, 1)
	}
	for j := 0; j < K; j++ {
		cap := make([]float64, n*K)
		for i := 0; i < n; i++ {
			for l := 0; l <= j; l++ {
				cap[i*K+l] = 1 + float64(i%3)
			}
		}
		p.AddConstraint(cap, LE, float64((j+1)*25))
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective <= 0 {
		t.Fatalf("objective should be positive, got %g", sol.Objective)
	}
	// Feasibility check of the returned point.
	for i, cons := range p.Constraints {
		v := 0.0
		for j, c := range cons.Coeffs {
			v += c * sol.X[j]
		}
		switch cons.Sense {
		case GE:
			if v < cons.RHS-1e-6 {
				t.Fatalf("constraint %d violated: %g < %g", i, v, cons.RHS)
			}
		case LE:
			if v > cons.RHS+1e-6 {
				t.Fatalf("constraint %d violated: %g > %g", i, v, cons.RHS)
			}
		}
	}
}

func TestSolveBinaryKnapsackLike(t *testing.T) {
	// max 10a + 12b + 7c with 3a + 4b + 2c <= 7  => a,c and b? brute: a+b=22 cost 7.
	p := NewProblem(3)
	p.SetObjective(0, -10)
	p.SetObjective(1, -12)
	p.SetObjective(2, -7)
	p.AddConstraint([]float64{3, 4, 2}, LE, 7)
	sol, err := SolveBinary(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !sol.Proven {
		t.Fatalf("status = %v proven=%v", sol.Status, sol.Proven)
	}
	if !approx(sol.Objective, -22, 1e-6) {
		t.Fatalf("objective = %g, want -22", sol.Objective)
	}
	for j, v := range sol.X {
		if v != 0 && v != 1 {
			t.Fatalf("x[%d] = %g not binary", j, v)
		}
	}
}

func TestSolveBinaryInfeasible(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint([]float64{1, 1}, GE, 3) // at most 2 with binaries
	sol, err := SolveBinary(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveBinaryLowerBoundedByLP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, float64(1+r.Intn(10)))
		}
		cover := make([]float64, n)
		for j := range cover {
			cover[j] = 1
		}
		p.AddConstraint(cover, GE, float64(1+r.Intn(n)))
		cap := make([]float64, n)
		for j := range cap {
			cap[j] = float64(1 + r.Intn(4))
		}
		p.AddConstraint(cap, LE, float64(n+2))

		bin, err := SolveBinary(p, nil)
		if err != nil || bin.Status != Optimal {
			return err == nil && bin.Status == Infeasible
		}
		rel := relaxWithBounds(p, nil)
		lpSol, err := Solve(rel, nil)
		if err != nil || lpSol.Status != Optimal {
			return false
		}
		// LP relaxation is a lower bound of the binary optimum.
		return lpSol.Objective <= bin.Objective+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
