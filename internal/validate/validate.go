// Package validate defines the unified configuration-validation error of
// the library: an error that names the exact field path that is wrong
// ("clusters[2].machines", "arrivals.rate"), so a bad config fails eagerly
// — at construction, before any goroutine spawns — with a message that
// points at the offending knob instead of a free-form string.
//
// The scenario facade re-exports Error as ValidationError; the eager
// checks of cluster.New, grid.New and serve.NewServer all produce it, and
// wrapping layers extend the path with Prefix so a shard error surfaces as
// "clusters[2].m: ..." at the grid level.
package validate

import (
	"fmt"
	"strings"
)

// Error is a configuration validation failure anchored at a field path.
type Error struct {
	// Field is the dotted path of the offending field, e.g.
	// "clusters[2].machines" or "arrivals.rate". Indexed segments use
	// bracket syntax. Empty means the config as a whole.
	Field string
	// Msg says what is wrong with the field's value.
	Msg string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Field == "" {
		return e.Msg
	}
	return e.Field + ": " + e.Msg
}

// Errorf builds an Error at the field path with a formatted message.
func Errorf(field, format string, args ...any) *Error {
	return &Error{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Index renders one indexed path segment: Index("clusters", 2) is
// "clusters[2]".
func Index(field string, i int) string {
	return fmt.Sprintf("%s[%d]", field, i)
}

// Prefix extends the field path of err with an outer segment: a *Error
// keeps its message and gains the prefix; any other error is converted,
// its text becoming the message. A nil err stays nil.
func Prefix(field string, err error) error {
	if err == nil {
		return nil
	}
	if e, ok := err.(*Error); ok {
		return &Error{Field: join(field, e.Field), Msg: e.Msg}
	}
	return &Error{Field: field, Msg: err.Error()}
}

// join concatenates two path segments with a dot, except in front of an
// index bracket (and around empty segments).
func join(outer, inner string) string {
	switch {
	case outer == "":
		return inner
	case inner == "":
		return outer
	case strings.HasPrefix(inner, "["):
		return outer + inner
	default:
		return outer + "." + inner
	}
}
