package flight

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bicriteria/internal/cluster"
	"bicriteria/internal/grid"
)

// fixture returns a small event set resembling a two-cluster replay with
// one outage: job 4 is killed mid-batch and rebatched, job 7 is killed
// and never returns.
func fixture() []Event {
	return []Event{
		{Kind: KindSubmitted, Job: 3, Time: 0, Cluster: -1, Batch: -1},
		{Kind: KindSubmitted, Job: 4, Time: 0, Cluster: -1, Batch: -1},
		{Kind: KindSubmitted, Job: 7, Time: 0, Cluster: -1, Batch: -1},
		{Kind: KindRouted, Job: 3, Time: 0, Cluster: 0, Batch: -1, Backlog: 0.5,
			Verdicts: []Verdict{{Cluster: 0, Backlog: 0.5, State: "chosen"}, {Cluster: 1, Backlog: 0.75, State: "open"}}},
		{Kind: KindRouted, Job: 4, Time: 0, Cluster: 1, Batch: -1, Backlog: 0.25},
		{Kind: KindRouted, Job: 7, Time: 0, Cluster: 1, Batch: -1, Backlog: 0.5},
		{Kind: KindBatched, Job: 3, Time: 0, Cluster: 0, Batch: 0, Winner: "demt", LowerBound: 10},
		{Kind: KindPlanned, Job: 3, Time: 0, Cluster: 0, Batch: 0, Allotment: 4},
		{Kind: KindStarted, Job: 3, Time: 0, Cluster: 0, Batch: 0, Allotment: 4, End: 12},
		{Kind: KindDone, Job: 3, Time: 12, Cluster: 0, Batch: 0},
		{Kind: KindBatched, Job: 4, Time: 0, Cluster: 1, Batch: 0, Winner: "list-saf", LowerBound: 8},
		{Kind: KindBatched, Job: 7, Time: 0, Cluster: 1, Batch: 0, Winner: "list-saf", LowerBound: 8},
		{Kind: KindKilled, Job: 4, Time: 5, Cluster: 1, Batch: 0},
		{Kind: KindKilled, Job: 7, Time: 5, Cluster: 1, Batch: 0},
		{Kind: KindMigrated, Job: 4, Time: 5, Cluster: 0, Batch: -1, Backlog: 1.5},
		{Kind: KindBatched, Job: 4, Time: 12, Cluster: 0, Batch: 1, Winner: "gang", LowerBound: 6},
		{Kind: KindStarted, Job: 4, Time: 12, Cluster: 0, Batch: 1, Allotment: 2, End: 20},
		{Kind: KindDone, Job: 4, Time: 20, Cluster: 0, Batch: 1},
	}
}

func record(events []Event) *Recorder {
	r := NewRecorder()
	for _, ev := range events {
		r.Add(ev)
	}
	return r
}

// TestEventsOrderIndependent is the crown-jewel property at the recorder
// level: whatever order events arrive in (a concurrent replay delivers
// them nondeterministically), Events and every rendered timeline are
// byte-identical.
func TestEventsOrderIndependent(t *testing.T) {
	base := fixture()
	want := record(base).Events()
	var wantText bytes.Buffer
	if err := FormatTimeline(&wantText, 4, record(base).Timeline(4)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Event(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := record(shuffled)
		if got := r.Events(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Events depends on insertion order (trial %d)", trial)
		}
		var got bytes.Buffer
		if err := FormatTimeline(&got, 4, r.Timeline(4)); err != nil {
			t.Fatal(err)
		}
		if got.String() != wantText.String() {
			t.Fatalf("timeline depends on insertion order (trial %d):\n--- want ---\n%s--- got ---\n%s",
				trial, wantText.String(), got.String())
		}
	}
}

// TestTimelineSynthesis pins the resubmitted/lost synthesis: a kill
// followed by a later batched event becomes a resubmission at the kill
// instant, a kill never followed by one becomes the job's loss.
func TestTimelineSynthesis(t *testing.T) {
	r := record(fixture())

	kinds := func(job int) []Kind {
		var out []Kind
		for _, ev := range r.Timeline(job) {
			out = append(out, ev.Kind)
		}
		return out
	}

	// At the shared outage instant t=5 the kind rank breaks the tie:
	// migrated (rank 2) renders before killed (rank 6). The ranks are
	// frozen — this order is part of the byte-identical guarantee.
	wantRebatched := []Kind{KindSubmitted, KindRouted, KindBatched, KindMigrated, KindKilled,
		KindResubmitted, KindBatched, KindStarted, KindDone}
	if got := kinds(4); !reflect.DeepEqual(got, wantRebatched) {
		t.Fatalf("rebatched job 4 stages = %v, want %v", got, wantRebatched)
	}
	wantLost := []Kind{KindSubmitted, KindRouted, KindBatched, KindKilled, KindLost}
	if got := kinds(7); !reflect.DeepEqual(got, wantLost) {
		t.Fatalf("lost job 7 stages = %v, want %v", got, wantLost)
	}
	if got := r.Timeline(99); got != nil {
		t.Fatalf("Timeline(99) = %v, want nil for an unseen job", got)
	}
	if got := r.Jobs(); !reflect.DeepEqual(got, []int{3, 4, 7}) {
		t.Fatalf("Jobs = %v, want [3 4 7]", got)
	}
}

// TestJSONLRoundTrip writes a trace, sniffs it, reads it back and
// re-renders it: the round-tripped recorder must be byte-identical.
func TestJSONLRoundTrip(t *testing.T) {
	r := record(fixture())
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsTrace(buf.Bytes()) {
		t.Fatal("IsTrace rejected a written trace")
	}
	if !strings.HasPrefix(buf.String(), `{"flight_format":1}`+"\n") {
		t.Fatalf("trace header drifted: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}

	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Events(), r.Events()) {
		t.Fatal("round-tripped events differ")
	}
	var again bytes.Buffer
	if err := back.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Fatal("round-tripped trace is not byte-identical")
	}
}

func TestIsTraceRejectsOtherJSON(t *testing.T) {
	for _, data := range []string{
		"",
		"not json at all",
		`{"version": 1, "name": "scenario"}`,
		`{"flight_format": 0}`,
	} {
		if IsTrace([]byte(data)) {
			t.Errorf("IsTrace(%q) = true, want false", data)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"version": 1}` + "\n")); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"flight_format": 99}` + "\n")); err == nil {
		t.Error("newer format version accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"flight_format": 1}` + "\nnot json\n")); err == nil {
		t.Error("malformed event line accepted")
	}
}

// TestFromGridReport pins the serve-layer rebuild path: submissions come
// from non-migrated decisions, batches (with winner, lower bound and
// placements) from the per-shard reports.
func TestFromGridReport(t *testing.T) {
	rep := &grid.Report{
		Decisions: []grid.Decision{
			{JobID: 1, Release: 0, Cluster: 0, Backlog: 0.5,
				Verdicts: []grid.ShardVerdict{{Cluster: 0, Backlog: 0.5, State: grid.VerdictChosen}}},
			{JobID: 1, Release: 4, Cluster: 1, Backlog: 0.25, Migrated: true},
		},
		Clusters: []*cluster.Report{
			nil,
			{Batches: []cluster.BatchReport{{
				Index: 0, FireTime: 4, Jobs: []int{1}, Winner: "demt", LowerBound: 3,
				Placements: []cluster.Placement{{TaskID: 1, Start: 4, End: 9, Procs: 2}},
			}}},
		},
	}
	r := FromGridReport(rep)
	want := []Kind{KindSubmitted, KindRouted, KindMigrated, KindBatched, KindPlanned, KindStarted, KindDone}
	var got []Kind
	for _, ev := range r.Timeline(1) {
		got = append(got, ev.Kind)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	events := r.Events()
	for _, ev := range events {
		if ev.Kind == KindBatched {
			if ev.Winner != "demt" || ev.LowerBound != 3 {
				t.Fatalf("batched event lost provenance: %+v", ev)
			}
		}
		if ev.Kind == KindMigrated && ev.Time != 4 {
			t.Fatalf("migrated event at t=%g, want 4", ev.Time)
		}
	}
	if n := len(FromGridReport(nil).Events()); n != 0 {
		t.Fatalf("nil report yielded %d events, want 0", n)
	}
}
