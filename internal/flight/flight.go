// Package flight is the per-job flight recorder: it consumes the event
// stream of a scenario replay (routing decisions with per-shard verdicts,
// committed batches with their provenance, kills and migrations) and
// materializes one timeline per job — submitted → routed → batched →
// planned → started → killed/resubmitted → done — answering *why* every
// scheduling decision fell the way it did.
//
// The recorder inherits the repo's crown-jewel guarantee: events are kept
// under a total order (time, then job, then a fixed kind rank, then the
// remaining fields), so the rendered timeline of a concurrent replay is
// byte-identical to a sequential one. Timelines synthesize the
// resubmitted/lost stage deterministically: a kill followed by a later
// batch containing the job is a resubmission, a kill never followed by
// one is the job's loss.
package flight

import (
	"sort"
	"sync"

	"bicriteria/internal/cluster"
	"bicriteria/internal/grid"
)

// Kind labels one stage of a job's flight.
type Kind string

// The flight stages in lifecycle order. KindResubmitted and KindLost are
// synthesized by Timeline from kill events; the others are recorded.
const (
	KindSubmitted   Kind = "submitted"
	KindRouted      Kind = "routed"
	KindMigrated    Kind = "migrated"
	KindBatched     Kind = "batched"
	KindPlanned     Kind = "planned"
	KindStarted     Kind = "started"
	KindKilled      Kind = "killed"
	KindResubmitted Kind = "resubmitted"
	KindLost        Kind = "lost"
	KindDone        Kind = "done"
)

// rank fixes the tiebreak order of kinds at equal timestamps (lifecycle
// order). The ranks are part of the total order behind byte-identical
// rendering — they must never change.
func (k Kind) rank() int {
	switch k {
	case KindSubmitted:
		return 0
	case KindRouted:
		return 1
	case KindMigrated:
		return 2
	case KindBatched:
		return 3
	case KindPlanned:
		return 4
	case KindStarted:
		return 5
	case KindKilled:
		return 6
	case KindResubmitted:
		return 7
	case KindLost:
		return 8
	case KindDone:
		return 9
	}
	return 10
}

// Verdict is one cluster's admission verdict attached to a routing event
// (the flight-side mirror of grid.ShardVerdict).
type Verdict struct {
	// Cluster indexes the grid's clusters.
	Cluster int `json:"cluster"`
	// Backlog is the cluster's estimated per-processor backlog at the
	// decision instant.
	Backlog float64 `json:"backlog"`
	// State is grid.VerdictChosen, VerdictOpen, VerdictOverBacklog or
	// VerdictOutage.
	State string `json:"state"`
}

// Event is one recorded stage of one job's flight. Fields beyond Kind,
// Job and Time are stage-specific; unused ones stay at their zero value
// and are elided from the JSONL encoding.
type Event struct {
	// Kind is the stage and Job the task ID it happened to.
	Kind Kind `json:"kind"`
	Job  int  `json:"job"`
	// Time is the absolute (simulated) time of the stage.
	Time float64 `json:"t"`
	// Cluster is the cluster index of the stage, -1 when no cluster is
	// involved (submission).
	Cluster int `json:"cluster"`
	// Batch is the batch index on the cluster, -1 before the job is
	// batched.
	Batch int `json:"batch"`
	// Backlog is the chosen cluster's backlog of a routed/migrated event.
	Backlog float64 `json:"backlog,omitempty"`
	// Verdicts carries every shard's admission verdict of a
	// routed/migrated event.
	Verdicts []Verdict `json:"verdicts,omitempty"`
	// Winner is the committed portfolio algorithm of a batched event.
	Winner string `json:"winner,omitempty"`
	// LowerBound is the batch's makespan lower bound of a batched event.
	LowerBound float64 `json:"lower_bound,omitempty"`
	// CutOff lists the portfolio algorithms cancelled by the racing early
	// cutoff on a batched event, in portfolio order. Absent when racing is
	// disabled or the cutoff never fired, so non-racing timelines keep
	// their exact wire format.
	CutOff []string `json:"cut_off,omitempty"`
	// Allotment is the number of processors of a planned/started event.
	Allotment int `json:"allotment,omitempty"`
	// End is the absolute end time of a started event (its completion).
	End float64 `json:"end,omitempty"`
}

// less is the total order of the recorder: time, then job, then the kind
// rank, then every remaining field. Two distinct events never compare
// equal under it, so sorting is deterministic whatever the arrival order.
func less(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if ra, rb := a.Kind.rank(), b.Kind.rank(); ra != rb {
		return ra < rb
	}
	if a.Cluster != b.Cluster {
		return a.Cluster < b.Cluster
	}
	if a.Batch != b.Batch {
		return a.Batch < b.Batch
	}
	if a.Allotment != b.Allotment {
		return a.Allotment < b.Allotment
	}
	if a.End != b.End {
		return a.End < b.End
	}
	return a.Winner < b.Winner
}

// Recorder accumulates flight events. It is safe for concurrent use: the
// shard goroutines of a concurrent grid replay may record into one
// recorder, and the total-order sort in Events/Timeline restores the
// deterministic order.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Reset discards every recorded event: a runner calls it at the start of
// each replay so repeated Runs do not accumulate duplicate flights.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// Add records one event verbatim.
func (r *Recorder) Add(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// Submitted records a job's submission (its release date). Cluster -1:
// no placement decision has been made yet.
func (r *Recorder) Submitted(job int, release float64) {
	r.Add(Event{Kind: KindSubmitted, Job: job, Time: release, Cluster: -1, Batch: -1})
}

// OnDecision records one routing decision — a routed event, or a
// migrated one when the decision resubmits a job drained off a dark
// shard. It has the signature of scenario.Observer.Decision.
func (r *Recorder) OnDecision(d grid.Decision) {
	kind := KindRouted
	if d.Migrated {
		kind = KindMigrated
	}
	verdicts := make([]Verdict, len(d.Verdicts))
	for i, v := range d.Verdicts {
		verdicts[i] = Verdict{Cluster: v.Cluster, Backlog: v.Backlog, State: v.State}
	}
	r.Add(Event{Kind: kind, Job: d.JobID, Time: d.Release, Cluster: d.Cluster, Batch: -1, Backlog: d.Backlog, Verdicts: verdicts})
}

// OnBatch records one committed batch: a batched event per member job
// (with the winner and the batch lower bound), planned/started/done
// events per realized placement, and a killed event per kill. It has the
// signature of scenario.Observer.Batch.
func (r *Recorder) OnBatch(clusterIdx int, br cluster.BatchReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range br.Jobs {
		r.events = append(r.events, Event{
			Kind: KindBatched, Job: id, Time: br.FireTime, Cluster: clusterIdx,
			Batch: br.Index, Winner: br.Winner, LowerBound: br.LowerBound,
			CutOff: br.CutOff,
		})
	}
	for _, p := range br.Placements {
		r.events = append(r.events,
			Event{Kind: KindPlanned, Job: p.TaskID, Time: br.FireTime, Cluster: clusterIdx, Batch: br.Index, Allotment: p.Procs},
			Event{Kind: KindStarted, Job: p.TaskID, Time: p.Start, Cluster: clusterIdx, Batch: br.Index, Allotment: p.Procs, End: p.End},
			Event{Kind: KindDone, Job: p.TaskID, Time: p.End, Cluster: clusterIdx, Batch: br.Index},
		)
	}
	for _, k := range br.KillEvents {
		r.events = append(r.events, Event{Kind: KindKilled, Job: k.TaskID, Time: k.Time, Cluster: clusterIdx, Batch: k.Batch})
	}
}

// Events returns every recorded event in total order (a copy).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return less(&out[i], &out[j]) })
	return out
}

// Jobs returns the distinct job IDs seen by the recorder, sorted.
func (r *Recorder) Jobs() []int {
	r.mu.Lock()
	seen := make(map[int]bool, len(r.events))
	for i := range r.events {
		seen[r.events[i].Job] = true
	}
	r.mu.Unlock()
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Timeline returns one job's flight in total order, with the
// resubmitted/lost stage synthesized after every kill: a kill followed
// by a later batched event is a resubmission at the kill instant, the
// last kill of a job that never re-batches is its loss. Returns nil for
// a job the recorder never saw.
func (r *Recorder) Timeline(job int) []Event {
	r.mu.Lock()
	var evs []Event
	for i := range r.events {
		if r.events[i].Job == job {
			evs = append(evs, r.events[i])
		}
	}
	r.mu.Unlock()
	if evs == nil {
		return nil
	}
	sort.Slice(evs, func(i, j int) bool { return less(&evs[i], &evs[j]) })
	var out []Event
	for i, ev := range evs {
		out = append(out, ev)
		if ev.Kind != KindKilled {
			continue
		}
		rebatched := false
		for _, later := range evs[i+1:] {
			if later.Kind == KindBatched {
				rebatched = true
				break
			}
		}
		kind := KindLost
		if rebatched {
			kind = KindResubmitted
		}
		out = append(out, Event{Kind: kind, Job: ev.Job, Time: ev.Time, Cluster: ev.Cluster, Batch: ev.Batch})
	}
	return out
}

// FromGridReport rebuilds a recorder from a finished grid report — the
// path of the serve layer, whose replays repeat and cannot stream
// observers. Submissions are synthesized from the non-migrated routing
// decisions (the router preserves release dates), batches come from the
// per-shard reports.
func FromGridReport(rep *grid.Report) *Recorder {
	r := NewRecorder()
	if rep == nil {
		return r
	}
	for _, d := range rep.Decisions {
		if !d.Migrated {
			r.Submitted(d.JobID, d.Release)
		}
		r.OnDecision(d)
	}
	for c, crep := range rep.Clusters {
		if crep == nil {
			continue
		}
		for _, br := range crep.Batches {
			r.OnBatch(c, br)
		}
	}
	return r
}
