package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// FormatTimeline renders one job's timeline as human-readable text — the
// body of `bicrit explain`. The output is a pure function of the events,
// so byte-identical reports (the determinism guarantee) render
// byte-identical timelines.
func FormatTimeline(w io.Writer, job int, events []Event) error {
	if len(events) == 0 {
		_, err := fmt.Fprintf(w, "job %d: no recorded events\n", job)
		return err
	}
	if _, err := fmt.Fprintf(w, "job %d — %d events\n", job, len(events)); err != nil {
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "  t=%-12g %s\n", ev.Time, describe(ev)); err != nil {
			return err
		}
	}
	return nil
}

// describe renders the "why" of one event.
func describe(ev Event) string {
	switch ev.Kind {
	case KindSubmitted:
		return "submitted"
	case KindRouted, KindMigrated:
		verb := "routed to"
		if ev.Kind == KindMigrated {
			verb = "migrated to"
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s cluster %d (backlog %g)", verb, ev.Cluster, ev.Backlog)
		if len(ev.Verdicts) > 0 {
			sb.WriteString(" — verdicts:")
			for _, v := range ev.Verdicts {
				fmt.Fprintf(&sb, " %d:%s(%g)", v.Cluster, v.State, v.Backlog)
			}
		}
		return sb.String()
	case KindBatched:
		var sb strings.Builder
		fmt.Fprintf(&sb, "batched on cluster %d batch %d — winner %s, batch lower bound %g", ev.Cluster, ev.Batch, ev.Winner, ev.LowerBound)
		if len(ev.CutOff) > 0 {
			fmt.Fprintf(&sb, ", cut off %s", strings.Join(ev.CutOff, ", "))
		}
		return sb.String()
	case KindPlanned:
		return fmt.Sprintf("planned at %d procs (cluster %d batch %d)", ev.Allotment, ev.Cluster, ev.Batch)
	case KindStarted:
		return fmt.Sprintf("started on cluster %d with %d procs (until t=%g)", ev.Cluster, ev.Allotment, ev.End)
	case KindKilled:
		return fmt.Sprintf("killed by an outage on cluster %d (batch %d)", ev.Cluster, ev.Batch)
	case KindResubmitted:
		return "resubmitted to the queue"
	case KindLost:
		return "lost (retry budget exhausted)"
	case KindDone:
		return fmt.Sprintf("done on cluster %d", ev.Cluster)
	}
	return string(ev.Kind)
}

// header is the first JSONL record of a recorded flight trace: the format
// sentinel `bicrit explain` sniffs to tell a flight trace from a scenario
// file, plus a format version for forward compatibility.
type header struct {
	FlightFormat int `json:"flight_format"`
}

// FormatVersion is the JSONL trace format version.
const FormatVersion = 1

// WriteJSONL writes the recorder's events in total order as JSON lines,
// preceded by a one-line format header.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(header{FlightFormat: FormatVersion})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, ev := range r.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// IsTrace reports whether data starts with the flight JSONL header —
// the sniff `bicrit explain` uses to tell a recorded trace from a
// scenario file.
func IsTrace(data []byte) bool {
	line := data
	if i := strings.IndexByte(string(data), '\n'); i >= 0 {
		line = data[:i]
	}
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return false
	}
	return h.FlightFormat > 0
}

// ReadJSONL loads a recorded flight trace written by WriteJSONL.
func ReadJSONL(rd io.Reader) (*Recorder, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("flight: empty trace")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.FlightFormat <= 0 {
		return nil, fmt.Errorf("flight: not a flight trace (missing flight_format header)")
	}
	if h.FlightFormat > FormatVersion {
		return nil, fmt.Errorf("flight: trace format %d is newer than this binary's %d", h.FlightFormat, FormatVersion)
	}
	r := NewRecorder()
	line := 1
	for sc.Scan() {
		line++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("flight: line %d: %w", line, err)
		}
		r.Add(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return r, nil
}
