// Package reservation implements the first of the paper's "on-going works"
// (section 5): scheduling the moldable jobs around node reservations that
// temporarily reduce the usable size of the cluster (administrative
// maintenance windows, advance reservations for other users, ...).
//
// The approach keeps the structure of the DEMT algorithm: the batch
// construction and the knapsack selection are run on the full machine to
// decide allotments and priorities, and the compaction step then places the
// tasks with the hole-filling insertion scheduler on the machine with the
// reserved intervals blocked out. Reservations are returned alongside the
// schedule so that the result can be validated and displayed as a whole.
package reservation

import (
	"fmt"
	"sort"

	"bicriteria/internal/core"
	"bicriteria/internal/listsched"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// Reservation blocks a number of processors during a time window. Concrete
// processor indices are chosen by the scheduler (highest indices first, so
// that job packing keeps using the low indices).
type Reservation struct {
	// Name is an optional label (shown by String()).
	Name string
	// Procs is the number of processors reserved.
	Procs int
	// Start and End delimit the reserved window.
	Start, End float64
}

// String describes the reservation.
func (r Reservation) String() string {
	name := r.Name
	if name == "" {
		name = "reservation"
	}
	return fmt.Sprintf("%s: %d processors during [%g, %g)", name, r.Procs, r.Start, r.End)
}

// Validate checks a reservation against the machine size.
func (r Reservation) Validate(m int) error {
	if r.Procs < 1 || r.Procs > m {
		return fmt.Errorf("reservation: %d processors requested on a %d-processor machine", r.Procs, m)
	}
	if r.End <= r.Start {
		return fmt.Errorf("reservation: empty or negative window [%g, %g)", r.Start, r.End)
	}
	if r.Start < 0 {
		return fmt.Errorf("reservation: negative start %g", r.Start)
	}
	return nil
}

// Options tunes the reservation-aware scheduler.
type Options struct {
	// DEMT carries the options of the underlying batch construction.
	DEMT *core.Options
}

// Result is the outcome of the reservation-aware scheduling.
type Result struct {
	// Schedule contains the job assignments only (not the reservations).
	Schedule *schedule.Schedule
	// Blocked lists, for every reservation (in input order), the concrete
	// processors that were blocked.
	Blocked [][]int
	// DEMT is the result of the batch construction on the unreserved
	// machine (allotments, batches, estimates).
	DEMT *core.Result
}

// Schedule plans the instance around the reservations. The returned
// schedule never uses a reserved processor during its reserved window.
func Schedule(inst *moldable.Instance, reservations []Reservation, opts *Options) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	for _, r := range reservations {
		if err := r.Validate(inst.M); err != nil {
			return nil, err
		}
	}
	// Peak simultaneous reservation must leave at least one processor for
	// the jobs, otherwise the largest jobs may never fit.
	if peak := PeakReserved(reservations); peak >= inst.M {
		return nil, fmt.Errorf("reservation: %d processors reserved simultaneously on a %d-processor machine leaves nothing for the jobs", peak, inst.M)
	}

	var demtOpts *core.Options
	if opts != nil {
		demtOpts = opts.DEMT
	}
	demtRes, err := core.Schedule(inst, demtOpts)
	if err != nil {
		return nil, err
	}

	// Assign concrete processors to the reservations: highest indices
	// first so the jobs keep packing from index 0.
	blocked := make([][]int, len(reservations))
	busy := make([]listsched.Busy, len(reservations))
	for i, r := range reservations {
		procs := make([]int, r.Procs)
		for k := 0; k < r.Procs; k++ {
			procs[k] = inst.M - 1 - k
		}
		blocked[i] = procs
		busy[i] = listsched.Busy{Procs: procs, Start: r.Start, End: r.End}
	}

	// Re-place the DEMT schedule around the reservations: keep the batch
	// priority order (start time, then longest first) and the allotments,
	// and let the insertion scheduler fill the holes left by the blocked
	// windows.
	items := PriorityItems(demtRes.Schedule)
	placed, err := listsched.InsertionWithReservations(inst.M, busy, items)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: placed, Blocked: blocked, DEMT: demtRes}, nil
}

// PeakReserved returns the maximum number of simultaneously reserved
// processors.
func PeakReserved(reservations []Reservation) int {
	type event struct {
		t     float64
		delta int
	}
	var events []event
	for _, r := range reservations {
		events = append(events, event{r.Start, r.Procs}, event{r.End, -r.Procs})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t == events[j].t {
			return events[i].delta < events[j].delta
		}
		return events[i].t < events[j].t
	})
	peak, cur := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// PriorityItems converts a schedule into list-scheduler items ordered by
// start time (then by decreasing duration, then task ID): the priority
// order the compaction of the original schedule expressed. It is used to
// re-place an existing plan around reserved windows, here and by the
// cluster engine.
func PriorityItems(s *schedule.Schedule) []listsched.Item {
	assignments := make([]schedule.Assignment, len(s.Assignments))
	copy(assignments, s.Assignments)
	sort.SliceStable(assignments, func(a, b int) bool {
		if assignments[a].Start != assignments[b].Start {
			return assignments[a].Start < assignments[b].Start
		}
		if assignments[a].Duration != assignments[b].Duration {
			return assignments[a].Duration > assignments[b].Duration
		}
		return assignments[a].TaskID < assignments[b].TaskID
	})
	items := make([]listsched.Item, len(assignments))
	for i, a := range assignments {
		items[i] = listsched.Item{TaskID: a.TaskID, NProcs: a.NProcs, Duration: a.Duration}
	}
	return items
}

// ValidateAgainstReservations checks that no assignment of the schedule
// overlaps a blocked processor during its reserved window.
func ValidateAgainstReservations(s *schedule.Schedule, reservations []Reservation, blocked [][]int) error {
	if len(reservations) != len(blocked) {
		return fmt.Errorf("reservation: %d reservations but %d blocked sets", len(reservations), len(blocked))
	}
	for ri, r := range reservations {
		blockedSet := make(map[int]bool, len(blocked[ri]))
		for _, p := range blocked[ri] {
			blockedSet[p] = true
		}
		for i := range s.Assignments {
			a := &s.Assignments[i]
			if a.Start >= r.End-moldable.Eps || a.End() <= r.Start+moldable.Eps {
				continue
			}
			for _, p := range a.Procs {
				if blockedSet[p] {
					return fmt.Errorf("reservation: task %d uses reserved processor %d during [%g, %g)", a.TaskID, p, r.Start, r.End)
				}
			}
		}
	}
	return nil
}
