package reservation

import (
	"strings"
	"testing"
	"testing/quick"

	"bicriteria/internal/core"
	"bicriteria/internal/moldable"
	"bicriteria/internal/workload"
)

func testInstance() *moldable.Instance {
	return moldable.NewInstance(6, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{8, 4.5, 3.2, 2.5, 2.1, 1.9}},
		{ID: 1, Weight: 1, Times: []float64{6, 3.5, 2.6, 2.2, 2.0, 1.9}},
		{ID: 2, Weight: 3, Times: []float64{2, 1.2}},
		{ID: 3, Weight: 1, Times: []float64{1.5}},
		{ID: 4, Weight: 4, Times: []float64{10, 5.5, 4, 3.1, 2.7, 2.4}},
	})
}

func TestReservationValidateAndString(t *testing.T) {
	good := Reservation{Name: "maintenance", Procs: 2, Start: 1, End: 3}
	if err := good.Validate(4); err != nil {
		t.Fatalf("valid reservation rejected: %v", err)
	}
	if !strings.Contains(good.String(), "maintenance") {
		t.Fatalf("String() missing name: %s", good.String())
	}
	if !strings.Contains((Reservation{Procs: 1, Start: 0, End: 1}).String(), "reservation") {
		t.Fatalf("default name missing")
	}
	bad := []Reservation{
		{Procs: 0, Start: 0, End: 1},
		{Procs: 5, Start: 0, End: 1},
		{Procs: 1, Start: 2, End: 2},
		{Procs: 1, Start: -1, End: 1},
	}
	for i, r := range bad {
		if err := r.Validate(4); err == nil {
			t.Errorf("reservation %d should be invalid", i)
		}
	}
}

func TestScheduleAroundReservations(t *testing.T) {
	inst := testInstance()
	reservations := []Reservation{
		{Name: "maintenance", Procs: 2, Start: 0, End: 4},
		{Name: "other-user", Procs: 3, Start: 6, End: 9},
	}
	res, err := Schedule(inst, reservations, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v\n%s", err, res.Schedule.String())
	}
	if err := ValidateAgainstReservations(res.Schedule, reservations, res.Blocked); err != nil {
		t.Fatalf("schedule violates a reservation: %v", err)
	}
	if len(res.Blocked) != 2 || len(res.Blocked[0]) != 2 || len(res.Blocked[1]) != 3 {
		t.Fatalf("blocked sets wrong: %v", res.Blocked)
	}
	if res.DEMT == nil || len(res.DEMT.Batches) == 0 {
		t.Fatalf("missing DEMT result")
	}
	// Scheduling around reservations can only delay completion compared to
	// the unreserved DEMT schedule.
	if res.Schedule.Makespan() < res.DEMT.Schedule.Makespan()-1e-6 {
		t.Fatalf("reserved schedule finishes earlier (%g) than the unreserved one (%g)",
			res.Schedule.Makespan(), res.DEMT.Schedule.Makespan())
	}
}

func TestScheduleWithoutReservationsMatchesPlainPlacement(t *testing.T) {
	inst := testInstance()
	res, err := Schedule(inst, nil, &Options{DEMT: &core.Options{Shuffles: 2, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	inst := testInstance()
	if _, err := Schedule(&moldable.Instance{M: 0}, nil, nil); err == nil {
		t.Fatalf("invalid instance must fail")
	}
	if _, err := Schedule(inst, []Reservation{{Procs: 0, Start: 0, End: 1}}, nil); err == nil {
		t.Fatalf("invalid reservation must fail")
	}
	// Reserving the whole machine leaves nothing for the jobs.
	if _, err := Schedule(inst, []Reservation{{Procs: 6, Start: 0, End: 100}}, nil); err == nil {
		t.Fatalf("full-machine reservation must fail")
	}
	// Two overlapping reservations covering the machine together.
	full := []Reservation{
		{Procs: 3, Start: 0, End: 10},
		{Procs: 3, Start: 5, End: 15},
	}
	if _, err := Schedule(inst, full, nil); err == nil {
		t.Fatalf("reservations covering the whole machine must fail")
	}
}

func TestValidateAgainstReservationsDetectsViolations(t *testing.T) {
	inst := testInstance()
	reservations := []Reservation{{Procs: 2, Start: 0, End: 5}}
	res, err := Schedule(inst, reservations, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force a violation: move one assignment onto a blocked processor.
	bad := res.Schedule.Clone()
	bad.Assignments[0].Start = 1
	bad.Assignments[0].Procs = []int{res.Blocked[0][0]}
	bad.Assignments[0].NProcs = 1
	// Only meaningful if the first assignment overlaps [0,5); ensure it.
	bad.Assignments[0].Duration = 2
	if err := ValidateAgainstReservations(bad, reservations, res.Blocked); err == nil {
		t.Fatalf("violation not detected")
	}
	if err := ValidateAgainstReservations(res.Schedule, reservations, nil); err == nil {
		t.Fatalf("mismatched blocked sets must fail")
	}
}

func TestPeakReserved(t *testing.T) {
	if got := PeakReserved(nil); got != 0 {
		t.Fatalf("empty peak = %d", got)
	}
	rs := []Reservation{
		{Procs: 2, Start: 0, End: 10},
		{Procs: 3, Start: 5, End: 8},
		{Procs: 1, Start: 20, End: 30},
	}
	if got := PeakReserved(rs); got != 5 {
		t.Fatalf("peak = %d, want 5", got)
	}
	// Back-to-back reservations do not stack.
	adj := []Reservation{
		{Procs: 2, Start: 0, End: 5},
		{Procs: 2, Start: 5, End: 10},
	}
	if got := PeakReserved(adj); got != 2 {
		t.Fatalf("adjacent peak = %d, want 2", got)
	}
}

func TestPropertyReservedSchedulesAlwaysRespectReservations(t *testing.T) {
	f := func(seed int64, procsRaw, lenRaw uint8) bool {
		inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: 8, N: 10, Seed: seed})
		if err != nil {
			return false
		}
		procs := 1 + int(procsRaw)%4
		length := 1 + float64(lenRaw%16)
		reservations := []Reservation{
			{Procs: procs, Start: 2, End: 2 + length},
			{Procs: 2, Start: 2 + length + 1, End: 2 + length + 4},
		}
		res, err := Schedule(inst, reservations, &Options{DEMT: &core.Options{Shuffles: 1}})
		if err != nil {
			return false
		}
		if err := res.Schedule.Validate(inst, nil); err != nil {
			return false
		}
		return ValidateAgainstReservations(res.Schedule, reservations, res.Blocked) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
