package reservation

import (
	"math/rand"
	"testing"

	"bicriteria/internal/core"
	"bicriteria/internal/moldable"
)

// randomMonotoneTasks draws monotone moldable tasks for an m-processor
// machine (non-increasing times, non-decreasing work).
func randomMonotoneTasks(r *rand.Rand, m, n int) []moldable.Task {
	tasks := make([]moldable.Task, n)
	for i := range tasks {
		maxK := 1 + r.Intn(m)
		times := make([]float64, maxK)
		times[0] = 0.5 + 8*r.Float64()
		for k := 2; k <= maxK; k++ {
			lo := float64(k-1) / float64(k)
			times[k-1] = times[k-2] * (lo + (1-lo)*r.Float64())
		}
		tasks[i] = moldable.Task{ID: i, Weight: 0.5 + 2*r.Float64(), Times: times}
	}
	return tasks
}

// TestPropertyReservationsNeverPreempted is the seeded quickcheck-style
// reservation invariant: across randomized instances and randomized
// reservation sets, the reservation-aware scheduler produces a feasible
// schedule that never touches a reserved processor inside its window —
// reservations are inviolable, jobs flow around them.
func TestPropertyReservationsNeverPreempted(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		m := 4 + r.Intn(13)
		inst := moldable.NewInstance(m, randomMonotoneTasks(r, m, 1+r.Intn(12)))

		// One to three reservations, each leaving at least one processor
		// free at its peak (the scheduler's own feasibility requirement).
		nRes := 1 + r.Intn(3)
		reservations := make([]Reservation, 0, nRes)
		budget := m - 1
		for i := 0; i < nRes && budget > 0; i++ {
			procs := 1 + r.Intn(budget)
			budget -= procs
			start := 10 * r.Float64()
			reservations = append(reservations, Reservation{
				Procs: procs,
				Start: start,
				End:   start + 0.5 + 10*r.Float64(),
			})
		}

		res, err := Schedule(inst, reservations, &Options{DEMT: &core.Options{Shuffles: 1, Seed: int64(trial)}})
		if err != nil {
			t.Fatalf("trial %d (m=%d, %d reservations): %v", trial, m, len(reservations), err)
		}
		if err := res.Schedule.Validate(inst, nil); err != nil {
			t.Fatalf("trial %d: schedule infeasible: %v", trial, err)
		}
		if err := ValidateAgainstReservations(res.Schedule, reservations, res.Blocked); err != nil {
			t.Fatalf("trial %d: a job preempts a reservation: %v", trial, err)
		}
		// Independent overlap re-check against the blocked processors, so
		// the property does not rest solely on the library's validator.
		for ri, res2 := range reservations {
			blocked := make(map[int]bool)
			for _, p := range res.Blocked[ri] {
				blocked[p] = true
			}
			for _, a := range res.Schedule.Assignments {
				if a.Start < res2.End-1e-9 && a.End() > res2.Start+1e-9 {
					for _, p := range a.Procs {
						if blocked[p] {
							t.Fatalf("trial %d: task %d runs on reserved processor %d inside [%g, %g)",
								trial, a.TaskID, p, res2.Start, res2.End)
						}
					}
				}
			}
		}
	}
}
