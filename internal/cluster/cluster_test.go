package cluster

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"bicriteria/internal/core"
	"bicriteria/internal/faults"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/schedule"
	"bicriteria/internal/workload"
)

// noise builds a UniformNoise perturbation, failing the test on a bad
// fraction.
func noise(t testing.TB, frac float64, seed int64) func(int, float64) float64 {
	t.Helper()
	f, err := UniformNoise(frac, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// stream generates a deterministic bursty Poisson job stream.
func stream(t testing.TB, m, n int, seed int64, burst int) []online.Job {
	t.Helper()
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: m, N: n, Seed: seed},
		Rate:      3,
		BurstSize: burst,
	})
	if err != nil {
		t.Fatal(err)
	}
	return JobsFromArrivals(arrivals)
}

func TestArrivalsDeterministicAndSorted(t *testing.T) {
	cfg := workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Cirne, M: 16, N: 40, Seed: 5},
		Rate:      2,
		BurstSize: 4,
	}
	a, err := workload.GenerateArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.GenerateArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations with the same config differ")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Submit < a[i-1].Submit {
			t.Fatalf("arrivals out of order at %d: %g after %g", i, a[i].Submit, a[i-1].Submit)
		}
	}
	// Bursts of 4 share their submission instant.
	for i := 0; i < len(a); i += 4 {
		for j := i + 1; j < i+4 && j < len(a); j++ {
			if a[j].Submit != a[i].Submit {
				t.Fatalf("burst member %d does not share the burst instant (%g vs %g)", j, a[j].Submit, a[i].Submit)
			}
		}
	}
	if _, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload: workload.Config{Kind: workload.Mixed, M: 8, N: 4, Seed: 1},
	}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestPortfolioReplayDeterministicParallelVsSequential(t *testing.T) {
	jobs := stream(t, 32, 80, 9, 5)
	base := Config{
		M:         32,
		Objective: Objective{Kind: ObjectiveCombined, Alpha: 0.5},
		Perturb:   noise(t, 0.2, 9),
		Reservations: []reservation.Reservation{
			{Name: "maint", Procs: 8, Start: 5, End: 15},
		},
	}

	run := func(sequential bool, procs int) *Report {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := base
		cfg.Sequential = sequential
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	seq := run(true, 1)
	par := run(false, runtime.NumCPU())
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel portfolio replay differs from sequential replay under the same seed")
	}
	par2 := run(false, runtime.NumCPU())
	if !reflect.DeepEqual(par, par2) {
		t.Fatal("two parallel replays under the same seed differ")
	}
	if seq.Metrics.Batches == 0 || seq.Metrics.Jobs != len(jobs) {
		t.Fatalf("unexpected metrics: %+v", seq.Metrics)
	}
}

func TestBatchOnIdleMatchesOnlineFramework(t *testing.T) {
	const m = 24
	jobs := stream(t, m, 60, 3, 1)

	onlineRes, err := online.Schedule(m, jobs, func(inst *moldable.Instance) (*schedule.Schedule, error) {
		r, err := core.Schedule(inst, nil)
		if err != nil {
			return nil, err
		}
		return r.Schedule, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	eng, err := New(Config{M: m, Portfolio: []Algorithm{DEMTAlgorithm(nil)}, Policy: BatchOnIdle()})
	if err != nil {
		t.Fatal(err)
	}
	report, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	if len(report.Batches) != len(onlineRes.Batches) {
		t.Fatalf("engine built %d batches, online framework %d", len(report.Batches), len(onlineRes.Batches))
	}
	for i := range report.Batches {
		if !reflect.DeepEqual(report.Batches[i].Jobs, onlineRes.Batches[i].TaskIDs) {
			t.Fatalf("batch %d composition differs: %v vs %v", i, report.Batches[i].Jobs, onlineRes.Batches[i].TaskIDs)
		}
		if math.Abs(report.Batches[i].FireTime-onlineRes.Batches[i].Start) > 1e-9 {
			t.Fatalf("batch %d fired at %g, online framework at %g", i, report.Batches[i].FireTime, onlineRes.Batches[i].Start)
		}
	}
	for _, a := range onlineRes.Schedule.Assignments {
		got := report.Schedule.Assignment(a.TaskID)
		if got == nil {
			t.Fatalf("task %d missing from the engine trace", a.TaskID)
		}
		if math.Abs(got.End()-a.End()) > 1e-9 {
			t.Fatalf("task %d completes at %g in the engine, %g in the online framework", a.TaskID, got.End(), a.End())
		}
	}
	if math.Abs(report.Metrics.MaxFlow-onlineRes.MaxFlow) > 1e-9 {
		t.Fatalf("max flow %g vs online %g", report.Metrics.MaxFlow, onlineRes.MaxFlow)
	}
	if math.Abs(report.Metrics.MeanStretch-onlineRes.MeanStretch) > 1e-9 {
		t.Fatalf("mean stretch %g vs online %g", report.Metrics.MeanStretch, onlineRes.MeanStretch)
	}
	if math.Abs(report.Metrics.WeightedCompletion-onlineRes.WeightedCompletion) > 1e-6 {
		t.Fatalf("weighted completion %g vs online %g", report.Metrics.WeightedCompletion, onlineRes.WeightedCompletion)
	}
}

func TestReservationsNeverViolatedDuringReplay(t *testing.T) {
	jobs := stream(t, 32, 70, 17, 6)
	reservations := []reservation.Reservation{
		{Name: "maint-a", Procs: 12, Start: 3, End: 20},
		{Name: "maint-b", Procs: 8, Start: 15, End: 40},
	}
	eng, err := New(Config{
		M:            32,
		Reservations: reservations,
		Perturb:      noise(t, 0.3, 17),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := reservation.ValidateAgainstReservations(report.Schedule, reservations, report.Blocked); err != nil {
		t.Fatalf("realized trace violates a reservation: %v", err)
	}
	// Overlapping reservations must block disjoint processors.
	seen := map[int]bool{}
	for _, p := range report.Blocked[0] {
		seen[p] = true
	}
	for _, p := range report.Blocked[1] {
		if seen[p] {
			t.Fatalf("overlapping reservations share processor %d", p)
		}
	}
}

func TestFixedIntervalFiresOnTicks(t *testing.T) {
	const period = 10.0
	policy, err := FixedInterval(period)
	if err != nil {
		t.Fatal(err)
	}
	jobs := stream(t, 16, 40, 21, 3)
	eng, err := New(Config{M: 16, Policy: policy, Portfolio: []Algorithm{DEMTAlgorithm(nil)}})
	if err != nil {
		t.Fatal(err)
	}
	report, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range report.Batches {
		ticks := br.FireTime / period
		if math.Abs(ticks-math.Round(ticks)) > 1e-6 {
			t.Fatalf("batch %d fired at %g, not on a multiple of %g", br.Index, br.FireTime, period)
		}
	}
	if _, err := FixedInterval(0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestAdaptiveBacklogFiresOnWorkOrDelay(t *testing.T) {
	policy, err := AdaptiveBacklog(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Below the work target the policy waits until the oldest job ages out.
	small := []online.Job{{Task: moldable.Sequential(0, 1, 2), Release: 7}}
	if fire := policy.NextFire(8, small); fire != 57 {
		t.Fatalf("under-threshold backlog should fire at release+maxDelay=57, got %g", fire)
	}
	// Above the work target it fires immediately.
	big := []online.Job{
		{Task: moldable.Sequential(0, 1, 60), Release: 7},
		{Task: moldable.Sequential(1, 1, 60), Release: 8},
	}
	if fire := policy.NextFire(9, big); fire != 9 {
		t.Fatalf("over-threshold backlog should fire immediately, got %g", fire)
	}
	if _, err := AdaptiveBacklog(0, 10); err == nil {
		t.Fatal("zero work target accepted")
	}
}

func TestUniformNoiseValidation(t *testing.T) {
	if f, err := UniformNoise(0, 1); err != nil || f != nil {
		t.Fatalf("zero fraction should yield nil perturbation, got %t, %v", f != nil, err)
	}
	for _, frac := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := UniformNoise(frac, 1); err == nil {
			t.Fatalf("fraction %g accepted", frac)
		}
	}
	f := noise(t, 0.5, 7)
	if got, want := f(3, 10.0), f(3, 10.0); got != want {
		t.Fatalf("perturbation not deterministic: %g vs %g", got, want)
	}
	if v := f(3, 10.0); v < 5 || v > 15 {
		t.Fatalf("perturbed value %g outside [5, 15]", v)
	}
}

func TestEngineInputValidation(t *testing.T) {
	if _, err := New(Config{M: 0}); err == nil {
		t.Fatal("zero-processor machine accepted")
	}
	if _, err := New(Config{M: 8, Portfolio: []Algorithm{{Name: "x"}}}); err == nil {
		t.Fatal("algorithm without Run accepted")
	}
	if _, err := New(Config{M: 8, Portfolio: []Algorithm{DEMTAlgorithm(nil), DEMTAlgorithm(nil)}}); err == nil {
		t.Fatal("duplicate algorithm names accepted")
	}
	if _, err := New(Config{M: 8, Objective: Objective{Kind: ObjectiveCombined, Alpha: 2}}); err == nil {
		t.Fatal("alpha outside [0,1] accepted")
	}
	if _, err := New(Config{M: 8, Reservations: []reservation.Reservation{{Procs: 8, Start: 0, End: 10}}}); err == nil {
		t.Fatal("reservation blocking the whole machine accepted")
	}

	eng, err := New(Config{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run([]online.Job{
		{Task: moldable.Sequential(1, 1, 1), Release: 0},
		{Task: moldable.Sequential(1, 1, 2), Release: 1},
	}); err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
	if _, err := eng.Run([]online.Job{{Task: moldable.Sequential(1, 1, 1), Release: -1}}); err == nil {
		t.Fatal("negative release accepted")
	}
	report, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Metrics.Jobs != 0 || len(report.Batches) != 0 {
		t.Fatalf("empty stream produced non-empty report: %+v", report.Metrics)
	}
}

func TestObjectiveSelectsWinner(t *testing.T) {
	jobs := stream(t, 16, 30, 2, 1)
	for _, obj := range []Objective{
		{Kind: ObjectiveMakespan},
		{Kind: ObjectiveWeightedCompletion},
		{Kind: ObjectiveCombined, Alpha: 0.3},
	} {
		eng, err := New(Config{M: 16, Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		report, err := eng.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, br := range report.Batches {
			winnerScore := math.Inf(1)
			for _, c := range br.Candidates {
				if c.Name == br.Winner {
					winnerScore = c.Score
				}
			}
			for _, c := range br.Candidates {
				if c.Err == nil && c.Score < winnerScore-1e-12 {
					t.Fatalf("objective %v: batch %d committed %s (score %g) but %s scored %g",
						obj, br.Index, br.Winner, winnerScore, c.Name, c.Score)
				}
			}
		}
	}
}

func TestMetricsPercentilesAndBoundedSlowdown(t *testing.T) {
	jobs := stream(t, 24, 90, 13, 4)
	eng, err := New(Config{M: 24, Perturb: noise(t, 0.2, 13)})
	if err != nil {
		t.Fatal(err)
	}
	report, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := report.Metrics
	if !(m.StretchP50 <= m.StretchP95+1e-9 && m.StretchP95 <= m.StretchP99+1e-9) {
		t.Fatalf("stretch percentiles out of order: %g %g %g", m.StretchP50, m.StretchP95, m.StretchP99)
	}
	if m.StretchP50 <= 0 {
		t.Fatalf("non-positive stretch median %g", m.StretchP50)
	}
	if !(m.BoundedSlowdownP50 <= m.BoundedSlowdownP95+1e-9 && m.BoundedSlowdownP95 <= m.BoundedSlowdownP99+1e-9) {
		t.Fatalf("bounded-slowdown percentiles out of order: %g %g %g",
			m.BoundedSlowdownP50, m.BoundedSlowdownP95, m.BoundedSlowdownP99)
	}
	if m.MeanBoundedSlowdown < 1 || m.BoundedSlowdownP50 < 1 {
		t.Fatalf("bounded slowdown below its floor of 1: mean %g, P50 %g", m.MeanBoundedSlowdown, m.BoundedSlowdownP50)
	}
	// The percentile stream must be monotone over batches: the last
	// snapshot is the final metrics.
	last := report.Batches[len(report.Batches)-1].Cumulative
	if last.StretchP99 != m.StretchP99 || last.BoundedSlowdownP99 != m.BoundedSlowdownP99 {
		t.Fatalf("final batch snapshot differs from the run metrics")
	}
}

func TestBoundedSlowdownFormula(t *testing.T) {
	for _, tc := range []struct {
		flow, pmin, want float64
	}{
		{10, 2, 5},    // ordinary job: flow over pmin
		{10, 0.1, 10}, // tiny job: the threshold caps the denominator
		{0.5, 2, 1},   // faster than its floor: slowdown is at least 1
		{3, 0, 3},     // zero pmin falls back to the threshold
	} {
		if got := BoundedSlowdown(tc.flow, tc.pmin); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("BoundedSlowdown(%g, %g) = %g, want %g", tc.flow, tc.pmin, got, tc.want)
		}
	}
}

// faultPlanWindows generates a node-crash plan for one m-processor cluster.
func faultPlanWindows(t testing.TB, m int, seed int64, mtbf, repair, horizon float64) []faults.Window {
	t.Helper()
	plan, err := faults.Generate(faults.Config{
		Seed: seed, Horizon: horizon, Clusters: []int{m}, MTBF: mtbf, RepairMean: repair,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan.ClusterWindows(0, m)
}

func TestFaultsEveryKilledJobEventuallyRescheduled(t *testing.T) {
	jobs := stream(t, 16, 100, 3, 4)
	eng, err := New(Config{
		M:       16,
		Perturb: noise(t, 0.2, 3),
		Outages: faultPlanWindows(t, 16, 3, 10, 4, 400),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	met := rep.Metrics
	if met.Killed == 0 {
		t.Fatal("hostile fault plan killed nothing; the scenario is vacuous")
	}
	if met.Jobs+met.Lost != len(jobs) {
		t.Fatalf("completed %d + lost %d != submitted %d", met.Jobs, met.Lost, len(jobs))
	}
	if met.Resubmitted != met.Killed-met.Lost {
		t.Fatalf("resubmitted %d != killed %d - lost %d", met.Resubmitted, met.Killed, met.Lost)
	}
	// Every killed-but-not-lost job completed: it was rescheduled.
	killedJobs := make(map[int]bool)
	for _, k := range rep.Kills {
		killedJobs[k.TaskID] = true
	}
	lost := make(map[int]bool)
	for _, id := range rep.Lost {
		lost[id] = true
	}
	completed := make(map[int]bool)
	for _, a := range rep.Schedule.Assignments {
		if completed[a.TaskID] {
			t.Fatalf("job %d completed twice", a.TaskID)
		}
		completed[a.TaskID] = true
	}
	recovered := 0
	for id := range killedJobs {
		if lost[id] {
			continue
		}
		if !completed[id] {
			t.Fatalf("killed job %d was never rescheduled to completion", id)
		}
		recovered++
	}
	if met.Recovered != recovered {
		t.Fatalf("metrics report %d recoveries, trace shows %d", met.Recovered, recovered)
	}
}

func TestFaultsZeroPlanBitIdentical(t *testing.T) {
	jobs := stream(t, 16, 60, 7, 3)
	base := Config{M: 16, Perturb: noise(t, 0.15, 7)}
	plain, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	repPlain, err := plain.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	withEmpty := base
	withEmpty.Outages = nil
	withEmpty.Replan = ReplanPolicy{Kind: ReplanCheckpoint, Credit: 0.5}
	withEmpty.MaxRetries = 3
	eng, err := New(withEmpty)
	if err != nil {
		t.Fatal(err)
	}
	repEmpty, err := eng.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repPlain, repEmpty) {
		t.Fatal("a zero-fault configuration changed the report")
	}
}

func TestFaultsParallelVsSequentialBitIdentical(t *testing.T) {
	jobs := stream(t, 16, 80, 5, 4)
	base := Config{
		M:       16,
		Perturb: noise(t, 0.2, 5),
		Outages: faultPlanWindows(t, 16, 5, 12, 5, 400),
		Replan:  ReplanPolicy{Kind: ReplanCheckpoint},
		Reservations: []reservation.Reservation{
			{Name: "maint", Procs: 4, Start: 10, End: 25},
		},
	}
	run := func(sequential bool) *Report {
		cfg := base
		cfg.Sequential = sequential
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := run(true)
	par := run(false)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("faulty parallel replay differs from sequential replay")
	}
	if seq.Metrics.Killed == 0 {
		t.Fatal("fault plan killed nothing; determinism check is vacuous")
	}
}

func TestFaultsCheckpointCreditsFinishedWork(t *testing.T) {
	// One long sequential job, killed once at t=6 of 10: the checkpoint
	// replan resubmits 40% of the work, the restart replan all of it.
	job := []online.Job{{Task: moldable.Task{ID: 1, Weight: 1, Times: []float64{10}}, Release: 0}}
	outage := []faults.Window{{Procs: []int{0}, Start: 6, End: 7}}
	run := func(replan ReplanPolicy) *Report {
		eng, err := New(Config{M: 1, Outages: outage, Replan: replan})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	restart := run(ReplanPolicy{Kind: ReplanRestart})
	checkpoint := run(ReplanPolicy{Kind: ReplanCheckpoint})
	half := run(ReplanPolicy{Kind: ReplanCheckpoint, Credit: 0.5})
	// Restart: killed at 6, replanned around the repair [6,7), full 10
	// units again -> done at 17.
	if m := restart.Metrics.Makespan; math.Abs(m-17) > 1e-9 {
		t.Fatalf("restart makespan %g, want 17", m)
	}
	// Full credit: 60% finished, 4 units remain -> done at 11.
	if m := checkpoint.Metrics.Makespan; math.Abs(m-11) > 1e-9 {
		t.Fatalf("checkpoint makespan %g, want 11", m)
	}
	// Half credit: scale 1 - 0.5*0.6 = 0.7 -> 7 units -> done at 14.
	if m := half.Metrics.Makespan; math.Abs(m-14) > 1e-9 {
		t.Fatalf("half-credit makespan %g, want 14", m)
	}
	for _, rep := range []*Report{restart, checkpoint, half} {
		if rep.Metrics.Killed != 1 || rep.Metrics.Recovered != 1 || rep.Metrics.Lost != 0 {
			t.Fatalf("unexpected fault counters %+v", rep.Metrics)
		}
	}
}

func TestFaultsMaxRetriesGivesUp(t *testing.T) {
	// The single processor dies every 2 units forever (within the
	// horizon), so a 10-unit restart-replanned job can never finish.
	var wins []faults.Window
	for t0 := 1.0; t0 < 400; t0 += 2 {
		wins = append(wins, faults.Window{Procs: []int{0}, Start: t0, End: t0 + 0.5})
	}
	eng, err := New(Config{M: 1, Outages: wins, MaxRetries: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run([]online.Job{{Task: moldable.Task{ID: 9, Weight: 1, Times: []float64{10}}, Release: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Lost != 1 || rep.Metrics.Jobs != 0 {
		t.Fatalf("job should be lost after the retry budget: %+v", rep.Metrics)
	}
	if rep.Metrics.Killed != 5 {
		t.Fatalf("killed %d times, want MaxRetries+1 = 5", rep.Metrics.Killed)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != 9 {
		t.Fatalf("lost list %v, want [9]", rep.Lost)
	}
}

func TestFaultsConfigValidation(t *testing.T) {
	if _, err := New(Config{M: 4, Outages: []faults.Window{{Procs: []int{9}, Start: 1, End: 2}}}); err == nil {
		t.Fatal("outage outside the machine accepted")
	}
	if _, err := New(Config{M: 4, Outages: []faults.Window{{Procs: []int{0}, Start: 2, End: 2}}}); err == nil {
		t.Fatal("empty outage window accepted")
	}
	if _, err := New(Config{M: 4, Outages: []faults.Window{{Procs: []int{0}, Start: 2, End: math.NaN()}}}); err == nil {
		t.Fatal("NaN outage end accepted")
	}
	if _, err := New(Config{M: 4, Outages: []faults.Window{{Procs: []int{0}, Start: math.Inf(-1), End: 2}}}); err == nil {
		t.Fatal("infinite outage start accepted")
	}
	if _, err := New(Config{M: 4, MaxRetries: -1}); err == nil {
		t.Fatal("negative max retries accepted")
	}
	if _, err := New(Config{M: 4, Replan: ReplanPolicy{Kind: ReplanKind(9)}}); err == nil {
		t.Fatal("unknown replan kind accepted")
	}
	if _, err := New(Config{M: 4, Replan: ReplanPolicy{Credit: 1.5}}); err == nil {
		t.Fatal("out-of-range checkpoint credit accepted")
	}
	if _, err := ParseReplanKind("nope"); err == nil {
		t.Fatal("unknown replan name accepted")
	}
	if k, err := ParseReplanKind("checkpoint"); err != nil || k != ReplanCheckpoint {
		t.Fatalf("ParseReplanKind(checkpoint) = %v, %v", k, err)
	}
}
