package cluster

import (
	"fmt"
	"math"

	"bicriteria/internal/online"
)

// BatchPolicy decides when the engine fires the next batch. Whenever the
// machine is idle and jobs are pending, the engine asks the policy for the
// earliest admissible fire time (>= now). Returning now fires immediately;
// returning a later time makes the engine wait (new arrivals re-trigger the
// question); returning +Inf waits for more arrivals — the engine still
// flushes the backlog once the stream is exhausted, so no job is lost.
type BatchPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// NextFire returns the earliest time at which the pending jobs may be
	// batched, given that the machine is idle since now.
	NextFire(now float64, pending []online.Job) float64
}

// batchOnIdle fires as soon as the machine is idle and a job is pending:
// the batch framework of section 2.2 of the paper (and internal/online).
type batchOnIdle struct{}

// BatchOnIdle returns the paper's batch-on-idle policy.
func BatchOnIdle() BatchPolicy { return batchOnIdle{} }

func (batchOnIdle) Name() string { return "batch-on-idle" }

func (batchOnIdle) NextFire(now float64, pending []online.Job) float64 { return now }

// fixedInterval fires only on multiples of a fixed period, like a cron-run
// batch scheduler: arrivals accumulate until the next tick after the
// machine goes idle.
type fixedInterval struct {
	period float64
}

// FixedInterval returns a policy firing on multiples of period.
func FixedInterval(period float64) (BatchPolicy, error) {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		return nil, fmt.Errorf("cluster: fixed-interval period must be positive and finite, got %g", period)
	}
	return fixedInterval{period: period}, nil
}

func (p fixedInterval) Name() string { return fmt.Sprintf("fixed-interval(%g)", p.period) }

func (p fixedInterval) NextFire(now float64, pending []online.Job) float64 {
	ticks := math.Ceil(now / p.period)
	if t := ticks * p.period; t >= now {
		return t
	}
	return (ticks + 1) * p.period
}

// adaptiveBacklog fires early when enough work has accumulated to keep the
// machine busy, but never keeps a job waiting longer than MaxDelay: large
// batches when the cluster is loaded, low latency when it is not.
type adaptiveBacklog struct {
	workTarget float64
	maxDelay   float64
}

// AdaptiveBacklog returns a backlog-driven policy: a batch fires as soon as
// the pending jobs carry at least workTarget processor-time units of
// minimum work, or when the oldest pending job has waited maxDelay since
// its submission, whichever comes first.
func AdaptiveBacklog(workTarget, maxDelay float64) (BatchPolicy, error) {
	if workTarget <= 0 || math.IsNaN(workTarget) || math.IsInf(workTarget, 0) {
		return nil, fmt.Errorf("cluster: backlog work target must be positive and finite, got %g", workTarget)
	}
	if maxDelay < 0 || math.IsNaN(maxDelay) {
		return nil, fmt.Errorf("cluster: invalid max delay %g", maxDelay)
	}
	return adaptiveBacklog{workTarget: workTarget, maxDelay: maxDelay}, nil
}

func (p adaptiveBacklog) Name() string {
	return fmt.Sprintf("adaptive-backlog(work=%g, delay=%g)", p.workTarget, p.maxDelay)
}

func (p adaptiveBacklog) NextFire(now float64, pending []online.Job) float64 {
	backlog := 0.0
	oldest := math.Inf(1)
	for i := range pending {
		w, _ := pending[i].Task.MinWork()
		backlog += w
		if pending[i].Release < oldest {
			oldest = pending[i].Release
		}
	}
	if backlog >= p.workTarget {
		return now
	}
	return oldest + p.maxDelay
}
