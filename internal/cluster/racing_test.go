package cluster

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/schedule"
)

// TestRacingDeterministicParallelVsSequential pins the tentpole invariant:
// with racing (and the bandit) enabled, the committed schedules, reports
// and winner sequence are byte-identical between the concurrent replay and
// the goroutine-free one — racing only decides who gets cancelled, never
// who wins.
func TestRacingDeterministicParallelVsSequential(t *testing.T) {
	jobs := stream(t, 32, 80, 9, 5)
	base := Config{
		M:         32,
		Objective: Objective{Kind: ObjectiveCombined, Alpha: 0.5},
		Perturb:   noise(t, 0.2, 9),
		Racing:    Racing{Cutoff: 2, Bandit: true, Seed: 7},
	}

	run := func(sequential bool, procs int) *Report {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := base
		cfg.Sequential = sequential
		eng, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	seq := run(true, 1)
	par := run(false, runtime.NumCPU())
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("racing parallel replay differs from sequential replay under the same seed")
	}
	par2 := run(false, runtime.NumCPU())
	if !reflect.DeepEqual(par, par2) {
		t.Fatal("two racing parallel replays under the same seed differ")
	}
	cut := 0
	for _, br := range seq.Batches {
		cut += len(br.CutOff)
		for _, c := range br.Candidates {
			if c.Cancelled && (c.Err != nil || !math.IsNaN(c.Score) && c.Score != 0) {
				t.Fatalf("cancelled candidate %q carries a score or error: %+v", c.Name, c)
			}
		}
	}
	if cut == 0 {
		t.Fatal("racing at cutoff 2 never cut anyone off — the race is not exercising the cutoff")
	}
}

// TestRacingCutoffOneMatchesNonRacing pins the disabled semantics: a
// cutoff factor of 1 (or 0) is racing turned off, bit-identical to an
// engine without the field.
func TestRacingCutoffOneMatchesNonRacing(t *testing.T) {
	jobs := stream(t, 24, 50, 4, 3)
	run := func(r Racing) *Report {
		eng, err := New(Config{
			M:         24,
			Objective: Objective{Kind: ObjectiveCombined, Alpha: 0.5},
			Perturb:   noise(t, 0.15, 4),
			Racing:    r,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(Racing{})
	one := run(Racing{Cutoff: 1, Bandit: true, Seed: 3})
	if !reflect.DeepEqual(plain, one) {
		t.Fatal("cutoff factor 1 does not reproduce the non-racing replay")
	}
	zero := run(Racing{Cutoff: 0})
	if !reflect.DeepEqual(plain, zero) {
		t.Fatal("cutoff factor 0 does not reproduce the non-racing replay")
	}
}

// singleJob is a one-job stream for the straggler tests.
func singleJob() []online.Job {
	return []online.Job{{Task: moldable.Task{ID: 1, Weight: 1, Times: []float64{8, 5}}}}
}

// TestRacingCancelsStragglers checks the race actually kills a straggler:
// a fast optimal member qualifies immediately and a member that blocks
// until cancelled must be cut off instead of stalling the batch forever.
func TestRacingCancelsStragglers(t *testing.T) {
	stuck := Algorithm{Name: "stuck", Run: func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	eng, err := New(Config{
		M:         2,
		Portfolio: []Algorithm{DEMTAlgorithm(nil), stuck},
		Racing:    Racing{Cutoff: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rep *Report
	go func() {
		defer close(done)
		rep, err = eng.Run(singleJob())
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("racing run with a blocked straggler did not return")
	}
	if err != nil {
		t.Fatal(err)
	}
	br := rep.Batches[0]
	if br.Winner != "demt" {
		t.Fatalf("winner %q, want demt", br.Winner)
	}
	if !reflect.DeepEqual(br.CutOff, []string{"stuck"}) {
		t.Fatalf("cut-off list %v, want [stuck]", br.CutOff)
	}
	if !br.Candidates[1].Cancelled {
		t.Fatalf("straggler not marked cancelled: %+v", br.Candidates[1])
	}
}

// TestRunContextCancelMidBatch is the regression test for the
// uncancellable-portfolio bug: RunContext used to check the context only
// between batches, so a cancellation during a batch still ran every
// member to completion. Now a mid-batch cancel must return promptly with
// the context's error.
func TestRunContextCancelMidBatch(t *testing.T) {
	var once sync.Once
	started := make(chan struct{})
	blocking := Algorithm{Name: "blocking", Run: func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	eng, err := New(Config{M: 2, Portfolio: []Algorithm{blocking}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-started
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := eng.RunContext(ctx, singleJob())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-batch cancel returned %v, want a context.Canceled wrap", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mid-batch cancel did not abort the portfolio")
	}
}

// TestCombinedScoreDegenerateBounds is the table-driven pin of the
// normalization guard: degenerate lower bounds (zero, NaN, Inf — e.g. a
// batch of zero-weight jobs has LB(sum wC) = 0) must leave the criterion
// raw instead of producing NaN/Inf scores.
func TestCombinedScoreDegenerateBounds(t *testing.T) {
	inst := moldable.NewInstance(2, []moldable.Task{{ID: 0, Weight: 0, Times: []float64{4, 2}}})
	s := schedule.New(2)
	s.Add(schedule.Assignment{TaskID: 0, Start: 0, NProcs: 1, Procs: []int{0}, Duration: 4})
	obj := Objective{Kind: ObjectiveCombined, Alpha: 0.5}
	// Makespan 4, weighted completion 0 (zero-weight job).
	cases := []struct {
		name string
		lb   batchBounds
		want float64
	}{
		{"both usable", batchBounds{cmax: 2, minsum: 5}, 0.5 * (4.0 / 2)},
		{"zero bounds stay raw", batchBounds{}, 0.5 * 4},
		{"zero minsum only", batchBounds{cmax: 4}, 0.5 * 1},
		{"NaN bound stays raw", batchBounds{cmax: math.NaN()}, 0.5 * 4},
		{"Inf bound stays raw", batchBounds{cmax: math.Inf(1), minsum: math.Inf(1)}, 0.5 * 4},
		{"negative bound stays raw", batchBounds{cmax: -3, minsum: -1}, 0.5 * 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := obj.score(inst, s, tc.lb)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("score is not finite: %g", got)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("score %g, want %g", got, tc.want)
			}
		})
	}
}

// TestWinnerSelectionSkipsFailedCandidates pins the order-independence
// fix: a failed member's NaN score must never stick as "winner" however
// early it sits in the portfolio.
func TestWinnerSelectionSkipsFailedCandidates(t *testing.T) {
	failing := Algorithm{Name: "failing", Run: func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
		return nil, errors.New("synthetic failure")
	}}
	for _, order := range [][]Algorithm{
		{failing, DEMTAlgorithm(nil)},
		{DEMTAlgorithm(nil), failing},
	} {
		cands, _, win, err := runPortfolio(context.Background(), moldable.NewInstance(2, []moldable.Task{{ID: 1, Weight: 1, Times: []float64{6, 4}}}),
			order, Objective{Kind: ObjectiveCombined, Alpha: 0.5}, true, nil, Racing{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cands[win].Name != "demt" {
			t.Fatalf("winner %q with portfolio order %q first, want demt", cands[win].Name, order[0].Name)
		}
	}
}
