package cluster

import (
	"fmt"
	"math"

	"bicriteria/internal/moldable"
)

// DefaultMaxRetries bounds how many times one job may be killed by
// outages and resubmitted before the engine abandons it as lost. The
// default is generous: with a finite fault plan every job is eventually
// rescheduled onto a healthy window, so losses only happen under
// pathological plans.
const DefaultMaxRetries = 16

// minRemainingFrac floors the checkpoint-credited remainder of a
// resubmitted job: however much progress was credited, restarting a job
// still costs at least this fraction of its processing times (checkpoint
// load, requeue overhead) — and the floor keeps every time vector
// strictly positive.
const minRemainingFrac = 0.05

// ReplanKind selects how a job killed by an outage is resubmitted.
type ReplanKind int

const (
	// ReplanRestart resubmits the job from scratch: all partial work is
	// lost (the classic fail-restart model).
	ReplanRestart ReplanKind = iota
	// ReplanCheckpoint credits the killed attempt's completed fraction:
	// the resubmitted job's processing times shrink by Credit times the
	// fraction of the run that finished before the crash, modelling
	// periodic checkpoints the restart can resume from.
	ReplanCheckpoint
)

// String returns the CLI name of the replan kind.
func (k ReplanKind) String() string {
	switch k {
	case ReplanRestart:
		return "restart"
	case ReplanCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("ReplanKind(%d)", int(k))
	}
}

// ParseReplanKind converts a CLI string into a ReplanKind.
func ParseReplanKind(s string) (ReplanKind, error) {
	switch s {
	case "", "restart":
		return ReplanRestart, nil
	case "checkpoint":
		return ReplanCheckpoint, nil
	}
	return 0, fmt.Errorf("cluster: unknown replan policy %q (want restart or checkpoint)", s)
}

// ReplanPolicy decides what a killed job looks like when it rejoins the
// queue. The zero value is restart-from-scratch.
type ReplanPolicy struct {
	// Kind selects the model.
	Kind ReplanKind
	// Credit, for ReplanCheckpoint, is the fraction of the completed work
	// that survives the crash, in [0, 1]. Zero means 1 (perfect
	// checkpoints); ReplanRestart ignores it.
	Credit float64
}

// Validate checks the policy.
func (p ReplanPolicy) Validate() error {
	switch p.Kind {
	case ReplanRestart, ReplanCheckpoint:
	default:
		return fmt.Errorf("cluster: unknown replan kind %d", int(p.Kind))
	}
	if p.Credit < 0 || p.Credit > 1 || math.IsNaN(p.Credit) {
		return fmt.Errorf("cluster: checkpoint credit must lie in [0, 1], got %g", p.Credit)
	}
	return nil
}

// resubmit builds the task to re-enqueue after a kill that completed
// fracDone of its realized run. Scaling the whole time vector by one
// factor preserves the moldable monotony invariants, exactly like the
// workload generator's runtime tails.
func (p ReplanPolicy) resubmit(t moldable.Task, fracDone float64) moldable.Task {
	cp := t.Clone()
	if p.Kind != ReplanCheckpoint {
		return cp
	}
	credit := p.Credit
	if credit == 0 {
		credit = 1
	}
	if fracDone < 0 {
		fracDone = 0
	}
	if fracDone > 1 {
		fracDone = 1
	}
	scale := 1 - credit*fracDone
	if scale < minRemainingFrac {
		scale = minRemainingFrac
	}
	for k := range cp.Times {
		cp.Times[k] *= scale
	}
	return cp
}

// KillEvent records one job killed by an outage during a run, in absolute
// time: the attempt started at Start and died at Time, during batch Batch.
type KillEvent struct {
	TaskID int
	Batch  int
	Start  float64
	Time   float64
}

// faultState is the per-run bookkeeping of the recovery machinery.
type faultState struct {
	replan     ReplanPolicy
	maxRetries int
	// retries counts the kills of each job so far; killedEver marks jobs
	// with at least one kill (to detect recoveries on completion).
	retries    map[int]int
	killedEver map[int]bool
}

func newFaultState(replan ReplanPolicy, maxRetries int) *faultState {
	if maxRetries <= 0 {
		maxRetries = DefaultMaxRetries
	}
	return &faultState{
		replan:     replan,
		maxRetries: maxRetries,
		retries:    make(map[int]int),
		killedEver: make(map[int]bool),
	}
}
