package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bicriteria/internal/baselines"
	"bicriteria/internal/core"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/moldable"
	"bicriteria/internal/obs"
	"bicriteria/internal/schedule"
)

// Algorithm is one member of the portfolio: any off-line scheduler for a
// moldable instance. Run must be deterministic (seeded internally) for the
// engine's replay guarantees to hold, and must honor the context so a
// racing portfolio (or a draining service) can cancel a straggler
// mid-schedule: on cancellation it returns an error wrapping ctx.Err().
type Algorithm struct {
	// Name identifies the algorithm in reports and winner counts.
	Name string
	// Run schedules the batch instance.
	Run func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error)
}

// DEMTAlgorithm wraps the paper's bi-criteria scheduler as a portfolio
// member. A nil options pointer gives the paper's defaults.
func DEMTAlgorithm(opts *core.Options) Algorithm {
	return Algorithm{Name: "demt", Run: func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
		res, err := core.ScheduleContext(ctx, inst, opts)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}}
}

// DefaultPortfolio returns the paper's full comparison as a portfolio: DEMT
// plus every baseline of the evaluation section. A nil options pointer
// gives DEMT the paper's defaults.
func DefaultPortfolio(opts *core.Options) []Algorithm {
	return []Algorithm{
		DEMTAlgorithm(opts),
		{Name: "gang", Run: baselines.GangContext},
		{Name: "seq-lpt", Run: baselines.SequentialContext},
		{Name: "list-saf", Run: func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
			return baselines.ListGrahamContext(ctx, inst, baselines.SmallestAreaFirst)
		}},
		{Name: "list-wlpt", Run: func(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
			return baselines.ListGrahamContext(ctx, inst, baselines.WeightedLPT)
		}},
	}
}

// ObjectiveKind selects the criterion the engine minimizes when committing
// a batch schedule.
type ObjectiveKind int

const (
	// ObjectiveMakespan commits the schedule with the smallest makespan.
	ObjectiveMakespan ObjectiveKind = iota
	// ObjectiveWeightedCompletion commits the schedule with the smallest
	// weighted sum of completion times.
	ObjectiveWeightedCompletion
	// ObjectiveCombined commits the schedule minimizing the convex
	// combination Alpha * Cmax/LB(Cmax) + (1-Alpha) * sum wC / LB(sum wC):
	// both criteria normalized by their per-batch lower bounds so the
	// combination is scale-free, as in the paper's bi-criteria analysis.
	ObjectiveCombined
)

// String returns the CLI name of the objective.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveMakespan:
		return "makespan"
	case ObjectiveWeightedCompletion:
		return "minsum"
	case ObjectiveCombined:
		return "combined"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// Objective configures the commit criterion. The zero value minimizes the
// makespan.
type Objective struct {
	Kind ObjectiveKind
	// Alpha is the weight of the (normalized) makespan in the combined
	// objective; it must lie in [0, 1]. Ignored by the pure objectives.
	Alpha float64
}

// Validate checks the objective.
func (o Objective) Validate() error {
	switch o.Kind {
	case ObjectiveMakespan, ObjectiveWeightedCompletion:
		return nil
	case ObjectiveCombined:
		if o.Alpha < 0 || o.Alpha > 1 || math.IsNaN(o.Alpha) {
			return fmt.Errorf("cluster: combined objective needs Alpha in [0,1], got %g", o.Alpha)
		}
		return nil
	}
	return fmt.Errorf("cluster: unknown objective kind %d", int(o.Kind))
}

// Racing configures portfolio racing: instead of running every member to
// completion, the engine cancels stragglers as soon as one candidate's
// score is provably within Cutoff of the batch lower bound from
// internal/lowerbound. The committed schedule is byte-identical between
// concurrent and sequential replays: the cut is decided by the
// deterministic launch order and per-candidate qualification alone, never
// by goroutine timing.
type Racing struct {
	// Cutoff is the early-cutoff factor: a candidate whose objective value
	// is within Cutoff times the batch lower bound wins immediately and
	// the members launched after it are cancelled. 0 or 1 disables racing
	// (no candidate can beat the bound itself); useful values are small
	// factors such as 1.5 or 2.
	Cutoff float64
	// Bandit biases the launch order toward recent winners with a seeded,
	// deterministic win-count selector, so the member most likely to hit
	// the cutoff is launched (and therefore qualifies) first.
	Bandit bool
	// Seed seeds the bandit's exploration draws; 0 picks a fixed default
	// so replays stay deterministic.
	Seed int64
}

// Enabled reports whether racing is active: a cutoff factor above 1.
func (r Racing) Enabled() bool { return r.Cutoff > 1 }

// Validate checks the racing configuration.
func (r Racing) Validate() error {
	if math.IsNaN(r.Cutoff) || math.IsInf(r.Cutoff, 0) || r.Cutoff < 0 {
		return fmt.Errorf("cluster: racing cutoff must be a finite non-negative factor, got %g", r.Cutoff)
	}
	if r.Cutoff > 0 && r.Cutoff < 1 {
		return fmt.Errorf("cluster: racing cutoff %g lies below 1; no candidate can score under the lower bound", r.Cutoff)
	}
	return nil
}

const (
	// banditDecay is the multiplicative decay applied to every member's
	// win count when a batch commits, so the launch order tracks *recent*
	// winners.
	banditDecay = 0.5
	// banditExplore is the per-batch probability of promoting a uniformly
	// random member to the front of the launch order, so a workload shift
	// can unseat a long-time winner.
	banditExplore = 0.1
)

// raceState carries the bandit selector across the batches of one replay:
// decayed per-member win counts plus the seeded exploration source. All
// draws happen once per batch in the engine's single batch loop, so the
// stream is identical between concurrent and sequential replays.
type raceState struct {
	wins   []float64
	rng    *rand.Rand
	bandit bool
}

// newRaceState builds the per-replay bandit state for n portfolio members.
func newRaceState(n int, r Racing) *raceState {
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	return &raceState{wins: make([]float64, n), rng: rand.New(rand.NewSource(seed)), bandit: r.Bandit}
}

// launchOrder returns the member indices in launch order: portfolio order
// when the bandit is off, otherwise decreasing recent-win score (ties keep
// portfolio order) with an occasional seeded exploration promotion.
func (st *raceState) launchOrder() []int {
	order := identityOrder(len(st.wins))
	if !st.bandit || len(order) < 2 {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool { return st.wins[order[a]] > st.wins[order[b]] })
	if st.rng.Float64() < banditExplore {
		i := st.rng.Intn(len(order))
		promoted := order[i]
		copy(order[1:i+1], order[:i])
		order[0] = promoted
	}
	return order
}

// observeWin decays every member's score and credits the batch winner.
func (st *raceState) observeWin(winner int) {
	if !st.bandit {
		return
	}
	for i := range st.wins {
		st.wins[i] *= banditDecay
	}
	st.wins[winner]++
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// batchBounds holds the per-batch lower bounds used to normalize the
// combined objective and to decide racing qualification.
type batchBounds struct {
	cmax   float64
	minsum float64
}

// score evaluates a candidate schedule under the objective (lower is
// better). Degenerate lower bounds (zero, negative, NaN or infinite — e.g.
// a batch of zero-weight jobs has LB(sum wC) = 0) leave the corresponding
// criterion unnormalized instead of dividing by them, and any remaining
// non-finite combination collapses to +Inf, so scores always order totally
// and winner selection cannot depend on candidate order.
func (o Objective) score(inst *moldable.Instance, s *schedule.Schedule, lb batchBounds) float64 {
	switch o.Kind {
	case ObjectiveWeightedCompletion:
		return s.WeightedCompletion(inst)
	case ObjectiveCombined:
		cmax := normalize(s.Makespan(), lb.cmax)
		wc := normalize(s.WeightedCompletion(inst), lb.minsum)
		sc := o.Alpha*cmax + (1-o.Alpha)*wc
		if math.IsNaN(sc) {
			return math.Inf(1)
		}
		return sc
	default:
		return s.Makespan()
	}
}

// normalize divides the criterion by its lower bound when the bound is
// usable (finite and strictly positive) and returns the raw value
// otherwise.
func normalize(v, lb float64) float64 {
	if lb > 0 && !math.IsInf(lb, 1) {
		return v / lb
	}
	return v
}

// Candidate reports one portfolio member's outcome on a batch.
type Candidate struct {
	// Name is the algorithm's name.
	Name string `json:"Name"`
	// Score is the objective value (lower is better); NaN when the
	// algorithm failed, 0 when it was cut off.
	Score float64 `json:"Score"`
	// Makespan and WeightedCompletion are the raw criteria of the
	// candidate schedule.
	Makespan           float64 `json:"Makespan"`
	WeightedCompletion float64 `json:"WeightedCompletion"`
	// Cancelled marks a member cut off by racing: it was launched after
	// the first qualifying candidate and its result (if any) was
	// discarded. Cancelled candidates never carry a score or an error.
	Cancelled bool `json:",omitempty"`
	// Err carries the algorithm's failure, if any.
	Err error `json:"Err"`
}

// qualifies reports whether the candidate's objective value is provably
// within race.Cutoff of the batch lower bound. Degenerate bounds never
// qualify: without a positive bound there is nothing to be provably close
// to.
func (r Racing) qualifies(obj Objective, c *Candidate, lb batchBounds) bool {
	if c.Err != nil || math.IsNaN(c.Score) {
		return false
	}
	switch obj.Kind {
	case ObjectiveMakespan:
		return lb.cmax > 0 && !math.IsInf(lb.cmax, 1) && c.Makespan <= r.Cutoff*lb.cmax
	case ObjectiveWeightedCompletion:
		return lb.minsum > 0 && !math.IsInf(lb.minsum, 1) && c.WeightedCompletion <= r.Cutoff*lb.minsum
	case ObjectiveCombined:
		// The normalized lower bound is exactly 1 when both bounds are
		// usable.
		return lb.cmax > 0 && !math.IsInf(lb.cmax, 1) && lb.minsum > 0 && !math.IsInf(lb.minsum, 1) &&
			c.Score <= r.Cutoff
	}
	return false
}

// runPortfolio schedules the batch with the portfolio — in parallel
// goroutines unless sequential is requested — scores the valid candidates
// under the objective and returns the candidates (in portfolio order), the
// produced schedules, and the winner index. The winner is the lowest
// score, ties broken by portfolio order.
//
// With racing enabled, members launch in the deterministic launch order
// (bandit or portfolio order) under per-member cancellable contexts. The
// cut index is the first launch position whose candidate qualifies under
// race.qualifies; members launched after it are cancelled and their
// results discarded even if they finished first, while members launched
// before it always run to completion. Sequential replays run the same
// launch order and stop at the same cut index without running the rest, so
// the committed candidates, schedules and winner are bit-identical whether
// the members run concurrently or not — racing only affects wall-clock and
// who gets cancelled.
//
// A non-nil registry receives each member's wall-clock latency under its
// name, plus the racing win/cancel/cutoff counters and the race latency
// histogram when racing is enabled.
func runPortfolio(ctx context.Context, inst *moldable.Instance, algos []Algorithm, obj Objective, sequential bool, reg *obs.Registry, race Racing, state *raceState) ([]Candidate, []*schedule.Schedule, int, error) {
	start := time.Now() //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
	cands := make([]Candidate, len(algos))
	scheds := make([]*schedule.Schedule, len(algos))
	racing := race.Enabled() && len(algos) > 0

	lb := batchBounds{}
	if obj.Kind == ObjectiveCombined || (racing && obj.Kind == ObjectiveMakespan) {
		lb.cmax = lowerbound.Makespan(inst)
	}
	if obj.Kind == ObjectiveCombined || (racing && obj.Kind == ObjectiveWeightedCompletion) {
		lb.minsum = lowerbound.MinsumSquashedArea(inst)
	}

	runOne := func(ctx context.Context, i int) {
		memberStart := time.Now() //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
		s, err := algos[i].Run(ctx, inst)
		if reg != nil {
			reg.Histogram("bicrit_portfolio_algorithm_seconds",
				"Wall-clock latency of one portfolio member scheduling one batch.",
				obs.TimeBuckets(), obs.L("algorithm", algos[i].Name)).Observe(time.Since(memberStart).Seconds()) //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
		}
		if err == nil {
			err = s.Validate(inst, nil)
		}
		if err != nil {
			cands[i] = Candidate{Name: algos[i].Name, Score: math.NaN(), Err: fmt.Errorf("cluster: algorithm %s: %w", algos[i].Name, err)}
			return
		}
		cands[i] = Candidate{
			Name:               algos[i].Name,
			Score:              obj.score(inst, s, lb),
			Makespan:           s.Makespan(),
			WeightedCompletion: s.WeightedCompletion(inst),
		}
		scheds[i] = s
	}

	cancelled := 0
	if racing {
		order := identityOrder(len(algos))
		if state != nil {
			order = state.launchOrder()
		}
		// bestQ is the smallest launch position whose candidate qualifies.
		// It only ever decreases, and cancellation only targets positions
		// strictly after it, so positions at or before the final bestQ
		// always run to completion — the commit is timing-independent.
		bestQ := len(algos)
		if sequential {
			for p, i := range order {
				if p > bestQ {
					cands[i] = Candidate{Name: algos[i].Name, Cancelled: true}
					continue
				}
				runOne(ctx, i)
				if race.qualifies(obj, &cands[i], lb) {
					bestQ = p
				}
			}
		} else {
			pos := make([]int, len(algos))
			cancels := make([]context.CancelFunc, len(algos))
			ctxs := make([]context.Context, len(algos))
			for p, i := range order {
				pos[i] = p
				ctxs[i], cancels[i] = context.WithCancel(ctx)
			}
			var mu sync.Mutex
			var wg sync.WaitGroup
			wg.Add(len(algos))
			for _, i := range order {
				go func(i int) {
					defer wg.Done()
					runOne(ctxs[i], i)
					mu.Lock()
					defer mu.Unlock()
					if pos[i] < bestQ && race.qualifies(obj, &cands[i], lb) {
						bestQ = pos[i]
						for _, j := range order[bestQ+1:] {
							cancels[j]()
						}
					}
				}(i)
			}
			wg.Wait()
			for _, c := range cancels {
				c()
			}
			// Discard everything launched after the cut, whether it was
			// cancelled in flight or happened to finish first: the commit
			// must not depend on which happened.
			if bestQ < len(algos) {
				for _, j := range order[bestQ+1:] {
					cands[j] = Candidate{Name: algos[j].Name, Cancelled: true}
					scheds[j] = nil
				}
			}
		}
		for i := range cands {
			if cands[i].Cancelled {
				cancelled++
			}
		}
	} else if sequential {
		for i := range algos {
			runOne(ctx, i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(algos))
		for i := range algos {
			go func(i int) {
				defer wg.Done()
				runOne(ctx, i)
			}(i)
		}
		wg.Wait()
	}

	// A parent cancellation (serve drain, Ctrl-C) aborts the whole batch:
	// surface the context error instead of an all-algorithms-failed
	// aggregate.
	if err := ctx.Err(); err != nil {
		return cands, scheds, -1, fmt.Errorf("cluster: portfolio aborted: %w", err)
	}

	winner := -1
	for i := range cands {
		if scheds[i] == nil || math.IsNaN(cands[i].Score) {
			continue
		}
		if winner < 0 || cands[i].Score < cands[winner].Score {
			winner = i
		}
	}
	if winner < 0 {
		err := fmt.Errorf("cluster: every portfolio algorithm failed on the batch")
		for i := range cands {
			if cands[i].Err != nil {
				err = fmt.Errorf("%w; %v", err, cands[i].Err)
			}
		}
		return cands, scheds, -1, err
	}
	if state != nil {
		state.observeWin(winner)
	}
	if racing && reg != nil {
		reg.Counter("bicrit_portfolio_wins_total",
			"Batches won per portfolio algorithm under racing.",
			obs.L("algorithm", algos[winner].Name)).Inc()
		for i := range cands {
			if cands[i].Cancelled {
				reg.Counter("bicrit_portfolio_cancelled_total",
					"Portfolio members cut off by the racing early cutoff.",
					obs.L("algorithm", algos[i].Name)).Inc()
			}
		}
		if cancelled > 0 {
			reg.Counter("bicrit_portfolio_cutoff_hits_total",
				"Batches where the racing cutoff fired and cancelled at least one member.").Inc()
		}
		reg.Histogram("bicrit_portfolio_race_seconds",
			"Wall-clock latency of one raced portfolio batch.",
			obs.TimeBuckets()).Observe(time.Since(start).Seconds()) //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
	}
	return cands, scheds, winner, nil
}
