package cluster

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bicriteria/internal/baselines"
	"bicriteria/internal/core"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/moldable"
	"bicriteria/internal/obs"
	"bicriteria/internal/schedule"
)

// Algorithm is one member of the portfolio: any off-line scheduler for a
// moldable instance. Run must be deterministic (seeded internally) for the
// engine's replay guarantees to hold.
type Algorithm struct {
	// Name identifies the algorithm in reports and winner counts.
	Name string
	// Run schedules the batch instance.
	Run func(inst *moldable.Instance) (*schedule.Schedule, error)
}

// DEMTAlgorithm wraps the paper's bi-criteria scheduler as a portfolio
// member. A nil options pointer gives the paper's defaults.
func DEMTAlgorithm(opts *core.Options) Algorithm {
	return Algorithm{Name: "demt", Run: func(inst *moldable.Instance) (*schedule.Schedule, error) {
		res, err := core.Schedule(inst, opts)
		if err != nil {
			return nil, err
		}
		return res.Schedule, nil
	}}
}

// DefaultPortfolio returns the paper's full comparison as a portfolio: DEMT
// plus every baseline of the evaluation section. A nil options pointer
// gives DEMT the paper's defaults.
func DefaultPortfolio(opts *core.Options) []Algorithm {
	return []Algorithm{
		DEMTAlgorithm(opts),
		{Name: "gang", Run: baselines.Gang},
		{Name: "seq-lpt", Run: baselines.Sequential},
		{Name: "list-saf", Run: func(inst *moldable.Instance) (*schedule.Schedule, error) {
			return baselines.ListGraham(inst, baselines.SmallestAreaFirst)
		}},
		{Name: "list-wlpt", Run: func(inst *moldable.Instance) (*schedule.Schedule, error) {
			return baselines.ListGraham(inst, baselines.WeightedLPT)
		}},
	}
}

// ObjectiveKind selects the criterion the engine minimizes when committing
// a batch schedule.
type ObjectiveKind int

const (
	// ObjectiveMakespan commits the schedule with the smallest makespan.
	ObjectiveMakespan ObjectiveKind = iota
	// ObjectiveWeightedCompletion commits the schedule with the smallest
	// weighted sum of completion times.
	ObjectiveWeightedCompletion
	// ObjectiveCombined commits the schedule minimizing the convex
	// combination Alpha * Cmax/LB(Cmax) + (1-Alpha) * sum wC / LB(sum wC):
	// both criteria normalized by their per-batch lower bounds so the
	// combination is scale-free, as in the paper's bi-criteria analysis.
	ObjectiveCombined
)

// String returns the CLI name of the objective.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveMakespan:
		return "makespan"
	case ObjectiveWeightedCompletion:
		return "minsum"
	case ObjectiveCombined:
		return "combined"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// Objective configures the commit criterion. The zero value minimizes the
// makespan.
type Objective struct {
	Kind ObjectiveKind
	// Alpha is the weight of the (normalized) makespan in the combined
	// objective; it must lie in [0, 1]. Ignored by the pure objectives.
	Alpha float64
}

// Validate checks the objective.
func (o Objective) Validate() error {
	switch o.Kind {
	case ObjectiveMakespan, ObjectiveWeightedCompletion:
		return nil
	case ObjectiveCombined:
		if o.Alpha < 0 || o.Alpha > 1 {
			return fmt.Errorf("cluster: combined objective needs Alpha in [0,1], got %g", o.Alpha)
		}
		return nil
	}
	return fmt.Errorf("cluster: unknown objective kind %d", int(o.Kind))
}

// batchBounds holds the per-batch lower bounds used to normalize the
// combined objective.
type batchBounds struct {
	cmax   float64
	minsum float64
}

// score evaluates a candidate schedule under the objective (lower is
// better).
func (o Objective) score(inst *moldable.Instance, s *schedule.Schedule, lb batchBounds) float64 {
	switch o.Kind {
	case ObjectiveWeightedCompletion:
		return s.WeightedCompletion(inst)
	case ObjectiveCombined:
		cmax := s.Makespan()
		wc := s.WeightedCompletion(inst)
		if lb.cmax > 0 {
			cmax /= lb.cmax
		}
		if lb.minsum > 0 {
			wc /= lb.minsum
		}
		return o.Alpha*cmax + (1-o.Alpha)*wc
	default:
		return s.Makespan()
	}
}

// Candidate reports one portfolio member's outcome on a batch.
type Candidate struct {
	// Name is the algorithm's name.
	Name string
	// Score is the objective value (lower is better); NaN when the
	// algorithm failed.
	Score float64
	// Makespan and WeightedCompletion are the raw criteria of the
	// candidate schedule.
	Makespan           float64
	WeightedCompletion float64
	// Err carries the algorithm's failure, if any.
	Err error
}

// runPortfolio schedules the batch with every portfolio member — in
// parallel goroutines unless sequential is requested — scores the valid
// candidates under the objective and returns the candidates (in portfolio
// order), the produced schedules, and the winner index. The winner is the
// lowest score, ties broken by portfolio order, so the outcome is
// bit-identical whether the members run concurrently or not. A non-nil
// registry receives each member's wall-clock latency under its name.
func runPortfolio(inst *moldable.Instance, algos []Algorithm, obj Objective, sequential bool, reg *obs.Registry) ([]Candidate, []*schedule.Schedule, int, error) {
	cands := make([]Candidate, len(algos))
	scheds := make([]*schedule.Schedule, len(algos))
	runOne := func(i int) {
		start := time.Now()
		s, err := algos[i].Run(inst)
		if reg != nil {
			reg.Histogram("bicrit_portfolio_algorithm_seconds",
				"Wall-clock latency of one portfolio member scheduling one batch.",
				obs.TimeBuckets(), obs.L("algorithm", algos[i].Name)).Observe(time.Since(start).Seconds())
		}
		if err == nil {
			err = s.Validate(inst, nil)
		}
		if err != nil {
			cands[i] = Candidate{Name: algos[i].Name, Err: fmt.Errorf("cluster: algorithm %s: %w", algos[i].Name, err)}
			return
		}
		cands[i] = Candidate{
			Name:               algos[i].Name,
			Makespan:           s.Makespan(),
			WeightedCompletion: s.WeightedCompletion(inst),
		}
		scheds[i] = s
	}
	if sequential {
		for i := range algos {
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(algos))
		for i := range algos {
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}

	lb := batchBounds{}
	if obj.Kind == ObjectiveCombined {
		lb.cmax = lowerbound.Makespan(inst)
		lb.minsum = lowerbound.MinsumSquashedArea(inst)
	}
	winner := -1
	for i := range cands {
		if scheds[i] == nil {
			cands[i].Score = math.NaN()
			continue
		}
		cands[i].Score = obj.score(inst, scheds[i], lb)
		if winner < 0 || cands[i].Score < cands[winner].Score {
			winner = i
		}
	}
	if winner < 0 {
		err := fmt.Errorf("cluster: every portfolio algorithm failed on the batch")
		for i := range cands {
			if cands[i].Err != nil {
				err = fmt.Errorf("%w; %v", err, cands[i].Err)
			}
		}
		return cands, scheds, -1, err
	}
	return cands, scheds, winner, nil
}
