package cluster

// Metrics aggregates the realized behaviour of a cluster run. The engine
// keeps a running accumulator and attaches a snapshot to every batch
// report, so a long replay can be monitored as it streams.
type Metrics struct {
	// Batches is the number of batches committed so far.
	Batches int
	// Jobs is the number of jobs completed so far.
	Jobs int
	// Makespan is the realized completion time of the last job (absolute).
	Makespan float64
	// WeightedCompletion is the realized sum(w_i * C_i) with absolute
	// completion times.
	WeightedCompletion float64
	// MaxFlow is the maximum realized flow time (completion minus
	// submission) over jobs.
	MaxFlow float64
	// MeanStretch is the mean over jobs of the realized flow time divided
	// by the job's fastest possible execution time.
	MeanStretch float64
	// Utilization is the fraction of the processor-time rectangle
	// [0, Makespan] x M spent executing jobs. Idle waits between batches
	// count against it, as on a real machine.
	Utilization float64
	// Delayed counts the tasks that started later than their planned
	// (batch-relative) start time during realized execution.
	Delayed int
	// Wins counts, per portfolio algorithm, the batches it won.
	Wins map[string]int
}

// metricsAccumulator is the running state behind Metrics.
type metricsAccumulator struct {
	m          int
	batches    int
	jobs       int
	makespan   float64
	weightedC  float64
	maxFlow    float64
	stretchSum float64
	stretched  int
	busy       float64
	delayed    int
	wins       map[string]int
}

func newMetricsAccumulator(m int) *metricsAccumulator {
	return &metricsAccumulator{m: m, wins: make(map[string]int)}
}

// observeJob folds one realized job completion into the accumulator.
func (acc *metricsAccumulator) observeJob(release, completion, pmin, weight float64) {
	acc.jobs++
	if completion > acc.makespan {
		acc.makespan = completion
	}
	acc.weightedC += weight * completion
	flow := completion - release
	if flow > acc.maxFlow {
		acc.maxFlow = flow
	}
	if pmin > 0 {
		acc.stretchSum += flow / pmin
		acc.stretched++
	}
}

// observeBatch folds one committed batch into the accumulator.
func (acc *metricsAccumulator) observeBatch(winner string, busyTime float64, delayed int) {
	acc.batches++
	acc.wins[winner]++
	acc.busy += busyTime
	acc.delayed += delayed
}

// snapshot derives the exported metrics. The winner map is copied so a
// stored snapshot is not mutated by later batches.
func (acc *metricsAccumulator) snapshot() Metrics {
	m := Metrics{
		Batches:            acc.batches,
		Jobs:               acc.jobs,
		Makespan:           acc.makespan,
		WeightedCompletion: acc.weightedC,
		MaxFlow:            acc.maxFlow,
		Delayed:            acc.delayed,
		Wins:               make(map[string]int, len(acc.wins)),
	}
	for k, v := range acc.wins {
		m.Wins[k] = v
	}
	if acc.stretched > 0 {
		m.MeanStretch = acc.stretchSum / float64(acc.stretched)
	}
	if acc.makespan > 0 && acc.m > 0 {
		m.Utilization = acc.busy / (acc.makespan * float64(acc.m))
	}
	return m
}
