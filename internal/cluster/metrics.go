package cluster

import (
	"sort"

	"bicriteria/internal/stats"
)

// BoundedSlowdownThreshold is the runtime floor tau of the bounded-slowdown
// metric max(1, flow / max(pmin, tau)): jobs faster than tau do not inflate
// the slowdown arbitrarily. One time unit matches the scale of the paper's
// workloads (sequential times in [1, 10]).
const BoundedSlowdownThreshold = 1.0

// BoundedSlowdown computes the bounded slowdown of one realized job from
// its flow time (completion minus submission) and its fastest possible
// execution time pmin.
func BoundedSlowdown(flow, pmin float64) float64 {
	denom := pmin
	if denom < BoundedSlowdownThreshold {
		denom = BoundedSlowdownThreshold
	}
	if s := flow / denom; s > 1 {
		return s
	}
	return 1
}

// Metrics aggregates the realized behaviour of a cluster run. The engine
// keeps a running accumulator and attaches a snapshot to every batch
// report, so a long replay can be monitored as it streams.
type Metrics struct {
	// Batches is the number of batches committed so far.
	Batches int `json:"Batches"`
	// Jobs is the number of jobs completed so far.
	Jobs int `json:"Jobs"`
	// Makespan is the realized completion time of the last job (absolute).
	Makespan float64 `json:"Makespan"`
	// WeightedCompletion is the realized sum(w_i * C_i) with absolute
	// completion times.
	WeightedCompletion float64 `json:"WeightedCompletion"`
	// MaxFlow is the maximum realized flow time (completion minus
	// submission) over jobs.
	MaxFlow float64 `json:"MaxFlow"`
	// MeanStretch is the mean over jobs of the realized flow time divided
	// by the job's fastest possible execution time.
	MeanStretch float64 `json:"MeanStretch"`
	// StretchP50, StretchP95 and StretchP99 are nearest-rank percentiles of
	// the per-job stretch distribution: the tail the mean hides.
	StretchP50 float64 `json:"StretchP50"`
	StretchP95 float64 `json:"StretchP95"`
	StretchP99 float64 `json:"StretchP99"`
	// MeanBoundedSlowdown is the mean over jobs of
	// max(1, flow / max(pmin, BoundedSlowdownThreshold)).
	MeanBoundedSlowdown float64 `json:"MeanBoundedSlowdown"`
	// BoundedSlowdownP50, P95 and P99 are the matching percentiles.
	BoundedSlowdownP50 float64 `json:"BoundedSlowdownP50"`
	BoundedSlowdownP95 float64 `json:"BoundedSlowdownP95"`
	BoundedSlowdownP99 float64 `json:"BoundedSlowdownP99"`
	// Utilization is the fraction of the processor-time rectangle
	// [0, Makespan] x M spent executing jobs. Idle waits between batches
	// count against it, as on a real machine.
	Utilization float64 `json:"Utilization"`
	// Delayed counts the tasks that started later than their planned
	// (batch-relative) start time during realized execution.
	Delayed int `json:"Delayed"`
	// Killed counts kill events (one job can die more than once),
	// Resubmitted the re-enqueues they caused, Lost the jobs abandoned
	// after MaxRetries kills and Recovered the jobs that completed after
	// having been killed at least once. All four are zero on a fault-free
	// run.
	Killed      int `json:",omitempty"`
	Resubmitted int `json:",omitempty"`
	Lost        int `json:",omitempty"`
	Recovered   int `json:",omitempty"`
	// Wins counts, per portfolio algorithm, the batches it won.
	Wins map[string]int `json:"Wins"`
}

// metricsAccumulator is the running state behind Metrics.
type metricsAccumulator struct {
	m           int
	batches     int
	jobs        int
	makespan    float64
	weightedC   float64
	maxFlow     float64
	stretches   []float64
	bslds       []float64
	busy        float64
	delayed     int
	killed      int
	resubmitted int
	lost        int
	recovered   int
	wins        map[string]int
}

func newMetricsAccumulator(m int) *metricsAccumulator {
	return &metricsAccumulator{m: m, wins: make(map[string]int)}
}

// observeJob folds one realized job completion into the accumulator.
func (acc *metricsAccumulator) observeJob(release, completion, pmin, weight float64) {
	acc.jobs++
	if completion > acc.makespan {
		acc.makespan = completion
	}
	acc.weightedC += weight * completion
	flow := completion - release
	if flow > acc.maxFlow {
		acc.maxFlow = flow
	}
	if pmin > 0 {
		acc.stretches = append(acc.stretches, flow/pmin)
	}
	acc.bslds = append(acc.bslds, BoundedSlowdown(flow, pmin))
}

// observeBatch folds one committed batch into the accumulator.
func (acc *metricsAccumulator) observeBatch(winner string, busyTime float64, delayed int) {
	acc.batches++
	acc.wins[winner]++
	acc.busy += busyTime
	acc.delayed += delayed
}

// snapshot derives the exported metrics. The winner map is copied so a
// stored snapshot is not mutated by later batches.
func (acc *metricsAccumulator) snapshot() Metrics {
	m := Metrics{
		Batches:            acc.batches,
		Jobs:               acc.jobs,
		Makespan:           acc.makespan,
		WeightedCompletion: acc.weightedC,
		MaxFlow:            acc.maxFlow,
		Delayed:            acc.delayed,
		Killed:             acc.killed,
		Resubmitted:        acc.resubmitted,
		Lost:               acc.lost,
		Recovered:          acc.recovered,
		Wins:               make(map[string]int, len(acc.wins)),
	}
	for k, v := range acc.wins {
		m.Wins[k] = v
	}
	// The samples are kept sorted in place across snapshots: snapshot runs
	// once per batch, and re-sorting an almost-sorted slice is much
	// cheaper than copying and sorting from scratch every time.
	sort.Float64s(acc.stretches)
	stretch := stats.TailOfSorted(acc.stretches)
	m.MeanStretch = stretch.Mean
	m.StretchP50, m.StretchP95, m.StretchP99 = stretch.P50, stretch.P95, stretch.P99
	sort.Float64s(acc.bslds)
	bsld := stats.TailOfSorted(acc.bslds)
	m.MeanBoundedSlowdown = bsld.Mean
	m.BoundedSlowdownP50, m.BoundedSlowdownP95, m.BoundedSlowdownP99 = bsld.P50, bsld.P95, bsld.P99
	if acc.makespan > 0 && acc.m > 0 {
		m.Utilization = acc.busy / (acc.makespan * float64(acc.m))
	}
	return m
}
