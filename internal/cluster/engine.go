// Package cluster is a long-running, event-driven cluster scheduling
// engine: the layer that composes the paper's pieces — the on-line batch
// framework, the DEMT scheduler and its baselines, node reservations and
// the discrete-event simulator — into one system.
//
// The engine consumes a stream of job arrivals (SWF traces via
// internal/trace, or the Poisson/burst generator of internal/workload),
// accumulates them into batches under a pluggable batching policy, and
// schedules every batch with a concurrent algorithm portfolio: each member
// plans the batch in its own goroutine and the engine commits the best plan
// under a configurable objective. Committed plans are placed around node
// reservations and executed on the discrete-event simulator with optionally
// perturbed runtimes, so the *realized* completion of a batch — not the
// planned estimate — decides when the next batch fires. Per-batch reports
// stream out with cumulative metrics (utilization, max flow, mean stretch,
// portfolio winner counts).
//
// Every run is deterministic for a given configuration: the portfolio
// winner is chosen by score with ties broken in portfolio order, so a
// parallel replay is bit-identical to a sequential one.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bicriteria/internal/listsched"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/schedule"
	"bicriteria/internal/sim"
	"bicriteria/internal/workload"
)

// Config drives a cluster engine.
type Config struct {
	// M is the number of processors of the machine.
	M int
	// Portfolio lists the candidate algorithms run on every batch. Empty
	// means DefaultPortfolio(nil). Names must be unique.
	Portfolio []Algorithm
	// Objective selects the commit criterion; the zero value minimizes the
	// batch makespan.
	Objective Objective
	// Policy decides when batches fire; nil means BatchOnIdle().
	Policy BatchPolicy
	// Reservations blocks processors during absolute time windows for the
	// whole run. Planned and realized executions both respect them.
	Reservations []reservation.Reservation
	// Perturb maps planned task durations to realized ones (user estimates
	// are rarely exact); nil means exact execution. It must be a pure
	// function of (taskID, planned) for replays to be deterministic — see
	// UniformNoise.
	Perturb func(taskID int, planned float64) float64
	// Sequential disables the portfolio goroutines (one member at a time).
	// The committed schedules are identical either way; the switch exists
	// for debugging and for the determinism tests.
	Sequential bool
	// OnBatch, when non-nil, receives every batch report as soon as the
	// batch completes: the streaming interface for long replays.
	OnBatch func(BatchReport)
}

// BatchReport describes one committed batch.
type BatchReport struct {
	// Index is the batch number (0-based).
	Index int
	// FireTime is the absolute time the batch fired.
	FireTime float64
	// Jobs lists the task IDs of the batch, sorted.
	Jobs []int
	// Winner is the name of the committed algorithm.
	Winner string
	// Candidates reports every portfolio member's score, in portfolio
	// order.
	Candidates []Candidate
	// PlannedMakespan is the batch-relative makespan of the committed plan
	// (after placement around reservations).
	PlannedMakespan float64
	// RealizedMakespan is the batch-relative makespan after simulated
	// execution with perturbed runtimes.
	RealizedMakespan float64
	// Delayed counts tasks of this batch that started later than planned.
	Delayed int
	// Cumulative is the metrics snapshot after this batch.
	Cumulative Metrics
}

// Report is the outcome of a full run.
type Report struct {
	// Schedule holds the realized placements with absolute start times and
	// realized durations — a trace of the run, not a plan.
	Schedule *schedule.Schedule
	// Batches describes every committed batch in order.
	Batches []BatchReport
	// Metrics is the final aggregate.
	Metrics Metrics
	// Blocked lists, per reservation (in input order), the concrete
	// processors blocked for it.
	Blocked [][]int
}

// Engine is a reusable cluster engine with a fixed configuration.
type Engine struct {
	cfg Config
	// blocked holds the concrete processors assigned to every reservation
	// (in input order), fixed at construction time.
	blocked [][]int
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("cluster: machine needs at least one processor")
	}
	if len(cfg.Portfolio) == 0 {
		cfg.Portfolio = DefaultPortfolio(nil)
	}
	names := make(map[string]bool, len(cfg.Portfolio))
	for _, a := range cfg.Portfolio {
		if a.Name == "" || a.Run == nil {
			return nil, fmt.Errorf("cluster: portfolio algorithms need a name and a Run function")
		}
		if names[a.Name] {
			return nil, fmt.Errorf("cluster: duplicate portfolio algorithm %q", a.Name)
		}
		names[a.Name] = true
	}
	if err := cfg.Objective.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = BatchOnIdle()
	}
	for _, r := range cfg.Reservations {
		if err := r.Validate(cfg.M); err != nil {
			return nil, err
		}
	}
	blocked, err := assignReservationProcs(cfg.M, cfg.Reservations)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, blocked: blocked}, nil
}

// jobInfo caches the per-job quantities the metrics need.
type jobInfo struct {
	release float64
	pmin    float64
	weight  float64
}

// Run replays the job stream through the engine.
func (e *Engine) Run(jobs []online.Job) (*Report, error) {
	infos := make(map[int]jobInfo, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if err := j.Task.Validate(); err != nil {
			return nil, err
		}
		if j.Release < 0 {
			return nil, fmt.Errorf("cluster: job %d has negative release date", j.Task.ID)
		}
		if _, dup := infos[j.Task.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate job ID %d in the stream", j.Task.ID)
		}
		pmin, _ := j.Task.MinTime()
		infos[j.Task.ID] = jobInfo{release: j.Release, pmin: pmin, weight: j.Task.Weight}
	}

	busyAbs := make([]listsched.Busy, len(e.cfg.Reservations))
	for i, r := range e.cfg.Reservations {
		busyAbs[i] = listsched.Busy{Procs: e.blocked[i], Start: r.Start, End: r.End}
	}

	report := &Report{Schedule: schedule.New(e.cfg.M), Blocked: e.blocked}
	acc := newMetricsAccumulator(e.cfg.M)
	if len(jobs) == 0 {
		report.Metrics = acc.snapshot()
		return report, nil
	}

	sorted := make([]online.Job, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Release != sorted[b].Release {
			return sorted[a].Release < sorted[b].Release
		}
		return sorted[a].Task.ID < sorted[b].Task.ID
	})

	now := 0.0
	next := 0
	var pending []online.Job
	batchIndex := 0
	for next < len(sorted) || len(pending) > 0 {
		for next < len(sorted) && sorted[next].Release <= now+moldable.Eps {
			pending = append(pending, sorted[next])
			next++
		}
		if len(pending) == 0 {
			now = sorted[next].Release
			continue
		}
		fire := e.cfg.Policy.NextFire(now, pending)
		if fire > now+moldable.Eps {
			if next < len(sorted) && sorted[next].Release < fire {
				// An arrival lands before the fire time: admit it and ask
				// the policy again with the larger backlog.
				now = sorted[next].Release
				continue
			}
			if !math.IsInf(fire, 1) {
				now = fire
				continue
			}
			// fire is +Inf and (by the check above) the stream is
			// exhausted: the policy would wait forever, flush the backlog
			// now.
		}

		br, realizedMakespan, err := e.runBatch(batchIndex, now, pending, busyAbs, infos, acc, report)
		if err != nil {
			return nil, err
		}
		report.Batches = append(report.Batches, br)
		if e.cfg.OnBatch != nil {
			e.cfg.OnBatch(br)
		}
		now += realizedMakespan
		pending = pending[:0]
		batchIndex++
	}
	report.Metrics = acc.snapshot()
	return report, nil
}

// runBatch schedules, places and executes one batch firing at the absolute
// time now, committing its realized trace into the report.
func (e *Engine) runBatch(index int, now float64, pending []online.Job, busyAbs []listsched.Busy,
	infos map[int]jobInfo, acc *metricsAccumulator, report *Report) (BatchReport, float64, error) {
	tasks := make([]moldable.Task, len(pending))
	ids := make([]int, len(pending))
	for i := range pending {
		tasks[i] = pending[i].Task
		ids[i] = pending[i].Task.ID
	}
	sort.Ints(ids)
	inst := moldable.NewInstance(e.cfg.M, tasks)

	cands, scheds, win, err := runPortfolio(inst, e.cfg.Portfolio, e.cfg.Objective, e.cfg.Sequential)
	if err != nil {
		return BatchReport{}, 0, fmt.Errorf("cluster: batch %d: %w", index, err)
	}
	planned := scheds[win]

	// Re-place the winning plan around the reservation windows still open
	// at (or after) the batch's fire time, expressed batch-relative.
	if rel := relativeBusy(busyAbs, now); len(rel) > 0 {
		placed, err := listsched.InsertionWithReservations(e.cfg.M, rel, reservation.PriorityItems(planned))
		if err != nil {
			return BatchReport{}, 0, fmt.Errorf("cluster: batch %d: placing around reservations: %w", index, err)
		}
		if err := placed.Validate(inst, nil); err != nil {
			return BatchReport{}, 0, fmt.Errorf("cluster: batch %d: reservation placement is invalid: %w", index, err)
		}
		planned = placed
	}

	simRes, err := sim.Execute(inst, planned, &sim.Options{
		Perturb: e.cfg.Perturb,
		Blocked: relativeBlocked(busyAbs, now),
	})
	if err != nil {
		return BatchReport{}, 0, fmt.Errorf("cluster: batch %d: %w", index, err)
	}

	for _, tr := range simRes.Traces {
		report.Schedule.Add(schedule.Assignment{
			TaskID:   tr.TaskID,
			Start:    now + tr.Start,
			NProcs:   len(tr.Procs),
			Procs:    append([]int(nil), tr.Procs...),
			Duration: tr.End - tr.Start,
		})
		info := infos[tr.TaskID]
		acc.observeJob(info.release, now+tr.End, info.pmin, info.weight)
	}
	busyTime := 0.0
	for _, b := range simRes.BusyTime {
		busyTime += b
	}
	acc.observeBatch(cands[win].Name, busyTime, simRes.Delayed)

	return BatchReport{
		Index:            index,
		FireTime:         now,
		Jobs:             ids,
		Winner:           cands[win].Name,
		Candidates:       cands,
		PlannedMakespan:  planned.Makespan(),
		RealizedMakespan: simRes.Makespan,
		Delayed:          simRes.Delayed,
		Cumulative:       acc.snapshot(),
	}, simRes.Makespan, nil
}

// assignReservationProcs picks concrete processors for every reservation,
// highest indices first (so job packing keeps using the low indices), while
// keeping temporally overlapping reservations on disjoint processors.
func assignReservationProcs(m int, reservations []reservation.Reservation) ([][]int, error) {
	blocked := make([][]int, len(reservations))
	for i, r := range reservations {
		taken := make(map[int]bool)
		for j := 0; j < i; j++ {
			o := reservations[j]
			if r.Start < o.End-moldable.Eps && o.Start < r.End-moldable.Eps {
				for _, p := range blocked[j] {
					taken[p] = true
				}
			}
		}
		procs := make([]int, 0, r.Procs)
		for p := m - 1; p >= 0 && len(procs) < r.Procs; p-- {
			if !taken[p] {
				procs = append(procs, p)
			}
		}
		if len(procs) < r.Procs {
			return nil, fmt.Errorf("cluster: reservations overlapping %q need more than the machine's %d processors", r.String(), m)
		}
		blocked[i] = procs
	}
	// At least one processor must stay free at every instant, otherwise
	// the batch in flight during the reservation peak could never place
	// its jobs.
	if m-reservation.PeakReserved(reservations) < 1 {
		return nil, fmt.Errorf("cluster: reservations block the whole %d-processor machine at their peak", m)
	}
	return blocked, nil
}

// relativeBusy shifts the absolute reservation windows into batch-relative
// time, dropping windows fully in the past.
func relativeBusy(busyAbs []listsched.Busy, now float64) []listsched.Busy {
	var rel []listsched.Busy
	for _, b := range busyAbs {
		if b.End <= now+moldable.Eps {
			continue
		}
		start := b.Start - now
		if start < 0 {
			start = 0
		}
		rel = append(rel, listsched.Busy{Procs: b.Procs, Start: start, End: b.End - now})
	}
	return rel
}

// relativeBlocked is relativeBusy converted to the simulator's window type.
func relativeBlocked(busyAbs []listsched.Busy, now float64) []sim.BlockedWindow {
	rel := relativeBusy(busyAbs, now)
	if len(rel) == 0 {
		return nil
	}
	windows := make([]sim.BlockedWindow, len(rel))
	for i, b := range rel {
		windows[i] = sim.BlockedWindow{Procs: b.Procs, Start: b.Start, End: b.End}
	}
	return windows
}

// JobsFromArrivals adapts a generated arrival stream to the engine's input.
func JobsFromArrivals(arrivals []workload.Arrival) []online.Job {
	jobs := make([]online.Job, len(arrivals))
	for i, a := range arrivals {
		jobs[i] = online.Job{Task: a.Task, Release: a.Submit}
	}
	return jobs
}

// UniformNoise builds a deterministic runtime perturbation: every task's
// realized duration is its planned duration scaled by a uniform factor in
// [1-frac, 1+frac], drawn from a stream keyed by (seed, taskID) so the
// result does not depend on simulation order. A frac of 0 returns nil
// (exact execution); a frac outside [0, 1) is rejected, since any other
// factor range could produce non-positive durations.
func UniformNoise(frac float64, seed int64) (func(taskID int, planned float64) float64, error) {
	if frac == 0 {
		return nil, nil
	}
	if frac < 0 || frac >= 1 || math.IsNaN(frac) {
		return nil, fmt.Errorf("cluster: noise fraction must lie in [0, 1), got %g", frac)
	}
	return func(taskID int, planned float64) float64 {
		r := rand.New(rand.NewSource(seed ^ (int64(taskID)+1)*0x9E3779B9))
		return planned * (1 - frac + 2*frac*r.Float64())
	}, nil
}
