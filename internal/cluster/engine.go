// Package cluster is a long-running, event-driven cluster scheduling
// engine: the layer that composes the paper's pieces — the on-line batch
// framework, the DEMT scheduler and its baselines, node reservations and
// the discrete-event simulator — into one system.
//
// The engine consumes a stream of job arrivals (SWF traces via
// internal/trace, or the Poisson/burst generator of internal/workload),
// accumulates them into batches under a pluggable batching policy, and
// schedules every batch with a concurrent algorithm portfolio: each member
// plans the batch in its own goroutine and the engine commits the best plan
// under a configurable objective. Committed plans are placed around node
// reservations and executed on the discrete-event simulator with optionally
// perturbed runtimes, so the *realized* completion of a batch — not the
// planned estimate — decides when the next batch fires. Per-batch reports
// stream out with cumulative metrics (utilization, max flow, mean stretch,
// portfolio winner counts).
//
// Every run is deterministic for a given configuration: the portfolio
// winner is chosen by score with ties broken in portfolio order, so a
// parallel replay is bit-identical to a sequential one.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"bicriteria/internal/faults"
	"bicriteria/internal/listsched"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/moldable"
	"bicriteria/internal/obs"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/schedule"
	"bicriteria/internal/sim"
	"bicriteria/internal/validate"
	"bicriteria/internal/workload"
)

// Config drives a cluster engine.
type Config struct {
	// M is the number of processors of the machine.
	M int
	// Portfolio lists the candidate algorithms run on every batch. Empty
	// means DefaultPortfolio(nil). Names must be unique.
	Portfolio []Algorithm
	// Objective selects the commit criterion; the zero value minimizes the
	// batch makespan.
	Objective Objective
	// Policy decides when batches fire; nil means BatchOnIdle().
	Policy BatchPolicy
	// Reservations blocks processors during absolute time windows for the
	// whole run. Planned and realized executions both respect them.
	Reservations []reservation.Reservation
	// Perturb maps planned task durations to realized ones (user estimates
	// are rarely exact); nil means exact execution. It must be a pure
	// function of (taskID, planned) for replays to be deterministic — see
	// UniformNoise.
	Perturb func(taskID int, planned float64) float64
	// Sequential disables the portfolio goroutines (one member at a time).
	// The committed schedules are identical either way; the switch exists
	// for debugging and for the determinism tests.
	Sequential bool
	// Racing enables the portfolio early cutoff: members launch in a
	// deterministic order and stragglers are cancelled as soon as one
	// candidate's score is provably within Racing.Cutoff of the batch
	// lower bound. The zero value (cutoff 0) disables racing and is
	// bit-identical to the plain portfolio.
	Racing Racing
	// Outages lists absolute-time machine down windows (node crash/repair
	// spans, typically one cluster of a faults plan). A job running when
	// an outage begins is killed and re-enqueued into the next batch under
	// Replan; outages that have already begun when a batch fires are
	// planned around like reservations (the runtime knows a node is dead
	// *now*, never that it will die later). Empty means no faults and
	// behaviour bit-identical to an engine without the field.
	Outages []faults.Window
	// Replan selects how killed jobs are resubmitted; the zero value
	// restarts them from scratch.
	Replan ReplanPolicy
	// MaxRetries caps the kills one job may survive before the engine
	// abandons it as lost; zero means DefaultMaxRetries.
	MaxRetries int
	// OnBatch, when non-nil, receives every batch report as soon as the
	// batch completes: the streaming interface for long replays.
	OnBatch func(BatchReport)
	// Metrics, when non-nil, receives wall-clock timing histograms of the
	// scheduling hot path: per-candidate portfolio latency and per-batch
	// planning time. Timings are observational only — they never influence
	// the committed schedules, so instrumented replays stay bit-identical.
	Metrics *obs.Registry
}

// BatchReport describes one committed batch.
type BatchReport struct {
	// Index is the batch number (0-based).
	Index int `json:"Index"`
	// FireTime is the absolute time the batch fired.
	FireTime float64 `json:"FireTime"`
	// Jobs lists the task IDs of the batch, sorted.
	Jobs []int `json:"Jobs"`
	// Winner is the name of the committed algorithm.
	Winner string `json:"Winner"`
	// Candidates reports every portfolio member's score, in portfolio
	// order.
	Candidates []Candidate `json:"Candidates"`
	// CutOff lists the algorithms cancelled by the racing early cutoff on
	// this batch, in portfolio order. Empty (and absent from serialized
	// reports) when racing is disabled or the cutoff never fired, so
	// non-racing reports keep their exact wire format.
	CutOff []string `json:",omitempty"`
	// PlannedMakespan is the batch-relative makespan of the committed plan
	// (after placement around reservations).
	PlannedMakespan float64 `json:"PlannedMakespan"`
	// RealizedMakespan is the batch-relative makespan after simulated
	// execution with perturbed runtimes.
	RealizedMakespan float64 `json:"RealizedMakespan"`
	// Delayed counts tasks of this batch that started later than planned.
	Delayed int `json:"Delayed"`
	// Killed lists the task IDs killed by outages during this batch's
	// realized execution, sorted. They rejoin the queue (or are lost).
	Killed []int `json:"Killed"`
	// KillEvents carries the full kill records of this batch (absolute
	// start and kill times), for streaming observers; Killed remains the
	// wire-format digest, so serialized reports are unchanged.
	KillEvents []KillEvent `json:"-"`
	// LowerBound is the dual-approximation makespan lower bound of the
	// batch instance (section 3.3 of the paper) — the reference value the
	// flight recorder and the SLO engine anchor per-job deadlines to.
	// Excluded from serialized reports like the other provenance fields.
	LowerBound float64 `json:"-"`
	// Placements carries the realized per-task executions of this batch
	// (absolute start/end, chosen allotment) for streaming observers; the
	// report's Schedule remains the wire-format source.
	Placements []Placement `json:"-"`
	// Cumulative is the metrics snapshot after this batch.
	Cumulative Metrics `json:"Cumulative"`
}

// Placement is one task's realized execution within a batch: absolute
// start and end times and the allotment (processor count) the committed
// plan chose for it.
type Placement struct {
	TaskID int
	Start  float64
	End    float64
	Procs  int
}

// Report is the outcome of a full run.
type Report struct {
	// Schedule holds the realized placements with absolute start times and
	// realized durations — a trace of the run, not a plan.
	Schedule *schedule.Schedule
	// Batches describes every committed batch in order.
	Batches []BatchReport
	// Metrics is the final aggregate.
	Metrics Metrics
	// Blocked lists, per reservation (in input order), the concrete
	// processors blocked for it.
	Blocked [][]int
	// Kills lists every kill event of the run in order: which job died
	// when, during which batch. A job appears once per kill it suffered.
	Kills []KillEvent
	// Lost lists the jobs abandoned after MaxRetries kills, sorted by the
	// time they were given up.
	Lost []int
}

// Engine is a reusable cluster engine with a fixed configuration.
type Engine struct {
	cfg Config
	// blocked holds the concrete processors assigned to every reservation
	// (in input order), fixed at construction time.
	blocked [][]int
}

// New validates the configuration eagerly and builds an engine. Bad
// configurations fail here — before any portfolio goroutine spawns — with
// a validate.Error naming the offending field path.
func New(cfg Config) (*Engine, error) {
	if cfg.M < 1 {
		return nil, validate.Errorf("m", "machine needs at least one processor, got %d", cfg.M)
	}
	if len(cfg.Portfolio) == 0 {
		cfg.Portfolio = DefaultPortfolio(nil)
	}
	names := make(map[string]bool, len(cfg.Portfolio))
	for i, a := range cfg.Portfolio {
		if a.Name == "" || a.Run == nil {
			return nil, validate.Errorf(validate.Index("portfolio", i), "portfolio algorithms need a name and a Run function")
		}
		if names[a.Name] {
			return nil, validate.Errorf(validate.Index("portfolio", i), "duplicate portfolio algorithm %q", a.Name)
		}
		names[a.Name] = true
	}
	if err := cfg.Objective.Validate(); err != nil {
		return nil, validate.Prefix("objective", err)
	}
	if err := cfg.Racing.Validate(); err != nil {
		return nil, validate.Prefix("racing", err)
	}
	if cfg.Policy == nil {
		cfg.Policy = BatchOnIdle()
	}
	for i, r := range cfg.Reservations {
		if err := r.Validate(cfg.M); err != nil {
			return nil, validate.Prefix(validate.Index("reservations", i), err)
		}
	}
	if err := cfg.Replan.Validate(); err != nil {
		return nil, validate.Prefix("replan", err)
	}
	if cfg.MaxRetries < 0 {
		return nil, validate.Errorf("max_retries", "negative max retries %d", cfg.MaxRetries)
	}
	for i, w := range cfg.Outages {
		if math.IsNaN(w.Start) || math.IsNaN(w.End) || math.IsInf(w.Start, 0) || math.IsInf(w.End, 0) ||
			w.Start < 0 || w.End <= w.Start {
			return nil, validate.Errorf(validate.Index("outages", i), "outage window [%g, %g) is invalid", w.Start, w.End)
		}
		for _, p := range w.Procs {
			if p < 0 || p >= cfg.M {
				return nil, validate.Errorf(validate.Index("outages", i), "outage window uses processor %d outside the %d-processor machine", p, cfg.M)
			}
		}
	}
	blocked, err := assignReservationProcs(cfg.M, cfg.Reservations)
	if err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, blocked: blocked}, nil
}

// jobInfo caches the per-job quantities the metrics need.
type jobInfo struct {
	release float64
	pmin    float64
	weight  float64
}

// Run replays the job stream through the engine.
func (e *Engine) Run(jobs []online.Job) (*Report, error) { //lint:allow ctxflow legacy context-free wrapper; the *Context variant is the cancellable entry point
	return e.RunContext(context.Background(), jobs) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// RunContext replays the job stream through the engine, checking the
// context between batches: a cancellation aborts the replay before the
// next batch fires and returns the context's error (wrapped, so
// errors.Is(err, context.Canceled) holds). The partial report is
// discarded — replays are cheap and deterministic, rerun to completion
// instead.
func (e *Engine) RunContext(ctx context.Context, jobs []online.Job) (*Report, error) {
	infos := make(map[int]jobInfo, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if err := j.Task.Validate(); err != nil {
			return nil, err
		}
		if j.Release < 0 {
			return nil, fmt.Errorf("cluster: job %d has negative release date", j.Task.ID)
		}
		if _, dup := infos[j.Task.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate job ID %d in the stream", j.Task.ID)
		}
		pmin, _ := j.Task.MinTime()
		infos[j.Task.ID] = jobInfo{release: j.Release, pmin: pmin, weight: j.Task.Weight}
	}

	busyAbs := make([]listsched.Busy, len(e.cfg.Reservations))
	for i, r := range e.cfg.Reservations {
		busyAbs[i] = listsched.Busy{Procs: e.blocked[i], Start: r.Start, End: r.End}
	}

	report := &Report{Schedule: schedule.New(e.cfg.M), Blocked: e.blocked}
	acc := newMetricsAccumulator(e.cfg.M)
	var race *raceState
	if e.cfg.Racing.Enabled() {
		race = newRaceState(len(e.cfg.Portfolio), e.cfg.Racing)
		if e.cfg.Metrics != nil {
			// Touch the racing counters so scrapers see them at zero from
			// the first batch, even before any cutoff fires.
			e.cfg.Metrics.Counter("bicrit_portfolio_cutoff_hits_total",
				"Batches where the racing cutoff fired and cancelled at least one member.").Add(0)
			for _, a := range e.cfg.Portfolio {
				e.cfg.Metrics.Counter("bicrit_portfolio_cancelled_total",
					"Portfolio members cut off by the racing early cutoff.",
					obs.L("algorithm", a.Name)).Add(0)
			}
		}
	}
	var fstate *faultState
	if len(e.cfg.Outages) > 0 {
		fstate = newFaultState(e.cfg.Replan, e.cfg.MaxRetries)
	}
	if len(jobs) == 0 {
		report.Metrics = acc.snapshot()
		return report, nil
	}

	sorted := make([]online.Job, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Release != sorted[b].Release {
			return sorted[a].Release < sorted[b].Release
		}
		return sorted[a].Task.ID < sorted[b].Task.ID
	})

	now := 0.0
	next := 0
	var pending []online.Job
	batchIndex := 0
	for next < len(sorted) || len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: replay aborted: %w", err)
		}
		for next < len(sorted) && sorted[next].Release <= now+moldable.Eps {
			pending = append(pending, sorted[next])
			next++
		}
		if len(pending) == 0 {
			now = sorted[next].Release
			continue
		}
		fire := e.cfg.Policy.NextFire(now, pending)
		if fire > now+moldable.Eps {
			if next < len(sorted) && sorted[next].Release < fire {
				// An arrival lands before the fire time: admit it and ask
				// the policy again with the larger backlog.
				now = sorted[next].Release
				continue
			}
			if !math.IsInf(fire, 1) {
				now = fire
				continue
			}
			// fire is +Inf and (by the check above) the stream is
			// exhausted: the policy would wait forever, flush the backlog
			// now.
		}

		br, advance, resub, err := e.runBatch(ctx, batchIndex, now, pending, busyAbs, infos, acc, report, fstate, race)
		if err != nil {
			return nil, err
		}
		report.Batches = append(report.Batches, br)
		if e.cfg.OnBatch != nil {
			e.cfg.OnBatch(br)
		}
		now += advance
		// Killed jobs rejoin the queue immediately: their release dates are
		// their kill instants, all at or before the new now.
		pending = append(pending[:0], resub...)
		batchIndex++
	}
	report.Metrics = acc.snapshot()
	return report, nil
}

// runBatch schedules, places and executes one batch firing at the absolute
// time now, committing its realized trace into the report. It returns the
// batch report, how far the batch advances the clock (its realized
// makespan, or the last kill instant if an outage cut the batch short) and
// the killed jobs to re-enqueue.
func (e *Engine) runBatch(ctx context.Context, index int, now float64, pending []online.Job, busyAbs []listsched.Busy,
	infos map[int]jobInfo, acc *metricsAccumulator, report *Report, fstate *faultState, race *raceState) (BatchReport, float64, []online.Job, error) {
	tasks := make([]moldable.Task, len(pending))
	ids := make([]int, len(pending))
	for i := range pending {
		tasks[i] = pending[i].Task
		ids[i] = pending[i].Task.ID
	}
	sort.Ints(ids)
	inst := moldable.NewInstance(e.cfg.M, tasks)

	planStart := time.Now() //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
	cands, scheds, win, err := runPortfolio(ctx, inst, e.cfg.Portfolio, e.cfg.Objective, e.cfg.Sequential, e.cfg.Metrics, e.cfg.Racing, race)
	if err != nil {
		return BatchReport{}, 0, nil, fmt.Errorf("cluster: batch %d: %w", index, err)
	}
	planned := scheds[win]
	var cutOff []string
	for i := range cands {
		if cands[i].Cancelled {
			cutOff = append(cutOff, cands[i].Name)
		}
	}

	// Re-place the winning plan around the reservation windows still open
	// at (or after) the batch's fire time, expressed batch-relative — plus
	// the outages that have already begun, because the runtime knows those
	// nodes are down and replans around the shrunken machine. Outages that
	// have not started yet stay invisible to the planner: they hit the
	// simulated execution as surprises.
	planBusy := busyAbs
	if len(e.cfg.Outages) > 0 {
		planBusy = append(append([]listsched.Busy(nil), busyAbs...), activeOutageBusy(e.cfg.Outages, now)...)
	}
	if rel := relativeBusy(planBusy, now); len(rel) > 0 {
		placed, err := listsched.InsertionWithReservations(e.cfg.M, rel, reservation.PriorityItems(planned))
		if err != nil {
			return BatchReport{}, 0, nil, fmt.Errorf("cluster: batch %d: placing around reservations: %w", index, err)
		}
		if err := placed.Validate(inst, nil); err != nil {
			return BatchReport{}, 0, nil, fmt.Errorf("cluster: batch %d: reservation placement is invalid: %w", index, err)
		}
		planned = placed
	}
	if e.cfg.Metrics != nil {
		e.cfg.Metrics.Histogram("bicrit_batch_schedule_seconds",
			"Wall-clock time planning one batch: portfolio run, scoring and reservation placement.",
			obs.TimeBuckets()).Observe(time.Since(planStart).Seconds()) //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
	}

	simRes, err := sim.Execute(inst, planned, &sim.Options{
		Perturb:  e.cfg.Perturb,
		Blocked:  relativeBlocked(busyAbs, now),
		Failures: relativeFailures(e.cfg.Outages, now),
	})
	if err != nil {
		return BatchReport{}, 0, nil, fmt.Errorf("cluster: batch %d: %w", index, err)
	}

	placements := make([]Placement, 0, len(simRes.Traces))
	for _, tr := range simRes.Traces {
		report.Schedule.Add(schedule.Assignment{
			TaskID:   tr.TaskID,
			Start:    now + tr.Start,
			NProcs:   len(tr.Procs),
			Procs:    append([]int(nil), tr.Procs...),
			Duration: tr.End - tr.Start,
		})
		placements = append(placements, Placement{
			TaskID: tr.TaskID,
			Start:  now + tr.Start,
			End:    now + tr.End,
			Procs:  len(tr.Procs),
		})
		info := infos[tr.TaskID]
		acc.observeJob(info.release, now+tr.End, info.pmin, info.weight)
		if fstate != nil && fstate.killedEver[tr.TaskID] {
			acc.recovered++
		}
	}
	busyTime := 0.0
	for _, b := range simRes.BusyTime {
		busyTime += b
	}
	acc.observeBatch(cands[win].Name, busyTime, simRes.Delayed)

	advance := simRes.Makespan
	var resub []online.Job
	var killedIDs []int
	var killEvents []KillEvent
	if len(simRes.Killed) > 0 {
		// The batch's tasks by ID, as scheduled (a resubmitted job may
		// already carry checkpoint-scaled times).
		byID := make(map[int]moldable.Task, len(tasks))
		for _, t := range tasks {
			byID[t.ID] = t
		}
		for _, k := range simRes.Killed {
			if k.KilledAt > advance {
				advance = k.KilledAt
			}
			killedIDs = append(killedIDs, k.TaskID)
			ev := KillEvent{TaskID: k.TaskID, Batch: index, Start: now + k.Start, Time: now + k.KilledAt}
			report.Kills = append(report.Kills, ev)
			killEvents = append(killEvents, ev)
			fstate.killedEver[k.TaskID] = true
			fstate.retries[k.TaskID]++
			acc.killed++
			if fstate.retries[k.TaskID] > fstate.maxRetries {
				acc.lost++
				report.Lost = append(report.Lost, k.TaskID)
				continue
			}
			acc.resubmitted++
			frac := 0.0
			if k.Duration > 0 {
				frac = (k.KilledAt - k.Start) / k.Duration
			}
			resub = append(resub, online.Job{
				Task:    fstate.replan.resubmit(byID[k.TaskID], frac),
				Release: now + k.KilledAt,
			})
		}
		sort.Ints(killedIDs)
	}

	return BatchReport{
		Index:            index,
		FireTime:         now,
		Jobs:             ids,
		Winner:           cands[win].Name,
		Candidates:       cands,
		CutOff:           cutOff,
		PlannedMakespan:  planned.Makespan(),
		RealizedMakespan: simRes.Makespan,
		Delayed:          simRes.Delayed,
		Killed:           killedIDs,
		KillEvents:       killEvents,
		LowerBound:       lowerbound.Makespan(inst),
		Placements:       placements,
		Cumulative:       acc.snapshot(),
	}, advance, resub, nil
}

// assignReservationProcs picks concrete processors for every reservation,
// highest indices first (so job packing keeps using the low indices), while
// keeping temporally overlapping reservations on disjoint processors.
func assignReservationProcs(m int, reservations []reservation.Reservation) ([][]int, error) {
	blocked := make([][]int, len(reservations))
	for i, r := range reservations {
		taken := make(map[int]bool)
		for j := 0; j < i; j++ {
			o := reservations[j]
			if r.Start < o.End-moldable.Eps && o.Start < r.End-moldable.Eps {
				for _, p := range blocked[j] {
					taken[p] = true
				}
			}
		}
		procs := make([]int, 0, r.Procs)
		for p := m - 1; p >= 0 && len(procs) < r.Procs; p-- {
			if !taken[p] {
				procs = append(procs, p)
			}
		}
		if len(procs) < r.Procs {
			return nil, fmt.Errorf("cluster: reservations overlapping %q need more than the machine's %d processors", r.String(), m)
		}
		blocked[i] = procs
	}
	// At least one processor must stay free at every instant, otherwise
	// the batch in flight during the reservation peak could never place
	// its jobs.
	if m-reservation.PeakReserved(reservations) < 1 {
		return nil, fmt.Errorf("cluster: reservations block the whole %d-processor machine at their peak", m)
	}
	return blocked, nil
}

// relativeBusy shifts the absolute reservation windows into batch-relative
// time, dropping windows fully in the past.
func relativeBusy(busyAbs []listsched.Busy, now float64) []listsched.Busy {
	var rel []listsched.Busy
	for _, b := range busyAbs {
		if b.End <= now+moldable.Eps {
			continue
		}
		start := b.Start - now
		if start < 0 {
			start = 0
		}
		rel = append(rel, listsched.Busy{Procs: b.Procs, Start: start, End: b.End - now})
	}
	return rel
}

// activeOutageBusy returns, as planning busy windows, the outages that
// have already begun at the batch fire time: the runtime knows those nodes
// are down and plans the batch around the rest of their repair windows.
func activeOutageBusy(outages []faults.Window, now float64) []listsched.Busy {
	var busy []listsched.Busy
	for _, w := range outages {
		if w.Start <= now+moldable.Eps && w.End > now+moldable.Eps {
			busy = append(busy, listsched.Busy{Procs: w.Procs, Start: w.Start, End: w.End})
		}
	}
	return busy
}

// relativeFailures shifts the outage windows into batch-relative time for
// the simulator, keeping every window that has not fully ended (an active
// window's relative start may be negative; the simulator only cares about
// crashes beginning inside a task's run and nodes down at dispatch).
func relativeFailures(outages []faults.Window, now float64) []sim.FailureWindow {
	var wins []sim.FailureWindow
	for _, w := range outages {
		if w.End <= now+moldable.Eps {
			continue
		}
		wins = append(wins, sim.FailureWindow{Procs: w.Procs, Start: w.Start - now, End: w.End - now})
	}
	return wins
}

// relativeBlocked is relativeBusy converted to the simulator's window type.
func relativeBlocked(busyAbs []listsched.Busy, now float64) []sim.BlockedWindow {
	rel := relativeBusy(busyAbs, now)
	if len(rel) == 0 {
		return nil
	}
	windows := make([]sim.BlockedWindow, len(rel))
	for i, b := range rel {
		windows[i] = sim.BlockedWindow{Procs: b.Procs, Start: b.Start, End: b.End}
	}
	return windows
}

// JobsFromArrivals adapts a generated arrival stream to the engine's input.
func JobsFromArrivals(arrivals []workload.Arrival) []online.Job {
	jobs := make([]online.Job, len(arrivals))
	for i, a := range arrivals {
		jobs[i] = online.Job{Task: a.Task, Release: a.Submit}
	}
	return jobs
}

// UniformNoise builds a deterministic runtime perturbation: every task's
// realized duration is its planned duration scaled by a uniform factor in
// [1-frac, 1+frac], drawn from a stream keyed by (seed, taskID) so the
// result does not depend on simulation order. A frac of 0 returns nil
// (exact execution); a frac outside [0, 1) is rejected, since any other
// factor range could produce non-positive durations.
func UniformNoise(frac float64, seed int64) (func(taskID int, planned float64) float64, error) {
	if frac == 0 {
		return nil, nil
	}
	if frac < 0 || frac >= 1 || math.IsNaN(frac) {
		return nil, fmt.Errorf("cluster: noise fraction must lie in [0, 1), got %g", frac)
	}
	return func(taskID int, planned float64) float64 {
		r := rand.New(rand.NewSource(seed ^ (int64(taskID)+1)*0x9E3779B9))
		return planned * (1 - frac + 2*frac*r.Float64())
	}, nil
}
