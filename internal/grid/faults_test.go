package grid

import (
	"reflect"
	"testing"

	"bicriteria/internal/cluster"
	"bicriteria/internal/faults"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
)

// testPlan generates a hostile plan for the 8-shard grid: node crashes on
// every shard plus shard outages.
func testPlan(t testing.TB, specs []ClusterSpec, seed int64) *faults.Plan {
	t.Helper()
	sizes := make([]int, len(specs))
	for i, s := range specs {
		sizes[i] = s.M
	}
	plan, err := faults.Generate(faults.Config{
		Seed:            seed,
		Horizon:         300,
		Clusters:        sizes,
		MTBF:            20,
		RepairMean:      6,
		ShardMTBF:       80,
		ShardRepairMean: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestGridShardOutageMigratesQueuedJobs(t *testing.T) {
	specs := []ClusterSpec{{M: 8}, {M: 8}}
	// Twenty heavy sequential jobs at t=0 split 10/10 under round-robin,
	// piling up deep virtual queues; shard 0 goes dark at t=1, so its
	// virtually unfinished jobs must drain to shard 1. A few late
	// arrivals check that the dead shard stays closed.
	var jobs []online.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, online.Job{Task: moldable.Sequential(i, 1, 10), Release: 0})
	}
	for i := 20; i < 24; i++ {
		jobs = append(jobs, online.Job{Task: moldable.Sequential(i, 1, 2), Release: 2})
	}
	plan := &faults.Plan{Shards: []faults.ShardOutage{{Cluster: 0, Start: 1, End: 200}}}
	fed, err := New(Config{Clusters: specs, Routing: RoundRobin(), Faults: plan, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Migrated == 0 {
		t.Fatal("no job migrated off the dead shard")
	}
	if rep.Metrics.PerCluster[0].Migrated != rep.Metrics.Migrated {
		t.Fatalf("migrations charged to the wrong shard: %+v", rep.Metrics.PerCluster)
	}
	// Migration decisions carry the flag and the outage instant as release.
	migrations := 0
	for _, d := range rep.Decisions {
		if d.Migrated {
			migrations++
			if d.Release != 1 {
				t.Fatalf("migration release %g, want the outage instant 1", d.Release)
			}
			if d.Cluster == 0 {
				t.Fatal("job migrated onto the shard that just died")
			}
		}
	}
	if migrations != rep.Metrics.Migrated {
		t.Fatalf("decision stream shows %d migrations, metrics %d", migrations, rep.Metrics.Migrated)
	}
	// No job is lost across the grid: completions plus lost cover the
	// stream exactly once.
	if rep.Metrics.Jobs+rep.Metrics.Lost != len(jobs) {
		t.Fatalf("completed %d + lost %d != submitted %d", rep.Metrics.Jobs, rep.Metrics.Lost, len(jobs))
	}
	// After the outage, arrivals during [1, 200) avoid the dead shard.
	for _, d := range rep.Decisions {
		if !d.Migrated && d.Release > 1+eps && d.Release < 200-eps && d.Cluster == 0 {
			t.Fatalf("job %d routed to the dead shard at t=%g", d.JobID, d.Release)
		}
	}
}

func TestGridFaultedZeroPlanBitIdentical(t *testing.T) {
	specs := eightClusters(t)
	jobs := stream(t, 60, 4)
	run := func(cfg Config) *Report {
		fed, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fed.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(Config{Clusters: specs, Routing: LeastBacklog()})
	empty := run(Config{
		Clusters:   specs,
		Routing:    LeastBacklog(),
		Faults:     &faults.Plan{},
		Replan:     cluster.ReplanPolicy{Kind: cluster.ReplanCheckpoint},
		MaxRetries: 2,
	})
	if !reflect.DeepEqual(plain, empty) {
		t.Fatal("an empty fault plan changed the grid report")
	}
}

func TestGridFaultedNoJobLostOrDuplicated(t *testing.T) {
	specs := eightClusters(t)
	plan := testPlan(t, specs, 6)
	jobs := stream(t, 100, 6)
	fed, err := New(Config{Clusters: specs, Routing: LeastBacklog(), AdmitBacklog: 40, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Killed == 0 {
		t.Fatal("hostile plan killed nothing; the scenario is vacuous")
	}
	completed := make(map[int]int)
	for _, crep := range rep.Clusters {
		for _, a := range crep.Schedule.Assignments {
			completed[a.TaskID]++
		}
	}
	lost := make(map[int]bool)
	for _, crep := range rep.Clusters {
		for _, id := range crep.Lost {
			lost[id] = true
		}
	}
	for _, j := range jobs {
		id := j.Task.ID
		switch {
		case lost[id]:
			if completed[id] != 0 {
				t.Fatalf("lost job %d also completed", id)
			}
		case completed[id] != 1:
			t.Fatalf("job %d completed %d times", id, completed[id])
		}
	}
	if rep.Metrics.Jobs+rep.Metrics.Lost != len(jobs) {
		t.Fatalf("completed %d + lost %d != submitted %d", rep.Metrics.Jobs, rep.Metrics.Lost, len(jobs))
	}
}
