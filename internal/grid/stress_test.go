package grid

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestGridDeterminismStress is the repeatability stress of the whole
// stack: the 8-shard heterogeneous grid replays the same stream five
// times concurrently (at full GOMAXPROCS) and once sequentially, with and
// without a hostile fault plan, and every run must serialize to the same
// bytes. Run under -race in CI, this pins the bit-identical-replay
// invariant the serve layer's prefix rule depends on.
func TestGridDeterminismStress(t *testing.T) {
	jobs := stream(t, 120, 8)
	scenarios := []struct {
		name    string
		faulted bool
	}{
		{"fault-free", false},
		{"faulted", true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			build := func(sequential bool) Config {
				specs := eightClusters(t)
				cfg := Config{Clusters: specs, Routing: LeastBacklog(), AdmitBacklog: 50, Sequential: sequential}
				if sc.faulted {
					cfg.Faults = testPlan(t, specs, 8)
				}
				return cfg
			}
			marshal := func(cfg Config) []byte {
				fed, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := fed.Run(jobs)
				if err != nil {
					t.Fatal(err)
				}
				data, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				return data
			}

			old := runtime.GOMAXPROCS(runtime.NumCPU())
			defer runtime.GOMAXPROCS(old)
			reference := marshal(build(false))
			if sc.faulted {
				var rep Metrics
				probe, err := New(build(false))
				if err != nil {
					t.Fatal(err)
				}
				r, err := probe.Run(jobs)
				if err != nil {
					t.Fatal(err)
				}
				rep = r.Metrics
				if rep.Killed == 0 && rep.Migrated == 0 {
					t.Fatal("faulted stress scenario injected nothing")
				}
			}
			for i := 0; i < 4; i++ {
				if got := marshal(build(false)); string(got) != string(reference) {
					t.Fatalf("concurrent replay %d differs from the first", i+2)
				}
			}
			if got := marshal(build(true)); string(got) != string(reference) {
				t.Fatal("sequential replay differs from the concurrent ones")
			}
		})
	}
}
