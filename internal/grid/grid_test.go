package grid

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"bicriteria/internal/cluster"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/workload"
)

// stream generates a deterministic bursty job stream with tasks wide enough
// for the largest test clusters.
func stream(t testing.TB, n int, seed int64) []online.Job {
	t.Helper()
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload:  workload.Config{Kind: workload.Mixed, M: 32, N: n, Seed: seed},
		Rate:      4,
		BurstSize: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.JobsFromArrivals(arrivals)
}

// eightClusters builds a heterogeneous 8-shard grid: varied sizes,
// per-shard noise seeds, reservations on two shards.
func eightClusters(t testing.TB) []ClusterSpec {
	t.Helper()
	sizes := []int{8, 12, 16, 8, 24, 16, 8, 32}
	specs := make([]ClusterSpec, len(sizes))
	for i, m := range sizes {
		perturb, err := cluster.UniformNoise(0.2, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = ClusterSpec{M: m, Perturb: perturb}
	}
	specs[2].Reservations = []reservation.Reservation{{Name: "maint", Procs: 4, Start: 2, End: 10}}
	specs[7].Reservations = []reservation.Reservation{{Name: "upgrade", Procs: 8, Start: 5, End: 25}}
	return specs
}

func policies() []RoutingPolicy {
	return []RoutingPolicy{RoundRobin(), LeastBacklog(), LowerBoundAware(), MoldabilityAware()}
}

func TestGridDeterminismParallelVsSequentialAllPolicies(t *testing.T) {
	jobs := stream(t, 64, 7)
	for _, mk := range []func() RoutingPolicy{RoundRobin, LeastBacklog, LowerBoundAware, MoldabilityAware} {
		name := mk().Name()
		run := func(sequential bool, procs int) *Report {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			f, err := New(Config{
				Clusters:     eightClusters(t),
				Routing:      mk(),
				AdmitBacklog: 40,
				Sequential:   sequential,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := f.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		seq := run(true, 1)
		par := run(false, runtime.NumCPU())
		if !reflect.DeepEqual(seq.Decisions, par.Decisions) {
			t.Fatalf("%s: parallel routing decisions differ from sequential", name)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: parallel grid replay differs from sequential replay", name)
		}
		par2 := run(false, runtime.NumCPU())
		if !reflect.DeepEqual(par, par2) {
			t.Fatalf("%s: two parallel replays differ", name)
		}
		if seq.Metrics.Jobs != len(jobs) {
			t.Fatalf("%s: %d of %d jobs completed", name, seq.Metrics.Jobs, len(jobs))
		}
	}
}

func TestGridFederationReusableAcrossRuns(t *testing.T) {
	jobs := stream(t, 40, 3)
	f, err := New(Config{Clusters: eightClusters(t)[:3], Routing: RoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	first, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("two runs of one federation differ (stateful policy not reset?)")
	}
}

func TestGridNoJobLostOrDuplicated(t *testing.T) {
	jobs := stream(t, 70, 11)
	for _, policy := range policies() {
		f, err := New(Config{Clusters: eightClusters(t), Routing: policy, AdmitBacklog: 20})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Decisions) != len(jobs) {
			t.Fatalf("%s: %d decisions for %d jobs", policy.Name(), len(rep.Decisions), len(jobs))
		}
		routed := make(map[int]int, len(jobs))
		for _, d := range rep.Decisions {
			if _, dup := routed[d.JobID]; dup {
				t.Fatalf("%s: job %d routed twice", policy.Name(), d.JobID)
			}
			routed[d.JobID] = d.Cluster
		}
		executed := make(map[int]int, len(jobs))
		for c, shard := range rep.Clusters {
			for _, a := range shard.Schedule.Assignments {
				if _, dup := executed[a.TaskID]; dup {
					t.Fatalf("%s: job %d executed twice", policy.Name(), a.TaskID)
				}
				executed[a.TaskID] = c
			}
		}
		for i := range jobs {
			id := jobs[i].Task.ID
			wantCluster, ok := routed[id]
			if !ok {
				t.Fatalf("%s: job %d never routed", policy.Name(), id)
			}
			gotCluster, ok := executed[id]
			if !ok {
				t.Fatalf("%s: job %d routed to cluster %d but never executed", policy.Name(), id, wantCluster)
			}
			if gotCluster != wantCluster {
				t.Fatalf("%s: job %d routed to cluster %d but executed on %d", policy.Name(), id, wantCluster, gotCluster)
			}
		}
	}
}

func TestGridHeterogeneousClusterSafety(t *testing.T) {
	jobs := stream(t, 60, 19) // tasks offer up to 32 allocations
	specs := []ClusterSpec{{M: 4}, {M: 16}, {M: 32}}
	specs[1].Reservations = []reservation.Reservation{{Name: "maint", Procs: 6, Start: 1, End: 12}}
	for _, policy := range policies() {
		f, err := New(Config{Clusters: specs, Routing: policy})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := f.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		for c, shard := range rep.Clusters {
			for _, a := range shard.Schedule.Assignments {
				if a.NProcs > specs[c].M {
					t.Fatalf("%s: job %d uses %d processors on the %d-processor cluster %d",
						policy.Name(), a.TaskID, a.NProcs, specs[c].M, c)
				}
				for _, p := range a.Procs {
					if p < 0 || p >= specs[c].M {
						t.Fatalf("%s: job %d placed on processor %d of cluster %d (M=%d)",
							policy.Name(), a.TaskID, p, c, specs[c].M)
					}
				}
			}
		}
		if err := reservation.ValidateAgainstReservations(
			rep.Clusters[1].Schedule, specs[1].Reservations, rep.Clusters[1].Blocked); err != nil {
			t.Fatalf("%s: reservation violated on shard 1: %v", policy.Name(), err)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	f, err := New(Config{Clusters: []ClusterSpec{{M: 8}, {M: 8}, {M: 8}}, Routing: RoundRobin()})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []online.Job
	for i := 0; i < 9; i++ {
		jobs = append(jobs, online.Job{Task: moldable.Sequential(i, 1, 2), Release: 0})
	}
	rep, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range rep.Decisions {
		if d.Cluster != i%3 {
			t.Fatalf("decision %d went to cluster %d, want %d", i, d.Cluster, i%3)
		}
	}
}

func TestRoundRobinSkipsClosedClusters(t *testing.T) {
	p := RoundRobin()
	views := []ClusterView{{Index: 0, M: 8}, {Index: 2, M: 8}}
	if got := p.Route(JobView{}, views); got != 0 {
		t.Fatalf("first choice %d, want 0", got)
	}
	// Cluster 1 is closed (absent): the cycle must jump to 2.
	if got := p.Route(JobView{}, views); got != 2 {
		t.Fatalf("second choice %d, want 2", got)
	}
	if got := p.Route(JobView{}, views); got != 0 {
		t.Fatalf("third choice %d, want 0 (wrap-around)", got)
	}
}

func TestLeastBacklogPicksSmallestQueue(t *testing.T) {
	p := LeastBacklog()
	views := []ClusterView{
		{Index: 0, M: 8, Backlog: 3},
		{Index: 1, M: 16, Backlog: 1},
		{Index: 2, M: 8, Backlog: 2},
	}
	if got := p.Route(JobView{}, views); got != 1 {
		t.Fatalf("chose cluster %d, want 1", got)
	}
	// Ties go to the lowest index.
	views[0].Backlog = 1
	if got := p.Route(JobView{}, views); got != 0 {
		t.Fatalf("tie broke to cluster %d, want 0", got)
	}
}

func TestLowerBoundAwareMinimizesGrowth(t *testing.T) {
	p := LowerBoundAware()
	// Cluster 0 already has a long critical path: adding a short job there
	// grows its bound by nothing; cluster 1 is empty and would jump to the
	// job's own time.
	views := []ClusterView{
		{Index: 0, M: 8, MaxMinTime: 10, TotalMinWork: 20},
		{Index: 1, M: 8},
	}
	job := JobView{ID: 1, MinTime: []float64{4, 4}, MinWork: []float64{4, 4}}
	if got := p.Route(job, views); got != 0 {
		t.Fatalf("short job routed to cluster %d, want 0 (zero growth)", got)
	}
	// A job longer than anything yet grows both bounds by the same amount
	// minus what is already there: the loaded cluster grows less.
	job = JobView{ID: 2, MinTime: []float64{30, 30}, MinWork: []float64{30, 30}}
	if got := p.Route(job, views); got != 0 {
		t.Fatalf("long job routed to cluster %d, want 0 (smaller growth)", got)
	}
}

func TestMoldabilityAwareMatchesWidthToClusterSize(t *testing.T) {
	p := MoldabilityAware()
	views := []ClusterView{
		{Index: 0, M: 4},
		{Index: 1, M: 16},
		{Index: 2, M: 64},
	}
	for _, tc := range []struct {
		pref int
		want int
	}{
		{pref: 2, want: 0},   // narrow job: smallest fitting cluster
		{pref: 8, want: 1},   // medium job skips the 4-processor shard
		{pref: 64, want: 2},  // wide job: only the big cluster fits
		{pref: 128, want: 2}, // nothing fits: largest cluster truncates least
	} {
		if got := p.Route(JobView{PrefProcs: tc.pref}, views); got != tc.want {
			t.Fatalf("PrefProcs=%d routed to %d, want %d", tc.pref, got, tc.want)
		}
	}
	// Among equal sizes the smaller backlog wins.
	tied := []ClusterView{
		{Index: 0, M: 16, Backlog: 5},
		{Index: 1, M: 16, Backlog: 1},
	}
	if got := p.Route(JobView{PrefProcs: 8}, tied); got != 1 {
		t.Fatalf("backlog tie-break routed to %d, want 1", got)
	}
}

func TestGridAdmissionControlStillRoutesEveryJob(t *testing.T) {
	// Sixteen identical sequential jobs at t=0: the lower-bound policy
	// would pile them all on cluster 0 (its bound stops growing once the
	// critical path dominates), so any job on cluster 1 proves the
	// admission limit steered the stream.
	var jobs []online.Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, online.Job{Task: moldable.Sequential(i, 1, 10), Release: 0})
	}
	specs := []ClusterSpec{{M: 8}, {M: 8}}

	unlimited, err := New(Config{Clusters: specs, Routing: LowerBoundAware()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := unlimited.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Decisions {
		if d.Cluster != 0 {
			t.Fatalf("without admission control job %d left cluster 0", d.JobID)
		}
	}

	limited, err := New(Config{Clusters: specs, Routing: LowerBoundAware(), AdmitBacklog: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = limited.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Each admitted sequential job adds 10/8 = 1.25 backlog units: cluster
	// 0 closes after two admissions and the stream spills to cluster 1.
	want := []int{0, 0, 1, 1}
	for i, w := range want {
		if rep.Decisions[i].Cluster != w {
			t.Fatalf("decision %d went to cluster %d, want %d (decisions %v)",
				i, rep.Decisions[i].Cluster, w, rep.Decisions[:len(want)])
		}
	}
	if rep.Metrics.Jobs != len(jobs) {
		t.Fatalf("admission control lost jobs: %d of %d completed", rep.Metrics.Jobs, len(jobs))
	}
	// Cluster 0 was closed for every job after its first two admissions, so
	// its rejection count must be visible in the metrics; without admission
	// control rejections stay zero.
	if rep.Metrics.PerCluster[0].Rejected == 0 || rep.Metrics.Rejections == 0 {
		t.Fatalf("admission closures not surfaced: %+v", rep.Metrics.PerCluster)
	}
	if rep.Metrics.PerCluster[0].PeakBacklog <= 2 {
		t.Fatalf("cluster 0 peak backlog %g never exceeded the admission limit 2",
			rep.Metrics.PerCluster[0].PeakBacklog)
	}
	unlimitedRep, err := unlimited.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if unlimitedRep.Metrics.Rejections != 0 {
		t.Fatalf("rejections %d without admission control", unlimitedRep.Metrics.Rejections)
	}
}

func TestGridMetricsAggregation(t *testing.T) {
	jobs := stream(t, 50, 23)
	f, err := New(Config{Clusters: eightClusters(t)[:4], Routing: LeastBacklog()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m.Clusters != 4 || m.Jobs != len(jobs) {
		t.Fatalf("bad counts: %+v", m)
	}
	sumJobs, maxMakespan := 0, 0.0
	for _, pc := range m.PerCluster {
		sumJobs += pc.Jobs
		if pc.Makespan > maxMakespan {
			maxMakespan = pc.Makespan
		}
	}
	if sumJobs != m.Jobs {
		t.Fatalf("per-cluster jobs sum to %d, grid says %d", sumJobs, m.Jobs)
	}
	if math.Abs(maxMakespan-m.Makespan) > 1e-9 {
		t.Fatalf("grid makespan %g but max shard makespan %g", m.Makespan, maxMakespan)
	}
	if !(m.StretchP50 <= m.StretchP95+1e-9 && m.StretchP95 <= m.StretchP99+1e-9) {
		t.Fatalf("stretch percentiles out of order: %g %g %g", m.StretchP50, m.StretchP95, m.StretchP99)
	}
	if !(m.BoundedSlowdownP50 <= m.BoundedSlowdownP95+1e-9 && m.BoundedSlowdownP95 <= m.BoundedSlowdownP99+1e-9) {
		t.Fatalf("bounded-slowdown percentiles out of order")
	}
	if m.MeanBoundedSlowdown < 1 {
		t.Fatalf("bounded slowdown below 1: %g", m.MeanBoundedSlowdown)
	}
	if m.Utilization <= 0 || m.Utilization > 1 {
		t.Fatalf("grid utilization %g outside (0, 1]", m.Utilization)
	}
	if m.MeanStretch <= 0 {
		t.Fatalf("non-positive mean stretch %g", m.MeanStretch)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty federation accepted")
	}
	if _, err := New(Config{Clusters: []ClusterSpec{{M: 0}}}); err == nil {
		t.Fatal("zero-processor cluster accepted")
	}
	if _, err := New(Config{Clusters: []ClusterSpec{{M: 8}}, QueueDepth: -1}); err == nil {
		t.Fatal("negative queue depth accepted")
	}
	if _, err := New(Config{Clusters: []ClusterSpec{{M: 8}}, AdmitBacklog: -1}); err == nil {
		t.Fatal("negative admission limit accepted")
	}
	if _, err := New(Config{Clusters: []ClusterSpec{{M: 8, Objective: cluster.Objective{Kind: cluster.ObjectiveCombined, Alpha: 7}}}}); err == nil {
		t.Fatal("invalid shard objective accepted")
	}

	f, err := New(Config{Clusters: []ClusterSpec{{M: 8}, {M: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run([]online.Job{
		{Task: moldable.Sequential(1, 1, 1), Release: 0},
		{Task: moldable.Sequential(1, 1, 2), Release: 3},
	}); err == nil {
		t.Fatal("duplicate job IDs accepted")
	}
	if _, err := f.Run([]online.Job{{Task: moldable.Sequential(1, 1, 1), Release: -2}}); err == nil {
		t.Fatal("negative release accepted")
	}
	rep, err := f.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Jobs != 0 || len(rep.Decisions) != 0 {
		t.Fatalf("empty stream produced non-empty report: %+v", rep.Metrics)
	}
}

func TestGridOnDecisionStreamsInOrder(t *testing.T) {
	jobs := stream(t, 30, 5)
	var seen []Decision
	f, err := New(Config{
		Clusters:   eightClusters(t)[:2],
		Routing:    RoundRobin(),
		OnDecision: func(d Decision) { seen = append(seen, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, rep.Decisions) {
		t.Fatal("OnDecision stream differs from the report's decisions")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Release < seen[i-1].Release {
			t.Fatalf("decision %d out of stream order", i)
		}
	}
}
