package grid

import (
	"fmt"

	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
)

// eps is the shared floating-point tolerance of the scheduling library.
const eps = moldable.Eps

// prefKnee defines the knee of a job's speedup curve for JobView.PrefProcs:
// the smallest allocation whose time is within this factor of the fastest.
const prefKnee = 1.5

// Decision records one routing decision of the meta-scheduler.
type Decision struct {
	// JobID is the routed job's task ID and Release its submission time.
	JobID   int
	Release float64
	// Cluster is the index of the chosen cluster in Config.Clusters.
	Cluster int
	// Backlog is the chosen cluster's estimated per-processor backlog just
	// before admission (the router's virtual-clock estimate, not a realized
	// quantity).
	Backlog float64
}

// router is the sequential decision core of the meta-scheduler: it walks
// the arrival stream in deterministic order and asks the routing policy for
// a cluster per job, maintaining the per-cluster views (virtual backlog
// clocks and lower-bound state) and enforcing admission control. Both the
// sequential and the concurrent grid paths drive the same router, which is
// why their decision streams are bit-identical.
type router struct {
	policy RoutingPolicy
	// admitBacklog closes a cluster to new admissions while its estimated
	// per-processor backlog exceeds it; 0 disables admission control.
	admitBacklog float64
	views        []ClusterView
	// ready[c] is the virtual finish-time clock behind views[c].Backlog.
	ready []float64
	// peak[c] is the largest virtual backlog cluster c ever showed at a
	// decision point: the realized depth of the shard's virtual queue.
	peak []float64
	// rejected[c] counts the jobs that arrived while cluster c was closed
	// for admission (its backlog over the limit) and were steered away.
	rejected []int
	// candidates is reused across decisions to avoid per-job allocations.
	candidates []ClusterView
}

func newRouter(specs []ClusterSpec, policy RoutingPolicy, admitBacklog float64) *router {
	r := &router{
		policy:       policy,
		admitBacklog: admitBacklog,
		views:        make([]ClusterView, len(specs)),
		ready:        make([]float64, len(specs)),
		peak:         make([]float64, len(specs)),
		rejected:     make([]int, len(specs)),
		candidates:   make([]ClusterView, 0, len(specs)),
	}
	for i, s := range specs {
		r.views[i] = ClusterView{Index: i, M: s.M}
	}
	return r
}

// jobView computes the per-cluster quantities of one job. Time vectors may
// be longer than a cluster's machine, in which case only the allocations
// the cluster can offer count (NewInstance truncates the same way).
func (r *router) jobView(j online.Job) JobView {
	v := JobView{
		ID:      j.Task.ID,
		Release: j.Release,
		Weight:  j.Task.Weight,
		MinTime: make([]float64, len(r.views)),
		MinWork: make([]float64, len(r.views)),
	}
	// The preferred width is the knee of the speedup curve, not the exact
	// argmin: generated moldable tasks keep improving marginally up to the
	// full machine, which would make every job "prefer" the widest cluster.
	pmin, _ := j.Task.MinTime()
	v.PrefProcs = 1
	for k := 1; k <= len(j.Task.Times); k++ {
		if j.Task.Times[k-1] <= prefKnee*pmin+eps {
			v.PrefProcs = k
			break
		}
	}
	for c := range r.views {
		kMax := len(j.Task.Times)
		if r.views[c].M < kMax {
			kMax = r.views[c].M
		}
		minT, minW := j.Task.Times[0], j.Task.Times[0]
		for k := 2; k <= kMax; k++ {
			t := j.Task.Times[k-1]
			if t < minT {
				minT = t
			}
			if w := float64(k) * t; w < minW {
				minW = w
			}
		}
		v.MinTime[c] = minT
		v.MinWork[c] = minW
	}
	return v
}

// route decides the cluster of one job and updates the router state. Jobs
// must be presented in non-decreasing release order.
func (r *router) route(j online.Job) (Decision, error) {
	// Drain the virtual backlog clocks down to the current time.
	for c := range r.views {
		backlog := r.ready[c] - j.Release
		if backlog < 0 {
			backlog = 0
			r.ready[c] = j.Release
		}
		r.views[c].Backlog = backlog
		if backlog > r.peak[c] {
			r.peak[c] = backlog
		}
	}

	// Admission control: offer only the clusters under the backlog limit,
	// falling back to every cluster when all are saturated (jobs are never
	// dropped, only steered).
	r.candidates = r.candidates[:0]
	if r.admitBacklog > 0 {
		for c := range r.views {
			if r.views[c].Backlog <= r.admitBacklog+eps {
				r.candidates = append(r.candidates, r.views[c])
			}
		}
	}
	if len(r.candidates) == 0 {
		r.candidates = append(r.candidates, r.views...)
	}

	job := r.jobView(j)
	chosen := r.policy.Route(job, r.candidates)
	if chosen < 0 || chosen >= len(r.views) {
		return Decision{}, fmt.Errorf("grid: policy %s routed job %d to cluster %d of %d", r.policy.Name(), job.ID, chosen, len(r.views))
	}
	ok := false
	for _, c := range r.candidates {
		if c.Index == chosen {
			ok = true
			break
		}
	}
	if !ok {
		return Decision{}, fmt.Errorf("grid: policy %s routed job %d to cluster %d, which is closed for admission", r.policy.Name(), job.ID, chosen)
	}

	// Tally admission closures now that the destination is known: a shard
	// over the limit turned this job away only if the job landed elsewhere
	// (in the all-saturated fallback the chosen shard still ran it).
	if r.admitBacklog > 0 {
		for c := range r.views {
			if c != chosen && r.views[c].Backlog > r.admitBacklog+eps {
				r.rejected[c]++
			}
		}
	}

	d := Decision{JobID: job.ID, Release: j.Release, Cluster: chosen, Backlog: r.views[chosen].Backlog}
	v := &r.views[chosen]
	v.Jobs++
	v.TotalMinWork += job.MinWork[chosen]
	if job.MinTime[chosen] > v.MaxMinTime {
		v.MaxMinTime = job.MinTime[chosen]
	}
	r.ready[chosen] += job.MinWork[chosen] / float64(v.M)
	return d, nil
}
