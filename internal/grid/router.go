package grid

import (
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/faults"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
)

// eps is the shared floating-point tolerance of the scheduling library.
const eps = moldable.Eps

// prefKnee defines the knee of a job's speedup curve for JobView.PrefProcs:
// the smallest allocation whose time is within this factor of the fastest.
const prefKnee = 1.5

// Decision records one routing decision of the meta-scheduler.
type Decision struct {
	// JobID is the routed job's task ID and Release its submission time.
	JobID   int     `json:"JobID"`
	Release float64 `json:"Release"`
	// Cluster is the index of the chosen cluster in Config.Clusters.
	Cluster int `json:"Cluster"`
	// Backlog is the chosen cluster's estimated per-processor backlog just
	// before admission (the router's virtual-clock estimate, not a realized
	// quantity).
	Backlog float64 `json:"Backlog"`
	// Migrated marks a resubmission decision: the job had been routed to a
	// shard that then went dark, and the router drained it back through
	// the policy at the outage instant (Release is that instant). Always
	// false on a fault-free run.
	Migrated bool `json:"Migrated,omitempty"`
	// Verdicts records every shard's admission verdict at the decision
	// instant — the per-cluster "why" behind the choice. Excluded from the
	// JSON report (the flight recorder is its consumer); order follows
	// Config.Clusters.
	Verdicts []ShardVerdict `json:"-"`
}

// Shard verdict states, one per cluster per routing decision.
const (
	// VerdictChosen marks the cluster the policy picked.
	VerdictChosen = "chosen"
	// VerdictOpen marks a cluster that was offered but not picked.
	VerdictOpen = "open"
	// VerdictOverBacklog marks a cluster closed for admission because its
	// estimated per-processor backlog exceeded Config.AdmitBacklog.
	VerdictOverBacklog = "over-backlog"
	// VerdictOutage marks a cluster inside a shard outage window.
	VerdictOutage = "outage"
)

// ShardVerdict is one cluster's admission verdict at a routing instant:
// whether it was chosen, merely offered, or closed — and its estimated
// per-processor backlog at that moment.
type ShardVerdict struct {
	// Cluster indexes Config.Clusters.
	Cluster int
	// Backlog is the cluster's estimated per-processor backlog at the
	// decision instant.
	Backlog float64
	// State is one of VerdictChosen, VerdictOpen, VerdictOverBacklog or
	// VerdictOutage.
	State string
}

// router is the sequential decision core of the meta-scheduler: it walks
// the arrival stream in deterministic order and asks the routing policy for
// a cluster per job, maintaining the per-cluster views (virtual backlog
// clocks and lower-bound state) and enforcing admission control. Both the
// sequential and the concurrent grid paths drive the same router, which is
// why their decision streams are bit-identical.
type router struct {
	policy RoutingPolicy
	// admitBacklog closes a cluster to new admissions while its estimated
	// per-processor backlog exceeds it; 0 disables admission control.
	admitBacklog float64
	views        []ClusterView
	// ready[c] is the virtual finish-time clock behind views[c].Backlog.
	ready []float64
	// peak[c] is the largest virtual backlog cluster c ever showed at a
	// decision point: the realized depth of the shard's virtual queue.
	peak []float64
	// rejected[c] counts the jobs that arrived while cluster c was closed
	// for admission (its backlog over the limit) and were steered away.
	rejected []int
	// candidates is reused across decisions to avoid per-job allocations.
	candidates []ClusterView

	// Shard-outage state, populated only when the fault plan has shard
	// outages (all nil otherwise, leaving the fault-free path untouched):
	// events is the merged outage list sorted by (Start, Cluster),
	// eventIdx the next unprocessed one, downWins[c] cluster c's own
	// outage windows for the admission check, inflight[c] the jobs
	// virtually queued or running on c (candidates for draining), and
	// migrated[c] the count of jobs drained away from c.
	events   []faults.ShardOutage
	eventIdx int
	downWins [][]faults.ShardOutage
	inflight [][]vjob
	migrated []int
}

// vjob is one job in a shard's virtual queue: the router's estimate of
// when the shard will have finished it, and the minimum work the job
// charged to the shard's view (rolled back if the job is drained away).
type vjob struct {
	job  online.Job
	end  float64
	work float64
}

func newRouter(specs []ClusterSpec, policy RoutingPolicy, admitBacklog float64, plan *faults.Plan) *router {
	r := &router{
		policy:       policy,
		admitBacklog: admitBacklog,
		views:        make([]ClusterView, len(specs)),
		ready:        make([]float64, len(specs)),
		peak:         make([]float64, len(specs)),
		rejected:     make([]int, len(specs)),
		migrated:     make([]int, len(specs)),
		candidates:   make([]ClusterView, 0, len(specs)),
	}
	for i, s := range specs {
		r.views[i] = ClusterView{Index: i, M: s.M}
	}
	if plan != nil && len(plan.Shards) > 0 {
		r.events = append([]faults.ShardOutage(nil), plan.Shards...)
		sort.SliceStable(r.events, func(a, b int) bool {
			if r.events[a].Start != r.events[b].Start {
				return r.events[a].Start < r.events[b].Start
			}
			return r.events[a].Cluster < r.events[b].Cluster
		})
		r.downWins = make([][]faults.ShardOutage, len(specs))
		r.inflight = make([][]vjob, len(specs))
		for c := range specs {
			r.downWins[c] = plan.ShardWindows(c)
		}
	}
	return r
}

// downAt reports whether cluster c is inside one of its shard outage
// windows at time t.
func (r *router) downAt(c int, t float64) bool {
	if r.downWins == nil {
		return false
	}
	for _, w := range r.downWins[c] {
		if t >= w.Start-eps && t < w.End-eps {
			return true
		}
	}
	return false
}

// popEventBefore processes the earliest unprocessed shard outage starting
// at or before t: every job the shard had virtually queued or running at
// the outage instant is drained for policy-aware resubmission (returned
// with its release reset to the outage start) and its charge is rolled
// back from the shard's view, and the dead shard's virtual clock is set
// to the repair time — jobs that virtually finished before the outage are
// gone, drained ones moved, so the shard comes back empty exactly at
// o.End. (MaxMinTime intentionally stays: it is a high-water mark of what
// the shard was asked to run, not a backlog quantity.) Returns false when
// no event is due.
func (r *router) popEventBefore(t float64) (faults.ShardOutage, []online.Job, bool) {
	if r.eventIdx >= len(r.events) || r.events[r.eventIdx].Start > t {
		return faults.ShardOutage{}, nil, false
	}
	o := r.events[r.eventIdx]
	r.eventIdx++
	c := o.Cluster
	r.ready[c] = o.End
	var drained []online.Job
	for _, v := range r.inflight[c] {
		if v.end > o.Start+eps {
			j := v.job
			j.Release = o.Start
			drained = append(drained, j)
			r.views[c].Jobs--
			r.views[c].TotalMinWork -= v.work
		}
	}
	if r.views[c].TotalMinWork < 0 {
		r.views[c].TotalMinWork = 0 // float drift guard
	}
	r.inflight[c] = r.inflight[c][:0]
	r.migrated[c] += len(drained)
	return o, drained, true
}

// jobView computes the per-cluster quantities of one job. Time vectors may
// be longer than a cluster's machine, in which case only the allocations
// the cluster can offer count (NewInstance truncates the same way).
func (r *router) jobView(j online.Job) JobView {
	v := JobView{
		ID:      j.Task.ID,
		Release: j.Release,
		Weight:  j.Task.Weight,
		MinTime: make([]float64, len(r.views)),
		MinWork: make([]float64, len(r.views)),
	}
	// The preferred width is the knee of the speedup curve, not the exact
	// argmin: generated moldable tasks keep improving marginally up to the
	// full machine, which would make every job "prefer" the widest cluster.
	pmin, _ := j.Task.MinTime()
	v.PrefProcs = 1
	for k := 1; k <= len(j.Task.Times); k++ {
		if j.Task.Times[k-1] <= prefKnee*pmin+eps {
			v.PrefProcs = k
			break
		}
	}
	for c := range r.views {
		kMax := len(j.Task.Times)
		if r.views[c].M < kMax {
			kMax = r.views[c].M
		}
		minT, minW := j.Task.Times[0], j.Task.Times[0]
		for k := 2; k <= kMax; k++ {
			t := j.Task.Times[k-1]
			if t < minT {
				minT = t
			}
			if w := float64(k) * t; w < minW {
				minW = w
			}
		}
		v.MinTime[c] = minT
		v.MinWork[c] = minW
	}
	return v
}

// route decides the cluster of one job and updates the router state. Jobs
// must be presented in non-decreasing release order; migrated marks a
// resubmission drained off a dead shard.
func (r *router) route(j online.Job, migrated bool) (Decision, error) {
	// Drain the virtual backlog clocks down to the current time.
	for c := range r.views {
		backlog := r.ready[c] - j.Release
		if backlog < 0 {
			backlog = 0
			r.ready[c] = j.Release
		}
		r.views[c].Backlog = backlog
		if backlog > r.peak[c] {
			r.peak[c] = backlog
		}
	}

	// Admission control: offer only the live clusters under the backlog
	// limit, falling back to every cluster when all are saturated (jobs
	// are never dropped, only steered). Shards inside a shard outage
	// window are closed like over-backlog ones.
	r.candidates = r.candidates[:0]
	if r.admitBacklog > 0 || r.downWins != nil {
		for c := range r.views {
			if r.downAt(c, j.Release) {
				continue
			}
			if r.admitBacklog > 0 && r.views[c].Backlog > r.admitBacklog+eps {
				continue
			}
			r.candidates = append(r.candidates, r.views[c])
		}
	}
	if len(r.candidates) == 0 && r.downWins != nil {
		// Everything live is saturated: offer every live cluster before
		// falling back to the whole grid — routing to a dead shard only
		// delays the job until the repair, it is never dropped.
		for c := range r.views {
			if !r.downAt(c, j.Release) {
				r.candidates = append(r.candidates, r.views[c])
			}
		}
	}
	if len(r.candidates) == 0 {
		r.candidates = append(r.candidates, r.views...)
	}

	job := r.jobView(j)
	chosen := r.policy.Route(job, r.candidates)
	if chosen < 0 || chosen >= len(r.views) {
		return Decision{}, fmt.Errorf("grid: policy %s routed job %d to cluster %d of %d", r.policy.Name(), job.ID, chosen, len(r.views))
	}
	ok := false
	for _, c := range r.candidates {
		if c.Index == chosen {
			ok = true
			break
		}
	}
	if !ok {
		return Decision{}, fmt.Errorf("grid: policy %s routed job %d to cluster %d, which is closed for admission", r.policy.Name(), job.ID, chosen)
	}

	// Tally admission closures now that the destination is known: a shard
	// over the limit turned this job away only if the job landed elsewhere
	// (in the all-saturated fallback the chosen shard still ran it).
	if r.admitBacklog > 0 {
		for c := range r.views {
			if c != chosen && r.views[c].Backlog > r.admitBacklog+eps {
				r.rejected[c]++
			}
		}
	}

	verdicts := make([]ShardVerdict, len(r.views))
	for c := range r.views {
		state := VerdictOpen
		switch {
		case c == chosen:
			state = VerdictChosen
		case r.downAt(c, j.Release):
			state = VerdictOutage
		case r.admitBacklog > 0 && r.views[c].Backlog > r.admitBacklog+eps:
			state = VerdictOverBacklog
		}
		verdicts[c] = ShardVerdict{Cluster: c, Backlog: r.views[c].Backlog, State: state}
	}

	d := Decision{JobID: job.ID, Release: j.Release, Cluster: chosen, Backlog: r.views[chosen].Backlog, Migrated: migrated, Verdicts: verdicts}
	v := &r.views[chosen]
	v.Jobs++
	v.TotalMinWork += job.MinWork[chosen]
	if job.MinTime[chosen] > v.MaxMinTime {
		v.MaxMinTime = job.MinTime[chosen]
	}
	r.ready[chosen] += job.MinWork[chosen] / float64(v.M)
	if r.inflight != nil {
		r.inflight[chosen] = append(r.inflight[chosen], vjob{job: j, end: r.ready[chosen], work: job.MinWork[chosen]})
	}
	return d, nil
}

// routeStream routes the whole sorted arrival stream, interleaving shard
// outage events in global time order: before each arrival (and once the
// stream ends) every outage that has begun drains its shard's virtually
// unfinished jobs back through the policy as migrations. It returns the
// decisions in order and, aligned with them, the routed jobs (a migrated
// job reappears with its release reset to the outage instant). Both the
// sequential and the concurrent grid paths consume this one pure pass,
// which is why their reports are bit-identical.
func (r *router) routeStream(sorted []online.Job, onDecision func(Decision)) ([]Decision, []online.Job, error) {
	decisions := make([]Decision, 0, len(sorted))
	routed := make([]online.Job, 0, len(sorted))
	emit := func(d Decision, j online.Job) {
		decisions = append(decisions, d)
		routed = append(routed, j)
		if onDecision != nil {
			onDecision(d)
		}
	}
	handle := func(j online.Job, migrated bool) error {
		d, err := r.route(j, migrated)
		if err != nil {
			return err
		}
		emit(d, j)
		return nil
	}
	drainDue := func(t float64) error {
		for {
			_, drained, ok := r.popEventBefore(t)
			if !ok {
				return nil
			}
			for _, dj := range drained {
				if err := handle(dj, true); err != nil {
					return err
				}
			}
		}
	}
	for _, j := range sorted {
		if err := drainDue(j.Release); err != nil {
			return nil, nil, err
		}
		if err := handle(j, false); err != nil {
			return nil, nil, err
		}
	}
	if err := drainDue(math.Inf(1)); err != nil {
		return nil, nil, err
	}
	return decisions, routed, nil
}
