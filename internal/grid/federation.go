// Package grid federates many independent cluster engines behind one
// job-routing front door: a sharded multi-cluster grid with a concurrent
// meta-scheduler.
//
// A Federation runs N internal/cluster engines — heterogeneous processor
// counts, independent reservations, batching policies and perturbation
// seeds — as concurrent shards. The meta-scheduler consumes a single
// arrival stream in deterministic order (release date, then task ID) and
// routes every job to one cluster under a pluggable routing policy:
// round-robin, least-backlog, lower-bound-aware (the cluster whose DEMT
// makespan lower bound grows least) or moldability-aware (jobs go to the
// smallest cluster fitting their useful parallelism). Admission control
// closes a cluster while its estimated backlog exceeds a limit, and the
// concurrent path hands decisions to the shards through bounded dispatch
// queues; the shards collect their sub-streams concurrently and replay
// them through their engines in parallel.
//
// Replays are deterministic: routing decisions are a pure function of the
// stream and the policy, every cluster engine is deterministic, and the
// aggregation is order-fixed — so a concurrent run is bit-identical to a
// sequential one under the same configuration, which the tests assert for
// every policy.
package grid

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"bicriteria/internal/cluster"
	"bicriteria/internal/faults"
	"bicriteria/internal/obs"
	"bicriteria/internal/online"
	"bicriteria/internal/reservation"
	"bicriteria/internal/validate"
)

// ClusterSpec configures one shard of the federation. The zero values of
// the optional fields mean what they mean for a standalone cluster engine
// (default portfolio, makespan objective, batch-on-idle policy, exact
// runtimes).
type ClusterSpec struct {
	// M is the shard's processor count.
	M int
	// Portfolio, Objective, Policy and Reservations configure the shard's
	// engine exactly like cluster.Config.
	Portfolio    []cluster.Algorithm
	Objective    cluster.Objective
	Policy       cluster.BatchPolicy
	Reservations []reservation.Reservation
	// Perturb is the shard's runtime perturbation (independent noise seeds
	// per shard make the grid heterogeneous in time as well as in size).
	Perturb func(taskID int, planned float64) float64
	// Racing enables the shard's portfolio early cutoff, exactly like
	// cluster.Config.Racing. The zero value disables racing.
	Racing cluster.Racing
}

// DefaultQueueDepth is the per-shard dispatch queue capacity used when
// Config.QueueDepth is zero.
const DefaultQueueDepth = 64

// Config drives a grid federation.
type Config struct {
	// Clusters lists the shards. At least one is required.
	Clusters []ClusterSpec
	// Routing picks the cluster of every job; nil means LeastBacklog().
	Routing RoutingPolicy
	// QueueDepth is retained for configuration compatibility and is
	// validated but no longer shapes the replay: since routing became one
	// shared pure pass (a requirement of shard-outage migration, which
	// can retract an earlier decision), every shard's sub-stream is fully
	// materialized before the engines run, so there is no router-to-shard
	// handoff left to bound. Zero means DefaultQueueDepth.
	QueueDepth int
	// AdmitBacklog closes a cluster to new admissions while its estimated
	// per-processor backlog (in time units) exceeds the limit; jobs are
	// steered to open clusters instead. Zero disables admission control.
	// When every cluster is saturated, all of them are offered again: the
	// grid never drops a job.
	AdmitBacklog float64
	// Sequential disables all goroutines: shards run one after the other
	// and each engine runs its portfolio sequentially. The reports are
	// identical either way; the switch exists for the determinism tests.
	Sequential bool
	// Faults injects a deterministic fault plan: node outages go to the
	// matching shard engines (running jobs are killed and replanned),
	// shard outages additionally close the shard at the router, kill
	// whatever it was running and drain its queued jobs back through the
	// routing policy as migrations. Nil or empty means no faults and
	// bit-identical behaviour to a federation without the field.
	Faults *faults.Plan
	// Replan selects how shard engines resubmit killed jobs; the zero
	// value restarts them from scratch.
	Replan cluster.ReplanPolicy
	// MaxRetries caps per-job kills before a shard engine abandons the job
	// as lost; zero means cluster.DefaultMaxRetries.
	MaxRetries int
	// OnDecision, when non-nil, receives every routing decision in stream
	// order as it is made.
	OnDecision func(Decision)
	// OnBatch, when non-nil, receives every shard engine's batch report as
	// soon as the batch completes, tagged with the shard index. On the
	// concurrent path the shards call it from their own goroutines, so
	// implementations must be safe for concurrent use (the scenario layer
	// serializes with a mutex). Nil leaves the replay untouched.
	OnBatch func(cluster int, br cluster.BatchReport)
	// Metrics, when non-nil, receives wall-clock timing histograms of the
	// grid hot path: the routing pass, plus every shard engine's portfolio
	// and batch-planning timings (the registry is shared across shards,
	// which is safe — all registry operations are mutex-protected).
	// Timings never influence routing or scheduling, so instrumented
	// replays stay bit-identical.
	Metrics *obs.Registry
}

// Report is the outcome of a grid run.
type Report struct {
	// Policy is the routing policy's name.
	Policy string
	// Decisions lists every routing decision in stream order.
	Decisions []Decision
	// Clusters holds the per-shard engine reports, indexed like
	// Config.Clusters.
	Clusters []*cluster.Report
	// Metrics is the grid-wide aggregate.
	Metrics Metrics
}

// Federation is a reusable grid with a fixed configuration.
type Federation struct {
	cfg     Config
	engines []*cluster.Engine
}

// New validates the configuration eagerly and builds the federation,
// including every shard engine. Bad configurations fail here — before any
// shard goroutine spawns — with a validate.Error naming the offending
// field path ("clusters[2].m", "admit_backlog", ...).
func New(cfg Config) (*Federation, error) {
	if len(cfg.Clusters) == 0 {
		return nil, validate.Errorf("clusters", "federation needs at least one cluster")
	}
	if cfg.QueueDepth < 0 {
		return nil, validate.Errorf("queue_depth", "negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.AdmitBacklog < 0 || math.IsNaN(cfg.AdmitBacklog) || math.IsInf(cfg.AdmitBacklog, 0) {
		return nil, validate.Errorf("admit_backlog", "admission backlog limit must be non-negative and finite, got %g", cfg.AdmitBacklog)
	}
	if cfg.Routing == nil {
		cfg.Routing = LeastBacklog()
	}
	sizes := make([]int, len(cfg.Clusters))
	for i, spec := range cfg.Clusters {
		sizes[i] = spec.M
	}
	if err := cfg.Faults.Validate(sizes); err != nil {
		return nil, validate.Prefix("faults", err)
	}
	f := &Federation{cfg: cfg, engines: make([]*cluster.Engine, len(cfg.Clusters))}
	for i, spec := range cfg.Clusters {
		ccfg := cluster.Config{
			M:            spec.M,
			Portfolio:    spec.Portfolio,
			Objective:    spec.Objective,
			Policy:       spec.Policy,
			Reservations: spec.Reservations,
			Perturb:      spec.Perturb,
			Racing:       spec.Racing,
			Sequential:   cfg.Sequential,
			Outages:      cfg.Faults.ClusterWindows(i, spec.M),
			Replan:       cfg.Replan,
			MaxRetries:   cfg.MaxRetries,
			Metrics:      cfg.Metrics,
		}
		if cfg.OnBatch != nil {
			shard := i
			onBatch := cfg.OnBatch
			ccfg.OnBatch = func(br cluster.BatchReport) { onBatch(shard, br) }
		}
		eng, err := cluster.New(ccfg)
		if err != nil {
			return nil, validate.Prefix(validate.Index("clusters", i), err)
		}
		f.engines[i] = eng
	}
	return f, nil
}

// resettable lets stateful built-in policies (round-robin) restart their
// cycle at the beginning of every Run, so two Runs of one Federation are
// identical.
type resettable interface{ reset() }

// Run routes the job stream across the shards and replays every shard
// through its engine — concurrently unless Config.Sequential — then
// aggregates the grid metrics. The report is bit-identical between the
// sequential and the concurrent path.
func (f *Federation) Run(jobs []online.Job) (*Report, error) { //lint:allow ctxflow legacy context-free wrapper; the *Context variant is the cancellable entry point
	return f.RunContext(context.Background(), jobs) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// RunContext is Run with cancellation: the context is threaded into every
// shard engine's replay loop, so cancelling it aborts the whole grid run
// between batches — concurrent shards each observe the cancellation,
// return promptly, and the WaitGroup join cannot deadlock. The returned
// error wraps the context's (errors.Is(err, context.Canceled) holds).
func (f *Federation) RunContext(ctx context.Context, jobs []online.Job) (*Report, error) {
	seen := make(map[int]bool, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		if err := j.Task.Validate(); err != nil {
			return nil, err
		}
		if j.Release < 0 {
			return nil, fmt.Errorf("grid: job %d has negative release date", j.Task.ID)
		}
		if seen[j.Task.ID] {
			return nil, fmt.Errorf("grid: duplicate job ID %d in the stream", j.Task.ID)
		}
		seen[j.Task.ID] = true
	}
	sorted := make([]online.Job, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Release != sorted[b].Release {
			return sorted[a].Release < sorted[b].Release
		}
		return sorted[a].Task.ID < sorted[b].Task.ID
	})

	if p, ok := f.cfg.Routing.(resettable); ok {
		p.reset()
	}
	rt := newRouter(f.cfg.Clusters, f.cfg.Routing, f.cfg.AdmitBacklog, f.cfg.Faults)

	// Routing is one pure sequential pass shared by both execution paths
	// (it interleaves shard-outage drains with arrivals in time order);
	// only the shard replays differ in concurrency.
	routeStart := time.Now() //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
	decisions, routed, err := rt.routeStream(sorted, f.cfg.OnDecision)
	if err != nil {
		return nil, err
	}
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Histogram("bicrit_grid_route_stream_seconds",
			"Wall-clock time of the grid's routing pass over one full job stream.",
			obs.TimeBuckets()).Observe(time.Since(routeStart).Seconds()) //lint:allow nowallclock wall-clock feeds the obs metrics only, never a scheduling decision
	}
	report := &Report{
		Policy:    f.cfg.Routing.Name(),
		Decisions: decisions,
		Clusters:  make([]*cluster.Report, len(f.engines)),
	}
	shards := shardStreams(len(f.engines), decisions, routed)
	if f.cfg.Sequential {
		err = f.runSequential(ctx, shards, report.Clusters)
	} else {
		err = f.runConcurrent(ctx, shards, report.Clusters)
	}
	if err != nil {
		return nil, err
	}
	report.Metrics = aggregate(f.cfg.Clusters, sorted, report.Clusters, rt)
	return report, nil
}

// shardStreams resolves the final sub-stream of every shard from the
// decision list: each job's last decision wins, because an earlier routing
// to a shard that later went dark was retracted by the migration decision
// that drained it.
func shardStreams(n int, decisions []Decision, routed []online.Job) [][]online.Job {
	last := make(map[int]int, len(routed))
	for k, d := range decisions {
		last[d.JobID] = k
	}
	shards := make([][]online.Job, n)
	for k, d := range decisions {
		if last[d.JobID] != k {
			continue
		}
		shards[d.Cluster] = append(shards[d.Cluster], routed[k])
	}
	return shards
}

// runSequential is the goroutine-free path: replay the shards one after
// the other.
func (f *Federation) runSequential(ctx context.Context, shards [][]online.Job, out []*cluster.Report) error {
	for i, eng := range f.engines {
		rep, err := eng.RunContext(ctx, shards[i])
		if err != nil {
			return fmt.Errorf("grid: cluster %d: %w", i, err)
		}
		out[i] = rep
	}
	return nil
}

// runConcurrent is the goroutine path: one goroutine per shard replays
// its complete sub-stream in parallel (an engine needs its whole
// sub-stream before it can batch, and routing materialized the
// sub-streams already, so there is nothing left to stream through
// queues).
func (f *Federation) runConcurrent(ctx context.Context, shards [][]online.Job, out []*cluster.Report) error {
	errs := make([]error, len(f.engines))
	var wg sync.WaitGroup
	for i := range f.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := f.engines[i].RunContext(ctx, shards[i])
			if err != nil {
				errs[i] = fmt.Errorf("grid: cluster %d: %w", i, err)
				return
			}
			out[i] = rep
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
