package grid

import (
	"bicriteria/internal/cluster"
	"bicriteria/internal/online"
	"bicriteria/internal/stats"
)

// ClusterSummary is the grid-level digest of one shard's run.
type ClusterSummary struct {
	// Index is the shard's position in Config.Clusters and M its size.
	Index int `json:"Index"`
	M     int `json:"M"`
	// Jobs and Batches count what the shard executed.
	Jobs    int `json:"Jobs"`
	Batches int `json:"Batches"`
	// Makespan is the shard's realized completion time of its last job.
	Makespan float64 `json:"Makespan"`
	// Utilization is the shard's own busy fraction over [0, Makespan] x M.
	Utilization float64 `json:"Utilization"`
	// MeanStretch is the shard's mean realized stretch.
	MeanStretch float64 `json:"MeanStretch"`
	// PeakBacklog is the deepest virtual queue the shard ever showed the
	// router: the largest estimated per-processor backlog (in time units)
	// observed at any routing decision. It is a router-side estimate, so it
	// is identical between sequential and concurrent replays.
	PeakBacklog float64 `json:"PeakBacklog"`
	// Rejected counts the jobs that arrived while this shard was closed
	// for admission (backlog over Config.AdmitBacklog) and were steered to
	// another shard. Zero when admission control is disabled.
	Rejected int `json:"Rejected"`
	// Killed, Resubmitted, Lost and Recovered mirror the shard engine's
	// fault counters (kill events, re-enqueues, abandoned jobs, jobs
	// completed after a kill); Migrated counts the jobs the router drained
	// away from this shard when it went dark. All zero on a fault-free
	// run.
	Killed      int `json:",omitempty"`
	Resubmitted int `json:",omitempty"`
	Lost        int `json:",omitempty"`
	Recovered   int `json:",omitempty"`
	Migrated    int `json:",omitempty"`
	// Wins counts the shard's portfolio winners per algorithm.
	Wins map[string]int `json:"Wins"`
}

// Metrics is the grid-wide aggregate of a federation run.
type Metrics struct {
	// Clusters is the number of shards and Jobs the number of completed
	// jobs across all of them.
	Clusters int `json:"Clusters"`
	Jobs     int `json:"Jobs"`
	// Makespan is the completion time of the last job anywhere in the grid.
	Makespan float64 `json:"Makespan"`
	// WeightedCompletion is sum(w_i * C_i) over every job of the grid.
	WeightedCompletion float64 `json:"WeightedCompletion"`
	// MaxFlow is the largest realized flow time over the grid.
	MaxFlow float64 `json:"MaxFlow"`
	// MeanStretch and the percentiles describe the grid-wide distribution
	// of per-job stretch (flow over fastest possible execution time).
	MeanStretch float64 `json:"MeanStretch"`
	StretchP50  float64 `json:"StretchP50"`
	StretchP95  float64 `json:"StretchP95"`
	StretchP99  float64 `json:"StretchP99"`
	// MeanBoundedSlowdown and the percentiles describe the grid-wide
	// bounded-slowdown distribution (see cluster.BoundedSlowdown).
	MeanBoundedSlowdown float64 `json:"MeanBoundedSlowdown"`
	BoundedSlowdownP50  float64 `json:"BoundedSlowdownP50"`
	BoundedSlowdownP95  float64 `json:"BoundedSlowdownP95"`
	BoundedSlowdownP99  float64 `json:"BoundedSlowdownP99"`
	// Utilization is the busy fraction of the whole grid rectangle
	// [0, Makespan] x (sum of all processors): idle shards count against
	// it, as they would on a real federation.
	Utilization float64 `json:"Utilization"`
	// Rejections is the total number of admission-control closures over
	// the run: the sum of the per-shard Rejected counts.
	Rejections int `json:"Rejections"`
	// Killed, Resubmitted, Lost and Recovered aggregate the shard
	// engines' fault counters across the grid; Migrated counts the jobs
	// drained off dead shards and re-routed by the meta-scheduler. All
	// zero on a fault-free run.
	Killed      int `json:",omitempty"`
	Resubmitted int `json:",omitempty"`
	Lost        int `json:",omitempty"`
	Recovered   int `json:",omitempty"`
	Migrated    int `json:",omitempty"`
	// PerCluster digests every shard, indexed like Config.Clusters.
	PerCluster []ClusterSummary `json:"PerCluster"`
}

// aggregate folds the per-shard reports into the grid metrics. Samples are
// collected in shard order, then assignment order, so the result is a
// deterministic function of the reports.
func aggregate(specs []ClusterSpec, jobs []online.Job, reports []*cluster.Report, rt *router) Metrics {
	type jobInfo struct {
		release float64
		pmin    float64
	}
	infos := make(map[int]jobInfo, len(jobs))
	for i := range jobs {
		pmin, _ := jobs[i].Task.MinTime()
		infos[jobs[i].Task.ID] = jobInfo{release: jobs[i].Release, pmin: pmin}
	}

	m := Metrics{Clusters: len(reports), PerCluster: make([]ClusterSummary, len(reports))}
	var stretches, bslds []float64
	busy, procs := 0.0, 0
	for i, rep := range reports {
		cm := rep.Metrics
		m.PerCluster[i] = ClusterSummary{
			Index:       i,
			M:           specs[i].M,
			Jobs:        cm.Jobs,
			Batches:     cm.Batches,
			Makespan:    cm.Makespan,
			Utilization: cm.Utilization,
			MeanStretch: cm.MeanStretch,
			PeakBacklog: rt.peak[i],
			Rejected:    rt.rejected[i],
			Killed:      cm.Killed,
			Resubmitted: cm.Resubmitted,
			Lost:        cm.Lost,
			Recovered:   cm.Recovered,
			Migrated:    rt.migrated[i],
			Wins:        cm.Wins,
		}
		m.Rejections += rt.rejected[i]
		m.Killed += cm.Killed
		m.Resubmitted += cm.Resubmitted
		m.Lost += cm.Lost
		m.Recovered += cm.Recovered
		m.Migrated += rt.migrated[i]
		m.Jobs += cm.Jobs
		m.WeightedCompletion += cm.WeightedCompletion
		if cm.Makespan > m.Makespan {
			m.Makespan = cm.Makespan
		}
		if cm.MaxFlow > m.MaxFlow {
			m.MaxFlow = cm.MaxFlow
		}
		busy += cm.Utilization * cm.Makespan * float64(specs[i].M)
		procs += specs[i].M
		for _, a := range rep.Schedule.Assignments {
			info := infos[a.TaskID]
			flow := a.End() - info.release
			if info.pmin > 0 {
				stretches = append(stretches, flow/info.pmin)
			}
			bslds = append(bslds, cluster.BoundedSlowdown(flow, info.pmin))
		}
	}
	stretch := stats.TailSummary(stretches)
	m.MeanStretch = stretch.Mean
	m.StretchP50, m.StretchP95, m.StretchP99 = stretch.P50, stretch.P95, stretch.P99
	bsld := stats.TailSummary(bslds)
	m.MeanBoundedSlowdown = bsld.Mean
	m.BoundedSlowdownP50, m.BoundedSlowdownP95, m.BoundedSlowdownP99 = bsld.P50, bsld.P95, bsld.P99
	if m.Makespan > 0 && procs > 0 {
		m.Utilization = busy / (m.Makespan * float64(procs))
	}
	return m
}
