package grid

import (
	"fmt"
	"math"
)

// ClusterView is the router's live estimate of one cluster shard, exposed
// to routing policies. Views are updated after every decision, so a policy
// always sees the state produced by all previous routings of the stream.
type ClusterView struct {
	// Index is the cluster's position in Config.Clusters.
	Index int
	// M is the cluster's processor count.
	M int
	// Jobs is the number of jobs routed to the cluster so far.
	Jobs int
	// Backlog estimates the queued work ahead of a new arrival, in time
	// units per processor: a virtual finish-time clock advanced by
	// minwork/M on every admission and drained by real time between
	// arrivals.
	Backlog float64
	// TotalMinWork is the cumulative minimum work routed to the cluster.
	TotalMinWork float64
	// MaxMinTime is the largest fastest-possible execution time among the
	// jobs routed to the cluster (the critical-path part of the DEMT
	// makespan lower bound).
	MaxMinTime float64
}

// LowerBound is the DEMT makespan lower bound of everything routed to the
// cluster so far: the maximum of the critical path and the squashed area.
func (v ClusterView) LowerBound() float64 {
	return math.Max(v.MaxMinTime, v.TotalMinWork/float64(v.M))
}

// JobView is the router's view of the job being routed: its identity plus
// the per-cluster quantities a policy may weigh. The slices are indexed by
// cluster index (not by position in the candidate list).
type JobView struct {
	// ID is the job's task ID and Release its submission time.
	ID      int
	Release float64
	// Weight is the job's priority.
	Weight float64
	// MinTime[c] is the fastest execution time of the job on cluster c
	// (over the allocations the cluster can actually offer).
	MinTime []float64
	// MinWork[c] is the least work of the job on cluster c.
	MinWork []float64
	// PrefProcs is the knee of the job's speedup curve: the smallest
	// allocation bringing it within 50% of its fastest execution time
	// anywhere. Weakly parallel jobs (whose times keep shrinking only
	// marginally) get a small width; near-linear jobs a large one.
	PrefProcs int
}

// RoutingPolicy decides which cluster receives each job of the stream.
// Route is called once per job in deterministic stream order (release date,
// then task ID) with the candidate clusters currently open for admission;
// it must return the Index of one candidate. Implementations must be
// deterministic functions of their inputs and internal state for grid
// replays to be bit-identical.
type RoutingPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Route picks a cluster for the job among the candidates (never
	// empty). The returned value must be the Index field of one candidate.
	Route(job JobView, candidates []ClusterView) int
}

// ParsePolicy converts a CLI string into a routing policy.
func ParsePolicy(s string) (RoutingPolicy, error) {
	switch s {
	case "round-robin", "rr":
		return RoundRobin(), nil
	case "least-backlog", "backlog":
		return LeastBacklog(), nil
	case "lower-bound", "lb":
		return LowerBoundAware(), nil
	case "moldability", "mold":
		return MoldabilityAware(), nil
	}
	return nil, fmt.Errorf("grid: unknown routing policy %q (want round-robin, least-backlog, lower-bound or moldability)", s)
}

// roundRobin cycles over the clusters, skipping the ones closed for
// admission (absent from the candidate list).
type roundRobin struct {
	last int
}

// RoundRobin returns the cyclic routing policy: each job goes to the next
// cluster (by index) after the previously chosen one that is still open
// for admission.
func RoundRobin() RoutingPolicy { return &roundRobin{last: -1} }

func (p *roundRobin) Name() string { return "round-robin" }

// reset restarts the cycle so two Runs of one Federation are identical.
func (p *roundRobin) reset() { p.last = -1 }

func (p *roundRobin) Route(job JobView, candidates []ClusterView) int {
	best := candidates[0].Index
	bestDist := math.MaxInt
	for _, c := range candidates {
		// Cyclic distance from the previous choice; the closest strictly
		// following candidate wins.
		dist := c.Index - p.last
		if dist <= 0 {
			dist += math.MaxInt32 // any bound > number of clusters works
		}
		if dist < bestDist {
			bestDist = dist
			best = c.Index
		}
	}
	p.last = best
	return best
}

// leastBacklog routes to the candidate with the smallest estimated queue.
type leastBacklog struct{}

// LeastBacklog returns the policy routing each job to the cluster with the
// smallest estimated per-processor backlog, ties broken by cluster index.
func LeastBacklog() RoutingPolicy { return leastBacklog{} }

func (leastBacklog) Name() string { return "least-backlog" }

func (leastBacklog) Route(job JobView, candidates []ClusterView) int {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Backlog < best.Backlog-eps {
			best = c
		}
	}
	return best.Index
}

// lowerBoundAware routes to the candidate whose DEMT makespan lower bound
// grows least when the job is added.
type lowerBoundAware struct{}

// LowerBoundAware returns the policy routing each job to the cluster whose
// DEMT makespan lower bound — max(critical path, squashed area) of the jobs
// routed so far — grows least by admitting it. Ties are broken by cluster
// index, so large clusters absorb wide jobs and the grid-wide bound stays
// flat as long as possible.
func LowerBoundAware() RoutingPolicy { return lowerBoundAware{} }

func (lowerBoundAware) Name() string { return "lower-bound" }

func (lowerBoundAware) Route(job JobView, candidates []ClusterView) int {
	best := candidates[0].Index
	bestGrowth := math.Inf(1)
	for _, c := range candidates {
		after := math.Max(
			math.Max(c.MaxMinTime, job.MinTime[c.Index]),
			(c.TotalMinWork+job.MinWork[c.Index])/float64(c.M),
		)
		if growth := after - c.LowerBound(); growth < bestGrowth-eps {
			bestGrowth = growth
			best = c.Index
		}
	}
	return best
}

// moldabilityAware matches the job's useful parallelism to cluster sizes.
type moldabilityAware struct{}

// MoldabilityAware returns the policy matching jobs to cluster sizes: a job
// goes to the smallest cluster that fits its preferred allocation (the knee
// of its speedup curve, see JobView.PrefProcs), so narrow jobs
// keep the small clusters busy and wide clusters stay free for jobs that
// can actually exploit them. When no cluster fits, the largest one is used.
// Among clusters of the chosen size, the smallest estimated backlog wins,
// then the lowest index.
func MoldabilityAware() RoutingPolicy { return moldabilityAware{} }

func (moldabilityAware) Name() string { return "moldability" }

func (moldabilityAware) Route(job JobView, candidates []ClusterView) int {
	best := -1
	var bestView ClusterView
	fits := false
	for _, c := range candidates {
		cFits := c.M >= job.PrefProcs
		better := false
		switch {
		case best < 0:
			better = true
		case cFits != fits:
			better = cFits // a fitting cluster always beats a non-fitting one
		case cFits:
			// Both fit: smaller machine first, then backlog, then index.
			better = c.M < bestView.M ||
				(c.M == bestView.M && c.Backlog < bestView.Backlog-eps)
		default:
			// Neither fits: the largest machine truncates the job least.
			better = c.M > bestView.M
		}
		if better {
			best = c.Index
			bestView = c
			fits = cFits
		}
	}
	return best
}
