package grid

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"bicriteria/internal/cluster"
	"bicriteria/internal/online"
	"bicriteria/internal/workload"
)

// cancelJobs builds a stream long enough that every shard commits several
// batches.
func cancelJobs(t *testing.T, n int) []online.Job {
	t.Helper()
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Workload: workload.Config{Kind: workload.Mixed, M: 16, N: n, Seed: 11},
		Rate:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.JobsFromArrivals(arrivals)
}

// TestRunContextCancelMidReplay aborts a concurrent grid run from inside
// the replay (the first batch event cancels the context) and checks that
// the run returns promptly with the context error instead of
// deadlocking on the shard WaitGroup. Run under -race in CI.
func TestRunContextCancelMidReplay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg := Config{
		Clusters: []ClusterSpec{{M: 16}, {M: 8}, {M: 8}},
		OnBatch: func(int, cluster.BatchReport) {
			// Fires concurrently from the shard goroutines; cancel exactly
			// once, mid-replay.
			once.Do(cancel)
		},
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := cancelJobs(t, 120)

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = f.RunContext(ctx, jobs)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled grid run never returned (deadlock)")
	}
	if runErr == nil {
		t.Fatalf("cancelled run returned no error (report: %+v)", rep)
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", runErr)
	}
}

// TestRunContextCancelBeforeRun checks that an already-cancelled context
// aborts both replay paths immediately.
func TestRunContextCancelBeforeRun(t *testing.T) {
	jobs := cancelJobs(t, 20)
	for _, sequential := range []bool{false, true} {
		f, err := New(Config{
			Clusters:   []ClusterSpec{{M: 16}, {M: 8}},
			Sequential: sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := f.RunContext(ctx, jobs); !errors.Is(err, context.Canceled) {
			t.Fatalf("sequential=%v: want context.Canceled, got %v", sequential, err)
		}
	}
}

// TestRunContextBackgroundUnchanged pins that threading the context
// through the engines did not change a completed run: Run and RunContext
// with a background context produce identical reports.
func TestRunContextBackgroundUnchanged(t *testing.T) {
	jobs := cancelJobs(t, 40)
	build := func() *Federation {
		f, err := New(Config{Clusters: []ClusterSpec{{M: 16}, {M: 8}}})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	plain, err := build().Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := build().RunContext(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Metrics, ctxed.Metrics) ||
		len(plain.Decisions) != len(ctxed.Decisions) {
		t.Fatalf("RunContext(Background) drifted from Run:\n%+v\nvs\n%+v", plain.Metrics, ctxed.Metrics)
	}
}
