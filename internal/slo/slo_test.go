package slo

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bicriteria/internal/obs"
)

// outcomes returns a fixed outcome set: 4 jobs on 2 clusters, one miss
// (job 2 finishes late), one unfinished (job 4, counts as a miss).
func outcomes() []JobOutcome {
	return []JobOutcome{
		{Job: 1, Cluster: 0, Release: 0, Pmin: 10, Start: 0, End: 10, Done: true},
		{Job: 2, Cluster: 0, Release: 0, Pmin: 10, Start: 35, End: 45, Done: true},
		{Job: 3, Cluster: 1, Release: 5, Pmin: 5, Start: 6, End: 12, Done: true},
		{Job: 4, Cluster: -1, Release: 8, Pmin: 4},
	}
}

func TestNormalizedDefaults(t *testing.T) {
	n := Spec{}.Normalized()
	if n.DeadlineFactor != DefaultDeadlineFactor || n.BurnFactor != DefaultBurnFactor {
		t.Fatalf("defaults = %+v", n)
	}
	if n.StretchPercentile != 99 || n.WaitPercentile != 99 {
		t.Fatalf("percentile defaults = %+v", n)
	}
	set := Spec{DeadlineFactor: 2, BurnFactor: 3, StretchPercentile: 90, WaitPercentile: 50}
	if got := set.Normalized(); got != set {
		t.Fatalf("Normalized clobbered explicit knobs: %+v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"nan factor", Spec{DeadlineFactor: math.NaN()}},
		{"sub-1 factor", Spec{DeadlineFactor: 0.5}},
		{"miss budget 1", Spec{MissBudget: 1}},
		{"negative burn window", Spec{BurnWindow: -1}},
		{"percentile 101", Spec{StretchPercentile: 101}},
		{"inf wait target", Spec{WaitTarget: math.Inf(1)}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

func TestEvaluateDeadlinesAndAlerts(t *testing.T) {
	spec := Spec{DeadlineFactor: 4, MissBudget: 0.25, BurnWindow: 100, StretchTarget: 3, WaitTarget: 20}
	sum := Evaluate(spec, outcomes())
	// Job 2 ends at 45 > 0 + 4*10; job 4 never finished. Jobs 1 and 3 meet.
	if sum.Jobs != 4 || sum.Misses != 2 || sum.MissRate != 0.5 {
		t.Fatalf("summary = %+v, want 2/4 misses", sum)
	}
	wantClusters := []ClusterSummary{
		{Cluster: -1, Jobs: 1, Misses: 1, MissRate: 1},
		{Cluster: 0, Jobs: 2, Misses: 1, MissRate: 0.5},
		{Cluster: 1, Jobs: 1, Misses: 0, MissRate: 0},
	}
	if !reflect.DeepEqual(sum.PerCluster, wantClusters) {
		t.Fatalf("per-cluster = %+v, want %+v", sum.PerCluster, wantClusters)
	}
	states := map[string]string{}
	for _, a := range sum.Alerts {
		states[a.Name] = a.State
	}
	want := map[string]string{
		"deadline-miss-budget": StateFiring,   // 0.5 > 0.25
		"deadline-burn-rate":   StateResolved, // 1/3 windowed < 2*0.25? 0.333 <= 0.5
		"stretch-p99":          StateFiring,   // worst stretch 4.5 > 3
		"wait-p99":             StateFiring,   // worst wait 35 > 20
	}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("alert states = %v, want %v", states, want)
	}
	if got := len(sum.Firing()); got != 3 {
		t.Fatalf("firing = %d, want 3", got)
	}
}

// TestEvaluateOrderIndependent: evaluation sorts outcomes internally, so
// any permutation yields a deeply equal summary.
func TestEvaluateOrderIndependent(t *testing.T) {
	spec := Spec{MissBudget: 0.25, BurnWindow: 30, StretchTarget: 3, WaitTarget: 20}
	want := Evaluate(spec, outcomes())
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		shuffled := outcomes()
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Evaluate(spec, shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("evaluation depends on outcome order (trial %d):\n%+v\n%+v", trial, got, want)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vs := []float64{3, 1, 2, 5, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {50, 3}, {90, 5}, {100, 5},
	}
	for _, tc := range cases {
		if got := percentile(vs, tc.p); got != tc.want {
			t.Errorf("percentile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("percentile(nil) = %g, want 0", got)
	}
}

func TestPublishGauges(t *testing.T) {
	spec := Spec{MissBudget: 0.25}
	sum := Evaluate(spec, outcomes())
	reg := obs.NewRegistry()
	sum.Publish(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bicrit_slo_jobs 4",
		"bicrit_slo_deadline_misses 2",
		"bicrit_slo_deadline_miss_rate 0.5",
		`bicrit_slo_cluster_deadline_misses{cluster="0"} 1`,
		`bicrit_slo_alert_firing{alert="deadline-miss-budget"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition lacks %q:\n%s", want, buf.String())
		}
	}
	sum.Publish(nil) // must not panic
}
