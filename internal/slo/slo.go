// Package slo is the deterministic SLO/alert engine: it evaluates
// per-job deadline objectives and tail-latency targets over the outcome
// of a replay (or the done-jobs of a live service) and derives
// firing/resolved alerts.
//
// The paper's reference value anchors the deadline: every job's deadline
// is release + factor · pmin, where pmin is the job's minimum execution
// time — its own makespan lower bound. Evaluation is a pure function of
// the spec and the outcomes (sorted internally under a total order), so
// a concurrent replay reports bit-identical SLO summaries and alert
// states to a sequential one.
package slo

import (
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/obs"
	"bicriteria/internal/validate"
)

// Defaults applied by Normalized for unset spec knobs.
const (
	// DefaultDeadlineFactor is the deadline slack multiplier: a job meets
	// its deadline when it finishes within 4x its fastest possible run
	// after release.
	DefaultDeadlineFactor = 4
	// DefaultBurnFactor fires the burn-rate alert when the windowed miss
	// rate exceeds 2x the overall miss budget.
	DefaultBurnFactor = 2
)

// Spec is the resolved SLO rule set of one scenario or service.
type Spec struct {
	// DeadlineFactor sets every job's deadline to release + factor·pmin;
	// zero means DefaultDeadlineFactor.
	DeadlineFactor float64
	// MissBudget is the tolerated overall deadline-miss rate in [0, 1).
	// The deadline alert fires when the realized rate exceeds it.
	MissBudget float64
	// BurnWindow, when positive, watches the trailing window (in
	// simulated time units, ending at the last completion) for a
	// fast-burning error budget.
	BurnWindow float64
	// BurnFactor scales the burn-rate threshold: the burn alert fires
	// when the windowed miss rate exceeds BurnFactor·MissBudget. Zero
	// means DefaultBurnFactor.
	BurnFactor float64
	// StretchPercentile/StretchTarget alert when the given percentile of
	// job stretch exceeds the target; zero target disables the rule.
	StretchPercentile float64
	StretchTarget     float64
	// WaitPercentile/WaitTarget alert when the given percentile of job
	// wait time exceeds the target; zero target disables the rule.
	WaitPercentile float64
	WaitTarget     float64
}

// Normalized returns the spec with defaults filled in.
func (s Spec) Normalized() Spec {
	if s.DeadlineFactor == 0 {
		s.DeadlineFactor = DefaultDeadlineFactor
	}
	if s.BurnFactor == 0 {
		s.BurnFactor = DefaultBurnFactor
	}
	if s.StretchPercentile == 0 {
		s.StretchPercentile = 99
	}
	if s.WaitPercentile == 0 {
		s.WaitPercentile = 99
	}
	return s
}

// Validate rejects non-finite or out-of-range knobs with field paths
// relative to the spec.
func (s Spec) Validate() error {
	finite := func(field string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return validate.Errorf(field, "must be finite and non-negative, got %g", v)
		}
		return nil
	}
	if err := finite("deadline_factor", s.DeadlineFactor); err != nil {
		return err
	}
	if s.DeadlineFactor != 0 && s.DeadlineFactor < 1 {
		return validate.Errorf("deadline_factor", "a deadline tighter than the job's own lower bound (factor %g < 1) can never be met", s.DeadlineFactor)
	}
	if math.IsNaN(s.MissBudget) || s.MissBudget < 0 || s.MissBudget >= 1 {
		return validate.Errorf("miss_budget", "miss budget must lie in [0, 1), got %g", s.MissBudget)
	}
	if err := finite("burn_window", s.BurnWindow); err != nil {
		return err
	}
	if err := finite("burn_factor", s.BurnFactor); err != nil {
		return err
	}
	for _, p := range []struct {
		field string
		v     float64
	}{{"stretch_percentile", s.StretchPercentile}, {"wait_percentile", s.WaitPercentile}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 100 {
			return validate.Errorf(p.field, "percentile must lie in [0, 100], got %g", p.v)
		}
	}
	if err := finite("stretch_target", s.StretchTarget); err != nil {
		return err
	}
	return finite("wait_target", s.WaitTarget)
}

// JobOutcome is one job's realized outcome, the input of Evaluate.
type JobOutcome struct {
	// Job is the task ID and Cluster the cluster that ran it (-1 when the
	// job never ran).
	Job     int
	Cluster int
	// Release is the submission time, Pmin the job's minimum execution
	// time (its lower bound, the deadline anchor).
	Release float64
	Pmin    float64
	// Start and End are the realized execution bounds; meaningful only
	// when Done.
	Start float64
	End   float64
	// Done marks a completed job. Unfinished jobs (lost to faults, or not
	// yet replayed on a live service) count as deadline misses.
	Done bool
}

// Alert states.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Alert is one evaluated SLO rule.
type Alert struct {
	// Name identifies the rule ("deadline-miss-budget",
	// "deadline-burn-rate", "stretch-p99", "wait-p99").
	Name string `json:"name"`
	// State is StateFiring or StateResolved.
	State string `json:"state"`
	// Value is the realized quantity and Threshold the rule's limit.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Detail is a human-readable summary of the rule evaluation.
	Detail string `json:"detail"`
}

// Firing reports whether the alert is firing.
func (a Alert) Firing() bool { return a.State == StateFiring }

// ClusterSummary is the per-cluster deadline axis of the summary.
type ClusterSummary struct {
	// Cluster is the cluster index (-1 aggregates jobs that never ran).
	Cluster int `json:"cluster"`
	// Jobs counts the evaluated jobs of the cluster, Misses the ones
	// past their deadline, MissRate their ratio.
	Jobs     int     `json:"jobs"`
	Misses   int     `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// Summary is the outcome of one SLO evaluation.
type Summary struct {
	// Jobs counts the evaluated jobs, Misses the deadline misses (an
	// unfinished job counts as a miss), MissRate their ratio.
	Jobs     int     `json:"jobs"`
	Misses   int     `json:"misses"`
	MissRate float64 `json:"miss_rate"`
	// PerCluster breaks the deadline axis down by cluster, ordered by
	// cluster index.
	PerCluster []ClusterSummary `json:"per_cluster"`
	// Stretch and Wait are the realized percentile values of the tail
	// rules (zero when the rule is disabled).
	Stretch float64 `json:"stretch,omitempty"`
	Wait    float64 `json:"wait,omitempty"`
	// Alerts lists every evaluated rule in declaration order.
	Alerts []Alert `json:"alerts"`
}

// Firing returns the subset of alerts that are firing.
func (s *Summary) Firing() []Alert {
	var out []Alert
	for _, a := range s.Alerts {
		if a.Firing() {
			out = append(out, a)
		}
	}
	return out
}

// Evaluate runs the rule set over the outcomes. It is deterministic:
// outcomes are sorted by job ID internally, so callers may pass them in
// any order.
func Evaluate(spec Spec, outcomes []JobOutcome) *Summary {
	spec = spec.Normalized()
	jobs := make([]JobOutcome, len(outcomes))
	copy(jobs, outcomes)
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Job < jobs[b].Job })

	sum := &Summary{Jobs: len(jobs)}
	perCluster := map[int]*ClusterSummary{}
	var stretches, waits []float64
	var lastEnd float64
	for _, j := range jobs {
		cs := perCluster[j.Cluster]
		if cs == nil {
			cs = &ClusterSummary{Cluster: j.Cluster}
			perCluster[j.Cluster] = cs
		}
		cs.Jobs++
		miss := !j.Done || j.End > j.Release+spec.DeadlineFactor*j.Pmin
		if miss {
			sum.Misses++
			cs.Misses++
		}
		if j.Done {
			if j.End > lastEnd {
				lastEnd = j.End
			}
			if j.Pmin > 0 {
				stretches = append(stretches, (j.End-j.Release)/j.Pmin)
			}
			waits = append(waits, j.Start-j.Release)
		}
	}
	if sum.Jobs > 0 {
		sum.MissRate = float64(sum.Misses) / float64(sum.Jobs)
	}
	clusters := make([]int, 0, len(perCluster))
	for c := range perCluster {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		cs := perCluster[c]
		if cs.Jobs > 0 {
			cs.MissRate = float64(cs.Misses) / float64(cs.Jobs)
		}
		sum.PerCluster = append(sum.PerCluster, *cs)
	}

	alert := func(name string, value, threshold float64, detail string) {
		state := StateResolved
		if value > threshold {
			state = StateFiring
		}
		sum.Alerts = append(sum.Alerts, Alert{Name: name, State: state, Value: value, Threshold: threshold, Detail: detail})
	}

	alert("deadline-miss-budget", sum.MissRate, spec.MissBudget,
		fmt.Sprintf("%d of %d jobs missed release+%g*pmin", sum.Misses, sum.Jobs, spec.DeadlineFactor))

	if spec.BurnWindow > 0 {
		winJobs, winMisses := 0, 0
		for _, j := range jobs {
			if !j.Done {
				continue
			}
			if j.End >= lastEnd-spec.BurnWindow {
				winJobs++
				if j.End > j.Release+spec.DeadlineFactor*j.Pmin {
					winMisses++
				}
			}
		}
		rate := 0.0
		if winJobs > 0 {
			rate = float64(winMisses) / float64(winJobs)
		}
		alert("deadline-burn-rate", rate, spec.BurnFactor*spec.MissBudget,
			fmt.Sprintf("%d of %d jobs completing in the trailing %g window missed", winMisses, winJobs, spec.BurnWindow))
	}

	if spec.StretchTarget > 0 {
		sum.Stretch = percentile(stretches, spec.StretchPercentile)
		alert(fmt.Sprintf("stretch-p%g", spec.StretchPercentile), sum.Stretch, spec.StretchTarget,
			fmt.Sprintf("p%g stretch over %d completed jobs", spec.StretchPercentile, len(stretches)))
	}
	if spec.WaitTarget > 0 {
		sum.Wait = percentile(waits, spec.WaitPercentile)
		alert(fmt.Sprintf("wait-p%g", spec.WaitPercentile), sum.Wait, spec.WaitTarget,
			fmt.Sprintf("p%g wait over %d completed jobs", spec.WaitPercentile, len(waits)))
	}
	return sum
}

// percentile is the nearest-rank percentile of vs (sorted internally);
// zero for an empty slice.
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Publish pushes the summary into an obs registry: the deadline-miss
// counter-style gauges and one 0/1 gauge per alert, so the SLO state
// rides the same Prometheus exposition as everything else (and `bicrit
// top` can render it).
func (s *Summary) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("bicrit_slo_jobs", "Jobs evaluated by the SLO engine.").Set(float64(s.Jobs))
	reg.Gauge("bicrit_slo_deadline_misses", "Jobs past their deadline (release + factor*pmin).").Set(float64(s.Misses))
	reg.Gauge("bicrit_slo_deadline_miss_rate", "Deadline miss rate over evaluated jobs.").Set(s.MissRate)
	for _, cs := range s.PerCluster {
		reg.Gauge("bicrit_slo_cluster_deadline_misses", "Deadline misses per cluster.",
			obs.L("cluster", fmt.Sprint(cs.Cluster))).Set(float64(cs.Misses))
	}
	for _, a := range s.Alerts {
		v := 0.0
		if a.Firing() {
			v = 1
		}
		reg.Gauge("bicrit_slo_alert_firing", "1 while the named SLO alert is firing.",
			obs.L("alert", a.Name)).Set(v)
	}
}
