package online

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bicriteria/internal/baselines"
	"bicriteria/internal/core"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
	"bicriteria/internal/workload"
)

func demtOffline(inst *moldable.Instance) (*schedule.Schedule, error) {
	res, err := core.Schedule(inst, &core.Options{Shuffles: 2})
	if err != nil {
		return nil, err
	}
	return res.Schedule, nil
}

func testJobs() []Job {
	return []Job{
		{Task: moldable.Task{ID: 0, Weight: 2, Times: []float64{6, 3.5, 2.6, 2.2}}, Release: 0},
		{Task: moldable.Sequential(1, 1, 2), Release: 0},
		{Task: moldable.Task{ID: 2, Weight: 3, Times: []float64{8, 4.5, 3.2, 2.5}}, Release: 1.5},
		{Task: moldable.Sequential(3, 4, 1), Release: 7},
		{Task: moldable.Task{ID: 4, Weight: 1, Times: []float64{4, 2.5}}, Release: 7.2},
	}
}

func TestOnlineBatchesRespectReleases(t *testing.T) {
	jobs := testJobs()
	res, err := Schedule(4, jobs, demtOffline)
	if err != nil {
		t.Fatal(err)
	}
	// Build a matching off-line instance to run the validator with release
	// dates.
	tasks := make([]moldable.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = j.Task
	}
	inst := moldable.NewInstance(4, tasks)
	if err := res.Schedule.Validate(inst, &schedule.ValidateOptions{ReleaseDates: ReleaseDates(jobs)}); err != nil {
		t.Fatalf("invalid on-line schedule: %v\n%s", err, res.Schedule.String())
	}
	if len(res.Batches) < 2 {
		t.Fatalf("expected at least two batches, got %d", len(res.Batches))
	}
	// Batches are executed back to back or after an idle period, never
	// overlapping.
	for i := 1; i < len(res.Batches); i++ {
		prev := res.Batches[i-1]
		if res.Batches[i].Start < prev.Start+prev.Makespan-1e-9 {
			t.Fatalf("batch %d starts before batch %d finishes", i, i-1)
		}
	}
	if res.Makespan <= 0 || res.WeightedCompletion <= 0 || res.MaxFlow <= 0 {
		t.Fatalf("metrics not filled: %+v", res)
	}
	// A job released during batch 0 must not be part of batch 0.
	for _, id := range res.Batches[0].TaskIDs {
		if id == 2 && res.Batches[0].Start < 1.5 {
			t.Fatalf("job 2 (released at 1.5) scheduled in a batch starting at %g", res.Batches[0].Start)
		}
	}
}

func TestOnlineWithBaselineScheduler(t *testing.T) {
	jobs := testJobs()
	res, err := Schedule(4, jobs, baselines.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]moldable.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = j.Task
	}
	inst := moldable.NewInstance(4, tasks)
	if err := res.Schedule.Validate(inst, &schedule.ValidateOptions{ReleaseDates: ReleaseDates(jobs)}); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
}

func TestOnlineEdgeCases(t *testing.T) {
	if _, err := Schedule(0, testJobs(), demtOffline); err == nil {
		t.Fatalf("zero processors must fail")
	}
	if _, err := Schedule(4, testJobs(), nil); err == nil {
		t.Fatalf("nil scheduler must fail")
	}
	res, err := Schedule(4, nil, demtOffline)
	if err != nil || len(res.Schedule.Assignments) != 0 {
		t.Fatalf("empty job list should give an empty schedule: %v %v", res, err)
	}
	bad := []Job{{Task: moldable.Task{ID: 0, Weight: 1}, Release: 0}}
	if _, err := Schedule(4, bad, demtOffline); err == nil {
		t.Fatalf("invalid task must fail")
	}
	neg := []Job{{Task: moldable.Sequential(0, 1, 1), Release: -1}}
	if _, err := Schedule(4, neg, demtOffline); err == nil {
		t.Fatalf("negative release must fail")
	}
	failing := func(inst *moldable.Instance) (*schedule.Schedule, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := Schedule(4, testJobs(), failing); err == nil {
		t.Fatalf("off-line scheduler failure must propagate")
	}
}

func TestOnlineIdlePeriodsBetweenBursts(t *testing.T) {
	jobs := []Job{
		{Task: moldable.Sequential(0, 1, 1), Release: 0},
		{Task: moldable.Sequential(1, 1, 1), Release: 100},
	}
	res, err := Schedule(2, jobs, baselines.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("expected 2 batches, got %d", len(res.Batches))
	}
	if res.Batches[1].Start < 100 {
		t.Fatalf("second batch must wait for the release at 100, started at %g", res.Batches[1].Start)
	}
}

func TestPropertyOnlineValidForRandomJobSets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(12)
		inst, err := workload.Generate(workload.Config{Kind: workload.Mixed, M: m, N: 5 + r.Intn(15), Seed: seed})
		if err != nil {
			return false
		}
		jobs := make([]Job, inst.N())
		for i := range inst.Tasks {
			jobs[i] = Job{Task: inst.Tasks[i], Release: float64(r.Intn(5)) * 3}
		}
		res, err := Schedule(m, jobs, demtOffline)
		if err != nil {
			return false
		}
		tasks := make([]moldable.Task, len(jobs))
		for i, j := range jobs {
			tasks[i] = j.Task
		}
		check := moldable.NewInstance(m, tasks)
		return res.Schedule.Validate(check, &schedule.ValidateOptions{ReleaseDates: ReleaseDates(jobs)}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMeanStretch(t *testing.T) {
	jobs := testJobs()
	res, err := Schedule(4, jobs, demtOffline)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStretch < 1-1e-9 {
		t.Fatalf("mean stretch %g cannot be below 1", res.MeanStretch)
	}
	// Recompute from the schedule: mean over jobs of flow / fastest time.
	releases := ReleaseDates(jobs)
	byID := make(map[int]moldable.Task, len(jobs))
	for _, j := range jobs {
		byID[j.Task.ID] = j.Task
	}
	sum := 0.0
	for _, a := range res.Schedule.Assignments {
		task := byID[a.TaskID]
		pmin, _ := task.MinTime()
		sum += (a.End() - releases[a.TaskID]) / pmin
	}
	want := sum / float64(len(jobs))
	if diff := res.MeanStretch - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean stretch %g, recomputed %g", res.MeanStretch, want)
	}
}
