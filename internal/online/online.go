// Package online implements the on-line batch framework discussed in
// section 2.2 of the paper (after Shmoys, Wein and Williamson): jobs are
// submitted over time, an arriving job is deferred to the next batch, and
// each batch is scheduled with an off-line algorithm (DEMT or any baseline).
// If the off-line algorithm is a rho-approximation for the makespan, the
// resulting on-line algorithm is 2*rho-competitive.
package online

import (
	"fmt"
	"sort"

	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// Job is a moldable task together with its submission (release) date.
type Job struct {
	Task    moldable.Task
	Release float64
}

// OfflineScheduler is any algorithm that schedules an off-line instance
// (all tasks available at time 0). The DEMT scheduler and every baseline of
// this library can be wrapped into this signature.
type OfflineScheduler func(inst *moldable.Instance) (*schedule.Schedule, error)

// BatchTrace describes one executed batch.
type BatchTrace struct {
	// Index is the batch number (0-based).
	Index int
	// Start is the time at which the batch begins executing.
	Start float64
	// Makespan is the length of the batch schedule.
	Makespan float64
	// TaskIDs lists the jobs scheduled in this batch.
	TaskIDs []int
}

// Result is the outcome of the on-line simulation.
type Result struct {
	// Schedule is the complete schedule (starts are absolute times).
	Schedule *schedule.Schedule
	// Batches describes every batch in execution order.
	Batches []BatchTrace
	// Makespan is the completion time of the last job.
	Makespan float64
	// MaxFlow is the maximum flow time (completion minus release) over jobs.
	MaxFlow float64
	// MeanStretch is the mean over jobs of the flow time divided by the
	// job's fastest possible execution time (its minimum processing time
	// over allocations): how much the batching slows a job down compared to
	// running alone on an empty machine.
	MeanStretch float64
	// WeightedCompletion is sum(w_i * C_i) with absolute completion times.
	WeightedCompletion float64
}

// Schedule runs the batch framework: at each step, all jobs released before
// the current time form the next batch; the batch is scheduled off-line and
// executed to completion before the following batch starts.
func Schedule(m int, jobs []Job, offline OfflineScheduler) (*Result, error) {
	if m < 1 {
		return nil, fmt.Errorf("online: machine needs at least one processor")
	}
	if offline == nil {
		return nil, fmt.Errorf("online: nil off-line scheduler")
	}
	if len(jobs) == 0 {
		return &Result{Schedule: schedule.New(m)}, nil
	}
	for i := range jobs {
		if err := jobs[i].Task.Validate(); err != nil {
			return nil, err
		}
		if jobs[i].Release < 0 {
			return nil, fmt.Errorf("online: job %d has negative release date", jobs[i].Task.ID)
		}
	}

	pending := make([]Job, len(jobs))
	copy(pending, jobs)
	sort.SliceStable(pending, func(a, b int) bool { return pending[a].Release < pending[b].Release })

	res := &Result{Schedule: schedule.New(m)}
	releases := ReleaseDates(jobs)
	tasks := make(map[int]*moldable.Task, len(jobs))
	for i := range jobs {
		tasks[jobs[i].Task.ID] = &jobs[i].Task
	}

	now := 0.0
	next := 0
	batchIndex := 0
	for next < len(pending) {
		if pending[next].Release > now {
			// Idle until the next submission.
			now = pending[next].Release
		}
		var batchTasks []moldable.Task
		for next < len(pending) && pending[next].Release <= now+moldable.Eps {
			batchTasks = append(batchTasks, pending[next].Task)
			next++
		}
		inst := moldable.NewInstance(m, batchTasks)
		sub, err := offline(inst)
		if err != nil {
			return nil, fmt.Errorf("online: batch %d: %w", batchIndex, err)
		}
		if err := sub.Validate(inst, nil); err != nil {
			return nil, fmt.Errorf("online: batch %d produced an invalid schedule: %w", batchIndex, err)
		}
		trace := BatchTrace{Index: batchIndex, Start: now, Makespan: sub.Makespan()}
		for _, a := range sub.Assignments {
			shifted := a
			shifted.Start += now
			shifted.Procs = append([]int(nil), a.Procs...)
			res.Schedule.Add(shifted)
			trace.TaskIDs = append(trace.TaskIDs, a.TaskID)
		}
		sort.Ints(trace.TaskIDs)
		res.Batches = append(res.Batches, trace)
		now += sub.Makespan()
		batchIndex++
	}

	res.Makespan = res.Schedule.Makespan()
	stretchSum, stretchCount := 0.0, 0
	for _, a := range res.Schedule.Assignments {
		t := tasks[a.TaskID]
		flow := a.End() - releases[a.TaskID]
		if flow > res.MaxFlow {
			res.MaxFlow = flow
		}
		res.WeightedCompletion += t.Weight * a.End()
		if pmin, _ := t.MinTime(); pmin > 0 {
			stretchSum += flow / pmin
			stretchCount++
		}
	}
	if stretchCount > 0 {
		res.MeanStretch = stretchSum / float64(stretchCount)
	}
	return res, nil
}

// ReleaseDates extracts the release-date map of a job list, for use with
// schedule validation.
func ReleaseDates(jobs []Job) map[int]float64 {
	out := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		out[j.Task.ID] = j.Release
	}
	return out
}
