package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxValueSimple(t *testing.T) {
	items := []Item{
		{Cost: 3, Value: 10},
		{Cost: 4, Value: 12},
		{Cost: 2, Value: 7},
		{Cost: 5, Value: 14},
	}
	res, err := MaxValue(items, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Best is items 1+0 (cost 7, value 22) or 3+2 (cost 7, value 21): 22.
	if res.TotalValue != 22 {
		t.Fatalf("TotalValue = %g, want 22", res.TotalValue)
	}
	if res.TotalCost > 7 {
		t.Fatalf("TotalCost = %d exceeds capacity", res.TotalCost)
	}
	sum := 0.0
	cost := 0
	for _, i := range res.Selected {
		sum += items[i].Value
		cost += items[i].Cost
	}
	if sum != res.TotalValue || cost != res.TotalCost {
		t.Fatalf("selection inconsistent with totals: %v", res)
	}
}

func TestMaxValueEdgeCases(t *testing.T) {
	res, err := MaxValue(nil, 5)
	if err != nil || res.TotalValue != 0 || len(res.Selected) != 0 {
		t.Fatalf("empty knapsack broken: %+v, %v", res, err)
	}
	res, err = MaxValue([]Item{{Cost: 10, Value: 5}}, 5)
	if err != nil || len(res.Selected) != 0 {
		t.Fatalf("oversized item should be skipped: %+v, %v", res, err)
	}
	if _, err := MaxValue([]Item{{Cost: 0, Value: 1}}, 5); err == nil {
		t.Fatalf("zero cost must be rejected")
	}
	if _, err := MaxValue([]Item{{Cost: 1, Value: math.NaN()}}, 5); err == nil {
		t.Fatalf("NaN value must be rejected")
	}
	if _, err := MaxValue([]Item{{Cost: 1, Value: -1}}, 5); err == nil {
		t.Fatalf("negative value must be rejected")
	}
	if _, err := MaxValue([]Item{{Cost: 1, Value: 1}}, -1); err == nil {
		t.Fatalf("negative capacity must be rejected")
	}
	// Zero capacity: nothing fits.
	res, err = MaxValue([]Item{{Cost: 1, Value: 3}}, 0)
	if err != nil || res.TotalValue != 0 {
		t.Fatalf("zero capacity should select nothing: %+v, %v", res, err)
	}
}

// bruteForce enumerates all subsets (n <= 16) for cross-checking.
func bruteForce(items []Item, capacity int) float64 {
	best := 0.0
	for mask := 0; mask < 1<<len(items); mask++ {
		cost, value := 0, 0.0
		for i, it := range items {
			if mask&(1<<i) != 0 {
				cost += it.Cost
				value += it.Value
			}
		}
		if cost <= capacity && value > best {
			best = value
		}
	}
	return best
}

func TestPropertyMaxValueMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		capacity := r.Intn(20)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Cost: 1 + r.Intn(8), Value: float64(r.Intn(50))}
		}
		res, err := MaxValue(items, capacity)
		if err != nil {
			return false
		}
		want := bruteForce(items, capacity)
		if math.Abs(res.TotalValue-want) > 1e-9 {
			return false
		}
		// Selection must be consistent and within capacity.
		cost, value := 0, 0.0
		for _, i := range res.Selected {
			cost += items[i].Cost
			value += items[i].Value
		}
		return cost <= capacity && math.Abs(value-res.TotalValue) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCostPartitionSimple(t *testing.T) {
	// Two items; budget allows only one on shelf 1.
	cost1 := []int{2, 2}
	work1 := []float64{4, 6}
	work2 := []float64{10, 7}
	shelf1, total, err := MinCostPartition(cost1, work1, work2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Putting item 0 on shelf 1 (work 4) and item 1 on shelf 2 (work 7) = 11
	// beats item 1 on shelf 1 (6) + item 0 on shelf 2 (10) = 16.
	if !shelf1[0] || shelf1[1] {
		t.Fatalf("partition = %v, want [true false]", shelf1)
	}
	if total != 11 {
		t.Fatalf("total work = %g, want 11", total)
	}
}

func TestMinCostPartitionForcedItems(t *testing.T) {
	inf := math.Inf(1)
	// Item 0 cannot go to shelf 2.
	shelf1, total, err := MinCostPartition([]int{3, 1}, []float64{5, 2}, []float64{inf, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !shelf1[0] || shelf1[1] {
		t.Fatalf("partition = %v, want [true false]", shelf1)
	}
	if total != 6 {
		t.Fatalf("total = %g, want 6", total)
	}
	// Forced item exceeding the budget -> error.
	if _, _, err := MinCostPartition([]int{5}, []float64{5}, []float64{inf}, 3); err == nil {
		t.Fatalf("infeasible forced item must fail")
	}
}

func TestMinCostPartitionErrors(t *testing.T) {
	if _, _, err := MinCostPartition([]int{1}, []float64{1}, []float64{1, 2}, 3); err == nil {
		t.Fatalf("inconsistent lengths must fail")
	}
	if _, _, err := MinCostPartition([]int{1}, []float64{1}, []float64{1}, -1); err == nil {
		t.Fatalf("negative budget must fail")
	}
}

func TestPropertyMinCostPartitionMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		budget := r.Intn(12)
		cost1 := make([]int, n)
		work1 := make([]float64, n)
		work2 := make([]float64, n)
		for i := 0; i < n; i++ {
			cost1[i] = 1 + r.Intn(5)
			work1[i] = 1 + 10*r.Float64()
			if r.Intn(4) == 0 {
				work2[i] = math.Inf(1)
			} else {
				work2[i] = 1 + 10*r.Float64()
			}
		}
		// Brute force.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			cost, work := 0, 0.0
			ok := true
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					cost += cost1[i]
					work += work1[i]
				} else {
					if math.IsInf(work2[i], 1) {
						ok = false
						break
					}
					work += work2[i]
				}
			}
			if ok && cost <= budget && work < best {
				best = work
			}
		}
		shelf1, total, err := MinCostPartition(cost1, work1, work2, budget)
		if math.IsInf(best, 1) {
			return err != nil
		}
		if err != nil {
			return false
		}
		// Verify reported selection and optimality.
		cost, work := 0, 0.0
		for i := 0; i < n; i++ {
			if shelf1[i] {
				cost += cost1[i]
				work += work1[i]
			} else {
				if math.IsInf(work2[i], 1) {
					return false
				}
				work += work2[i]
			}
		}
		return cost <= budget && math.Abs(work-total) < 1e-9 && math.Abs(total-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
