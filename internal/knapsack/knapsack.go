// Package knapsack provides the 0/1 knapsack dynamic program used by the
// DEMT algorithm to select the tasks of each batch (maximize the total
// weight of the selected tasks under the m-processor budget) and by the
// dual-approximation two-shelf construction (minimize the work moved to the
// second shelf under the first-shelf processor budget).
package knapsack

import (
	"fmt"
	"math"
)

// Item is a candidate for selection.
type Item struct {
	// Cost is the integer resource consumption (number of processors).
	Cost int
	// Value is the profit of selecting the item (task weight).
	Value float64
}

// Result is the outcome of a knapsack optimization.
type Result struct {
	// Selected holds the indices (into the input slice) of chosen items, in
	// increasing order.
	Selected []int
	// TotalValue is the sum of the selected items' values.
	TotalValue float64
	// TotalCost is the sum of the selected items' costs.
	TotalCost int
}

// MaxValue solves the 0/1 knapsack problem: choose a subset of items with
// total cost at most capacity maximizing the total value. Items with cost
// larger than the capacity are never selected; items with non-positive cost
// are rejected with an error (the scheduling use-cases always have cost >= 1).
//
// The dynamic program runs in O(n * capacity) time and space, matching the
// O(mn) complexity quoted in section 3.2 of the paper.
func MaxValue(items []Item, capacity int) (*Result, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("knapsack: negative capacity %d", capacity)
	}
	for i, it := range items {
		if it.Cost <= 0 {
			return nil, fmt.Errorf("knapsack: item %d has non-positive cost %d", i, it.Cost)
		}
		if math.IsNaN(it.Value) || math.IsInf(it.Value, 0) || it.Value < 0 {
			return nil, fmt.Errorf("knapsack: item %d has invalid value %g", i, it.Value)
		}
	}
	n := len(items)
	// best[j] = max value achievable with capacity j considering the first i
	// items; take[i][j] records whether item i is taken at capacity j.
	best := make([]float64, capacity+1)
	take := make([][]bool, n)
	for i := 0; i < n; i++ {
		take[i] = make([]bool, capacity+1)
		it := items[i]
		if it.Cost > capacity {
			continue
		}
		for j := capacity; j >= it.Cost; j-- {
			if cand := best[j-it.Cost] + it.Value; cand > best[j]+1e-12 {
				best[j] = cand
				take[i][j] = true
			}
		}
	}
	res := &Result{TotalValue: best[capacity]}
	// Reconstruct the selection from the last item backwards.
	j := capacity
	for i := n - 1; i >= 0; i-- {
		if j >= 0 && take[i][j] {
			res.Selected = append(res.Selected, i)
			res.TotalCost += items[i].Cost
			j -= items[i].Cost
		}
	}
	// Reverse to increasing index order.
	for a, b := 0, len(res.Selected)-1; a < b; a, b = a+1, b-1 {
		res.Selected[a], res.Selected[b] = res.Selected[b], res.Selected[a]
	}
	return res, nil
}

// MinCostPartition solves the two-shelf assignment problem used by the
// dual-approximation algorithm: each item must go either to shelf 1 (using
// cost1[i] processors of the shelf-1 budget, incurring work1[i]) or to
// shelf 2 (incurring work2[i], no shelf-1 processors). Items with
// work2[i] = +Inf are forced to shelf 1. The function minimizes the total
// work subject to the shelf-1 processor budget and returns, for each item,
// whether it is placed on shelf 1.
//
// It returns an error when the forced items alone exceed the budget or an
// item cannot be placed anywhere.
func MinCostPartition(cost1 []int, work1, work2 []float64, budget int) (shelf1 []bool, totalWork float64, err error) {
	n := len(cost1)
	if len(work1) != n || len(work2) != n {
		return nil, 0, fmt.Errorf("knapsack: inconsistent slice lengths %d/%d/%d", len(cost1), len(work1), len(work2))
	}
	if budget < 0 {
		return nil, 0, fmt.Errorf("knapsack: negative budget %d", budget)
	}
	const inf = math.MaxFloat64 / 4
	// dp[j] = minimal total work using at most j shelf-1 processors.
	dp := make([]float64, budget+1)
	choice := make([][]bool, n) // choice[i][j]: item i on shelf 1 when budget j
	for i := 0; i < n; i++ {
		choice[i] = make([]bool, budget+1)
		next := make([]float64, budget+1)
		for j := 0; j <= budget; j++ {
			bestVal := inf
			onShelf1 := false
			// Option shelf 2 (only when finite work2).
			if !math.IsInf(work2[i], 1) {
				bestVal = dp[j] + work2[i]
			}
			// Option shelf 1.
			if cost1[i] <= j {
				if cand := dp[j-cost1[i]] + work1[i]; cand < bestVal {
					bestVal = cand
					onShelf1 = true
				}
			}
			next[j] = bestVal
			choice[i][j] = onShelf1
		}
		dp = next
	}
	if dp[budget] >= inf {
		return nil, 0, fmt.Errorf("knapsack: no feasible two-shelf partition within budget %d", budget)
	}
	shelf1 = make([]bool, n)
	j := budget
	for i := n - 1; i >= 0; i-- {
		shelf1[i] = choice[i][j]
		if shelf1[i] {
			j -= cost1[i]
		}
	}
	return shelf1, dp[budget], nil
}
