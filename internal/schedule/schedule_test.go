package schedule

import (
	"math"
	"strings"
	"testing"

	"bicriteria/internal/moldable"
)

func testInstance() *moldable.Instance {
	return moldable.NewInstance(4, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{8, 5, 4, 3.5}},
		{ID: 1, Weight: 1, Times: []float64{4, 2.5}},
		{ID: 2, Weight: 3, Times: []float64{6, 3.5, 2.5, 2}},
	})
}

func feasibleSchedule() *Schedule {
	s := New(4)
	s.Add(Assignment{TaskID: 0, Start: 0, NProcs: 2, Procs: []int{0, 1}, Duration: 5})
	s.Add(Assignment{TaskID: 1, Start: 0, NProcs: 1, Procs: []int{2}, Duration: 4})
	s.Add(Assignment{TaskID: 2, Start: 5, NProcs: 4, Procs: []int{0, 1, 2, 3}, Duration: 2})
	return s
}

func TestMetrics(t *testing.T) {
	inst := testInstance()
	s := feasibleSchedule()
	if err := s.Validate(inst, nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.Makespan(); got != 7 {
		t.Fatalf("Makespan = %g, want 7", got)
	}
	// Weighted completion: task0 ends 5 (w=2), task1 ends 4 (w=1), task2 ends 7 (w=3).
	if got := s.WeightedCompletion(inst); got != 2*5+1*4+3*7 {
		t.Fatalf("WeightedCompletion = %g, want 35", got)
	}
	if got := s.SumCompletion(); got != 16 {
		t.Fatalf("SumCompletion = %g, want 16", got)
	}
	if got := s.TotalWork(); got != 2*5+4+4*2 {
		t.Fatalf("TotalWork = %g, want 22", got)
	}
	wantUtil := 22.0 / (7 * 4)
	if math.Abs(s.Utilization()-wantUtil) > 1e-9 {
		t.Fatalf("Utilization = %g, want %g", s.Utilization(), wantUtil)
	}
	if math.Abs(s.IdleTime()-(28-22)) > 1e-9 {
		t.Fatalf("IdleTime = %g, want 6", s.IdleTime())
	}
	m := s.ComputeMetrics(inst)
	if m.Makespan != 7 || m.WeightedCompletion != 35 {
		t.Fatalf("ComputeMetrics inconsistent: %+v", m)
	}
	if s.MaxStretch(inst) <= 0 {
		t.Fatalf("MaxStretch should be positive")
	}
}

func TestAssignmentLookup(t *testing.T) {
	s := feasibleSchedule()
	if a := s.Assignment(1); a == nil || a.NProcs != 1 {
		t.Fatalf("Assignment(1) = %+v", a)
	}
	if s.Assignment(42) != nil {
		t.Fatalf("Assignment(42) should be nil")
	}
}

func TestValidateCatchesMissingAndDuplicateTasks(t *testing.T) {
	inst := testInstance()
	s := feasibleSchedule()
	s.Assignments = s.Assignments[:2] // task 2 missing
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("missing task must be rejected")
	}
	if err := s.Validate(inst, &ValidateOptions{AllowMissingTasks: true}); err != nil {
		t.Fatalf("AllowMissingTasks should accept a partial schedule: %v", err)
	}
	s = feasibleSchedule()
	s.Add(Assignment{TaskID: 0, Start: 8, NProcs: 1, Procs: []int{0}, Duration: 8})
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("duplicate task must be rejected")
	}
}

func TestValidateCatchesBadDurationAllocationAndStart(t *testing.T) {
	inst := testInstance()

	s := feasibleSchedule()
	s.Assignments[0].Duration = 4.0 // p(2) is 5
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("wrong duration must be rejected")
	}

	s = feasibleSchedule()
	s.Assignments[1].NProcs = 3 // task 1 offers only 2 allocations
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("allocation above MaxProcs must be rejected")
	}

	s = feasibleSchedule()
	s.Assignments[0].Start = -1
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("negative start must be rejected")
	}

	s = feasibleSchedule()
	s.Assignments[0].TaskID = 99
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("unknown task must be rejected")
	}
}

func TestValidateCatchesCapacityViolation(t *testing.T) {
	inst := testInstance()
	s := New(4)
	// 2 + 1 + 4 = 7 > 4 processors at time 1.
	s.Add(Assignment{TaskID: 0, Start: 0, NProcs: 2, Duration: 5})
	s.Add(Assignment{TaskID: 1, Start: 0, NProcs: 1, Duration: 4})
	s.Add(Assignment{TaskID: 2, Start: 1, NProcs: 4, Duration: 2})
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("capacity violation must be rejected")
	}
}

func TestValidateCatchesProcessorOverlapAndBadProcSets(t *testing.T) {
	inst := testInstance()

	s := feasibleSchedule()
	s.Assignments[1].Procs = []int{0} // overlaps task 0 on processor 0
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("per-processor overlap must be rejected")
	}

	s = feasibleSchedule()
	s.Assignments[0].Procs = []int{0, 0}
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("duplicate processor in a task must be rejected")
	}

	s = feasibleSchedule()
	s.Assignments[0].Procs = []int{0, 7}
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("out-of-range processor must be rejected")
	}

	s = feasibleSchedule()
	s.Assignments[0].Procs = []int{0}
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("processor list shorter than NProcs must be rejected")
	}
}

func TestValidateReleaseDates(t *testing.T) {
	inst := testInstance()
	s := feasibleSchedule()
	opts := &ValidateOptions{ReleaseDates: map[int]float64{1: 2.0}}
	if err := s.Validate(inst, opts); err == nil {
		t.Fatalf("start before release date must be rejected")
	}
	opts.ReleaseDates[1] = 0
	if err := s.Validate(inst, opts); err != nil {
		t.Fatalf("respecting release dates should pass: %v", err)
	}
}

func TestValidateMachineMismatch(t *testing.T) {
	inst := testInstance()
	s := feasibleSchedule()
	s.M = 5
	if err := s.Validate(inst, nil); err == nil {
		t.Fatalf("machine size mismatch must be rejected")
	}
}

func TestCapacityBackToBackTasksAllowed(t *testing.T) {
	// A task may start exactly when another finishes on the same processors.
	inst := moldable.NewInstance(2, []moldable.Task{
		moldable.Sequential(0, 1, 3),
		moldable.Sequential(1, 1, 3),
		{ID: 2, Weight: 1, Times: []float64{4, 2}},
	})
	s := New(2)
	s.Add(Assignment{TaskID: 0, Start: 0, NProcs: 1, Procs: []int{0}, Duration: 3})
	s.Add(Assignment{TaskID: 1, Start: 0, NProcs: 1, Procs: []int{1}, Duration: 3})
	s.Add(Assignment{TaskID: 2, Start: 3, NProcs: 2, Procs: []int{0, 1}, Duration: 2})
	if err := s.Validate(inst, nil); err != nil {
		t.Fatalf("back-to-back tasks should validate: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := feasibleSchedule()
	cp := s.Clone()
	cp.Assignments[0].Procs[0] = 3
	cp.Assignments[0].Start = 100
	if s.Assignments[0].Procs[0] == 3 || s.Assignments[0].Start == 100 {
		t.Fatalf("Clone is shallow")
	}
}

func TestGanttAndString(t *testing.T) {
	s := feasibleSchedule()
	g := s.Gantt(40)
	if !strings.Contains(g, "P000") || !strings.Contains(g, "P003") {
		t.Fatalf("Gantt missing processor rows:\n%s", g)
	}
	if !strings.Contains(g, "makespan 7.000") {
		t.Fatalf("Gantt missing makespan header:\n%s", g)
	}
	str := s.String()
	if !strings.Contains(str, "task    2") {
		t.Fatalf("String missing task line:\n%s", str)
	}
	empty := New(3)
	if got := empty.Gantt(20); !strings.Contains(got, "empty") {
		t.Fatalf("empty Gantt = %q", got)
	}
}

func TestEmptyScheduleMetrics(t *testing.T) {
	s := New(3)
	if s.Makespan() != 0 || s.Utilization() != 0 || s.IdleTime() != 0 {
		t.Fatalf("empty schedule metrics should all be zero")
	}
}
