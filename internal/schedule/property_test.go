package schedule

import (
	"math/rand"
	"testing"

	"bicriteria/internal/moldable"
)

// randomPacked builds a random feasible schedule with a greedy earliest-
// fit packer (its own tiny list scheduler, so this test does not depend on
// the packages under test elsewhere), together with the instance it
// schedules.
func randomPacked(r *rand.Rand) (*moldable.Instance, *Schedule) {
	m := 2 + r.Intn(10)
	n := 1 + r.Intn(15)
	tasks := make([]moldable.Task, n)
	s := New(m)
	freeAt := make([]float64, m)
	for i := range tasks {
		k := 1 + r.Intn(m)
		d := 0.5 + 5*r.Float64()
		times := make([]float64, k)
		for j := range times {
			// Same duration for every allocation keeps the duration check
			// trivially consistent whatever k the packer picks.
			times[j] = d
		}
		tasks[i] = moldable.Task{ID: i, Weight: 1, Times: times}
		// Earliest-fit: the k processors that free up soonest.
		order := make([]int, m)
		for p := range order {
			order[p] = p
		}
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				if freeAt[order[b]] < freeAt[order[a]] {
					order[a], order[b] = order[b], order[a]
				}
			}
		}
		procs := append([]int(nil), order[:k]...)
		start := 0.0
		for _, p := range procs {
			if freeAt[p] > start {
				start = freeAt[p]
			}
		}
		for _, p := range procs {
			freeAt[p] = start + d
		}
		s.Add(Assignment{TaskID: i, Start: start, NProcs: k, Procs: procs, Duration: d})
	}
	return moldable.NewInstance(m, tasks), s
}

// TestPropertyPackedSchedulesValidate: every schedule produced by a
// correct packer passes validation — the accept side of the oracle.
func TestPropertyPackedSchedulesValidate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		inst, s := randomPacked(r)
		if err := s.Validate(inst, nil); err != nil {
			t.Fatalf("trial %d: feasible schedule rejected: %v", trial, err)
		}
	}
}

// TestPropertyValidateRejectsInjectedViolations mutates feasible random
// schedules into each class of infeasibility and checks the validator
// catches every one — the reject side of the oracle that the capacity
// and exclusivity invariants of the whole library lean on.
func TestPropertyValidateRejectsInjectedViolations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(r *rand.Rand, s *Schedule) bool // false: not applicable
	}{
		{"double-schedule", func(r *rand.Rand, s *Schedule) bool {
			a := s.Assignments[r.Intn(len(s.Assignments))]
			a.Procs = append([]int(nil), a.Procs...)
			s.Add(a)
			return true
		}},
		{"processor-overlap", func(r *rand.Rand, s *Schedule) bool {
			if len(s.Assignments) < 2 {
				return false
			}
			// Move one task onto the exact window and first processor of
			// another.
			src := &s.Assignments[0]
			dst := &s.Assignments[1]
			dst.Start = src.Start
			dst.Procs[0] = src.Procs[0]
			return true
		}},
		{"negative-start", func(r *rand.Rand, s *Schedule) bool {
			s.Assignments[r.Intn(len(s.Assignments))].Start = -1
			return true
		}},
		{"wrong-duration", func(r *rand.Rand, s *Schedule) bool {
			s.Assignments[r.Intn(len(s.Assignments))].Duration *= 2
			return true
		}},
		{"proc-out-of-range", func(r *rand.Rand, s *Schedule) bool {
			a := &s.Assignments[r.Intn(len(s.Assignments))]
			a.Procs[0] = s.M
			return true
		}},
		{"overallocated", func(r *rand.Rand, s *Schedule) bool {
			a := &s.Assignments[r.Intn(len(s.Assignments))]
			a.NProcs = s.M + 1
			return true
		}},
	}
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		for _, m := range mutations {
			inst, s := randomPacked(r)
			if !m.mut(r, s) {
				continue
			}
			if err := s.Validate(inst, nil); err == nil {
				t.Fatalf("trial %d: mutation %q produced an invalid schedule the validator accepted", trial, m.name)
			}
		}
	}
}

// TestPropertyCapacitySweepCatchesOverload drops the explicit processor
// lists and overbooks the machine through NProcs alone: the event-sweep
// capacity check must still reject it.
func TestPropertyCapacitySweepCatchesOverload(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := 2 + r.Intn(8)
		// Two tasks that together need m+1 processors at the same instant.
		k1 := 1 + r.Intn(m)
		k2 := m + 1 - k1
		mk := func(id, k int) moldable.Task {
			times := make([]float64, k)
			for j := range times {
				times[j] = 2
			}
			return moldable.Task{ID: id, Weight: 1, Times: times}
		}
		inst := moldable.NewInstance(m, []moldable.Task{mk(0, k1), mk(1, k2)})
		s := New(m)
		s.Add(Assignment{TaskID: 0, Start: 0, NProcs: k1, Duration: 2})
		s.Add(Assignment{TaskID: 1, Start: 1, NProcs: k2, Duration: 2})
		if err := s.Validate(inst, nil); err == nil {
			t.Fatalf("trial %d: %d+%d processors on an m=%d machine accepted", trial, k1, k2, m)
		}
	}
}
