// Package schedule provides the representation of a schedule for moldable
// tasks on a homogeneous cluster, together with validation, the two criteria
// studied by the paper (makespan and weighted sum of completion times) and a
// textual Gantt-chart renderer.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/moldable"
)

// Assignment is the placement decision for a single task: the allocation
// size chosen by the scheduler, the start time and the explicit set of
// processors the task runs on.
type Assignment struct {
	// TaskID refers to a task of the scheduled instance.
	TaskID int
	// Start is the start time of the task (>= 0, or >= its release date in
	// the on-line setting).
	Start float64
	// NProcs is the number of processors allotted to the task.
	NProcs int
	// Procs lists the processor indices (in [0, M)) executing the task.
	// When non-nil its length must equal NProcs. Schedulers in this library
	// always fill it so that per-processor validation is possible.
	Procs []int
	// Duration is the processing time of the task under this allocation; it
	// must equal task.Time(NProcs).
	Duration float64
}

// End returns the completion time of the assignment.
func (a Assignment) End() float64 { return a.Start + a.Duration }

// Schedule is a complete mapping of an instance's tasks onto the machine.
type Schedule struct {
	// M is the number of processors of the target machine.
	M int
	// Assignments holds exactly one entry per task of the instance.
	Assignments []Assignment
}

// New returns an empty schedule for an m-processor machine.
func New(m int) *Schedule { return &Schedule{M: m} }

// Add appends an assignment.
func (s *Schedule) Add(a Assignment) { s.Assignments = append(s.Assignments, a) }

// Assignment returns the assignment of the given task, or nil when the task
// is not scheduled.
func (s *Schedule) Assignment(taskID int) *Assignment {
	for i := range s.Assignments {
		if s.Assignments[i].TaskID == taskID {
			return &s.Assignments[i]
		}
	}
	return nil
}

// Makespan returns Cmax, the completion time of the last task (0 for an
// empty schedule).
func (s *Schedule) Makespan() float64 {
	cmax := 0.0
	for i := range s.Assignments {
		if e := s.Assignments[i].End(); e > cmax {
			cmax = e
		}
	}
	return cmax
}

// WeightedCompletion returns the weighted minsum criterion sum(w_i * C_i)
// for the instance the schedule was built for.
func (s *Schedule) WeightedCompletion(inst *moldable.Instance) float64 {
	total := 0.0
	for i := range s.Assignments {
		a := &s.Assignments[i]
		t := inst.Task(a.TaskID)
		if t == nil {
			continue
		}
		total += t.Weight * a.End()
	}
	return total
}

// SumCompletion returns the unweighted sum of completion times.
func (s *Schedule) SumCompletion() float64 {
	total := 0.0
	for i := range s.Assignments {
		total += s.Assignments[i].End()
	}
	return total
}

// MaxStretch returns the maximum over tasks of C_i / p_i(min): how much a
// task is slowed down compared to running alone fully parallel.
func (s *Schedule) MaxStretch(inst *moldable.Instance) float64 {
	worst := 0.0
	for i := range s.Assignments {
		a := &s.Assignments[i]
		t := inst.Task(a.TaskID)
		if t == nil {
			continue
		}
		pmin, _ := t.MinTime()
		if pmin <= 0 {
			continue
		}
		if st := a.End() / pmin; st > worst {
			worst = st
		}
	}
	return worst
}

// TotalWork returns the sum over assignments of NProcs * Duration.
func (s *Schedule) TotalWork() float64 {
	total := 0.0
	for i := range s.Assignments {
		a := &s.Assignments[i]
		total += float64(a.NProcs) * a.Duration
	}
	return total
}

// Utilization returns the fraction of the processor-time rectangle
// [0, Cmax] x M actually used by tasks. It is 0 for an empty schedule.
func (s *Schedule) Utilization() float64 {
	cmax := s.Makespan()
	if cmax <= 0 || s.M == 0 {
		return 0
	}
	return s.TotalWork() / (cmax * float64(s.M))
}

// IdleTime returns the total processor idle time before the makespan.
func (s *Schedule) IdleTime() float64 {
	return s.Makespan()*float64(s.M) - s.TotalWork()
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	cp := &Schedule{M: s.M, Assignments: make([]Assignment, len(s.Assignments))}
	for i, a := range s.Assignments {
		a.Procs = append([]int(nil), a.Procs...)
		cp.Assignments[i] = a
	}
	return cp
}

// ValidateOptions tunes schedule validation.
type ValidateOptions struct {
	// ReleaseDates optionally maps task IDs to release dates; when present
	// each task must not start before its release date.
	ReleaseDates map[int]float64
	// AllowMissingTasks skips the "every task is scheduled exactly once"
	// check (useful for validating partial schedules such as single
	// batches).
	AllowMissingTasks bool
}

// Validate checks that the schedule is feasible for the instance:
//
//   - every task of the instance is scheduled exactly once (unless
//     AllowMissingTasks is set) and no unknown task appears;
//   - allocation sizes are within [1, task.MaxProcs()] and durations match
//     the task's processing time for the chosen allocation;
//   - start times are non-negative (and respect release dates when given);
//   - explicit processor indices are in range, unique within a task, and no
//     processor executes two tasks at the same time;
//   - at every instant at most M processors are busy.
func (s *Schedule) Validate(inst *moldable.Instance, opts *ValidateOptions) error {
	if opts == nil {
		opts = &ValidateOptions{}
	}
	if s.M != inst.M {
		return fmt.Errorf("schedule: machine size mismatch (schedule %d, instance %d)", s.M, inst.M)
	}
	seen := make(map[int]int)
	for i := range s.Assignments {
		a := &s.Assignments[i]
		t := inst.Task(a.TaskID)
		if t == nil {
			return fmt.Errorf("schedule: assignment %d references unknown task %d", i, a.TaskID)
		}
		seen[a.TaskID]++
		if seen[a.TaskID] > 1 {
			return fmt.Errorf("schedule: task %d scheduled more than once", a.TaskID)
		}
		if a.NProcs < 1 || a.NProcs > t.MaxProcs() {
			return fmt.Errorf("schedule: task %d allotted %d processors (valid range 1..%d)", a.TaskID, a.NProcs, t.MaxProcs())
		}
		if a.NProcs > s.M {
			return fmt.Errorf("schedule: task %d allotted %d processors but machine has %d", a.TaskID, a.NProcs, s.M)
		}
		want := t.Time(a.NProcs)
		if math.Abs(a.Duration-want) > 1e-6*(1+want) {
			return fmt.Errorf("schedule: task %d duration %g does not match p(%d)=%g", a.TaskID, a.Duration, a.NProcs, want)
		}
		if a.Start < -moldable.Eps {
			return fmt.Errorf("schedule: task %d starts at negative time %g", a.TaskID, a.Start)
		}
		if opts.ReleaseDates != nil {
			if r, ok := opts.ReleaseDates[a.TaskID]; ok && a.Start < r-1e-6 {
				return fmt.Errorf("schedule: task %d starts at %g before its release date %g", a.TaskID, a.Start, r)
			}
		}
		if a.Procs != nil {
			if len(a.Procs) != a.NProcs {
				return fmt.Errorf("schedule: task %d lists %d processors but NProcs=%d", a.TaskID, len(a.Procs), a.NProcs)
			}
			dup := make(map[int]bool, len(a.Procs))
			for _, p := range a.Procs {
				if p < 0 || p >= s.M {
					return fmt.Errorf("schedule: task %d uses processor %d outside [0,%d)", a.TaskID, p, s.M)
				}
				if dup[p] {
					return fmt.Errorf("schedule: task %d uses processor %d twice", a.TaskID, p)
				}
				dup[p] = true
			}
		}
	}
	if !opts.AllowMissingTasks {
		for i := range inst.Tasks {
			if seen[inst.Tasks[i].ID] == 0 {
				return fmt.Errorf("schedule: task %d is not scheduled", inst.Tasks[i].ID)
			}
		}
	}
	if err := s.checkCapacity(); err != nil {
		return err
	}
	return s.checkProcessorOverlaps()
}

// checkCapacity sweeps start/end events and verifies that the number of
// busy processors never exceeds M.
func (s *Schedule) checkCapacity() error {
	type event struct {
		t     float64
		delta int
	}
	events := make([]event, 0, 2*len(s.Assignments))
	for i := range s.Assignments {
		a := &s.Assignments[i]
		events = append(events, event{a.Start, a.NProcs}, event{a.End(), -a.NProcs})
	}
	sort.Slice(events, func(i, j int) bool {
		if math.Abs(events[i].t-events[j].t) <= moldable.Eps {
			return events[i].delta < events[j].delta // process releases first
		}
		return events[i].t < events[j].t
	})
	busy := 0
	for _, e := range events {
		busy += e.delta
		if busy > s.M {
			return fmt.Errorf("schedule: %d processors busy at time %g but machine has only %d", busy, e.t, s.M)
		}
	}
	return nil
}

// checkProcessorOverlaps verifies, for assignments carrying explicit
// processor sets, that no processor runs two tasks simultaneously.
func (s *Schedule) checkProcessorOverlaps() error {
	type span struct {
		start, end float64
		task       int
	}
	perProc := make(map[int][]span)
	for i := range s.Assignments {
		a := &s.Assignments[i]
		if a.Procs == nil {
			continue
		}
		for _, p := range a.Procs {
			perProc[p] = append(perProc[p], span{a.Start, a.End(), a.TaskID})
		}
	}
	// Check processors in ascending order so a schedule with several
	// overlaps always reports the same one.
	procs := make([]int, 0, len(perProc))
	for p := range perProc {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		spans := perProc[p]
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-1e-6 {
				return fmt.Errorf("schedule: processor %d runs tasks %d and %d simultaneously (overlap at %g)",
					p, spans[i-1].task, spans[i].task, spans[i].start)
			}
		}
	}
	return nil
}

// Metrics bundles the quantities reported by the experiment harness.
type Metrics struct {
	Makespan           float64
	WeightedCompletion float64
	SumCompletion      float64
	TotalWork          float64
	Utilization        float64
	IdleTime           float64
}

// ComputeMetrics evaluates the schedule against the instance.
func (s *Schedule) ComputeMetrics(inst *moldable.Instance) Metrics {
	return Metrics{
		Makespan:           s.Makespan(),
		WeightedCompletion: s.WeightedCompletion(inst),
		SumCompletion:      s.SumCompletion(),
		TotalWork:          s.TotalWork(),
		Utilization:        s.Utilization(),
		IdleTime:           s.IdleTime(),
	}
}
