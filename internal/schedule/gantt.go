package schedule

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders an ASCII Gantt chart of the schedule, one row per
// processor, using width character columns for the [0, makespan] interval.
// Tasks are labelled with the last decimal digits of their ID; idle time is
// shown as '.'. Assignments without explicit processors are drawn on a
// synthetic capacity row.
//
// The output is meant for debugging, examples and CLI display only.
func (s *Schedule) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	cmax := s.Makespan()
	if cmax <= 0 || s.M == 0 {
		return "(empty schedule)\n"
	}
	grid := make([][]byte, s.M)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(".", width))
	}
	assignments := make([]Assignment, len(s.Assignments))
	copy(assignments, s.Assignments)
	sort.Slice(assignments, func(i, j int) bool { return assignments[i].Start < assignments[j].Start })
	for _, a := range assignments {
		if a.Procs == nil {
			continue
		}
		from := int(a.Start / cmax * float64(width))
		to := int(a.End() / cmax * float64(width))
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		label := byte('0' + a.TaskID%10)
		for _, p := range a.Procs {
			if p < 0 || p >= s.M {
				continue
			}
			for c := from; c < to; c++ {
				grid[p][c] = label
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Gantt chart: %d processors, makespan %.3f, utilization %.1f%%\n", s.M, cmax, 100*s.Utilization())
	for p := 0; p < s.M; p++ {
		fmt.Fprintf(&b, "P%03d |%s|\n", p, grid[p])
	}
	return b.String()
}

// String summarizes the schedule (one line per assignment, sorted by start
// time then task ID).
func (s *Schedule) String() string {
	assignments := make([]Assignment, len(s.Assignments))
	copy(assignments, s.Assignments)
	sort.Slice(assignments, func(i, j int) bool {
		if assignments[i].Start != assignments[j].Start {
			return assignments[i].Start < assignments[j].Start
		}
		return assignments[i].TaskID < assignments[j].TaskID
	})
	var b strings.Builder
	fmt.Fprintf(&b, "schedule on %d processors, %d tasks, Cmax=%.3f\n", s.M, len(assignments), s.Makespan())
	for _, a := range assignments {
		fmt.Fprintf(&b, "  task %4d: start=%8.3f end=%8.3f procs=%3d\n", a.TaskID, a.Start, a.End(), a.NProcs)
	}
	return b.String()
}
