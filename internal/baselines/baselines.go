// Package baselines implements the reference algorithms the paper compares
// DEMT against (section 4.1):
//
//   - Gang: every task runs on all processors, tasks sorted by decreasing
//     weight over execution time (optimal for perfectly moldable tasks);
//
//   - Sequential: every task runs on a single processor, scheduled by the
//     largest-processing-time-first list algorithm;
//
//   - ListGraham (three variants): every task uses the allotment computed by
//     the dual-approximation algorithm [7], then a multiprocessor list
//     algorithm runs with one of three orders: the shelf order of [7],
//     weighted LPT, or smallest area first (SAF).
package baselines

import (
	"context"
	"fmt"
	"sort"

	"bicriteria/internal/dualapprox"
	"bicriteria/internal/listsched"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
)

// Gang schedules every task on all the processors it can use (its full
// allocation), one task after the other, sorted by decreasing ratio of
// weight over execution time (Smith's rule on the gang execution times).
func Gang(inst *moldable.Instance) (*schedule.Schedule, error) {
	return GangContext(context.Background(), inst) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// GangContext is Gang with cancellation: the context is checked at every
// task placement so a racing portfolio can abort a straggling member. A
// cancellation returns the context's error (errors.Is(err, ctx.Err())
// holds).
func GangContext(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	type entry struct {
		idx   int
		procs int
		dur   float64
	}
	entries := make([]entry, inst.N())
	for i := range inst.Tasks {
		t := &inst.Tasks[i]
		k := t.MaxProcs()
		entries[i] = entry{idx: i, procs: k, dur: t.Time(k)}
	}
	sort.SliceStable(entries, func(a, b int) bool {
		ta, tb := &inst.Tasks[entries[a].idx], &inst.Tasks[entries[b].idx]
		// Decreasing weight / execution time.
		return ta.Weight*entries[b].dur > tb.Weight*entries[a].dur
	})
	sched := schedule.New(inst.M)
	now := 0.0
	for _, e := range entries {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baselines: gang loop aborted: %w", err)
		}
		t := &inst.Tasks[e.idx]
		sched.Add(schedule.Assignment{
			TaskID:   t.ID,
			Start:    now,
			NProcs:   e.procs,
			Procs:    procRange(0, e.procs),
			Duration: e.dur,
		})
		now += e.dur
	}
	return sched, nil
}

// Sequential schedules every task on a single processor with the classical
// largest-processing-time-first list algorithm.
func Sequential(inst *moldable.Instance) (*schedule.Schedule, error) {
	return SequentialContext(context.Background(), inst) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// SequentialContext is Sequential with cancellation, checked inside the
// underlying list loop.
func SequentialContext(ctx context.Context, inst *moldable.Instance) (*schedule.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	items := make([]listsched.Item, inst.N())
	for i := range inst.Tasks {
		items[i] = listsched.Item{TaskID: inst.Tasks[i].ID, NProcs: 1, Duration: inst.Tasks[i].SeqTime()}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].Duration > items[b].Duration })
	return listsched.GrahamContext(ctx, inst.M, items)
}

// ListOrder selects the priority order of the ListGraham baseline.
type ListOrder int

const (
	// ShelfOrder keeps the order of the dual-approximation construction:
	// tasks of the large shelf first, then the small shelf, then the small
	// sequential tasks (within each group, longest first).
	ShelfOrder ListOrder = iota
	// WeightedLPT sorts tasks by decreasing ratio of weight over execution
	// time under their allotment (the "weighted LPTF" variant of the
	// paper).
	WeightedLPT
	// SmallestAreaFirst sorts tasks by increasing area (allotment times
	// execution time), targeting the minsum criterion.
	SmallestAreaFirst
)

// String names the order for figures and CLI flags.
func (o ListOrder) String() string {
	switch o {
	case ShelfOrder:
		return "list-shelf"
	case WeightedLPT:
		return "list-weighted-lpt"
	case SmallestAreaFirst:
		return "list-saf"
	default:
		return fmt.Sprintf("ListOrder(%d)", int(o))
	}
}

// ListGraham computes the dual-approximation allotment and runs the Graham
// list algorithm with the requested order.
func ListGraham(inst *moldable.Instance, order ListOrder) (*schedule.Schedule, error) {
	return ListGrahamContext(context.Background(), inst, order) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// ListGrahamContext is ListGraham with cancellation, checked inside the
// underlying list loop.
func ListGrahamContext(ctx context.Context, inst *moldable.Instance, order ListOrder) (*schedule.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	res, err := dualapprox.TwoShelf(inst)
	if err != nil {
		return nil, err
	}
	return ListGrahamWithAllotmentContext(ctx, inst, res, order)
}

// ListGrahamWithAllotment is ListGraham with a pre-computed
// dual-approximation result (so the three variants can share one allotment
// computation, as the experiment harness does).
func ListGrahamWithAllotment(inst *moldable.Instance, res *dualapprox.Result, order ListOrder) (*schedule.Schedule, error) {
	return ListGrahamWithAllotmentContext(context.Background(), inst, res, order) //lint:allow ctxflow legacy wrapper supplies the root context for callers without one
}

// ListGrahamWithAllotmentContext is ListGrahamWithAllotment with
// cancellation, checked inside the underlying list loop.
func ListGrahamWithAllotmentContext(ctx context.Context, inst *moldable.Instance, res *dualapprox.Result, order ListOrder) (*schedule.Schedule, error) {
	if len(res.Allotment) != inst.N() {
		return nil, fmt.Errorf("baselines: allotment has %d entries for %d tasks", len(res.Allotment), inst.N())
	}
	items := make([]listsched.Item, inst.N())
	for i := range inst.Tasks {
		k := res.Allotment[i]
		items[i] = listsched.Item{TaskID: inst.Tasks[i].ID, NProcs: k, Duration: inst.Tasks[i].Time(k)}
	}
	switch order {
	case ShelfOrder:
		rank := shelfRank(res)
		sort.SliceStable(items, func(a, b int) bool {
			ra, rb := rank[items[a].TaskID], rank[items[b].TaskID]
			if ra != rb {
				return ra < rb
			}
			return items[a].Duration > items[b].Duration
		})
	case WeightedLPT:
		weight := taskWeights(inst)
		sort.SliceStable(items, func(a, b int) bool {
			wa, wb := weight[items[a].TaskID], weight[items[b].TaskID]
			return wa*items[b].Duration > wb*items[a].Duration
		})
	case SmallestAreaFirst:
		sort.SliceStable(items, func(a, b int) bool {
			areaA := float64(items[a].NProcs) * items[a].Duration
			areaB := float64(items[b].NProcs) * items[b].Duration
			return areaA < areaB
		})
	default:
		return nil, fmt.Errorf("baselines: unknown list order %d", int(order))
	}
	return listsched.GrahamContext(ctx, inst.M, items)
}

// shelfRank maps task IDs to their group in the shelf order: 0 for the
// large shelf, 1 for the small shelf, 2 for the small sequential filler.
func shelfRank(res *dualapprox.Result) map[int]int {
	rank := make(map[int]int)
	for _, id := range res.Shelf1 {
		rank[id] = 0
	}
	for _, id := range res.Shelf2 {
		rank[id] = 1
	}
	for _, id := range res.Small {
		rank[id] = 2
	}
	return rank
}

func taskWeights(inst *moldable.Instance) map[int]float64 {
	w := make(map[int]float64, inst.N())
	for i := range inst.Tasks {
		w[inst.Tasks[i].ID] = inst.Tasks[i].Weight
	}
	return w
}

func procRange(from, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = from + i
	}
	return out
}
