package baselines

import (
	"math"
	"testing"
	"testing/quick"

	"bicriteria/internal/dualapprox"
	"bicriteria/internal/moldable"
	"bicriteria/internal/workload"
)

func testInstance() *moldable.Instance {
	return moldable.NewInstance(4, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{8, 4.5, 3.2, 2.5}},
		{ID: 1, Weight: 1, Times: []float64{6, 3.5, 2.6, 2.2}},
		{ID: 2, Weight: 3, Times: []float64{2, 1.2}},
		{ID: 3, Weight: 1, Times: []float64{1.5}},
		{ID: 4, Weight: 4, Times: []float64{10, 5.5, 4, 3.1}},
	})
}

func TestGangStructure(t *testing.T) {
	inst := testInstance()
	s, err := Gang(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	// Every task uses its maximal allocation and tasks never overlap in time.
	for i := range s.Assignments {
		a := &s.Assignments[i]
		task := inst.Task(a.TaskID)
		if a.NProcs != task.MaxProcs() {
			t.Fatalf("task %d uses %d processors, want %d", a.TaskID, a.NProcs, task.MaxProcs())
		}
	}
	// Makespan equals the sum of gang durations.
	want := 0.0
	for i := range inst.Tasks {
		want += inst.Tasks[i].Time(inst.Tasks[i].MaxProcs())
	}
	if math.Abs(s.Makespan()-want) > 1e-9 {
		t.Fatalf("makespan = %g, want %g", s.Makespan(), want)
	}
	// Smith order: the first task should have the best weight/time ratio.
	first := s.Assignments[0]
	for i := range s.Assignments {
		if s.Assignments[i].Start == 0 {
			first = s.Assignments[i]
		}
	}
	bestRatio := -1.0
	var bestID int
	for i := range inst.Tasks {
		task := &inst.Tasks[i]
		ratio := task.Weight / task.Time(task.MaxProcs())
		if ratio > bestRatio {
			bestRatio = ratio
			bestID = task.ID
		}
	}
	if first.TaskID != bestID {
		t.Fatalf("gang should start with the best weight/time task %d, got %d", bestID, first.TaskID)
	}
}

func TestGangOptimalForPerfectlyMoldable(t *testing.T) {
	// With linear speedup and equal weights, gang by increasing area is
	// optimal for the minsum (paper §3.1); check it beats sequential.
	tasks := make([]moldable.Task, 6)
	for i := range tasks {
		tasks[i] = moldable.PerfectlyMoldable(i, 1, float64(4+2*i), 8)
	}
	inst := moldable.NewInstance(8, tasks)
	g, err := Gang(inst)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Sequential(inst)
	if err != nil {
		t.Fatal(err)
	}
	if g.WeightedCompletion(inst) > seq.WeightedCompletion(inst) {
		t.Fatalf("gang (%g) should beat sequential (%g) on perfectly moldable tasks",
			g.WeightedCompletion(inst), seq.WeightedCompletion(inst))
	}
}

func TestSequentialStructure(t *testing.T) {
	inst := testInstance()
	s, err := Sequential(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	for i := range s.Assignments {
		if s.Assignments[i].NProcs != 1 {
			t.Fatalf("sequential baseline must use one processor per task")
		}
	}
	// LPT: the longest task (ID 4, p=10) starts at time 0.
	if a := s.Assignment(4); a.Start != 0 {
		t.Fatalf("longest task should start first, got start %g", a.Start)
	}
}

func TestListGrahamVariantsValidAndBounded(t *testing.T) {
	inst := testInstance()
	res, err := dualapprox.TwoShelf(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []ListOrder{ShelfOrder, WeightedLPT, SmallestAreaFirst} {
		s, err := ListGrahamWithAllotment(inst, res, order)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if err := s.Validate(inst, nil); err != nil {
			t.Fatalf("%v: invalid schedule: %v", order, err)
		}
		// List scheduling with the dual-approx allotment should stay close
		// to the lower bound on this easy instance.
		if s.Makespan() > 3*res.LowerBound {
			t.Fatalf("%v: makespan %g too far from lower bound %g", order, s.Makespan(), res.LowerBound)
		}
	}
	// The standalone entry point computes the allotment itself.
	s, err := ListGraham(inst, SmallestAreaFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(inst, nil); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
}

func TestListGrahamUnknownOrder(t *testing.T) {
	inst := testInstance()
	res, err := dualapprox.TwoShelf(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ListGrahamWithAllotment(inst, res, ListOrder(42)); err == nil {
		t.Fatalf("unknown order must fail")
	}
	if _, err := ListGrahamWithAllotment(inst, &dualapprox.Result{}, ShelfOrder); err == nil {
		t.Fatalf("mismatched allotment must fail")
	}
}

func TestBaselinesRejectInvalidInstances(t *testing.T) {
	bad := &moldable.Instance{M: 0}
	if _, err := Gang(bad); err == nil {
		t.Fatalf("Gang must validate the instance")
	}
	if _, err := Sequential(bad); err == nil {
		t.Fatalf("Sequential must validate the instance")
	}
	if _, err := ListGraham(bad, ShelfOrder); err == nil {
		t.Fatalf("ListGraham must validate the instance")
	}
}

func TestListOrderString(t *testing.T) {
	for _, o := range []ListOrder{ShelfOrder, WeightedLPT, SmallestAreaFirst, ListOrder(9)} {
		if o.String() == "" {
			t.Fatalf("empty name for order %d", int(o))
		}
	}
}

func TestPropertyAllBaselinesProduceValidSchedules(t *testing.T) {
	kinds := workload.Kinds()
	f := func(seed int64, kindRaw, nRaw uint8) bool {
		kind := kinds[int(kindRaw)%len(kinds)]
		n := 2 + int(nRaw)%25
		inst, err := workload.Generate(workload.Config{Kind: kind, M: 10, N: n, Seed: seed})
		if err != nil {
			return false
		}
		g, err := Gang(inst)
		if err != nil || g.Validate(inst, nil) != nil {
			return false
		}
		seq, err := Sequential(inst)
		if err != nil || seq.Validate(inst, nil) != nil {
			return false
		}
		res, err := dualapprox.TwoShelf(inst)
		if err != nil {
			return false
		}
		for _, order := range []ListOrder{ShelfOrder, WeightedLPT, SmallestAreaFirst} {
			s, err := ListGrahamWithAllotment(inst, res, order)
			if err != nil || s.Validate(inst, nil) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
