package workload

import (
	"fmt"
	"math/rand"

	"bicriteria/internal/moldable"
)

// Arrival is a generated job together with its submission time: the input of
// the on-line batch framework and of the cluster engine, without tying this
// package to either.
type Arrival struct {
	Task   moldable.Task
	Submit float64
}

// ArrivalConfig drives the generation of an on-line job stream: tasks come
// from one of the paper's workload families and submission times follow a
// Poisson process, optionally clustered into bursts (many users submitting
// at the same instant, the hardest case for batch schedulers).
type ArrivalConfig struct {
	// Workload generates the tasks (kind, machine size, number of jobs,
	// seed). The arrival process derives its own random stream from the
	// same seed, so a config identifies the full stream.
	Workload Config
	// Rate is the mean number of jobs submitted per time unit (lambda of
	// the Poisson process). It must be positive.
	Rate float64
	// BurstSize groups submissions: values above 1 make jobs arrive in
	// bursts of this size sharing one submission instant, with the
	// inter-burst gaps scaled so the long-run job rate stays Rate. Zero or
	// one keeps independent Poisson arrivals.
	BurstSize int
}

// arrivalSeedSalt decorrelates the arrival-time stream from the task stream
// while keeping both a function of the single user-facing seed.
const arrivalSeedSalt = 0x5DEECE66D

// Validate checks the configuration.
func (c ArrivalConfig) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Rate <= 0 {
		return fmt.Errorf("workload: arrival rate must be positive, got %g", c.Rate)
	}
	if c.BurstSize < 0 {
		return fmt.Errorf("workload: negative burst size %d", c.BurstSize)
	}
	return nil
}

// GenerateArrivals builds a deterministic on-line job stream: N tasks from
// the configured workload family, submitted at Poisson (or bursty Poisson)
// instants. Arrivals are returned in non-decreasing submission order.
func GenerateArrivals(cfg ArrivalConfig) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inst, err := Generate(cfg.Workload)
	if err != nil {
		return nil, err
	}
	burst := cfg.BurstSize
	if burst < 1 {
		burst = 1
	}
	r := rand.New(rand.NewSource(cfg.Workload.Seed ^ arrivalSeedSalt))
	arrivals := make([]Arrival, len(inst.Tasks))
	now := 0.0
	for i, t := range inst.Tasks {
		if i%burst == 0 {
			// One exponential gap per burst, scaled by the burst size so
			// the long-run job rate stays Rate.
			now += r.ExpFloat64() * float64(burst) / cfg.Rate
		}
		arrivals[i] = Arrival{Task: t, Submit: now}
	}
	return arrivals, nil
}
