package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bicriteria/internal/moldable"
)

// Arrival is a generated job together with its submission time: the input of
// the on-line batch framework and of the cluster engine, without tying this
// package to either.
type Arrival struct {
	Task   moldable.Task
	Submit float64
}

// Distribution selects a sampling law for inter-arrival gaps and runtime
// multipliers. The zero value keeps the default behaviour of the field it
// configures (exponential gaps, untouched runtimes).
type Distribution int

const (
	// DistDefault keeps the field's default: exponential inter-arrival gaps
	// (a Poisson process) or no runtime scaling.
	DistDefault Distribution = iota
	// DistExponential samples from an exponential law (memoryless, the
	// paper's implicit arrival model).
	DistExponential
	// DistLognormal samples from a lognormal law: moderate heavy tail,
	// classic model for bursty job submission gaps and runtimes.
	DistLognormal
	// DistWeibull samples from a Weibull law; shapes below 1 give the
	// heavy-tailed, high-variance traces observed on production clusters.
	DistWeibull
)

// String returns the CLI name of the distribution.
func (d Distribution) String() string {
	switch d {
	case DistDefault:
		return "default"
	case DistExponential:
		return "exponential"
	case DistLognormal:
		return "lognormal"
	case DistWeibull:
		return "weibull"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution converts a CLI string into a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "", "default":
		return DistDefault, nil
	case "exponential", "exp", "poisson":
		return DistExponential, nil
	case "lognormal", "lognorm":
		return DistLognormal, nil
	case "weibull":
		return DistWeibull, nil
	}
	return 0, fmt.Errorf("workload: unknown distribution %q (want exponential, lognormal or weibull)", s)
}

// Default shape parameters of the heavy-tailed laws: a lognormal sigma of
// 1.5 and a Weibull shape of 0.5 both give the strongly bursty traces the
// grid stress tests need, while keeping the mean finite and controlled.
const (
	defaultLognormalSigma = 1.5
	defaultWeibullShape   = 0.5
)

// ArrivalConfig drives the generation of an on-line job stream: tasks come
// from one of the paper's workload families and submission times follow a
// renewal process (Poisson by default, optionally heavy-tailed), optionally
// clustered into bursts (many users submitting at the same instant, the
// hardest case for batch schedulers).
type ArrivalConfig struct {
	// Workload generates the tasks (kind, machine size, number of jobs,
	// seed). The arrival process derives its own random stream from the
	// same seed, so a config identifies the full stream.
	Workload Config
	// Rate is the mean number of jobs submitted per time unit (lambda of
	// the arrival process). It must be positive. The inter-burst gaps are
	// scaled so the long-run job rate stays Rate whatever the distribution.
	Rate float64
	// BurstSize groups submissions: values above 1 make jobs arrive in
	// bursts of this size sharing one submission instant, with the
	// inter-burst gaps scaled so the long-run job rate stays Rate. Zero or
	// one keeps independent arrivals.
	BurstSize int
	// Interarrival selects the law of the inter-burst gaps. DistDefault and
	// DistExponential give the Poisson process; DistLognormal and
	// DistWeibull give heavy-tailed, bursty gap sequences with the same
	// mean.
	Interarrival Distribution
	// InterarrivalShape tunes the heavy-tailed gap laws: the sigma of the
	// lognormal or the shape k of the Weibull. Zero picks the defaults
	// (sigma 1.5, k 0.5). Ignored by the exponential law.
	InterarrivalShape float64
	// RuntimeTail, when not DistDefault, scales every task's whole
	// processing-time vector by a random factor of mean 1 drawn from the
	// law: heavy-tailed realized runtimes on top of the workload family.
	// Scaling the full vector preserves the moldable monotony invariants.
	RuntimeTail Distribution
	// RuntimeTailShape tunes the runtime law like InterarrivalShape.
	RuntimeTailShape float64
}

// Seed salts decorrelating the arrival-time and runtime-scaling streams
// from the task stream while keeping all three a function of the single
// user-facing seed: the task stream draws from Seed itself, the arrival
// instants from Seed ^ ArrivalSeedSalt and the runtime-tail factors from
// Seed ^ RuntimeSeedSalt. The salts are exported so the documented
// sub-seed derivation (see cmd/bicrit-gen and internal/scenario) names
// the exact streams one -seed flag controls.
const (
	ArrivalSeedSalt = 0x5DEECE66D
	RuntimeSeedSalt = 0x2545F4914F6CDD1D

	arrivalSeedSalt = ArrivalSeedSalt
	runtimeSeedSalt = RuntimeSeedSalt
)

// Validate checks the configuration.
func (c ArrivalConfig) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Rate <= 0 {
		return fmt.Errorf("workload: arrival rate must be positive, got %g", c.Rate)
	}
	if c.BurstSize < 0 {
		return fmt.Errorf("workload: negative burst size %d", c.BurstSize)
	}
	for _, d := range []struct {
		dist  Distribution
		shape float64
		what  string
	}{
		{c.Interarrival, c.InterarrivalShape, "interarrival"},
		{c.RuntimeTail, c.RuntimeTailShape, "runtime-tail"},
	} {
		switch d.dist {
		case DistDefault, DistExponential, DistLognormal, DistWeibull:
		default:
			return fmt.Errorf("workload: unknown %s distribution %d", d.what, int(d.dist))
		}
		if d.shape < 0 || math.IsNaN(d.shape) || math.IsInf(d.shape, 0) {
			return fmt.Errorf("workload: %s shape must be non-negative and finite, got %g", d.what, d.shape)
		}
	}
	return nil
}

// NewSampler returns a deterministic mean-1 sampler for the distribution,
// or nil for DistDefault: the law behind the arrival and runtime-tail
// streams, exported so other subsystems (the fault-event generator) can
// draw from exactly the same families. Scale the samples to choose a mean.
func NewSampler(dist Distribution, shape float64) func(r *rand.Rand) float64 {
	return sampler(dist, shape)
}

// sampler returns a deterministic mean-1 sampler for the distribution, or
// nil when the law is DistDefault and defaults to nothing (runtime case
// handles nil as "no scaling").
func sampler(dist Distribution, shape float64) func(r *rand.Rand) float64 {
	switch dist {
	case DistLognormal:
		sigma := shape
		if sigma == 0 {
			sigma = defaultLognormalSigma
		}
		// mean of exp(mu + sigma Z) is exp(mu + sigma^2/2) = 1 for
		// mu = -sigma^2/2.
		mu := -sigma * sigma / 2
		return func(r *rand.Rand) float64 {
			return math.Exp(mu + sigma*r.NormFloat64())
		}
	case DistWeibull:
		k := shape
		if k == 0 {
			k = defaultWeibullShape
		}
		// mean of scale * (-ln U)^(1/k) is scale * Gamma(1 + 1/k).
		scale := 1 / math.Gamma(1+1/k)
		return func(r *rand.Rand) float64 {
			u := 1 - r.Float64() // in (0, 1]
			return scale * math.Pow(-math.Log(u), 1/k)
		}
	case DistExponential:
		return func(r *rand.Rand) float64 { return r.ExpFloat64() }
	}
	return nil
}

// GenerateArrivals builds a deterministic on-line job stream: N tasks from
// the configured workload family, submitted at renewal-process instants
// (Poisson or heavy-tailed). Arrivals are returned in non-decreasing
// submission order.
func GenerateArrivals(cfg ArrivalConfig) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inst, err := Generate(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if scale := sampler(cfg.RuntimeTail, cfg.RuntimeTailShape); scale != nil {
		r := rand.New(rand.NewSource(cfg.Workload.Seed ^ runtimeSeedSalt))
		for i := range inst.Tasks {
			f := scale(r)
			if f < moldable.Eps {
				f = moldable.Eps
			}
			for k := range inst.Tasks[i].Times {
				inst.Tasks[i].Times[k] *= f
			}
		}
	}
	burst := cfg.BurstSize
	if burst < 1 {
		burst = 1
	}
	gap := sampler(cfg.Interarrival, cfg.InterarrivalShape)
	if gap == nil {
		gap = sampler(DistExponential, 0)
	}
	r := rand.New(rand.NewSource(cfg.Workload.Seed ^ arrivalSeedSalt))
	arrivals := make([]Arrival, len(inst.Tasks))
	now := 0.0
	for i, t := range inst.Tasks {
		if i%burst == 0 {
			// One mean-1 gap per burst, scaled by the burst size over the
			// rate so the long-run job rate stays Rate.
			now += gap(r) * float64(burst) / cfg.Rate
		}
		arrivals[i] = Arrival{Task: t, Submit: now}
	}
	return arrivals, nil
}
