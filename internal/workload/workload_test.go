package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"bicriteria/internal/moldable"
	"bicriteria/internal/stats"
)

func TestKindStringAndParse(t *testing.T) {
	for _, k := range Kinds() {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("round-trip of %v failed: %v %v", k, parsed, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Errorf("unknown kind must fail")
	}
	if Kind(42).String() == "" {
		t.Errorf("unknown kind should still print something")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Kind: HighlyParallel, M: 10, N: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Kind: HighlyParallel, M: 0, N: 5},
		{Kind: HighlyParallel, M: 10, N: 0},
		{Kind: Kind(99), M: 10, N: 5},
		{Kind: Mixed, M: 10, N: 5, SmallTaskRatio: 1.5},
		{Kind: Mixed, M: 10, N: 5, MinSeqTime: 5, MaxSeqTime: 1},
		{Kind: Mixed, M: 10, N: 5, MinWeight: 5, MaxWeight: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
	}
}

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		inst, err := Generate(Config{Kind: kind, M: 32, N: 50, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("%v: generated instance invalid: %v", kind, err)
		}
		if inst.N() != 50 || inst.M != 32 {
			t.Fatalf("%v: wrong shape %d tasks / %d procs", kind, inst.N(), inst.M)
		}
		if !inst.IsMonotonic() {
			t.Fatalf("%v: generated tasks must be monotonic", kind)
		}
		for i := range inst.Tasks {
			task := &inst.Tasks[i]
			if task.MaxProcs() != 32 {
				t.Fatalf("%v: task %d offers %d allocations, want 32", kind, task.ID, task.MaxProcs())
			}
			if task.Weight < 1-1e-9 || task.Weight > 10+1e-9 {
				t.Fatalf("%v: weight %g outside [1,10]", kind, task.Weight)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a, err := Generate(Config{Kind: Cirne, M: 16, N: 20, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Kind: Cirne, M: 16, N: 20, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Generate(Config{Kind: Cirne, M: 16, N: 20, Seed: 124})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		for k := range a.Tasks[i].Times {
			if a.Tasks[i].Times[k] != b.Tasks[i].Times[k] {
				t.Fatalf("same seed must give same instance")
			}
		}
	}
	same := true
	for i := range a.Tasks {
		for k := range a.Tasks[i].Times {
			if a.Tasks[i].Times[k] != c.Tasks[i].Times[k] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("different seeds should give different instances")
	}
}

func TestUniformSequentialTimesInRange(t *testing.T) {
	inst, err := Generate(Config{Kind: WeaklyParallel, M: 8, N: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Tasks {
		seq := inst.Tasks[i].SeqTime()
		if seq < 1-1e-9 || seq > 10+1e-9 {
			t.Fatalf("sequential time %g outside [1,10]", seq)
		}
	}
}

func TestParallelismDegreeDiffersBetweenKinds(t *testing.T) {
	weak, _ := Generate(Config{Kind: WeaklyParallel, M: 64, N: 200, Seed: 5})
	high, _ := Generate(Config{Kind: HighlyParallel, M: 64, N: 200, Seed: 5})
	avgSpeedup := func(inst *moldable.Instance) float64 {
		total := 0.0
		for i := range inst.Tasks {
			total += inst.Tasks[i].Speedup(inst.M)
		}
		return total / float64(inst.N())
	}
	sw, sh := avgSpeedup(weak), avgSpeedup(high)
	if sh < 4*sw {
		t.Fatalf("highly parallel tasks should have much larger speedups: weak=%.2f high=%.2f", sw, sh)
	}
	if sw > 3 {
		t.Fatalf("weakly parallel speedup suspiciously high: %.2f", sw)
	}
	if sh < 10 {
		t.Fatalf("highly parallel speedup suspiciously low: %.2f", sh)
	}
}

func TestMixedWorkloadHasTwoClasses(t *testing.T) {
	inst, err := Generate(Config{Kind: Mixed, M: 32, N: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	small, large := 0, 0
	for i := range inst.Tasks {
		if inst.Tasks[i].SeqTime() < 4 {
			small++
		} else {
			large++
		}
	}
	ratio := float64(small) / float64(small+large)
	if ratio < 0.55 || ratio > 0.85 {
		t.Fatalf("small-task ratio %.2f not near 0.7 (small=%d large=%d)", ratio, small, large)
	}
}

func TestDowneySpeedupProperties(t *testing.T) {
	cases := []struct{ a, sigma float64 }{
		{1, 0}, {4, 0.5}, {16, 1}, {50, 1.5}, {100, 2}, {7.3, 0.01},
	}
	for _, c := range cases {
		prev := 0.0
		for n := 1; n <= 128; n++ {
			s := DowneySpeedup(c.a, c.sigma, n)
			if s < 1-1e-9 || s > float64(n)+1e-9 {
				t.Fatalf("A=%g sigma=%g n=%d: speedup %g outside [1,n]", c.a, c.sigma, n, s)
			}
			if s < prev-1e-6 {
				t.Fatalf("A=%g sigma=%g n=%d: speedup decreasing (%g < %g)", c.a, c.sigma, n, s, prev)
			}
			if s > c.a*(1+1e-9)+1e-9 && c.a >= 1 {
				// Downey's model never exceeds the average parallelism A by
				// more than rounding.
				t.Fatalf("A=%g sigma=%g n=%d: speedup %g exceeds A", c.a, c.sigma, n, s)
			}
			prev = s
		}
	}
	if DowneySpeedup(4, 1, 0) != 0 {
		t.Fatalf("n=0 should return 0")
	}
	if s := DowneySpeedup(0.2, -1, 3); s < 1 {
		t.Fatalf("degenerate parameters should clamp, got %g", s)
	}
}

func TestEnforceMonotony(t *testing.T) {
	times := []float64{10, 12, 3, 2.9, 2.95}
	EnforceMonotony(times)
	for k := 2; k <= len(times); k++ {
		if times[k-1] > times[k-2]+1e-12 {
			t.Fatalf("times not non-increasing at %d: %v", k, times)
		}
		if float64(k)*times[k-1] < float64(k-1)*times[k-2]-1e-9 {
			t.Fatalf("work decreasing at %d: %v", k, times)
		}
	}
	if times[0] != 10 {
		t.Fatalf("sequential time must be preserved")
	}
}

func TestPropertyGeneratedTasksMonotonicAndPositive(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		kind := Kinds()[int(kindRaw)%len(Kinds())]
		inst, err := Generate(Config{Kind: kind, M: 1 + int(seed%31+31)%31 + 1, N: 10, Seed: seed})
		if err != nil {
			return false
		}
		if !inst.IsMonotonic() {
			return false
		}
		for i := range inst.Tasks {
			for _, p := range inst.Tasks[i].Times {
				if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	inst, err := Generate(Config{Kind: Mixed, M: 16, N: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inst.Tasks[0].Name = "first"
	var buf bytes.Buffer
	if err := WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != inst.M || back.N() != inst.N() {
		t.Fatalf("round-trip changed shape")
	}
	if back.Tasks[0].Name != "first" {
		t.Fatalf("round-trip lost task name")
	}
	for i := range inst.Tasks {
		if back.Tasks[i].Weight != inst.Tasks[i].Weight {
			t.Fatalf("round-trip changed weight of task %d", i)
		}
		for k := range inst.Tasks[i].Times {
			if back.Tasks[i].Times[k] != inst.Tasks[i].Times[k] {
				t.Fatalf("round-trip changed time of task %d", i)
			}
		}
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	if _, err := ReadInstance(bytes.NewBufferString("not json")); err == nil {
		t.Fatalf("garbage must fail")
	}
	if _, err := ReadInstance(bytes.NewBufferString(`{"version":99,"processors":2,"tasks":[]}`)); err == nil {
		t.Fatalf("wrong version must fail")
	}
	if _, err := ReadInstance(bytes.NewBufferString(`{"version":1,"processors":2,"tasks":[]}`)); err == nil {
		t.Fatalf("empty instance must fail validation")
	}
}

func TestSaveAndLoadInstance(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/workload.json"
	inst, err := Generate(Config{Kind: HighlyParallel, M: 8, N: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveInstance(path, inst); err != nil {
		t.Fatal(err)
	}
	back, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 5 || back.M != 8 {
		t.Fatalf("loaded instance has wrong shape")
	}
	if _, err := LoadInstance(dir + "/missing.json"); err == nil {
		t.Fatalf("missing file must fail")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Distribution
	}{
		{"", DistDefault}, {"default", DistDefault},
		{"exponential", DistExponential}, {"exp", DistExponential}, {"poisson", DistExponential},
		{"lognormal", DistLognormal}, {"weibull", DistWeibull},
	} {
		got, err := ParseDistribution(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseDistribution(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseDistribution("zipf"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestHeavyTailedArrivalsKeepMeanRateAndOrder(t *testing.T) {
	const n, rate = 4000, 2.0
	for _, dist := range []Distribution{DistExponential, DistLognormal, DistWeibull} {
		arrivals, err := GenerateArrivals(ArrivalConfig{
			Workload:     Config{Kind: WeaklyParallel, M: 4, N: n, Seed: 12},
			Rate:         rate,
			Interarrival: dist,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i].Submit < arrivals[i-1].Submit {
				t.Fatalf("%v: arrivals out of order at %d", dist, i)
			}
		}
		// The long-run rate must stay Rate whatever the gap law; heavy
		// tails need a loose tolerance.
		span := arrivals[len(arrivals)-1].Submit
		got := float64(n) / span
		if got < rate/2 || got > rate*2 {
			t.Fatalf("%v: realized rate %g too far from %g (span %g)", dist, got, rate, span)
		}
	}
}

func TestHeavyTailedArrivalsAreBurstierThanPoisson(t *testing.T) {
	gaps := func(dist Distribution) []float64 {
		arrivals, err := GenerateArrivals(ArrivalConfig{
			Workload:     Config{Kind: WeaklyParallel, M: 4, N: 3000, Seed: 5},
			Rate:         1,
			Interarrival: dist,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, len(arrivals)-1)
		for i := 1; i < len(arrivals); i++ {
			out = append(out, arrivals[i].Submit-arrivals[i-1].Submit)
		}
		return out
	}
	cv2 := func(values []float64) float64 {
		s := stats.Summarize(values)
		return s.StdDev * s.StdDev / (s.Mean * s.Mean)
	}
	poisson := cv2(gaps(DistExponential))
	for _, dist := range []Distribution{DistLognormal, DistWeibull} {
		if heavy := cv2(gaps(dist)); heavy < poisson {
			t.Fatalf("%v gaps have squared CV %g, not burstier than Poisson's %g", dist, heavy, poisson)
		}
	}
}

func TestRuntimeTailScalesTasksAndPreservesValidity(t *testing.T) {
	base := ArrivalConfig{
		Workload: Config{Kind: Mixed, M: 16, N: 300, Seed: 9},
		Rate:     2,
	}
	plain, err := GenerateArrivals(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []Distribution{DistLognormal, DistWeibull} {
		cfg := base
		cfg.RuntimeTail = dist
		tailed, err := GenerateArrivals(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tailed) != len(plain) {
			t.Fatalf("%v: runtime scaling changed the job count", dist)
		}
		ratioSum, changed := 0.0, 0
		for i := range tailed {
			if err := tailed[i].Task.Validate(); err != nil {
				t.Fatalf("%v: scaled task invalid: %v", dist, err)
			}
			if !tailed[i].Task.IsMonotonic() {
				t.Fatalf("%v: scaling broke monotony of task %d", dist, i)
			}
			// Submission instants are untouched by runtime scaling.
			if tailed[i].Submit != plain[i].Submit {
				t.Fatalf("%v: runtime scaling moved submission %d", dist, i)
			}
			ratio := tailed[i].Task.SeqTime() / plain[i].Task.SeqTime()
			ratioSum += ratio
			if ratio != 1 {
				changed++
			}
		}
		if changed == 0 {
			t.Fatalf("%v: runtime tail scaled nothing", dist)
		}
		// The multiplier has mean 1; with 300 samples of a heavy-tailed
		// law the empirical mean stays within a loose band.
		if mean := ratioSum / float64(len(tailed)); mean < 0.5 || mean > 2 {
			t.Fatalf("%v: mean runtime multiplier %g too far from 1", dist, mean)
		}
	}
}

func TestArrivalConfigValidatesDistributions(t *testing.T) {
	base := ArrivalConfig{Workload: Config{Kind: Mixed, M: 8, N: 4, Seed: 1}, Rate: 1}
	bad := base
	bad.Interarrival = Distribution(99)
	if _, err := GenerateArrivals(bad); err == nil {
		t.Fatal("unknown interarrival distribution accepted")
	}
	bad = base
	bad.RuntimeTail = Distribution(-1)
	if _, err := GenerateArrivals(bad); err == nil {
		t.Fatal("unknown runtime distribution accepted")
	}
	bad = base
	bad.InterarrivalShape = -0.5
	if _, err := GenerateArrivals(bad); err == nil {
		t.Fatal("negative shape accepted")
	}
	bad = base
	bad.RuntimeTailShape = math.Inf(1)
	if _, err := GenerateArrivals(bad); err == nil {
		t.Fatal("infinite shape accepted")
	}
}

func TestArrivalsRoundTrip(t *testing.T) {
	arrivals, err := GenerateArrivals(ArrivalConfig{
		Workload:     Config{Kind: Mixed, M: 16, N: 25, Seed: 7},
		Rate:         3,
		BurstSize:    4,
		Interarrival: DistLognormal,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "arrivals.json")
	if err := SaveArrivals(path, 16, arrivals); err != nil {
		t.Fatal(err)
	}
	loaded, m, err := LoadArrivals(path)
	if err != nil {
		t.Fatal(err)
	}
	if m != 16 {
		t.Fatalf("machine size %d, want 16", m)
	}
	if !reflect.DeepEqual(arrivals, loaded) {
		t.Fatalf("arrival stream did not round-trip:\nwrote %+v\nread  %+v", arrivals[:2], loaded[:2])
	}
}

func TestReadArrivalsRejectsBadStreams(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json",
		"bad version":     `{"version": 99, "arrivals": []}`,
		"negative submit": `{"version": 1, "arrivals": [{"submit": -1, "id": 1, "weight": 1, "times": [2]}]}`,
		"order break":     `{"version": 1, "arrivals": [{"submit": 5, "id": 1, "weight": 1, "times": [2]}, {"submit": 4, "id": 2, "weight": 1, "times": [2]}]}`,
		"invalid task":    `{"version": 1, "arrivals": [{"submit": 0, "id": 1, "weight": 1, "times": []}]}`,
	}
	for name, body := range cases {
		if _, _, err := ReadArrivals(strings.NewReader(body)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}
