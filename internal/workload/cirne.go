package workload

import (
	"math"
	"math/rand"
)

// This file implements the Cirne–Berman style moldable-job model used for
// Figure 6 of the paper.
//
// Substitution note (see DESIGN.md): the original model of Cirne & Berman
// ("A model for moldable supercomputer jobs", IPDPS 2001) is fitted on a
// user survey we do not have. We reproduce its structure: the sequential
// time is drawn from the paper's uniform(1,10) model (as stated in §4.1),
// and the shape of the speedup curve follows Downey's parallel speedup
// model, which is the model Cirne–Berman build on, with
//
//   - average parallelism A drawn log-uniformly in [1, m] (jobs with small A
//     barely benefit from more processors, jobs with large A scale almost
//     linearly), and
//   - curve parameter sigma drawn uniformly in [0, 2].
//
// This yields a heterogeneous mix of scalability profiles, which is the
// property the experiment relies on.

// DowneySpeedup returns Downey's speedup S(n) for a job with average
// parallelism a >= 1 and curvature sigma >= 0 on n >= 1 processors.
//
// The model is piecewise:
//
//	sigma <= 1:
//	  S(n) = a*n / (a + sigma*(n-1)/2)              for 1 <= n <= a
//	  S(n) = a*n / (sigma*(a-1/2) + n*(1-sigma/2))  for a <= n <= 2a-1
//	  S(n) = a                                      for n >= 2a-1
//	sigma >= 1:
//	  S(n) = n*a*(sigma+1) / (sigma*(n+a-1) + a)    for 1 <= n <= a+a*sigma-sigma
//	  S(n) = a                                      otherwise
func DowneySpeedup(a, sigma float64, n int) float64 {
	if n < 1 {
		return 0
	}
	if a < 1 {
		a = 1
	}
	if sigma < 0 {
		sigma = 0
	}
	nf := float64(n)
	var s float64
	if sigma <= 1 {
		switch {
		case nf <= a:
			s = a * nf / (a + sigma*(nf-1)/2)
		case nf <= 2*a-1:
			s = a * nf / (sigma*(a-0.5) + nf*(1-sigma/2))
		default:
			s = a
		}
	} else {
		if nf <= a+a*sigma-sigma {
			s = nf * a * (sigma + 1) / (sigma*(nf+a-1) + a)
		} else {
			s = a
		}
	}
	// A speedup can never exceed the number of processors nor drop below 1.
	if s > nf {
		s = nf
	}
	if s < 1 {
		s = 1
	}
	return s
}

// cirneTimes derives the moldable processing-time vector of a task from its
// sequential time using a Downey speedup curve with randomly drawn
// parameters. Monotony is enforced to absorb floating-point noise and the
// plateaus of the model.
func cirneTimes(r *rand.Rand, seq float64, m int) []float64 {
	// Average parallelism: log-uniform over [1, m].
	logA := r.Float64() * math.Log(float64(m))
	a := math.Exp(logA)
	sigma := 2 * r.Float64()
	times := make([]float64, m)
	for k := 1; k <= m; k++ {
		times[k-1] = seq / DowneySpeedup(a, sigma, k)
	}
	EnforceMonotony(times)
	return times
}
