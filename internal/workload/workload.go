// Package workload generates synthetic moldable-task instances following
// the experimental setting of section 4.1 of the paper:
//
//   - sequential processing times drawn either uniformly in [1,10] or from a
//     mixed model (70% "small" tasks, gaussian mean 1 / stddev 0.5, 30%
//     "large" tasks, gaussian mean 10 / stddev 5);
//
//   - moldability obtained either from the recurrence
//     p(j) = p(j-1) * (X + j) / (1 + j) with X drawn from a gaussian
//     truncated to [0,1] (mean 0.9 for highly parallel tasks, mean 0.1 for
//     weakly parallel tasks), or from a Cirne–Berman style model built on
//     Downey's speedup function;
//
//   - task weights (priorities) drawn uniformly in [1,10].
//
// Each generator is deterministic for a given seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bicriteria/internal/moldable"
)

// Kind identifies one of the four workload families evaluated by the paper.
type Kind int

const (
	// WeaklyParallel: uniform sequential times, weakly parallel recurrence
	// (Figure 3 of the paper).
	WeaklyParallel Kind = iota
	// HighlyParallel: uniform sequential times, highly parallel recurrence
	// (Figure 4).
	HighlyParallel
	// Mixed: 70% small weakly-parallel tasks, 30% large highly-parallel
	// tasks (Figure 5).
	Mixed
	// Cirne: Cirne–Berman moldable-job model with uniform sequential times
	// (Figure 6).
	Cirne
)

// String returns the workload family name used in figures and CLI flags.
func (k Kind) String() string {
	switch k {
	case WeaklyParallel:
		return "weakly-parallel"
	case HighlyParallel:
		return "highly-parallel"
	case Mixed:
		return "mixed"
	case Cirne:
		return "cirne"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a CLI string into a workload Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "weakly-parallel", "weakly", "weak":
		return WeaklyParallel, nil
	case "highly-parallel", "highly", "high":
		return HighlyParallel, nil
	case "mixed":
		return Mixed, nil
	case "cirne", "cirne-berman":
		return Cirne, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q (want weakly-parallel, highly-parallel, mixed or cirne)", s)
}

// Kinds lists all workload families in figure order.
func Kinds() []Kind { return []Kind{WeaklyParallel, HighlyParallel, Mixed, Cirne} }

// Config drives instance generation.
type Config struct {
	// Kind selects the workload family.
	Kind Kind
	// M is the number of processors of the target cluster (the paper uses
	// 200).
	M int
	// N is the number of tasks (the paper sweeps 25..400).
	N int
	// Seed makes the generation deterministic.
	Seed int64

	// MinSeqTime / MaxSeqTime bound the uniform sequential-time model
	// (default 1 and 10 as in the paper).
	MinSeqTime float64
	MaxSeqTime float64
	// SmallTaskRatio is the proportion of small tasks in the mixed model
	// (default 0.7).
	SmallTaskRatio float64
	// MinWeight / MaxWeight bound the uniform weight (priority) model
	// (default 1 and 10).
	MinWeight float64
	MaxWeight float64
}

// withDefaults fills unset fields with the paper's values.
func (c Config) withDefaults() Config {
	if c.MinSeqTime == 0 && c.MaxSeqTime == 0 {
		c.MinSeqTime, c.MaxSeqTime = 1, 10
	}
	if c.SmallTaskRatio == 0 {
		c.SmallTaskRatio = 0.7
	}
	if c.MinWeight == 0 && c.MaxWeight == 0 {
		c.MinWeight, c.MaxWeight = 1, 10
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.M < 1 {
		return fmt.Errorf("workload: M must be >= 1, got %d", c.M)
	}
	if c.N < 1 {
		return fmt.Errorf("workload: N must be >= 1, got %d", c.N)
	}
	if c.MinSeqTime <= 0 || c.MaxSeqTime < c.MinSeqTime {
		return fmt.Errorf("workload: invalid sequential time range [%g,%g]", c.MinSeqTime, c.MaxSeqTime)
	}
	if c.SmallTaskRatio < 0 || c.SmallTaskRatio > 1 {
		return fmt.Errorf("workload: SmallTaskRatio must be in [0,1], got %g", c.SmallTaskRatio)
	}
	if c.MinWeight < 0 || c.MaxWeight < c.MinWeight {
		return fmt.Errorf("workload: invalid weight range [%g,%g]", c.MinWeight, c.MaxWeight)
	}
	switch c.Kind {
	case WeaklyParallel, HighlyParallel, Mixed, Cirne:
	default:
		return fmt.Errorf("workload: unknown kind %d", int(c.Kind))
	}
	return nil
}

// Generate builds a random instance according to the configuration.
func Generate(cfg Config) (*moldable.Instance, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	tasks := make([]moldable.Task, cfg.N)
	for i := 0; i < cfg.N; i++ {
		tasks[i] = generateTask(r, cfg, i)
	}
	return moldable.NewInstance(cfg.M, tasks), nil
}

// generateTask draws one task according to the workload family.
func generateTask(r *rand.Rand, cfg Config, id int) moldable.Task {
	weight := uniform(r, cfg.MinWeight, cfg.MaxWeight)
	var times []float64
	switch cfg.Kind {
	case WeaklyParallel:
		seq := uniform(r, cfg.MinSeqTime, cfg.MaxSeqTime)
		times = recurrenceTimes(r, seq, cfg.M, weaklyParallelMean)
	case HighlyParallel:
		seq := uniform(r, cfg.MinSeqTime, cfg.MaxSeqTime)
		times = recurrenceTimes(r, seq, cfg.M, highlyParallelMean)
	case Mixed:
		if r.Float64() < cfg.SmallTaskRatio {
			seq := truncatedGaussian(r, smallTaskMean, smallTaskStdDev, minPositiveTime, math.Inf(1))
			times = recurrenceTimes(r, seq, cfg.M, weaklyParallelMean)
		} else {
			seq := truncatedGaussian(r, largeTaskMean, largeTaskStdDev, minPositiveTime, math.Inf(1))
			times = recurrenceTimes(r, seq, cfg.M, highlyParallelMean)
		}
	case Cirne:
		seq := uniform(r, cfg.MinSeqTime, cfg.MaxSeqTime)
		times = cirneTimes(r, seq, cfg.M)
	}
	return moldable.Task{ID: id, Weight: weight, Times: times}
}

// Constants of the paper's generation models.
const (
	highlyParallelMean = 0.9
	weaklyParallelMean = 0.1
	parallelismStdDev  = 0.2
	smallTaskMean      = 1.0
	smallTaskStdDev    = 0.5
	largeTaskMean      = 10.0
	largeTaskStdDev    = 5.0
	// minPositiveTime keeps gaussian sequential times strictly positive.
	minPositiveTime = 0.05
)

// recurrenceTimes builds the moldable time vector from the sequential time
// using the paper's recurrence, with the parallelism parameter X drawn per
// step from a gaussian with the given mean (0.9 highly parallel / 0.1 weakly
// parallel) and standard deviation 0.2, truncated to [0, 1].
//
// Note on the formula: the paper prints p(j) = p(j-1)*(X+j)/(1+j) and states
// that a mean of 0.9 yields quasi-linear speedups. As printed, X close to 1
// makes the ratio close to 1 (no speedup at all), i.e. the formula and the
// text disagree on the orientation of X. We follow the *behaviour* described
// by the text (0.9 => quasi-linear speedup, 0.1 => speedup close to 1),
// which means using the factor ((1-X)+j)/(1+j). The recurrence produces
// monotonic tasks by construction (non-increasing times, non-decreasing
// work) because the factor stays within [j/(1+j), 1].
func recurrenceTimes(r *rand.Rand, seq float64, m int, mean float64) []float64 {
	times := make([]float64, m)
	times[0] = seq
	for j := 2; j <= m; j++ {
		x := truncatedGaussian(r, mean, parallelismStdDev, 0, 1)
		times[j-1] = times[j-2] * ((1 - x) + float64(j)) / (1 + float64(j))
	}
	return times
}

// uniform draws uniformly from [lo, hi].
func uniform(r *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// truncatedGaussian draws from N(mean, stddev) and redraws until the value
// falls inside [lo, hi], as prescribed by the paper ("any random value
// smaller than 0 and larger than 1 are ignored and recomputed").
func truncatedGaussian(r *rand.Rand, mean, stddev, lo, hi float64) float64 {
	for i := 0; i < 10000; i++ {
		v := mean + stddev*r.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	// Practically unreachable; clamp as a safe fallback.
	return math.Min(math.Max(mean, lo), hi)
}

// EnforceMonotony clamps a processing-time vector so that times are
// non-increasing and work is non-decreasing with the allocation, preserving
// the sequential time. It is used for models (such as speedup-curve based
// ones) where floating-point noise could break strict monotony.
func EnforceMonotony(times []float64) {
	for k := 2; k <= len(times); k++ {
		lo := times[k-2] * float64(k-1) / float64(k) // work non-decreasing
		hi := times[k-2]                             // time non-increasing
		if times[k-1] > hi {
			times[k-1] = hi
		}
		if times[k-1] < lo {
			times[k-1] = lo
		}
	}
}
