package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bicriteria/internal/moldable"
)

// fileFormat is the on-disk JSON representation of an instance. It is kept
// separate from the in-memory types so that the public model can evolve
// without breaking stored workloads.
type fileFormat struct {
	// Version of the format, currently 1.
	Version int        `json:"version"`
	M       int        `json:"processors"`
	Tasks   []fileTask `json:"tasks"`
}

type fileTask struct {
	ID     int       `json:"id"`
	Name   string    `json:"name,omitempty"`
	Weight float64   `json:"weight"`
	Times  []float64 `json:"times"`
}

const formatVersion = 1

// WriteInstance serializes an instance as JSON.
func WriteInstance(w io.Writer, inst *moldable.Instance) error {
	ff := fileFormat{Version: formatVersion, M: inst.M, Tasks: make([]fileTask, len(inst.Tasks))}
	for i, t := range inst.Tasks {
		ff.Tasks[i] = fileTask{ID: t.ID, Name: t.Name, Weight: t.Weight, Times: t.Times}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// ReadInstance parses an instance previously written by WriteInstance and
// validates it.
func ReadInstance(r io.Reader) (*moldable.Instance, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("workload: cannot decode instance: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("workload: unsupported format version %d (want %d)", ff.Version, formatVersion)
	}
	tasks := make([]moldable.Task, len(ff.Tasks))
	for i, t := range ff.Tasks {
		tasks[i] = moldable.Task{ID: t.ID, Name: t.Name, Weight: t.Weight, Times: t.Times}
	}
	inst := moldable.NewInstance(ff.M, tasks)
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// SaveInstance writes an instance to a file path.
func SaveInstance(path string, inst *moldable.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteInstance(f, inst); err != nil {
		return err
	}
	return f.Close()
}

// LoadInstance reads an instance from a file path.
func LoadInstance(path string) (*moldable.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInstance(f)
}
