package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bicriteria/internal/moldable"
)

// fileFormat is the on-disk JSON representation of an instance. It is kept
// separate from the in-memory types so that the public model can evolve
// without breaking stored workloads.
type fileFormat struct {
	// Version of the format, currently 1.
	Version int        `json:"version"`
	M       int        `json:"processors"`
	Tasks   []fileTask `json:"tasks"`
}

type fileTask struct {
	ID     int       `json:"id"`
	Name   string    `json:"name,omitempty"`
	Weight float64   `json:"weight"`
	Times  []float64 `json:"times"`
}

const formatVersion = 1

// WriteInstance serializes an instance as JSON.
func WriteInstance(w io.Writer, inst *moldable.Instance) error {
	ff := fileFormat{Version: formatVersion, M: inst.M, Tasks: make([]fileTask, len(inst.Tasks))}
	for i, t := range inst.Tasks {
		ff.Tasks[i] = fileTask{ID: t.ID, Name: t.Name, Weight: t.Weight, Times: t.Times}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// ReadInstance parses an instance previously written by WriteInstance and
// validates it.
func ReadInstance(r io.Reader) (*moldable.Instance, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("workload: cannot decode instance: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("workload: unsupported format version %d (want %d)", ff.Version, formatVersion)
	}
	tasks := make([]moldable.Task, len(ff.Tasks))
	for i, t := range ff.Tasks {
		tasks[i] = moldable.Task{ID: t.ID, Name: t.Name, Weight: t.Weight, Times: t.Times}
	}
	inst := moldable.NewInstance(ff.M, tasks)
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// arrivalsFormat is the on-disk JSON representation of an on-line job
// stream: an SWF-style trace (every job carries its submission time) kept
// moldable (the full processing-time vector survives, which plain SWF
// records cannot express). Generated streams round-trip through it so one
// stream can feed the replay CLIs and the live load generator alike.
type arrivalsFormat struct {
	// Version of the format, currently 1.
	Version int `json:"version"`
	// M is the machine size the tasks were generated for (informational:
	// time vectors may be truncated further by smaller clusters).
	M        int           `json:"processors"`
	Arrivals []fileArrival `json:"arrivals"`
}

type fileArrival struct {
	Submit float64 `json:"submit"`
	fileTask
}

const arrivalsVersion = 1

// WriteArrivals serializes an arrival stream as JSON. M records the
// machine size the stream was generated for.
func WriteArrivals(w io.Writer, m int, arrivals []Arrival) error {
	ff := arrivalsFormat{Version: arrivalsVersion, M: m, Arrivals: make([]fileArrival, len(arrivals))}
	for i, a := range arrivals {
		t := a.Task
		ff.Arrivals[i] = fileArrival{
			Submit:   a.Submit,
			fileTask: fileTask{ID: t.ID, Name: t.Name, Weight: t.Weight, Times: t.Times},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// ReadArrivals parses a stream previously written by WriteArrivals and
// validates it: every task must be well-formed and the submission times
// non-negative and non-decreasing. It returns the stream and the recorded
// machine size.
func ReadArrivals(r io.Reader) ([]Arrival, int, error) {
	var ff arrivalsFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, 0, fmt.Errorf("workload: cannot decode arrivals: %w", err)
	}
	if ff.Version != arrivalsVersion {
		return nil, 0, fmt.Errorf("workload: unsupported arrivals format version %d (want %d)", ff.Version, arrivalsVersion)
	}
	arrivals := make([]Arrival, len(ff.Arrivals))
	last := 0.0
	for i, a := range ff.Arrivals {
		task := moldable.Task{ID: a.ID, Name: a.Name, Weight: a.Weight, Times: a.Times}
		if err := task.Validate(); err != nil {
			return nil, 0, fmt.Errorf("workload: arrival %d: %w", i, err)
		}
		if a.Submit < 0 {
			return nil, 0, fmt.Errorf("workload: arrival %d has negative submission time %g", i, a.Submit)
		}
		if a.Submit < last {
			return nil, 0, fmt.Errorf("workload: arrival %d breaks submission order (%g after %g)", i, a.Submit, last)
		}
		last = a.Submit
		arrivals[i] = Arrival{Task: task, Submit: a.Submit}
	}
	return arrivals, ff.M, nil
}

// SaveArrivals writes an arrival stream to a file path.
func SaveArrivals(path string, m int, arrivals []Arrival) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteArrivals(f, m, arrivals); err != nil {
		return err
	}
	return f.Close()
}

// LoadArrivals reads an arrival stream from a file path.
func LoadArrivals(path string) ([]Arrival, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadArrivals(f)
}

// SaveInstance writes an instance to a file path.
func SaveInstance(path string, inst *moldable.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteInstance(f, inst); err != nil {
		return err
	}
	return f.Close()
}

// LoadInstance reads an instance from a file path.
func LoadInstance(path string) (*moldable.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInstance(f)
}
