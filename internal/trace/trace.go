// Package trace reads and writes job traces in a simplified Standard
// Workload Format (SWF), the text format of the Parallel Workloads Archive
// commonly used by the cluster-scheduling community (and by reference [18]
// of the paper for the Icluster workloads). It lets the library ingest real
// submission logs as on-line job streams and export simulated runs for
// external analysis.
//
// Each non-comment line has the 18 standard SWF fields; this package reads
// and writes the subset it needs (job id, submit, wait, run time, allocated
// processors, requested processors, requested time, status) and preserves
// -1 for unknown values as the format prescribes. Comment lines start with
// ';'.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
	"bicriteria/internal/workload"
)

// Record is one job of an SWF trace (times in the trace's unit, usually
// seconds; this library treats them as its abstract time unit).
type Record struct {
	// JobID is the job number (first SWF field).
	JobID int
	// Submit is the submission (release) time.
	Submit float64
	// Wait is the time spent in the queue (-1 when unknown).
	Wait float64
	// Run is the execution time (-1 when unknown).
	Run float64
	// Procs is the number of allocated processors (-1 when unknown).
	Procs int
	// ReqProcs is the number of requested processors (-1 when unknown).
	ReqProcs int
	// ReqTime is the requested (estimated) run time (-1 when unknown).
	ReqTime float64
	// Status is the SWF completion status (1 = completed).
	Status int
}

// Write emits the records as an SWF fragment with a small header.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; SWF trace written by the bicriteria scheduling library")
	fmt.Fprintln(bw, "; fields: job submit wait run procs cpu mem reqprocs reqtime reqmem status uid gid exe queue partition prev think")
	for _, r := range records {
		fmt.Fprintf(bw, "%d %s %s %s %d -1 -1 %d %s -1 %d -1 -1 -1 -1 -1 -1 -1\n",
			r.JobID,
			formatTime(r.Submit), formatTime(r.Wait), formatTime(r.Run),
			r.Procs, r.ReqProcs, formatTime(r.ReqTime), r.Status)
	}
	return bw.Flush()
}

func formatTime(v float64) string {
	if v < 0 {
		return "-1"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// Parse reads an SWF fragment, skipping comments and blank lines.
func Parse(r io.Reader) ([]Record, error) {
	var out []Record
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 11 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want at least 11", line, len(fields))
		}
		rec, err := parseRecord(fields)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseRecord(fields []string) (Record, error) {
	var rec Record
	var err error
	if rec.JobID, err = strconv.Atoi(fields[0]); err != nil {
		return rec, fmt.Errorf("bad job id %q", fields[0])
	}
	floatField := func(idx int) (float64, error) {
		v, err := strconv.ParseFloat(fields[idx], 64)
		if err != nil {
			return 0, fmt.Errorf("bad field %d %q", idx, fields[idx])
		}
		return v, nil
	}
	intField := func(idx int) (int, error) {
		v, err := strconv.Atoi(fields[idx])
		if err != nil {
			return 0, fmt.Errorf("bad field %d %q", idx, fields[idx])
		}
		return v, nil
	}
	if rec.Submit, err = floatField(1); err != nil {
		return rec, err
	}
	if rec.Wait, err = floatField(2); err != nil {
		return rec, err
	}
	if rec.Run, err = floatField(3); err != nil {
		return rec, err
	}
	if rec.Procs, err = intField(4); err != nil {
		return rec, err
	}
	if rec.ReqProcs, err = intField(7); err != nil {
		return rec, err
	}
	if rec.ReqTime, err = floatField(8); err != nil {
		return rec, err
	}
	if rec.Status, err = intField(10); err != nil {
		return rec, err
	}
	return rec, nil
}

// FromSchedule exports a planned or simulated run as SWF records: the
// submission time comes from the release map (0 when absent), the wait time
// is start minus submission, the run time and allocation come from the
// assignment.
func FromSchedule(inst *moldable.Instance, sched *schedule.Schedule, releases map[int]float64) []Record {
	records := make([]Record, 0, len(sched.Assignments))
	for i := range sched.Assignments {
		a := &sched.Assignments[i]
		submit := releases[a.TaskID]
		records = append(records, Record{
			JobID:    a.TaskID,
			Submit:   submit,
			Wait:     a.Start - submit,
			Run:      a.Duration,
			Procs:    a.NProcs,
			ReqProcs: a.NProcs,
			ReqTime:  a.Duration,
			Status:   1,
		})
	}
	sort.SliceStable(records, func(a, b int) bool {
		if records[a].Submit != records[b].Submit {
			return records[a].Submit < records[b].Submit
		}
		return records[a].JobID < records[b].JobID
	})
	return records
}

// MoldableOptions drives the reconstruction of moldable tasks from the
// rigid jobs of a trace.
type MoldableOptions struct {
	// Sigma is the Downey curvature parameter used for every reconstructed
	// job (default 1).
	Sigma float64
	// DefaultWeight is the priority given to every job (default 1).
	DefaultWeight float64
}

// ToTasks reconstructs moldable tasks from rigid trace records, following
// the Cirne–Berman idea of re-moldabilizing rigid traces: each job is given
// a Downey speedup curve whose average parallelism equals its recorded
// allocation, calibrated so that the reconstructed processing time at the
// recorded allocation equals the recorded run time. Records without a
// positive run time or allocation are skipped.
func ToTasks(records []Record, m int, opts *MoldableOptions) []moldable.Task {
	sigma := 1.0
	weight := 1.0
	if opts != nil {
		if opts.Sigma > 0 {
			sigma = opts.Sigma
		}
		if opts.DefaultWeight > 0 {
			weight = opts.DefaultWeight
		}
	}
	var tasks []moldable.Task
	for _, r := range records {
		if r.Run <= 0 {
			continue
		}
		procs := r.Procs
		if procs <= 0 {
			procs = r.ReqProcs
		}
		if procs <= 0 {
			continue
		}
		if procs > m {
			procs = m
		}
		a := float64(procs)
		// Calibrate the sequential time so that p(procs) = Run.
		seq := r.Run * workload.DowneySpeedup(a, sigma, procs)
		times := make([]float64, m)
		for k := 1; k <= m; k++ {
			times[k-1] = seq / workload.DowneySpeedup(a, sigma, k)
		}
		workload.EnforceMonotony(times)
		tasks = append(tasks, moldable.Task{ID: r.JobID, Weight: weight, Times: times})
	}
	return tasks
}

// Releases extracts the submission times of the records, keyed by job ID.
func Releases(records []Record) map[int]float64 {
	out := make(map[int]float64, len(records))
	for _, r := range records {
		submit := r.Submit
		if submit < 0 {
			submit = 0
		}
		out[r.JobID] = submit
	}
	return out
}
