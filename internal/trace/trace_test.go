package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bicriteria/internal/core"
	"bicriteria/internal/moldable"
	"bicriteria/internal/online"
	"bicriteria/internal/schedule"
)

func sampleRecords() []Record {
	return []Record{
		{JobID: 1, Submit: 0, Wait: 0, Run: 120, Procs: 4, ReqProcs: 4, ReqTime: 150, Status: 1},
		{JobID: 2, Submit: 30, Wait: 90, Run: 60, Procs: 1, ReqProcs: 2, ReqTime: 60, Status: 1},
		{JobID: 3, Submit: 45, Wait: -1, Run: -1, Procs: -1, ReqProcs: 8, ReqTime: 600, Status: 0},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, ";") {
		t.Fatalf("missing header comment:\n%s", out)
	}
	back, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("parsed %d records, want 3", len(back))
	}
	if back[0].JobID != 1 || back[0].Procs != 4 || math.Abs(back[0].Run-120) > 1e-9 {
		t.Fatalf("record 0 mangled: %+v", back[0])
	}
	if back[2].Run != -1 || back[2].Procs != -1 {
		t.Fatalf("unknown values must stay -1: %+v", back[2])
	}
}

func TestParseSkipsCommentsAndBlankLines(t *testing.T) {
	in := `
; comment line
; another

1 0 0 10 2 -1 -1 2 10 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	recs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].JobID != 1 {
		t.Fatalf("unexpected records: %+v", recs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"1 2 3",                      // too few fields
		"x 0 0 10 2 -1 -1 2 10 -1 1", // bad job id
		"1 y 0 10 2 -1 -1 2 10 -1 1", // bad submit
		"1 0 0 10 z -1 -1 2 10 -1 1", // bad procs
		"1 0 0 10 2 -1 -1 q 10 -1 1", // bad reqprocs
		"1 0 0 10 2 -1 -1 2 10 -1 w", // bad status
	}
	for i, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}

func TestFromScheduleExportsAssignments(t *testing.T) {
	inst := moldable.NewInstance(4, []moldable.Task{
		{ID: 0, Weight: 1, Times: []float64{8, 5, 4, 3.5}},
		moldable.Sequential(1, 2, 3),
	})
	s := schedule.New(4)
	s.Add(schedule.Assignment{TaskID: 0, Start: 2, NProcs: 2, Procs: []int{0, 1}, Duration: 5})
	s.Add(schedule.Assignment{TaskID: 1, Start: 0, NProcs: 1, Procs: []int{2}, Duration: 3})
	releases := map[int]float64{0: 1, 1: 0}
	records := FromSchedule(inst, s, releases)
	if len(records) != 2 {
		t.Fatalf("expected 2 records")
	}
	// Sorted by submit time: job 1 first.
	if records[0].JobID != 1 || records[1].JobID != 0 {
		t.Fatalf("wrong order: %+v", records)
	}
	if math.Abs(records[1].Wait-1) > 1e-9 {
		t.Fatalf("job 0 wait = %g, want 1", records[1].Wait)
	}
	if records[1].Procs != 2 || math.Abs(records[1].Run-5) > 1e-9 {
		t.Fatalf("job 0 export wrong: %+v", records[1])
	}
}

func TestToTasksReconstruction(t *testing.T) {
	records := []Record{
		{JobID: 1, Submit: 0, Run: 100, Procs: 8, Status: 1},
		{JobID: 2, Submit: 5, Run: 50, Procs: 1, Status: 1},
		{JobID: 3, Submit: 9, Run: -1, Procs: 4, Status: 0},                // skipped: no run time
		{JobID: 4, Submit: 9, Run: 10, Procs: -1, ReqProcs: 64, Status: 1}, // clamped to m
	}
	tasks := ToTasks(records, 16, nil)
	if len(tasks) != 3 {
		t.Fatalf("expected 3 reconstructed tasks, got %d", len(tasks))
	}
	inst := moldable.NewInstance(16, tasks)
	if err := inst.Validate(); err != nil {
		t.Fatalf("reconstructed instance invalid: %v", err)
	}
	if !inst.IsMonotonic() {
		t.Fatalf("reconstructed tasks must be monotonic")
	}
	// Calibration: the processing time at the recorded allocation equals
	// the recorded run time.
	if got := tasks[0].Time(8); math.Abs(got-100) > 1e-6 {
		t.Fatalf("task 1 p(8) = %g, want 100", got)
	}
	if got := tasks[1].Time(1); math.Abs(got-50) > 1e-6 {
		t.Fatalf("task 2 p(1) = %g, want 50", got)
	}
	// Task 4 requested 64 processors, clamped to the 16-processor machine.
	if got := tasks[2].Time(16); math.Abs(got-10) > 1e-6 {
		t.Fatalf("task 4 p(16) = %g, want 10", got)
	}
	// Custom weight.
	weighted := ToTasks(records[:1], 8, &MoldableOptions{DefaultWeight: 5, Sigma: 0.5})
	if weighted[0].Weight != 5 {
		t.Fatalf("custom weight not applied")
	}
}

func TestReleases(t *testing.T) {
	rel := Releases([]Record{{JobID: 3, Submit: 7}, {JobID: 4, Submit: -1}})
	if rel[3] != 7 || rel[4] != 0 {
		t.Fatalf("releases wrong: %v", rel)
	}
}

// TestEndToEndTraceDrivenScheduling replays a trace through the on-line
// batch framework and exports the result back to SWF.
func TestEndToEndTraceDrivenScheduling(t *testing.T) {
	records := []Record{
		{JobID: 0, Submit: 0, Run: 6, Procs: 4, Status: 1},
		{JobID: 1, Submit: 0, Run: 3, Procs: 1, Status: 1},
		{JobID: 2, Submit: 4, Run: 5, Procs: 2, Status: 1},
		{JobID: 3, Submit: 10, Run: 2, Procs: 8, Status: 1},
	}
	const m = 8
	tasks := ToTasks(records, m, nil)
	releases := Releases(records)
	jobs := make([]online.Job, len(tasks))
	for i, task := range tasks {
		jobs[i] = online.Job{Task: task, Release: releases[task.ID]}
	}
	res, err := online.Schedule(m, jobs, func(inst *moldable.Instance) (*schedule.Schedule, error) {
		out, err := core.Schedule(inst, &core.Options{Shuffles: 2})
		if err != nil {
			return nil, err
		}
		return out.Schedule, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := moldable.NewInstance(m, tasks)
	if err := res.Schedule.Validate(inst, &schedule.ValidateOptions{ReleaseDates: releases}); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	exported := FromSchedule(inst, res.Schedule, releases)
	if len(exported) != len(tasks) {
		t.Fatalf("export lost records")
	}
	var buf bytes.Buffer
	if err := Write(&buf, exported); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tasks) {
		t.Fatalf("round trip lost records")
	}
}

func TestPropertyWriteParseRoundTrip(t *testing.T) {
	f := func(ids []uint8) bool {
		var records []Record
		for i, raw := range ids {
			records = append(records, Record{
				JobID:    i,
				Submit:   float64(raw % 50),
				Wait:     float64(raw % 7),
				Run:      float64(raw%20) + 0.25,
				Procs:    1 + int(raw)%16,
				ReqProcs: 1 + int(raw)%16,
				ReqTime:  float64(raw%30) + 1,
				Status:   1,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, records); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil || len(back) != len(records) {
			return false
		}
		for i := range records {
			if back[i].JobID != records[i].JobID || back[i].Procs != records[i].Procs {
				return false
			}
			if math.Abs(back[i].Run-records[i].Run) > 0.01 || math.Abs(back[i].Submit-records[i].Submit) > 0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
