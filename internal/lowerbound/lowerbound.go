// Package lowerbound computes lower bounds on the two criteria studied by
// the paper, used as the reference values of all experiments:
//
//   - Makespan: the dual-approximation bound of section 3.3 ("for Cmax a good
//     lower bound may easily be obtained by dual approximation");
//
//   - Weighted minsum: the LP relaxation of the interval ILP of section 3.3
//     (solved with the in-repo simplex), plus a cheap combinatorial
//     "squashed-area" bound used when the LP is too expensive, and an exact
//     ILP variant (branch and bound) for tiny instances used in tests.
package lowerbound

import (
	"fmt"
	"math"
	"sort"

	"bicriteria/internal/dualapprox"
	"bicriteria/internal/lp"
	"bicriteria/internal/moldable"
)

// Makespan returns a valid lower bound on the optimal makespan.
func Makespan(inst *moldable.Instance) float64 {
	return dualapprox.MakespanLowerBound(inst)
}

// MinsumOptions tunes the LP lower bound.
type MinsumOptions struct {
	// CmaxEstimate anchors the geometric time intervals (the paper uses the
	// approximate C*max of the dual approximation). When zero, the makespan
	// lower bound of the instance is used.
	CmaxEstimate float64
	// LP carries options for the simplex solver.
	LP *lp.Options
}

// MinsumBound is the result of the LP (or ILP) lower bound.
type MinsumBound struct {
	// Value is the lower bound on sum(w_i C_i): the maximum of the LP
	// relaxation value and the squashed-area bound.
	Value float64
	// LPValue is the raw objective of the LP relaxation of section 3.3
	// before taking the maximum with the squashed-area bound.
	LPValue float64
	// Boundaries holds the interval boundaries b_0 < b_1 < ... used by the
	// formulation (b_0 = 0).
	Boundaries []float64
	// Status is the LP solver status.
	Status lp.Status
	// Iterations is the number of simplex pivots used.
	Iterations int
	// Nodes is the number of branch-and-bound nodes (ILP variant only).
	Nodes int
}

// intervalSet builds the geometric interval boundaries of section 3.3:
// t_j = C*max / 2^(K-j), j = 0..K+1, preceded by 0 and extended by further
// doublings until the horizon (the stacked sequential schedule) is covered,
// so that every completion time of some optimal schedule falls in an
// interval and the relaxation stays a valid bound.
func intervalSet(inst *moldable.Instance, cmax float64) []float64 {
	tmin := inst.MinProcessingTime()
	if cmax < tmin {
		cmax = tmin
	}
	k := int(math.Floor(math.Log2(cmax / tmin)))
	if k < 0 {
		k = 0
	}
	horizon := 0.0
	for i := range inst.Tasks {
		p, _ := inst.Tasks[i].MinTime()
		horizon += p
	}
	boundaries := []float64{0}
	for j := 0; j <= k+1; j++ {
		boundaries = append(boundaries, cmax/math.Pow(2, float64(k-j)))
	}
	for boundaries[len(boundaries)-1] < horizon {
		boundaries = append(boundaries, 2*boundaries[len(boundaries)-1])
	}
	return boundaries
}

// buildProblem creates the LP of section 3.3 on the given boundaries.
//
// Variables: x_{i,r} = task i completes in interval (b_r, b_{r+1}], created
// only when the task admits an allocation finishing within b_{r+1}. The
// objective coefficient of x_{i,r} is w_i * b_r (the interval's lower end,
// an underestimate of the completion time). Constraints:
//
//	for every task i:      sum_r x_{i,r} >= 1
//	for every interval r:  sum_{l<=r} sum_i S_{i,l} x_{i,l} <= m * b_{r+1}
//
// where S_{i,l} is the minimal work of task i among allocations finishing
// within b_{l+1}. The x <= 1 bounds of the paper are omitted: with
// non-negative costs and these constraint senses they are never active at
// an optimum, so the bound value is unchanged.
func buildProblem(inst *moldable.Instance, boundaries []float64) (*lp.Problem, [][]int) {
	nIntervals := len(boundaries) - 1
	varIndex := make([][]int, len(inst.Tasks))
	nVars := 0
	for i := range inst.Tasks {
		varIndex[i] = make([]int, nIntervals)
		for r := 0; r < nIntervals; r++ {
			varIndex[i][r] = -1
			if _, _, ok := inst.Tasks[i].MinWorkFitting(boundaries[r+1]); ok {
				varIndex[i][r] = nVars
				nVars++
			}
		}
	}
	p := lp.NewProblem(nVars)
	for i := range inst.Tasks {
		t := &inst.Tasks[i]
		for r := 0; r < nIntervals; r++ {
			if varIndex[i][r] >= 0 {
				p.SetObjective(varIndex[i][r], t.Weight*boundaries[r])
			}
		}
	}
	// Coverage constraints.
	for i := range inst.Tasks {
		coeffs := make([]float64, nVars)
		any := false
		for r := 0; r < nIntervals; r++ {
			if varIndex[i][r] >= 0 {
				coeffs[varIndex[i][r]] = 1
				any = true
			}
		}
		if any {
			p.AddConstraint(coeffs, lp.GE, 1)
		}
	}
	// Cumulative area constraints.
	for r := 0; r < nIntervals; r++ {
		coeffs := make([]float64, nVars)
		for i := range inst.Tasks {
			t := &inst.Tasks[i]
			for l := 0; l <= r; l++ {
				if varIndex[i][l] < 0 {
					continue
				}
				_, work, _ := t.MinWorkFitting(boundaries[l+1])
				coeffs[varIndex[i][l]] = work
			}
		}
		p.AddConstraint(coeffs, lp.LE, float64(inst.M)*boundaries[r+1])
	}
	return p, varIndex
}

// MinsumLP computes the paper's LP-relaxation lower bound on the weighted
// sum of completion times.
func MinsumLP(inst *moldable.Instance, opts *MinsumOptions) (*MinsumBound, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cmax := 0.0
	var lpOpts *lp.Options
	if opts != nil {
		cmax = opts.CmaxEstimate
		lpOpts = opts.LP
	}
	if cmax <= 0 {
		cmax = Makespan(inst)
	}
	boundaries := intervalSet(inst, cmax)
	problem, _ := buildProblem(inst, boundaries)
	sol, err := lp.Solve(problem, lpOpts)
	if err != nil {
		return nil, err
	}
	bound := &MinsumBound{Boundaries: boundaries, Status: sol.Status, Iterations: sol.Iterations}
	switch sol.Status {
	case lp.Optimal:
		bound.Value = sol.Objective
		bound.LPValue = sol.Objective
	case lp.Infeasible:
		return nil, fmt.Errorf("lowerbound: LP relaxation infeasible, the interval horizon is too short")
	default:
		// Fall back to the combinatorial bound rather than reporting an
		// unusable value.
		bound.Value = MinsumSquashedArea(inst)
	}
	// The LP bound can never be worse than the trivial per-task bound; take
	// the max with the combinatorial bound for robustness against numerical
	// slack in the simplex.
	if sq := MinsumSquashedArea(inst); sq > bound.Value {
		bound.Value = sq
	}
	return bound, nil
}

// MinsumILP solves the integer version of the section 3.3 formulation with
// branch and bound. It is exponential and intended for tiny instances in
// tests; the result is still only a lower bound on the true optimum (the
// formulation ignores processor collisions) but is at least as strong as
// the LP value.
func MinsumILP(inst *moldable.Instance, opts *MinsumOptions) (*MinsumBound, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cmax := 0.0
	if opts != nil {
		cmax = opts.CmaxEstimate
	}
	if cmax <= 0 {
		cmax = Makespan(inst)
	}
	boundaries := intervalSet(inst, cmax)
	problem, _ := buildProblem(inst, boundaries)
	var lpOpts *lp.Options
	if opts != nil {
		lpOpts = opts.LP
	}
	sol, err := lp.SolveBinary(problem, &lp.BinaryOptions{LP: lpOpts})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("lowerbound: ILP solve failed with status %v", sol.Status)
	}
	return &MinsumBound{Value: sol.Objective, Boundaries: boundaries, Status: sol.Status, Nodes: sol.Nodes}, nil
}

// MinsumSquashedArea is a fast combinatorial lower bound on sum(w_i C_i):
// the maximum of
//
//   - the per-task bound sum_i w_i * pmin_i (no task can finish before its
//     fastest processing time), and
//
//   - the squashed-area bound: sorting tasks by Smith's ratio (minimal work
//     over weight), the completion of the i-th task in any schedule is at
//     least the prefix sum of minimal works divided by m.
func MinsumSquashedArea(inst *moldable.Instance) float64 {
	perTask := 0.0
	type entry struct {
		work, weight float64
	}
	entries := make([]entry, 0, len(inst.Tasks))
	for i := range inst.Tasks {
		t := &inst.Tasks[i]
		pmin, _ := t.MinTime()
		perTask += t.Weight * pmin
		w, _ := t.MinWork()
		entries = append(entries, entry{work: w, weight: t.Weight})
	}
	sort.Slice(entries, func(a, b int) bool {
		// Smith's rule: increasing work/weight; tasks with zero weight go
		// last (they do not contribute to the objective).
		wa, wb := entries[a], entries[b]
		return wa.work*wb.weight < wb.work*wa.weight
	})
	prefix := 0.0
	squashed := 0.0
	for _, e := range entries {
		prefix += e.work
		squashed += e.weight * prefix / float64(inst.M)
	}
	if perTask > squashed {
		return perTask
	}
	return squashed
}
