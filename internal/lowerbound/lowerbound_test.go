package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"bicriteria/internal/listsched"
	"bicriteria/internal/lp"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
	"bicriteria/internal/workload"
)

func smallInstance() *moldable.Instance {
	return moldable.NewInstance(4, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{8, 4.5, 3.2, 2.5}},
		{ID: 1, Weight: 1, Times: []float64{6, 3.5, 2.6, 2.2}},
		{ID: 2, Weight: 3, Times: []float64{2, 1.2}},
		{ID: 3, Weight: 1, Times: []float64{1.5}},
	})
}

// anyFeasibleSchedule builds a simple feasible schedule (sequential
// allotment, Graham list in weight-density order) whose criteria must upper
// bound the lower bounds.
func anyFeasibleSchedule(t *testing.T, inst *moldable.Instance) *schedule.Schedule {
	t.Helper()
	items := make([]listsched.Item, inst.N())
	for i := range inst.Tasks {
		items[i] = listsched.Item{TaskID: inst.Tasks[i].ID, NProcs: 1, Duration: inst.Tasks[i].SeqTime()}
	}
	s, err := listsched.Graham(inst.M, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(inst, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMakespanBoundBelowFeasibleSchedules(t *testing.T) {
	inst := smallInstance()
	lb := Makespan(inst)
	s := anyFeasibleSchedule(t, inst)
	if lb > s.Makespan()+1e-9 {
		t.Fatalf("makespan lower bound %g exceeds a feasible makespan %g", lb, s.Makespan())
	}
	if lb <= 0 {
		t.Fatalf("lower bound should be positive")
	}
}

func TestIntervalSetCoversHorizonAndDoubles(t *testing.T) {
	inst := smallInstance()
	cmax := Makespan(inst)
	bounds := intervalSet(inst, cmax)
	if bounds[0] != 0 {
		t.Fatalf("first boundary must be 0, got %g", bounds[0])
	}
	horizon := 0.0
	for i := range inst.Tasks {
		p, _ := inst.Tasks[i].MinTime()
		horizon += p
	}
	if bounds[len(bounds)-1] < horizon-1e-9 {
		t.Fatalf("last boundary %g below horizon %g", bounds[len(bounds)-1], horizon)
	}
	for i := 2; i < len(bounds); i++ {
		ratio := bounds[i] / bounds[i-1]
		if math.Abs(ratio-2) > 1e-6 {
			t.Fatalf("boundaries must double: b[%d]=%g b[%d]=%g", i-1, bounds[i-1], i, bounds[i])
		}
	}
	// tmin must fall inside the first non-degenerate interval.
	tmin := inst.MinProcessingTime()
	if bounds[1] < tmin-1e-9 || bounds[1] > 2*tmin+1e-9 {
		t.Fatalf("first positive boundary %g should be within [tmin, 2*tmin] = [%g, %g]", bounds[1], tmin, 2*tmin)
	}
}

func TestMinsumSquashedAreaBasics(t *testing.T) {
	inst := smallInstance()
	lb := MinsumSquashedArea(inst)
	if lb <= 0 {
		t.Fatalf("squashed-area bound must be positive")
	}
	// Per-task component: never below sum w_i * pmin_i.
	perTask := 0.0
	for i := range inst.Tasks {
		p, _ := inst.Tasks[i].MinTime()
		perTask += inst.Tasks[i].Weight * p
	}
	if lb < perTask-1e-9 {
		t.Fatalf("bound %g below per-task bound %g", lb, perTask)
	}
	s := anyFeasibleSchedule(t, inst)
	if lb > s.WeightedCompletion(inst)+1e-9 {
		t.Fatalf("bound %g exceeds a feasible minsum %g", lb, s.WeightedCompletion(inst))
	}
}

func TestMinsumSquashedAreaSingleProcessorExact(t *testing.T) {
	// On a single processor with sequential tasks the squashed-area bound
	// equals the Smith-rule optimum.
	inst := moldable.NewInstance(1, []moldable.Task{
		moldable.Sequential(0, 3, 2), // ratio 2/3
		moldable.Sequential(1, 1, 4), // ratio 4
		moldable.Sequential(2, 2, 1), // ratio 1/2
	})
	// Smith order: task2 (1), task0 (2), task1 (4):
	// completions 1, 3, 7 -> 2*1 + 3*3 + 1*7 = 18.
	lb := MinsumSquashedArea(inst)
	if math.Abs(lb-18) > 1e-9 {
		t.Fatalf("bound = %g, want 18", lb)
	}
}

func TestMinsumLPBasicProperties(t *testing.T) {
	inst := smallInstance()
	bound, err := MinsumLP(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Status != lp.Optimal {
		t.Fatalf("LP status = %v", bound.Status)
	}
	if bound.Value <= 0 {
		t.Fatalf("LP bound must be positive")
	}
	s := anyFeasibleSchedule(t, inst)
	if bound.Value > s.WeightedCompletion(inst)+1e-6 {
		t.Fatalf("LP bound %g exceeds a feasible minsum %g", bound.Value, s.WeightedCompletion(inst))
	}
	// The LP bound dominates (or matches) the squashed-area bound because
	// MinsumLP takes the max of the two.
	if bound.Value < MinsumSquashedArea(inst)-1e-9 {
		t.Fatalf("LP bound %g below squashed-area bound %g", bound.Value, MinsumSquashedArea(inst))
	}
}

func TestMinsumLPWithExplicitCmax(t *testing.T) {
	inst := smallInstance()
	cmax := Makespan(inst) * 1.5
	bound, err := MinsumLP(inst, &MinsumOptions{CmaxEstimate: cmax})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Value <= 0 {
		t.Fatalf("bound must be positive")
	}
}

func TestMinsumLPRejectsInvalidInstance(t *testing.T) {
	if _, err := MinsumLP(&moldable.Instance{M: 0}, nil); err == nil {
		t.Fatalf("invalid instance must fail")
	}
	if _, err := MinsumILP(&moldable.Instance{M: 0}, nil); err == nil {
		t.Fatalf("invalid instance must fail")
	}
}

func TestMinsumILPAtLeastLP(t *testing.T) {
	inst := moldable.NewInstance(3, []moldable.Task{
		{ID: 0, Weight: 2, Times: []float64{4, 2.5, 2}},
		{ID: 1, Weight: 1, Times: []float64{3, 1.8, 1.4}},
		{ID: 2, Weight: 3, Times: []float64{1.5}},
	})
	lpBound, err := MinsumLP(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	ilpBound, err := MinsumILP(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ilpBound.Value < lpBound.Value-1e-6 {
		// The reported LP value includes the squashed-area max; compare to
		// the raw relaxation instead by rebuilding it.
		boundaries := intervalSet(inst, Makespan(inst))
		problem, _ := buildProblem(inst, boundaries)
		raw, err := lp.Solve(problem, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ilpBound.Value < raw.Objective-1e-6 {
			t.Fatalf("ILP value %g below LP relaxation %g", ilpBound.Value, raw.Objective)
		}
	}
	if ilpBound.Nodes <= 0 {
		t.Fatalf("ILP should report explored nodes")
	}
}

func TestPropertyLowerBoundsBelowFeasibleSchedules(t *testing.T) {
	kinds := workload.Kinds()
	f := func(seed int64, kindRaw, nRaw uint8) bool {
		kind := kinds[int(kindRaw)%len(kinds)]
		n := 3 + int(nRaw)%20
		inst, err := workload.Generate(workload.Config{Kind: kind, M: 12, N: n, Seed: seed})
		if err != nil {
			return false
		}
		// Feasible schedule: every task sequential, Graham list.
		items := make([]listsched.Item, inst.N())
		for i := range inst.Tasks {
			items[i] = listsched.Item{TaskID: inst.Tasks[i].ID, NProcs: 1, Duration: inst.Tasks[i].SeqTime()}
		}
		s, err := listsched.Graham(inst.M, items)
		if err != nil {
			return false
		}
		if Makespan(inst) > s.Makespan()+1e-6 {
			return false
		}
		if MinsumSquashedArea(inst) > s.WeightedCompletion(inst)+1e-6 {
			return false
		}
		bound, err := MinsumLP(inst, nil)
		if err != nil {
			return false
		}
		return bound.Value <= s.WeightedCompletion(inst)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
