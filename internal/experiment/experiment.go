// Package experiment is the harness that regenerates the evaluation of the
// paper (section 4): for each workload family and each number of tasks it
// generates several random instances, runs DEMT and the baseline
// algorithms, computes the lower bounds of both criteria and aggregates the
// performance ratios exactly as the paper does (ratio of sums for the
// average, plus per-run minimum and maximum).
//
// Figures 3-6 are the (minsum ratio, makespan ratio) series of the four
// workload families; Figure 7 is the scheduler execution time.
package experiment

import (
	"fmt"
	"time"

	"bicriteria/internal/baselines"
	"bicriteria/internal/core"
	"bicriteria/internal/dualapprox"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/moldable"
	"bicriteria/internal/schedule"
	"bicriteria/internal/stats"
	"bicriteria/internal/workload"
)

// Algorithm identifies one scheduling algorithm of the comparison.
type Algorithm string

const (
	// AlgDEMT is the paper's bi-criteria algorithm (named after its
	// authors' initials in the figures: "DEMT").
	AlgDEMT Algorithm = "demt"
	// AlgGang runs every task on all processors.
	AlgGang Algorithm = "gang"
	// AlgSequential runs every task on one processor (LPT list).
	AlgSequential Algorithm = "sequential"
	// AlgListShelf is Graham list scheduling with the dual-approximation
	// allotment in shelf order.
	AlgListShelf Algorithm = "list"
	// AlgListWeightedLPT is the weighted-LPT variant.
	AlgListWeightedLPT Algorithm = "lptf"
	// AlgListSAF is the smallest-area-first variant.
	AlgListSAF Algorithm = "saf"
)

// Algorithms returns the full comparison set in the paper's legend order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgDEMT, AlgGang, AlgSequential, AlgListShelf, AlgListWeightedLPT, AlgListSAF}
}

// ParseAlgorithm converts a CLI string into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == s {
			return a, nil
		}
	}
	return "", fmt.Errorf("experiment: unknown algorithm %q", s)
}

// Config drives one experiment (one figure of the paper).
type Config struct {
	// Workload selects the workload family.
	Workload workload.Kind
	// M is the number of processors (the paper uses 200).
	M int
	// TaskCounts is the sweep over the number of tasks (the paper uses
	// 25..400).
	TaskCounts []int
	// Runs is the number of random instances per point (the paper uses 40).
	Runs int
	// Seed makes the experiment deterministic.
	Seed int64
	// Algorithms to compare; nil means all of them.
	Algorithms []Algorithm
	// UseLPBound selects the paper's LP-relaxation lower bound for the
	// minsum criterion; when false the much cheaper squashed-area bound is
	// used instead (useful for quick runs and unit tests).
	UseLPBound bool
	// ValidateSchedules re-validates every produced schedule (slower;
	// enabled in tests).
	ValidateSchedules bool
	// DEMT carries options for the DEMT algorithm (nil = paper defaults).
	DEMT *core.Options
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 200
	}
	if len(c.TaskCounts) == 0 {
		c.TaskCounts = DefaultTaskCounts()
	}
	if c.Runs == 0 {
		c.Runs = 40
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = Algorithms()
	}
	return c
}

// DefaultTaskCounts returns the task-count sweep used by the paper's
// figures (25 to 400).
func DefaultTaskCounts() []int {
	return []int{25, 50, 100, 150, 200, 250, 300, 350, 400}
}

// Point is the aggregated result of one (algorithm, task count) pair.
type Point struct {
	// N is the number of tasks.
	N int
	// CmaxRatio aggregates makespan / makespan-lower-bound.
	CmaxRatio stats.Ratio
	// MinsumRatio aggregates weighted-minsum / minsum-lower-bound.
	MinsumRatio stats.Ratio
	// SchedulerTime is the average wall-clock time of the algorithm.
	SchedulerTime time.Duration
}

// Series is the curve of one algorithm across the task-count sweep.
type Series struct {
	Algorithm Algorithm
	Points    []Point
}

// Result is a complete figure: one series per algorithm.
type Result struct {
	Config Config
	Series []Series
	// Elapsed is the total wall-clock time of the experiment.
	Elapsed time.Duration
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("experiment: Runs must be >= 1")
	}
	start := time.Now()
	res := &Result{Config: cfg}
	for _, alg := range cfg.Algorithms {
		res.Series = append(res.Series, Series{Algorithm: alg})
	}

	for _, n := range cfg.TaskCounts {
		aggCmax := make(map[Algorithm]*stats.RatioAggregator)
		aggMinsum := make(map[Algorithm]*stats.RatioAggregator)
		timeSum := make(map[Algorithm]time.Duration)
		for _, alg := range cfg.Algorithms {
			aggCmax[alg] = &stats.RatioAggregator{}
			aggMinsum[alg] = &stats.RatioAggregator{}
		}

		for run := 0; run < cfg.Runs; run++ {
			inst, err := workload.Generate(workload.Config{
				Kind: cfg.Workload,
				M:    cfg.M,
				N:    n,
				Seed: instanceSeed(cfg.Seed, n, run),
			})
			if err != nil {
				return nil, err
			}

			// Shared pre-computations: the dual-approximation result (used
			// by the list baselines and by the lower bounds).
			da, err := dualapprox.TwoShelf(inst)
			if err != nil {
				return nil, err
			}
			cmaxLB := da.LowerBound
			minsumLB := lowerbound.MinsumSquashedArea(inst)
			if cfg.UseLPBound {
				b, err := lowerbound.MinsumLP(inst, &lowerbound.MinsumOptions{CmaxEstimate: da.Estimate})
				if err != nil {
					return nil, err
				}
				minsumLB = b.Value
			}

			for _, alg := range cfg.Algorithms {
				sched, elapsed, err := runAlgorithm(alg, inst, da, cfg.DEMT)
				if err != nil {
					return nil, fmt.Errorf("experiment: %s on %s n=%d run=%d: %w", alg, cfg.Workload, n, run, err)
				}
				if cfg.ValidateSchedules {
					if err := sched.Validate(inst, nil); err != nil {
						return nil, fmt.Errorf("experiment: %s produced an invalid schedule: %w", alg, err)
					}
				}
				timeSum[alg] += elapsed
				if err := aggCmax[alg].Add(sched.Makespan(), cmaxLB); err != nil {
					return nil, err
				}
				if err := aggMinsum[alg].Add(sched.WeightedCompletion(inst), minsumLB); err != nil {
					return nil, err
				}
			}
		}

		for si := range res.Series {
			alg := res.Series[si].Algorithm
			res.Series[si].Points = append(res.Series[si].Points, Point{
				N:             n,
				CmaxRatio:     aggCmax[alg].Result(),
				MinsumRatio:   aggMinsum[alg].Result(),
				SchedulerTime: timeSum[alg] / time.Duration(cfg.Runs),
			})
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// instanceSeed mixes the base seed with the sweep coordinates so every run
// gets a distinct but reproducible instance.
func instanceSeed(base int64, n, run int) int64 {
	return base*1_000_003 + int64(n)*131 + int64(run)*7 + 1
}

// runAlgorithm dispatches one algorithm on one instance, reusing the shared
// dual-approximation result for the list baselines, and reports its
// wall-clock time.
func runAlgorithm(alg Algorithm, inst *moldable.Instance, da *dualapprox.Result, demtOpts *core.Options) (*schedule.Schedule, time.Duration, error) {
	start := time.Now()
	var (
		sched *schedule.Schedule
		err   error
	)
	switch alg {
	case AlgDEMT:
		var res *core.Result
		// Reuse the shared dual-approximation estimate so the measured time
		// reflects the batch construction, as in the paper's Figure 7.
		opts := core.Options{}
		if demtOpts != nil {
			opts = *demtOpts
		}
		opts.CmaxEstimate = da.Estimate
		res, err = core.Schedule(inst, &opts)
		if err == nil {
			sched = res.Schedule
		}
	case AlgGang:
		sched, err = baselines.Gang(inst)
	case AlgSequential:
		sched, err = baselines.Sequential(inst)
	case AlgListShelf:
		sched, err = baselines.ListGrahamWithAllotment(inst, da, baselines.ShelfOrder)
	case AlgListWeightedLPT:
		sched, err = baselines.ListGrahamWithAllotment(inst, da, baselines.WeightedLPT)
	case AlgListSAF:
		sched, err = baselines.ListGrahamWithAllotment(inst, da, baselines.SmallestAreaFirst)
	default:
		return nil, 0, fmt.Errorf("unknown algorithm %q", alg)
	}
	return sched, time.Since(start), err
}
