package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bicriteria/internal/workload"
)

// FigureConfig returns the configuration reproducing one of the paper's
// figures:
//
//	3: weakly parallel workload, 4: highly parallel, 5: mixed, 6: Cirne,
//	7: scheduler execution time (run on the weakly/highly/Cirne workloads).
//
// runs and seed override the number of runs per point (paper: 40) and the
// base seed; useLP selects the LP minsum lower bound (paper) instead of the
// fast squashed-area bound.
func FigureConfig(figure, runs int, seed int64, useLP bool) (Config, error) {
	cfg := Config{Runs: runs, Seed: seed, UseLPBound: useLP}
	switch figure {
	case 3:
		cfg.Workload = workload.WeaklyParallel
	case 4:
		cfg.Workload = workload.HighlyParallel
	case 5:
		cfg.Workload = workload.Mixed
	case 6:
		cfg.Workload = workload.Cirne
	case 7:
		// Figure 7 only measures the DEMT scheduling time; the workload is
		// chosen by the caller among weakly/highly/cirne. Default: weakly.
		cfg.Workload = workload.WeaklyParallel
		cfg.Algorithms = []Algorithm{AlgDEMT}
	default:
		return Config{}, fmt.Errorf("experiment: the paper has figures 3 to 7, not %d", figure)
	}
	return cfg, nil
}

// FormatTable renders the result as two text tables (minsum ratios and
// makespan ratios), matching the series plotted in the paper's figures, and
// a third table with the average scheduler time per point.
func FormatTable(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload: %s, m=%d processors, %d runs per point", res.Config.Workload, res.Config.M, res.Config.Runs)
	if res.Config.UseLPBound {
		b.WriteString(", LP minsum bound")
	} else {
		b.WriteString(", squashed-area minsum bound")
	}
	b.WriteString("\n\n")

	writeBlock := func(title string, value func(Point) string) {
		fmt.Fprintf(&b, "%s\n", title)
		fmt.Fprintf(&b, "%-6s", "n")
		for _, s := range res.Series {
			fmt.Fprintf(&b, "%14s", s.Algorithm)
		}
		b.WriteString("\n")
		if len(res.Series) == 0 {
			return
		}
		for pi := range res.Series[0].Points {
			fmt.Fprintf(&b, "%-6d", res.Series[0].Points[pi].N)
			for _, s := range res.Series {
				fmt.Fprintf(&b, "%14s", value(s.Points[pi]))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}

	writeBlock("Weighted minsum ratio (sum WiCi / lower bound)", func(p Point) string {
		return fmt.Sprintf("%.3f", p.MinsumRatio.Mean)
	})
	writeBlock("Makespan ratio (Cmax / lower bound)", func(p Point) string {
		return fmt.Sprintf("%.3f", p.CmaxRatio.Mean)
	})
	writeBlock("Average scheduler time", func(p Point) string {
		return p.SchedulerTime.Round(10_000).String()
	})
	return b.String()
}

// WriteCSV writes one row per (algorithm, task count) with the aggregated
// ratios and timings, suitable for re-plotting the figures.
func WriteCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"workload", "algorithm", "n",
		"minsum_ratio_mean", "minsum_ratio_min", "minsum_ratio_max",
		"cmax_ratio_mean", "cmax_ratio_min", "cmax_ratio_max",
		"scheduler_seconds",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			row := []string{
				res.Config.Workload.String(),
				string(s.Algorithm),
				strconv.Itoa(p.N),
				formatFloat(p.MinsumRatio.Mean), formatFloat(p.MinsumRatio.Min), formatFloat(p.MinsumRatio.Max),
				formatFloat(p.CmaxRatio.Mean), formatFloat(p.CmaxRatio.Min), formatFloat(p.CmaxRatio.Max),
				formatFloat(p.SchedulerTime.Seconds()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// SeriesFor returns the series of one algorithm, or nil when absent.
func (r *Result) SeriesFor(alg Algorithm) *Series {
	for i := range r.Series {
		if r.Series[i].Algorithm == alg {
			return &r.Series[i]
		}
	}
	return nil
}

// MaxRatio returns the largest mean ratio reached by an algorithm across
// the sweep, for the given criterion ("minsum" or "cmax"). It is used by
// tests and by EXPERIMENTS.md generation to compare against the paper's
// qualitative claims.
func (r *Result) MaxRatio(alg Algorithm, criterion string) (float64, error) {
	s := r.SeriesFor(alg)
	if s == nil {
		return 0, fmt.Errorf("experiment: no series for %q", alg)
	}
	worst := 0.0
	for _, p := range s.Points {
		v := p.MinsumRatio.Mean
		if criterion == "cmax" {
			v = p.CmaxRatio.Mean
		}
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}
