package experiment

import (
	"fmt"
	"strings"
	"time"

	"bicriteria/internal/core"
	"bicriteria/internal/dualapprox"
	"bicriteria/internal/lowerbound"
	"bicriteria/internal/stats"
	"bicriteria/internal/workload"
)

// AblationConfig drives the ablation studies of DESIGN.md (A1-A3): they
// compare variants of one design choice of the DEMT algorithm on a fixed
// workload setting.
type AblationConfig struct {
	// Workload selects the workload family (default Cirne).
	Workload workload.Kind
	// M is the machine size (default 64).
	M int
	// N is the number of tasks (default 80).
	N int
	// Runs is the number of random instances (default 10).
	Runs int
	// Seed makes the study deterministic.
	Seed int64
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.M == 0 {
		c.M = 64
	}
	if c.N == 0 {
		c.N = 80
	}
	if c.Runs == 0 {
		c.Runs = 10
	}
	return c
}

// AblationRow is the aggregated result of one variant.
type AblationRow struct {
	// Variant names the design-choice variant.
	Variant string
	// MinsumRatio and CmaxRatio aggregate the criteria against the
	// squashed-area and dual-approximation bounds.
	MinsumRatio stats.Ratio
	CmaxRatio   stats.Ratio
	// AvgTime is the average wall-clock time of the variant per instance.
	AvgTime time.Duration
	// Value is a variant-specific scalar (used by the lower-bound ablation
	// to report the average bound value).
	Value float64
}

// RunSelectionAblation compares the knapsack batch selection of the paper
// with the greedy weight-density selection (ablation A1).
func RunSelectionAblation(cfg AblationConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	variants := []core.SelectionMode{core.SelectionKnapsack, core.SelectionGreedy}
	rows := make([]AblationRow, 0, len(variants))
	for _, mode := range variants {
		row, err := runDEMTVariant(cfg, fmt.Sprintf("selection=%s", mode), &core.Options{Selection: mode})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunCompactionAblation compares the compaction modes (ablation A2).
func RunCompactionAblation(cfg AblationConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	variants := []core.CompactionMode{
		core.CompactionNone, core.CompactionEarliestStart, core.CompactionList, core.CompactionListShuffle,
	}
	rows := make([]AblationRow, 0, len(variants))
	for _, mode := range variants {
		row, err := runDEMTVariant(cfg, fmt.Sprintf("compaction=%s", mode), &core.Options{Compaction: mode})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runDEMTVariant evaluates one DEMT configuration across the ablation runs.
func runDEMTVariant(cfg AblationConfig, name string, opts *core.Options) (AblationRow, error) {
	row := AblationRow{Variant: name}
	var minsum, cmax stats.RatioAggregator
	var total time.Duration
	for run := 0; run < cfg.Runs; run++ {
		inst, err := workload.Generate(workload.Config{Kind: cfg.Workload, M: cfg.M, N: cfg.N, Seed: instanceSeed(cfg.Seed, cfg.N, run)})
		if err != nil {
			return row, err
		}
		start := time.Now()
		res, err := core.Schedule(inst, opts)
		if err != nil {
			return row, err
		}
		total += time.Since(start)
		if err := res.Schedule.Validate(inst, nil); err != nil {
			return row, fmt.Errorf("experiment: ablation %s produced an invalid schedule: %w", name, err)
		}
		if err := minsum.Add(res.Schedule.WeightedCompletion(inst), lowerbound.MinsumSquashedArea(inst)); err != nil {
			return row, err
		}
		if err := cmax.Add(res.Schedule.Makespan(), res.MakespanLowerBound); err != nil {
			return row, err
		}
	}
	row.MinsumRatio = minsum.Result()
	row.CmaxRatio = cmax.Result()
	row.AvgTime = total / time.Duration(cfg.Runs)
	return row, nil
}

// RunBoundAblation compares the squashed-area and LP-relaxation minsum
// lower bounds (ablation A3): average bound value (higher is tighter) and
// average computation time.
func RunBoundAblation(cfg AblationConfig) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	rows := []AblationRow{{Variant: "bound=squashed-area"}, {Variant: "bound=lp-relaxation"}, {Variant: "bound=max(both)"}}
	var squashedSum, lpSum, maxSum float64
	var squashedTime, lpTime time.Duration
	for run := 0; run < cfg.Runs; run++ {
		inst, err := workload.Generate(workload.Config{Kind: cfg.Workload, M: cfg.M, N: cfg.N, Seed: instanceSeed(cfg.Seed, cfg.N, run)})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sq := lowerbound.MinsumSquashedArea(inst)
		squashedTime += time.Since(start)

		da, err := dualapprox.TwoShelf(inst)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		b, err := lowerbound.MinsumLP(inst, &lowerbound.MinsumOptions{CmaxEstimate: da.Estimate})
		if err != nil {
			return nil, err
		}
		lpTime += time.Since(start)

		squashedSum += sq
		lpSum += b.LPValue
		maxSum += b.Value
	}
	runs := float64(cfg.Runs)
	rows[0].Value = squashedSum / runs
	rows[0].AvgTime = squashedTime / time.Duration(cfg.Runs)
	rows[1].Value = lpSum / runs
	rows[1].AvgTime = lpTime / time.Duration(cfg.Runs)
	rows[2].Value = maxSum / runs
	rows[2].AvgTime = (squashedTime + lpTime) / time.Duration(cfg.Runs)
	return rows, nil
}

// FormatAblation renders ablation rows as a text table.
func FormatAblation(title string, cfg AblationConfig, rows []AblationRow) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (workload %s, m=%d, n=%d, %d runs)\n", title, cfg.Workload, cfg.M, cfg.N, cfg.Runs)
	fmt.Fprintf(&b, "%-28s %14s %14s %14s %14s\n", "variant", "minsum ratio", "cmax ratio", "value", "avg time")
	for _, row := range rows {
		minsum, cmax, value := "-", "-", "-"
		if row.MinsumRatio.Count > 0 {
			minsum = fmt.Sprintf("%.3f", row.MinsumRatio.Mean)
		}
		if row.CmaxRatio.Count > 0 {
			cmax = fmt.Sprintf("%.3f", row.CmaxRatio.Mean)
		}
		if row.Value != 0 {
			value = fmt.Sprintf("%.1f", row.Value)
		}
		fmt.Fprintf(&b, "%-28s %14s %14s %14s %14s\n", row.Variant, minsum, cmax, value, row.AvgTime.Round(10*time.Microsecond))
	}
	return b.String()
}
